# Convenience targets; everything is plain pip/pytest underneath.

.PHONY: install test bench experiments verify docs clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro experiment all

verify:
	python -m repro verify

docs:
	python -m repro.kernels.docgen

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
