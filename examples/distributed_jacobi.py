#!/usr/bin/env python3
"""Distributed-memory Jacobi — the paper's "further work", both faces.

1. **Correctness**: actually run a row-decomposed Jacobi-2D solve on the
   in-process SPMD runtime (threads + message passing) and check it
   matches the sequential solve bit-for-bit.
2. **Performance**: predict strong scaling of the same solve on SG2042
   clusters over 25/100GbE against an AMD Rome cluster on an HPC fabric,
   quantifying how much the network adaptor choice matters.

Usage::

    python examples/distributed_jacobi.py
"""

import numpy as np

from repro.cluster.apps import jacobi2d_distributed, jacobi2d_reference
from repro.cluster.machine import ClusterModel
from repro.cluster.network import ethernet_25g, ethernet_100g, slingshot
from repro.machine import catalog
from repro.machine.vector import DType
from repro.util.tables import render_table


def correctness_demo() -> None:
    print("=== 1. Executable SPMD run (threads + message passing) ===")
    ranks, ny, nx, steps = 4, 32, 24, 10
    parallel = jacobi2d_distributed(ranks, ny, nx, steps)
    reference = jacobi2d_reference(ny, nx, steps)
    err = float(np.max(np.abs(parallel - reference)))
    print(f"  {ranks} ranks, {ny}x{nx} grid, {steps} steps: "
          f"max |parallel - sequential| = {err:.3e}")
    assert err < 1e-12


def scaling_study() -> None:
    print("\n=== 2. Predicted strong scaling (1000x1000 FP64 grid) ===")
    clusters = [
        ClusterModel(node=catalog.sg2042(), num_nodes=1,
                     network=ethernet_25g(), threads_per_node=32),
        ClusterModel(node=catalog.sg2042(), num_nodes=1,
                     network=ethernet_100g(), threads_per_node=32),
        ClusterModel(node=catalog.amd_rome(), num_nodes=1,
                     network=slingshot()),
    ]
    node_counts = [1, 2, 4, 8, 16, 32]
    rows = []
    for cluster in clusters:
        times = cluster.strong_scaling(
            "jacobi2d", 1_000_000, node_counts, DType.FP64
        )
        label = f"{cluster.node.part} / {cluster.network.name}"
        row = [label] + [
            f"{times[n] * 1e3:.2f}ms (PE {times[node_counts[0]] / times[n] / n:.2f})"
            for n in node_counts
        ]
        rows.append(tuple(row))
    print(
        render_table(
            ("cluster",) + tuple(f"{n} nodes" for n in node_counts),
            rows,
        )
    )
    print(
        "\ntakeaway: parallel efficiency collapses beyond ~8 SG2042 "
        "nodes as halo messages start to dominate the (fast, cache-"
        "resident) local sweeps, and the 100GbE adaptor buys a visible "
        "edge over 25GbE — the paper's observation that 'networking "
        "performance would also be driven by the auxiliaries', "
        "quantified."
    )


if __name__ == "__main__":
    correctness_demo()
    scaling_study()
