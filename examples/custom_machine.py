#!/usr/bin/env python3
"""Define your own machine in JSON and run the paper's pipeline on it.

Exports the SG2042 model to JSON, edits it into a hypothetical
"SG2042-Pro" (RVV 1.0 with FP64 vectors, faster DRAM), saves it, loads
it back, and compares the two through the standard suite — the workflow
for evaluating unreleased hardware with this library.

Usage::

    python examples/custom_machine.py
"""

import json
import tempfile
from pathlib import Path

from repro import RunConfig, catalog, run_suite
from repro.machine.serialize import cpu_from_dict, cpu_to_dict, load_cpu, save_cpu
from repro.suite.report import class_summaries


def main() -> None:
    base = catalog.sg2042()
    data = cpu_to_dict(base)

    # Edit the JSON the way a user would in a text editor.
    data["name"] = "SG2042-Pro (hypothetical)"
    data["core"]["isa"] = {
        "name": "RVV v1.0",
        "width_bits": 256,
        "vectorizable": ["fp16", "fp32", "fp64", "int8", "int16",
                          "int32", "int64"],
        "vla": True,
        "version": "1.0",
    }
    data["memory"]["efficiency"] = 0.5  # a sane memory controller

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sg2042_pro.json"
        path.write_text(json.dumps(data, indent=2), encoding="utf-8")
        pro = load_cpu(path)
        # Round-trip sanity: save and reload our own rendering too.
        save_cpu(pro, path)
        assert load_cpu(path) == pro

    config = RunConfig(threads=32, precision="fp64", placement="cluster",
                       runs=1, noise_sigma=0.0)
    base_run = run_suite(base, config)
    pro_run = run_suite(pro, config)

    print(f"{pro.name} vs {base.name} (32 threads, FP64):")
    for klass, summary in class_summaries(base_run, pro_run).items():
        print(f"  {klass.value:<12} {summary.mean:+6.2f} "
              f"[{summary.minimum:+.2f} .. {summary.maximum:+.2f}]")
    print("\n(positive = times faster; FP64 vectors + a sane memory "
          "controller buy up to ~2.7x on vectorizable kernels, nothing "
          "on the cache-resident stream class at this thread count)")


if __name__ == "__main__":
    main()
