"""Talk to the fault-tolerant prediction service over HTTP.

Starts a :class:`~repro.serve.PredictionServer` on an ephemeral port in
a background thread (in production you'd run ``sg2042-repro serve``),
then uses nothing but stdlib ``http.client`` to:

* predict one kernel under one configuration,
* fire a burst of concurrent predictions that the server coalesces
  into a single batch engine call,
* read the operational metrics the service publishes, and
* handle a structured error envelope (unknown kernel -> 404 JSON).

Run with: ``PYTHONPATH=src python examples/serve_client.py``
"""

import asyncio
import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.serve import PredictionServer, ServeConfig


def start_background_server():
    """Run a server on its own event loop thread; return (server, loop)."""
    started = threading.Event()
    holder = {}

    def run():
        async def main():
            server = PredictionServer(
                ServeConfig(port=0, batch_window_ms=20.0)
            )
            await server.start()
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            await holder["stop"].wait()
            await server.drain()

        holder["stop"] = None

        async def boot():
            holder["stop"] = asyncio.Event()
            await main()

        asyncio.run(boot())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    started.wait(timeout=30)
    return holder, thread


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        raw = response.read()
        if response.getheader("Content-Type", "").startswith(
            "application/json"
        ):
            return response.status, json.loads(raw)
        return response.status, raw.decode()
    finally:
        conn.close()


def main():
    holder, thread = start_background_server()
    server = holder["server"]
    port = server.port
    print(f"serving on 127.0.0.1:{port}\n")

    # One prediction: TRIAD on 32 threads, cluster placement.
    status, body = request(port, "POST", "/predict", {
        "kernel": "TRIAD", "threads": 32, "placement": "cluster",
        "precision": "fp32",
    })
    print(f"TRIAD @32t: {body['seconds']:.3f}s "
          f"(served from {body['serving_level']}, "
          f"{body['bound']}-bound) [{status}]")

    # A concurrent burst under one configuration: the server coalesces
    # these into a single batch engine call.
    kernels = ["TRIAD", "DAXPY", "GEMM", "DOT", "COPY", "ADD"]
    with ThreadPoolExecutor(max_workers=len(kernels)) as pool:
        results = list(pool.map(
            lambda k: request(port, "POST", "/predict",
                              {"kernel": k, "threads": 8}),
            kernels,
        ))
    print("\ncoalesced burst (8 threads):")
    for kernel, (status, body) in zip(kernels, results):
        print(f"  {kernel:<8} {body['seconds']:.4f}s [{status}]")

    # Structured error envelope: unknown kernel.
    status, body = request(port, "POST", "/predict",
                           {"kernel": "NOT_A_KERNEL"})
    print(f"\nunknown kernel -> HTTP {status}, "
          f"code={body['error']['code']!r}, "
          f"retryable={body['error']['retryable']}")

    # The ops surface.
    status, text = request(port, "GET", "/metrics")
    interesting = [
        line for line in text.splitlines()
        if "serve.batches" in line or "serve.coalesced" in line
        or "serve.latency_p50_ms" in line
    ]
    print("\nmetrics excerpt:")
    for line in interesting:
        print(f"  {line}")

    # Graceful shutdown.
    holder["loop"].call_soon_threadsafe(holder["stop"].set)
    thread.join(timeout=30)
    print("\nserver drained cleanly")


if __name__ == "__main__":
    main()
