#!/usr/bin/env python3
"""Quickstart: predict and verify RAJAPerf on the modelled SG2042.

Runs the 64-kernel suite on the Sophon SG2042 model at one thread and at
the paper's best multithreaded configuration, prints per-class times,
and numerically executes a few kernels to show the suite's second face
(the NumPy implementations are real and tested).

Usage::

    python examples/quickstart.py
"""

from repro import RunConfig, catalog, run_suite
from repro.kernels.registry import get_kernel
from repro.machine.vector import DType
from repro.suite.runner import verify_kernel
from repro.util.units import format_seconds


def main() -> None:
    sg2042 = catalog.sg2042()
    print(sg2042.describe())
    print()
    print(sg2042.topology.lscpu())
    print()

    # --- Predict: one thread vs the paper's best threaded config -------
    single = run_suite(sg2042, RunConfig(threads=1, precision="fp32"))
    threaded = run_suite(
        sg2042,
        RunConfig(threads=32, precision="fp32", placement="cluster"),
    )

    print("predicted class times (FP32):")
    print(f"{'class':<12} {'1 thread':>12} {'32 thr/cluster':>16} "
          f"{'speedup':>8}")
    for klass, t1 in sorted(
        single.class_means().items(), key=lambda kv: kv[0].value
    ):
        tp = threaded.class_means()[klass]
        print(
            f"{klass.value:<12} {format_seconds(t1):>12} "
            f"{format_seconds(tp):>16} {t1 / tp:>8.2f}"
        )

    # --- Verify: actually run a few kernels numerically ----------------
    print("\nnumerical verification (NumPy implementations):")
    for name in ("TRIAD", "GEMM", "FLOYD_WARSHALL", "HALOEXCHANGE"):
        kernel = get_kernel(name)
        checksum = verify_kernel(kernel, 10_000, DType.FP64)
        print(f"  {name:<16} checksum = {checksum:.6g}")

    print("\nNext steps: examples/placement_tuning.py, "
          "examples/compiler_flow.py, examples/future_hardware.py")


if __name__ == "__main__":
    main()
