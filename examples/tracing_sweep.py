#!/usr/bin/env python3
"""Trace a prediction sweep end to end with ``repro.telemetry``.

Runs a small thread x placement grid under a telemetry session, then
shows the three artifacts observability gives you:

1. the rendered summary (span counts, inclusive per-phase time,
   counters and cache gauges),
2. a span tree reconstructed from the recorded trace, and
3. a Chrome trace file (``chrome://tracing`` / Perfetto loadable).

The same data is available from the command line::

    repro trace sweep --trace-out trace.json --metrics-out metrics.txt

Usage::

    python examples/tracing_sweep.py
"""

import tempfile
from pathlib import Path

from repro import telemetry
from repro.kernels.registry import get_kernel
from repro.machine import catalog
from repro.suite.config import Placement, Precision
from repro.suite.sweep import sweep
from repro.telemetry.export import write_trace

WORKLOAD = ["TRIAD", "DAXPY", "JACOBI_2D", "GEMM"]


def print_span_tree(records) -> None:
    """Render the recorded spans as an indented tree."""
    children = {}
    for record in records:
        children.setdefault(record.parent_id, []).append(record)

    def walk(parent_id, depth):
        for record in children.get(parent_id, ()):
            ms = record.duration_ns / 1e6
            attrs = ", ".join(
                f"{k}={v}" for k, v in record.attributes().items()
            )
            suffix = f"  [{attrs}]" if attrs else ""
            print(f"{'  ' * depth}{record.name}  {ms:8.3f} ms{suffix}")
            walk(record.span_id, depth + 1)

    walk(None, 0)


def main() -> None:
    sg2042 = catalog.sg2042()
    kernels = [get_kernel(name) for name in WORKLOAD]

    with telemetry.telemetry_session() as (recorder, _):
        result = sweep(
            sg2042,
            kernels,
            threads=(1, 8, 32),
            placements=(Placement.BLOCK, Placement.CYCLIC),
            precisions=(Precision.FP32,),
        )

    print(result.telemetry.render())

    print("\nspan tree (first sweep of the session, caches cold):")
    print_span_tree(recorder.records())

    out = Path(tempfile.mkdtemp()) / "trace.json"
    write_trace(out, recorder.records(), result.telemetry.metrics_snapshot())
    print(f"\nChrome trace written to {out}")
    print("open chrome://tracing (or https://ui.perfetto.dev) and load it")


if __name__ == "__main__":
    main()
