#!/usr/bin/env python3
"""The Clang-on-C920 compilation flow, end to end.

The C920 implements RVV v0.7.1; Clang emits RVV v1.0 only. This example
walks the paper's full pipeline for a stream triad:

1. generate the RVV v1.0 loop Clang would emit (VLA and VLS flavours),
2. run the RVV-rollback tool to backport it to v0.7.1,
3. show the per-kernel auto-vectorization verdicts of GCC vs Clang that
   produce Figure 3's winners and losers.

Usage::

    python examples/compiler_flow.py
"""

from repro.compiler.model import CLANG_16, VectorFlavor, XUANTIE_GCC_8_4
from repro.compiler.vectorizer import analyze, suite_statistics
from repro.isa.codegen import LoopSpec, count_dynamic_instructions, generate_loop
from repro.isa.encoding import render_assembly
from repro.isa.rollback import rollback
from repro.kernels.registry import all_kernels, get_kernel
from repro.machine.vector import DType, rvv_0_7_1, rvv_1_0


def main() -> None:
    triad = LoopSpec(
        dtype=DType.FP32, num_inputs=2, ops=("vfmacc.vv",), has_store=True
    )

    print("=== 1. Clang's RVV v1.0 VLA loop ===")
    v10 = render_assembly(generate_loop(triad, VectorFlavor.VLA))
    print(v10)

    print("\n=== 2. After RVV-rollback (executable on the C920) ===")
    print(rollback(v10))

    print("\n=== 3. VLA strip-mining overhead ===")
    n = 1_000_000
    for flavor in (VectorFlavor.VLS, VectorFlavor.VLA):
        count = count_dynamic_instructions(triad, flavor, n)
        print(f"  {flavor.value.upper()}: {count:,} dynamic instructions "
              f"for {n:,} elements")

    print("\n=== 4. Auto-vectorization verdicts (Figure 3 kernels) ===")
    for name in ("2MM", "GEMM", "FLOYD_WARSHALL", "HEAT_3D",
                 "JACOBI_1D", "JACOBI_2D"):
        kernel = get_kernel(name)
        gcc = analyze(XUANTIE_GCC_8_4, kernel, rvv_0_7_1())
        clang = analyze(CLANG_16, kernel, rvv_0_7_1(), rollback=True)
        print(f"  {name:<16} GCC: {gcc.reason}")
        print(f"  {'':<16} Clang: {clang.reason}")

    print("\n=== 5. Suite-wide statistics (matches [11]) ===")
    kernels = all_kernels()
    print("  GCC:  ", suite_statistics(XUANTIE_GCC_8_4, kernels,
                                       rvv_0_7_1()))
    print("  Clang:", suite_statistics(CLANG_16, kernels, rvv_1_0(),
                                       rollback=True))


if __name__ == "__main__":
    main()
