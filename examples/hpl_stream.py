#!/usr/bin/env python3
"""The canonical HPC yardsticks — HPL and STREAM — across the study's
machines.

Runs a *real* HPL (blocked LU with partial pivoting, residual-checked)
on this host, then prints the modelled Rmax and sustained STREAM
bandwidth for every CPU in the paper — the two numbers any Top500-style
comparison of the SG2042 starts from.

Usage::

    python examples/hpl_stream.py
"""

from repro.apps.hpl import hpl_measure, predict_hpl
from repro.apps.stream import predict_stream, render_stream_table
from repro.machine import catalog
from repro.openmp.affinity import PlacementPolicy
from repro.util.tables import render_table


def main() -> None:
    print("=== 1. Real HPL on this host (NumPy blocked LU) ===")
    gflops, residual = hpl_measure(512, block=64)
    print(f"  N=512: {gflops:.2f} GFLOP/s, residual {residual:.3f} "
          "(passes < 16)")

    print("\n=== 2. Modelled HPL Rmax per machine (all cores) ===")
    rows = []
    for cpu in catalog.all_cpus().values():
        pred = predict_hpl(cpu)
        rows.append(
            (
                pred.machine,
                pred.threads,
                f"{pred.rpeak_gflops:.0f}",
                f"{pred.rmax_gflops:.0f}",
                f"{pred.efficiency * 100:.0f}%",
            )
        )
    print(
        render_table(
            ("machine", "cores", "Rpeak GF/s", "Rmax GF/s",
             "efficiency"),
            rows,
        )
    )
    print(
        "  note the SG2042's efficiency collapse: HPL is FP64 GEMM and "
        "the C920 has no FP64 vectors."
    )

    print("\n=== 3. Modelled STREAM (cache-defeating array sizes) ===")
    preds = [
        predict_stream(catalog.sg2042(), threads=32,
                       placement=PlacementPolicy.CYCLIC),
        predict_stream(catalog.visionfive_v2(), threads=4,
                       placement=PlacementPolicy.BLOCK),
        predict_stream(catalog.amd_rome(), threads=64,
                       placement=PlacementPolicy.CYCLIC),
        predict_stream(catalog.intel_broadwell(), threads=18,
                       placement=PlacementPolicy.BLOCK),
        predict_stream(catalog.intel_icelake(), threads=28,
                       placement=PlacementPolicy.BLOCK),
        predict_stream(catalog.intel_sandybridge(), threads=4,
                       placement=PlacementPolicy.BLOCK),
    ]
    print(render_stream_table(preds))


if __name__ == "__main__":
    main()
