#!/usr/bin/env python3
"""What-if study: the hardware improvements the paper's conclusion asks
for.

Section 4 wishes the next-generation RISC-V CPU had: RVV v1.0 (mainline
compiler support), FP64 vectorization, wider vector registers, and more
memory controllers per NUMA region. The machine model makes these
one-line edits, so we can quantify each ask — an ablation the paper
could not run.

Usage::

    python examples/future_hardware.py
"""

from dataclasses import replace

from repro import RunConfig, catalog, run_suite
from repro.machine.vector import rvv_1_0
from repro.suite.report import suite_average_relative
from repro.util.stats import from_relative


def variant(name, cpu):
    return name, cpu


def build_variants():
    base = catalog.sg2042()

    # FP64 vectorization + RVV 1.0 (same 128-bit width).
    fp64_vec = replace(
        base,
        name="SG2042 + RVV1.0/FP64 vectors",
        core=replace(base.core, isa=rvv_1_0(width_bits=128)),
    )

    # 256-bit vectors on top of that.
    wide = replace(
        base,
        name="SG2042 + 256-bit RVV1.0",
        core=replace(base.core, isa=rvv_1_0(width_bits=256)),
    )

    # Double the memory controllers per NUMA region (8 total).
    controllers = replace(
        base,
        name="SG2042 + 8 controllers",
        memory=replace(base.memory, controllers=8),
    )

    # All of it together.
    dream = replace(
        base,
        name="SG2042 next-gen (all of the above)",
        core=replace(base.core, isa=rvv_1_0(width_bits=256)),
        memory=replace(base.memory, controllers=8),
    )

    return [
        variant("baseline SG2042", base),
        variant("+ FP64 vectors (RVV 1.0)", fp64_vec),
        variant("+ 256-bit vectors", wide),
        variant("+ 2x memory controllers", controllers),
        variant("next-gen (all)", dream),
    ]


def main() -> None:
    variants = build_variants()
    baseline_cpu = variants[0][1]
    rome = catalog.amd_rome()

    for precision in ("fp64", "fp32"):
        config = RunConfig(
            threads=32, precision=precision, placement="cluster",
            runs=1, noise_sigma=0.0,
            # Future parts run RVV 1.0: use Clang directly, no rollback.
        )
        base_run = run_suite(baseline_cpu, config)
        rome_run = run_suite(rome, RunConfig(
            threads=64, precision=precision, runs=1, noise_sigma=0.0))
        rome_gap = from_relative(
            suite_average_relative(base_run, rome_run)
        )
        print(f"=== {precision.upper()} (32 threads, cluster placement; "
              f"AMD Rome currently {rome_gap:.1f}x ahead) ===")
        for name, cpu in variants:
            run = run_suite(cpu, config)
            gain = from_relative(suite_average_relative(base_run, run))
            gap = from_relative(suite_average_relative(run, rome_run))
            print(f"  {name:<28} {gain:5.2f}x vs baseline, "
                  f"Rome ahead by {gap:5.2f}x")
        print()


if __name__ == "__main__":
    main()
