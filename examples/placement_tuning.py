#!/usr/bin/env python3
"""Thread-placement tuning on the SG2042 — the paper's Section 3.2
workflow as a reusable recipe.

Given a workload (here: the stencil + bandwidth kernels an ocean-model
developer would care about), sweep thread counts and the three placement
policies, and report the best configuration per kernel — reproducing the
paper's practical advice: cycle threads round the NUMA regions *and* the
four-core L2 clusters, and consider stopping at 32 threads.

Usage::

    python examples/placement_tuning.py
"""

from repro import Placement, RunConfig, catalog, run_suite
from repro.kernels.registry import get_kernel
from repro.util.tables import render_table
from repro.util.units import format_seconds

#: An ocean-model-ish workload: stencils, bandwidth, halo packing.
WORKLOAD = ["JACOBI_2D", "FDTD_2D", "TRIAD", "HALOEXCHANGE", "DOT"]

THREADS = (8, 16, 32, 64)


def main() -> None:
    sg2042 = catalog.sg2042()
    kernels = [get_kernel(name) for name in WORKLOAD]

    results = {}
    for threads in THREADS:
        for placement in Placement:
            config = RunConfig(
                threads=threads,
                precision="fp32",
                placement=placement,
                runs=1,
                noise_sigma=0.0,
            )
            results[(threads, placement)] = run_suite(
                sg2042, config, kernels=kernels
            )

    # Per-kernel best configuration.
    rows = []
    for name in WORKLOAD:
        best_key = min(results, key=lambda k: results[k].time(name))
        best = results[best_key]
        single = run_suite(
            sg2042,
            RunConfig(threads=1, precision="fp32", runs=1,
                      noise_sigma=0.0),
            kernels=[get_kernel(name)],
        )
        rows.append(
            (
                name,
                best_key[0],
                best_key[1].value,
                format_seconds(best.time(name)),
                f"{single.time(name) / best.time(name):.1f}x",
            )
        )
    print(
        render_table(
            ("kernel", "threads", "placement", "time", "vs 1 thread"),
            rows,
            title="Best configuration per kernel on the SG2042",
        )
    )

    # Whole-workload recommendation.
    totals = {
        key: sum(res.time(n) for n in WORKLOAD)
        for key, res in results.items()
    }
    (threads, placement), _ = min(totals.items(), key=lambda kv: kv[1])
    print(
        f"\nrecommendation: OMP_NUM_THREADS={threads}, "
        f"{placement.value} placement, OMP_PROC_BIND=true"
    )
    print(
        "(the paper's finding: cluster-aware cyclic placement across "
        "NUMA regions, often at 32 rather than 64 threads)"
    )


if __name__ == "__main__":
    main()
