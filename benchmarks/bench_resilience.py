"""Micro-benchmark: the resilient runner's fault-free overhead.

The hardened execution path (per-kernel isolation, retry plumbing, chaos
hook checks, pre-run validation) must cost essentially nothing when no
faults occur — the paper-reproduction campaigns run fault-free almost
always, and the historical numbers must stay seed-identical *and* fast.

This file needs no pytest-benchmark: it interleaves timed runs of the
legacy-equivalent ABORT path and the fully armed RETRY path and compares
their minima (noise only ever adds time, so the minimum is the honest
estimate of each path's cost). Target: < 5% overhead; the assertion uses
a looser bound so a noisy CI box cannot flake the suite.

Run directly (``python benchmarks/bench_resilience.py``) or via pytest.
"""

from __future__ import annotations

import time

from repro.machine import catalog
from repro.resilience.retry import FailurePolicy, RetrySpec
from repro.suite.config import RunConfig
from repro.suite.runner import run_suite

REPEATS = 9
CONFIG = RunConfig(threads=8, precision="fp32")


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure_overhead() -> tuple[float, float, float]:
    """(baseline_s, resilient_s, overhead_fraction) on the happy path."""
    cpu = catalog.sg2042()

    def baseline():
        run_suite(cpu, CONFIG, policy=FailurePolicy.ABORT)

    def resilient():
        run_suite(
            cpu, CONFIG,
            policy=FailurePolicy.RETRY,
            retry=RetrySpec(max_retries=3),
        )

    baseline(), resilient()  # warm caches (registry, compiler analyses)
    base_samples, hard_samples = [], []
    for _ in range(REPEATS):  # interleaved: noise hits both paths alike
        base_samples.append(_timed(baseline))
        hard_samples.append(_timed(resilient))
    base, hard = min(base_samples), min(hard_samples)
    return base, hard, hard / base - 1.0


def test_fault_free_overhead_is_negligible():
    base, hard, overhead = measure_overhead()
    print(
        f"\nfault-free suite run (64 kernels, 8 threads, "
        f"best of {REPEATS} interleaved):\n"
        f"  abort policy (legacy path): {base * 1e3:8.2f} ms\n"
        f"  retry policy (armed path):  {hard * 1e3:8.2f} ms\n"
        f"  overhead:                   {overhead * 100:+8.2f} %  "
        f"(target < 5%)"
    )
    # Target is <5%; assert a looser bound so scheduler jitter on a
    # loaded CI machine cannot flake the suite.
    assert overhead < 0.25


if __name__ == "__main__":
    test_fault_free_overhead_is_negligible()
