"""Benchmark: regenerate the paper's table1 via the experiment pipeline."""


def test_table1(render):
    render("table1")
