"""Benchmarks: the model-mechanism ablations (DESIGN.md design-choice
checks). Each regenerates one ablation table."""

import pytest

from repro.experiments.ablations import ABLATIONS


@pytest.mark.parametrize("name", sorted(ABLATIONS))
def test_ablation(benchmark, name):
    result = benchmark(ABLATIONS[name], fast=True)
    print()
    print(result.render())
    assert result.rows
