"""Benchmark: regenerate the paper's figure4 via the experiment pipeline."""


def test_figure4(render):
    render("figure4")
