"""Benchmark: recompute every Section 4 conclusion (paper vs model)."""


def test_conclusions(render):
    render("conclusions")
