"""Benchmark: regenerate the paper's figure6 via the experiment pipeline."""


def test_figure6(render):
    render("figure6")
