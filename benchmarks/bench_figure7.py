"""Benchmark: regenerate the paper's figure7 via the experiment pipeline."""


def test_figure7(render):
    render("figure7")
