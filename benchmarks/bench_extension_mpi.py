"""Benchmark: the further-work distributed-memory scaling study, plus a
real SPMD execution of the distributed Jacobi proto-app."""

import numpy as np

from repro.cluster.apps import jacobi2d_distributed
from repro.experiments.extension_mpi import run


def test_extension_mpi(render):
    render("extension_mpi")


def test_spmd_jacobi_execution(benchmark):
    """Time an actual 4-rank message-passing Jacobi solve."""
    result = benchmark(jacobi2d_distributed, 4, 64, 64, 5)
    assert np.isfinite(result).all()
