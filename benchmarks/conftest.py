"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one table or figure from the paper via
``pytest-benchmark`` and prints the reproduced rows once, so
``pytest benchmarks/ --benchmark-only`` both times the pipeline and
emits the paper's tables/figures for comparison against EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def run_and_render(benchmark, exp_id: str, fast: bool = True):
    """Benchmark one experiment and print its rendering once."""
    from repro.experiments import ALL_EXPERIMENTS

    result = benchmark(ALL_EXPERIMENTS[exp_id], fast=fast)
    print()
    print(result.render())
    assert result.rows
    return result


@pytest.fixture
def render(benchmark):
    def _run(exp_id: str, fast: bool = True):
        return run_and_render(benchmark, exp_id, fast)

    return _run
