"""Benchmark: regenerate the paper's figure3 via the experiment pipeline."""


def test_figure3(render):
    render("figure3")
