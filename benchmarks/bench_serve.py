"""Load benchmark + chaos smoke for the prediction service.

Two phases against an in-process :class:`PredictionServer` on an
ephemeral port:

* **perf** — a seeded zipf-weighted workload (hot kernels dominate, the
  shape of real serving traffic) from concurrent keep-alive client
  connections for a fixed duration. Reports throughput, client-side
  p50/p99 latency and the prediction-memo hit rate into
  ``BENCH_serve.json``.
* **hot** — a hot-key zipf workload (a handful of repeating requests,
  the steady state of a dashboard or CI fleet hammering the same
  queries) after a warm-up pass, so nearly every request is a response
  cache hit. Reports ``hot_p50_ms``, ``hot_rps`` and
  ``respcache_hit_rate`` and asserts the hot-path floors: cached p50
  at or under :data:`HOT_P50_FLOOR_MS` and throughput at least
  :data:`HOT_RPS_FLOOR` (5x the uncached-engine baseline).
* **chaos** — the same mixed workload with a seeded :class:`FaultPlan`
  mounted inside the server (every TRIAD run attempt fails) and a low
  breaker threshold. Asserts the robustness contract end-to-end: zero
  unhandled server errors, every non-200 response is a structured
  envelope with a known code, the circuit breaker actually cycled
  (with the response cache enabled — faults are never served from it),
  and the drain completes cleanly.

Run directly (``python benchmarks/bench_serve.py [--smoke]``) or via
pytest. ``--smoke`` shrinks the durations for CI.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path

from repro.resilience.faults import FaultPlan, FaultRule
from repro.serve import PredictionServer, ServeConfig

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: The serving working set: a hot head and a long tail.
KERNELS = (
    "TRIAD", "DAXPY", "GEMM", "DOT", "COPY", "ADD", "MUL", "SCAN",
    "JACOBI_2D", "FDTD_2D", "ATAX", "MVT", "ENERGY", "PRESSURE",
    "FIR", "SORT",
)

#: Zipf exponent for kernel popularity (1/rank^s).
ZIPF_S = 1.1

#: Request configurations cycled by the workload (all distinct engine
#: groups, so coalescing and caching both get exercised).
THREAD_CHOICES = (1, 8, 32, 64)

#: The hot phase's working set: few enough distinct keys that the
#: response cache absorbs essentially all of the steady-state traffic.
HOT_KERNELS = KERNELS[:4]

#: Cached-hit latency floor: pre-serialized bytes must come back in
#: at most this client-observed p50.
HOT_P50_FLOOR_MS = 1.0

#: Hot throughput floor: at least 5x the measured uncached-engine
#: baseline of ~817 req/s (see docs/PERF.md).
HOT_RPS_FLOOR = 4085.0

ERROR_CODES = {
    "bad_request", "not_found", "shed", "engine_fault",
    "unavailable", "deadline_exceeded",
}


def zipf_weights(n: int, s: float = ZIPF_S) -> list[float]:
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


class Workload:
    """Seeded zipf request stream: (kernel, threads) pairs."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)
        self._weights = zipf_weights(len(KERNELS))

    def next_request(self) -> dict:
        (kernel,) = self._rng.choices(KERNELS, weights=self._weights)
        return {
            "kernel": kernel,
            "threads": self._rng.choice(THREAD_CHOICES),
            "deadline_ms": 10_000,
        }


class HotWorkload:
    """Hot-key stream: zipf over a small fixed set of repeat requests."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)
        self._weights = zipf_weights(len(HOT_KERNELS))

    @staticmethod
    def working_set() -> list[dict]:
        return [
            {"kernel": kernel, "threads": 8, "deadline_ms": 10_000}
            for kernel in HOT_KERNELS
        ]

    def next_request(self) -> dict:
        (kernel,) = self._rng.choices(
            HOT_KERNELS, weights=self._weights
        )
        return {"kernel": kernel, "threads": 8, "deadline_ms": 10_000}


async def _client(port, workload, stop_at, latencies, statuses, bodies):
    """One keep-alive connection issuing requests until the deadline."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        while time.monotonic() < stop_at:
            body = json.dumps(workload.next_request()).encode()
            head = (
                f"POST /predict HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: keep-alive\r\n\r\n"
            ).encode()
            started = time.monotonic()
            writer.write(head + body)
            await writer.drain()
            status_line = await reader.readline()
            if not status_line:
                return
            status = int(status_line.split()[1])
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode().partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", 0))
            payload = await reader.readexactly(length) if length else b""
            latencies.append(time.monotonic() - started)
            statuses.append(status)
            if status != 200:
                bodies.append(json.loads(payload))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _warm_up(port, requests):
    """Issue each request once so the timed window measures the steady
    state, not the cold misses."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for request in requests:
            body = json.dumps(request).encode()
            writer.write((
                f"POST /predict HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: keep-alive\r\n\r\n"
            ).encode() + body)
            await writer.drain()
            status_line = await reader.readline()
            if not status_line:
                return
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode().partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", 0))
            if length:
                await reader.readexactly(length)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_phase(config, *, clients, duration_s, seed,
                    workload_cls=Workload, warmup=None):
    """Drive one server under load; return (stats, server summary)."""
    server = PredictionServer(config)
    await server.start()
    if warmup:
        await _warm_up(server.port, warmup)
    latencies: list[float] = []
    statuses: list[int] = []
    error_bodies: list[dict] = []
    stop_at = time.monotonic() + duration_s
    started = time.monotonic()
    await asyncio.gather(*[
        _client(server.port, workload_cls(seed + index), stop_at,
                latencies, statuses, error_bodies)
        for index in range(clients)
    ])
    elapsed = time.monotonic() - started
    await server.drain()
    summary = server.final_summary
    ok = sum(1 for s in statuses if s == 200)
    ordered = sorted(latencies) or [0.0]

    def pct(q):
        rank = max(1, -(-len(ordered) * q // 100))
        return ordered[int(rank) - 1]

    hit_rate = summary.gauges.get("serve.cache_hit_rate")
    respcache_rate = summary.gauges.get("serve.respcache.hit_rate")
    stats = {
        "requests": len(statuses),
        "ok": ok,
        "errors": len(statuses) - ok,
        "rps": round(len(statuses) / elapsed, 2) if elapsed else 0.0,
        "p50_ms": round(pct(50) * 1e3, 3),
        "p99_ms": round(pct(99) * 1e3, 3),
        "cache_hit_rate": hit_rate,
        "respcache_hit_rate": respcache_rate,
        "singleflight_merged": summary.counters.get(
            "serve.singleflight.merged", 0
        ),
        "unhandled_errors": summary.counters.get(
            "serve.unhandled_errors", 0
        ),
        "engine_faults": summary.counters.get("serve.engine_faults", 0),
        "shed": summary.counters.get("serve.shed", 0),
        "coalesced": summary.counters.get("serve.coalesced", 0),
        "batches": summary.counters.get("serve.batches", 0),
        "breaker_transitions": summary.counters.get(
            "serve.breaker_transitions", 0
        ),
    }
    return stats, error_bodies


def chaos_plan() -> FaultPlan:
    """Every run attempt of the two hottest kernels fails — enough
    sustained pressure to cycle the breaker under load."""
    return FaultPlan(seed=1302, rules=(
        FaultRule(site="run", probability=1.0,
                  kernels=("TRIAD", "DAXPY")),
    ))


def perf_phase(*, clients, duration_s):
    config = ServeConfig(
        port=0, max_inflight=max(clients * 2, 8),
        drain_timeout_s=5.0,
    )
    stats, _ = asyncio.run(
        run_phase(config, clients=clients, duration_s=duration_s,
                  seed=2042)
    )
    return stats


def hot_phase(*, clients, duration_s):
    """Hot-key steady state: warmed response cache, default config.

    Client count is capped at 4: the benchmark clients share the
    server's event loop, so beyond a few keep-alive connections extra
    clients only add client-side queueing to the observed p50 without
    raising throughput.
    """
    clients = min(clients, 4)
    config = ServeConfig(
        port=0, max_inflight=max(clients * 2, 8),
        drain_timeout_s=5.0,
    )
    stats, _ = asyncio.run(
        run_phase(config, clients=clients, duration_s=duration_s,
                  seed=4242, workload_cls=HotWorkload,
                  warmup=HotWorkload.working_set())
    )
    return {
        "hot_p50_ms": stats["p50_ms"],
        "hot_p99_ms": stats["p99_ms"],
        "hot_rps": stats["rps"],
        "respcache_hit_rate": stats["respcache_hit_rate"],
        "requests": stats["requests"],
        "ok": stats["ok"],
        "errors": stats["errors"],
        "unhandled_errors": stats["unhandled_errors"],
    }


def check_hot_floors(stats):
    """The hot-path acceptance assertions (also run by CI smoke)."""
    failures = []
    if stats["errors"] or stats["unhandled_errors"]:
        failures.append(
            f"hot phase saw {stats['errors']} errors / "
            f"{stats['unhandled_errors']} unhandled"
        )
    if stats["hot_p50_ms"] > HOT_P50_FLOOR_MS:
        failures.append(
            f"hot p50 {stats['hot_p50_ms']}ms over the "
            f"{HOT_P50_FLOOR_MS}ms floor"
        )
    if stats["hot_rps"] < HOT_RPS_FLOOR:
        failures.append(
            f"hot rps {stats['hot_rps']} under the "
            f"{HOT_RPS_FLOOR} floor"
        )
    rate = stats["respcache_hit_rate"]
    if rate is None or rate < 0.9:
        failures.append(
            f"respcache hit rate {rate!r} under 0.9 on a hot-key "
            "workload"
        )
    return failures


def chaos_phase(*, clients, duration_s):
    config = ServeConfig(
        port=0, max_inflight=max(clients * 2, 8),
        retries=0, breaker_threshold=3, breaker_cooldown_s=0.05,
        drain_timeout_s=5.0, fault_plan=chaos_plan(),
    )
    stats, error_bodies = asyncio.run(
        run_phase(config, clients=clients, duration_s=duration_s,
                  seed=777)
    )
    return stats, error_bodies


def check_chaos_contract(stats, error_bodies):
    """The robustness acceptance assertions (also run by CI smoke)."""
    failures = []
    if stats["unhandled_errors"] != 0:
        failures.append(
            f"unhandled server errors: {stats['unhandled_errors']}"
        )
    for body in error_bodies:
        error = body.get("error") if isinstance(body, dict) else None
        if not isinstance(error, dict):
            failures.append(f"non-envelope error body: {body!r:.120}")
            break
        if error.get("code") not in ERROR_CODES:
            failures.append(f"unknown error code: {error.get('code')!r}")
            break
        if "Traceback" in str(error):
            failures.append("traceback leaked into an envelope")
            break
    if stats["engine_faults"] == 0:
        failures.append("chaos plan injected no engine faults")
    if stats["breaker_transitions"] == 0:
        failures.append("breaker never transitioned under chaos")
    if stats["ok"] == 0:
        failures.append("no request succeeded under chaos")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: reduced duration, same assertions",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--duration", type=float, default=None,
                        metavar="S", help="seconds per phase")
    args = parser.parse_args(argv)
    duration = args.duration or (2.0 if args.smoke else 8.0)

    print(f"perf phase: {args.clients} clients, {duration:.0f}s ...",
          flush=True)
    perf = perf_phase(clients=args.clients, duration_s=duration)
    print(json.dumps(perf, indent=2))

    print(f"hot phase: {args.clients} clients, {duration:.0f}s ...",
          flush=True)
    hot = hot_phase(clients=args.clients, duration_s=duration)
    print(json.dumps(hot, indent=2))

    print(f"chaos phase: {args.clients} clients, {duration:.0f}s ...",
          flush=True)
    chaos_stats, error_bodies = chaos_phase(
        clients=args.clients, duration_s=duration
    )
    print(json.dumps(chaos_stats, indent=2))

    failures = check_chaos_contract(chaos_stats, error_bodies)
    failures.extend(check_hot_floors(hot))
    if perf["unhandled_errors"]:
        failures.append(
            f"unhandled errors in the perf phase: "
            f"{perf['unhandled_errors']}"
        )

    result = {
        "benchmark": "serve",
        "mode": "smoke" if args.smoke else "full",
        "clients": args.clients,
        "duration_s": duration,
        "perf": perf,
        "hot": hot,
        "chaos": chaos_stats,
        "contract_failures": failures,
    }
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve robustness contract + hot-path floors: OK")
    return 0


# -- pytest entry points ---------------------------------------------------


def test_serve_bench_smoke():
    assert main(["--smoke", "--clients", "4"]) == 0


if __name__ == "__main__":
    sys.exit(main())
