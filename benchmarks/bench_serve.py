"""Load benchmark + chaos smoke for the prediction service.

Two phases against an in-process :class:`PredictionServer` on an
ephemeral port:

* **perf** — a seeded zipf-weighted workload (hot kernels dominate, the
  shape of real serving traffic) from concurrent keep-alive client
  connections for a fixed duration. Reports throughput, client-side
  p50/p99 latency and the prediction-memo hit rate into
  ``BENCH_serve.json``.
* **chaos** — the same workload with a seeded :class:`FaultPlan`
  mounted inside the server (every TRIAD run attempt fails) and a low
  breaker threshold. Asserts the robustness contract end-to-end: zero
  unhandled server errors, every non-200 response is a structured
  envelope with a known code, the circuit breaker actually cycled, and
  the drain completes cleanly.

Run directly (``python benchmarks/bench_serve.py [--smoke]``) or via
pytest. ``--smoke`` shrinks the durations for CI.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path

from repro.resilience.faults import FaultPlan, FaultRule
from repro.serve import PredictionServer, ServeConfig

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: The serving working set: a hot head and a long tail.
KERNELS = (
    "TRIAD", "DAXPY", "GEMM", "DOT", "COPY", "ADD", "MUL", "SCAN",
    "JACOBI_2D", "FDTD_2D", "ATAX", "MVT", "ENERGY", "PRESSURE",
    "FIR", "SORT",
)

#: Zipf exponent for kernel popularity (1/rank^s).
ZIPF_S = 1.1

#: Request configurations cycled by the workload (all distinct engine
#: groups, so coalescing and caching both get exercised).
THREAD_CHOICES = (1, 8, 32, 64)

ERROR_CODES = {
    "bad_request", "not_found", "shed", "engine_fault",
    "unavailable", "deadline_exceeded",
}


def zipf_weights(n: int, s: float = ZIPF_S) -> list[float]:
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


class Workload:
    """Seeded zipf request stream: (kernel, threads) pairs."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)
        self._weights = zipf_weights(len(KERNELS))

    def next_request(self) -> dict:
        (kernel,) = self._rng.choices(KERNELS, weights=self._weights)
        return {
            "kernel": kernel,
            "threads": self._rng.choice(THREAD_CHOICES),
            "deadline_ms": 10_000,
        }


async def _client(port, workload, stop_at, latencies, statuses, bodies):
    """One keep-alive connection issuing requests until the deadline."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        while time.monotonic() < stop_at:
            body = json.dumps(workload.next_request()).encode()
            head = (
                f"POST /predict HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: keep-alive\r\n\r\n"
            ).encode()
            started = time.monotonic()
            writer.write(head + body)
            await writer.drain()
            status_line = await reader.readline()
            if not status_line:
                return
            status = int(status_line.split()[1])
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode().partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", 0))
            payload = await reader.readexactly(length) if length else b""
            latencies.append(time.monotonic() - started)
            statuses.append(status)
            if status != 200:
                bodies.append(json.loads(payload))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_phase(config, *, clients, duration_s, seed):
    """Drive one server under load; return (stats, server summary)."""
    server = PredictionServer(config)
    await server.start()
    latencies: list[float] = []
    statuses: list[int] = []
    error_bodies: list[dict] = []
    stop_at = time.monotonic() + duration_s
    started = time.monotonic()
    await asyncio.gather(*[
        _client(server.port, Workload(seed + index), stop_at,
                latencies, statuses, error_bodies)
        for index in range(clients)
    ])
    elapsed = time.monotonic() - started
    await server.drain()
    summary = server.final_summary
    ok = sum(1 for s in statuses if s == 200)
    ordered = sorted(latencies) or [0.0]

    def pct(q):
        rank = max(1, -(-len(ordered) * q // 100))
        return ordered[int(rank) - 1]

    hit_rate = summary.gauges.get("serve.cache_hit_rate")
    stats = {
        "requests": len(statuses),
        "ok": ok,
        "errors": len(statuses) - ok,
        "rps": round(len(statuses) / elapsed, 2) if elapsed else 0.0,
        "p50_ms": round(pct(50) * 1e3, 3),
        "p99_ms": round(pct(99) * 1e3, 3),
        "cache_hit_rate": hit_rate,
        "unhandled_errors": summary.counters.get(
            "serve.unhandled_errors", 0
        ),
        "engine_faults": summary.counters.get("serve.engine_faults", 0),
        "shed": summary.counters.get("serve.shed", 0),
        "coalesced": summary.counters.get("serve.coalesced", 0),
        "batches": summary.counters.get("serve.batches", 0),
        "breaker_transitions": summary.counters.get(
            "serve.breaker_transitions", 0
        ),
    }
    return stats, error_bodies


def chaos_plan() -> FaultPlan:
    """Every run attempt of the two hottest kernels fails — enough
    sustained pressure to cycle the breaker under load."""
    return FaultPlan(seed=1302, rules=(
        FaultRule(site="run", probability=1.0,
                  kernels=("TRIAD", "DAXPY")),
    ))


def perf_phase(*, clients, duration_s):
    config = ServeConfig(
        port=0, max_inflight=max(clients * 2, 8),
        drain_timeout_s=5.0,
    )
    stats, _ = asyncio.run(
        run_phase(config, clients=clients, duration_s=duration_s,
                  seed=2042)
    )
    return stats


def chaos_phase(*, clients, duration_s):
    config = ServeConfig(
        port=0, max_inflight=max(clients * 2, 8),
        retries=0, breaker_threshold=3, breaker_cooldown_s=0.05,
        drain_timeout_s=5.0, fault_plan=chaos_plan(),
    )
    stats, error_bodies = asyncio.run(
        run_phase(config, clients=clients, duration_s=duration_s,
                  seed=777)
    )
    return stats, error_bodies


def check_chaos_contract(stats, error_bodies):
    """The robustness acceptance assertions (also run by CI smoke)."""
    failures = []
    if stats["unhandled_errors"] != 0:
        failures.append(
            f"unhandled server errors: {stats['unhandled_errors']}"
        )
    for body in error_bodies:
        error = body.get("error") if isinstance(body, dict) else None
        if not isinstance(error, dict):
            failures.append(f"non-envelope error body: {body!r:.120}")
            break
        if error.get("code") not in ERROR_CODES:
            failures.append(f"unknown error code: {error.get('code')!r}")
            break
        if "Traceback" in str(error):
            failures.append("traceback leaked into an envelope")
            break
    if stats["engine_faults"] == 0:
        failures.append("chaos plan injected no engine faults")
    if stats["breaker_transitions"] == 0:
        failures.append("breaker never transitioned under chaos")
    if stats["ok"] == 0:
        failures.append("no request succeeded under chaos")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: reduced duration, same assertions",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--duration", type=float, default=None,
                        metavar="S", help="seconds per phase")
    args = parser.parse_args(argv)
    duration = args.duration or (2.0 if args.smoke else 8.0)

    print(f"perf phase: {args.clients} clients, {duration:.0f}s ...",
          flush=True)
    perf = perf_phase(clients=args.clients, duration_s=duration)
    print(json.dumps(perf, indent=2))

    print(f"chaos phase: {args.clients} clients, {duration:.0f}s ...",
          flush=True)
    chaos_stats, error_bodies = chaos_phase(
        clients=args.clients, duration_s=duration
    )
    print(json.dumps(chaos_stats, indent=2))

    failures = check_chaos_contract(chaos_stats, error_bodies)
    if perf["unhandled_errors"]:
        failures.append(
            f"unhandled errors in the perf phase: "
            f"{perf['unhandled_errors']}"
        )

    result = {
        "benchmark": "serve",
        "mode": "smoke" if args.smoke else "full",
        "clients": args.clients,
        "duration_s": duration,
        "perf": perf,
        "chaos": chaos_stats,
        "contract_failures": failures,
    }
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve robustness contract: OK")
    return 0


# -- pytest entry points ---------------------------------------------------


def test_serve_bench_smoke():
    assert main(["--smoke", "--clients", "4"]) == 0


if __name__ == "__main__":
    sys.exit(main())
