"""Cross-process benchmark: the persistent store's second-process win.

``bench_sweep.py`` measures the store's warm tiers *in-process*; this
benchmark proves the same story across real process boundaries — the
scenario the store exists for. Four subprocesses run against one
artifact store directory:

1. ``repro warm --store DIR`` — persist the compile catalog + SoA;
2. ``repro sweep --store DIR`` — the priming sweep: computes the grid
   cold-ish (compiles restored from disk), persists every prediction
   page and the whole-sweep artifact;
3. ``repro sweep --store DIR`` again — the *second process*: fresh
   interpreter, fresh caches, warmed store. Must restore the whole
   sweep from one artifact read (``restored: true`` in its stats),
   recompile nothing and re-predict nothing;
4. ``repro sweep --no-cache --engine scalar`` — the uncached scalar
   reference the speedup is measured against.

The CSV output of the warm run (3) and the uncached reference (4) must
be identical line for line, and the in-process sweep seconds (reported
via ``--stats-out``, which excludes interpreter/NumPy start-up) must
clear ``warm_disk_speedup >= FLOOR``. Results land in
``BENCH_store.json``.

Run directly (``python benchmarks/bench_store.py [--smoke]``) or via
pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUTPUT = REPO / "BENCH_store.json"

#: Speedup floor of the second-process sweep over the uncached scalar
#: reference (in-process seconds, so interpreter start-up is excluded).
#: The in-process bench clears >= 8x; the cross-process floor is looser
#: because the subprocess grids run nearer the fixed-cost regime.
FULL_FLOOR = 4.0
SMOKE_FLOOR = 2.0

_FULL_GRID = ("--threads", "1,4,8,16,32,64", "--placements",
              "block,cyclic", "--precisions", "fp32,fp64")
_SMOKE_GRID = ("--threads", "1,8,64", "--placements", "block,cyclic",
               "--precisions", "fp32,fp64")


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=str(REPO),
    )
    if proc.returncode != 0:
        raise AssertionError(
            f"repro {' '.join(args)} exited {proc.returncode}:\n"
            f"{proc.stderr}"
        )
    return proc


def run_benchmark(smoke: bool = False) -> dict:
    grid = _SMOKE_GRID if smoke else _FULL_GRID
    floor = SMOKE_FLOOR if smoke else FULL_FLOOR
    sweep_args = ("sweep", "--cpu", "sg2042", "--kernels", "all",
                  *grid, "--csv")
    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        store_dir = str(Path(tmp) / "store")
        stats = {name: str(Path(tmp) / f"{name}.json")
                 for name in ("prime", "warm", "cold")}

        t0 = time.perf_counter()
        warm_out = _run_cli("warm", "--store", store_dir,
                            "--cpu", "sg2042")
        warm_cmd_seconds = time.perf_counter() - t0

        prime = _run_cli(*sweep_args, "--store", store_dir,
                         "--stats-out", stats["prime"])
        second = _run_cli(*sweep_args, "--store", store_dir,
                          "--stats-out", stats["warm"])
        cold = _run_cli(*sweep_args, "--no-cache", "--engine", "scalar",
                        "--stats-out", stats["cold"])

        prime_stats = json.loads(Path(stats["prime"]).read_text())
        second_stats = json.loads(Path(stats["warm"]).read_text())
        cold_stats = json.loads(Path(stats["cold"]).read_text())

    # The second process must have restored the whole sweep from disk:
    # nothing compiled, nothing predicted, one sweep-artifact hit.
    assert not prime_stats["restored"], (
        "the priming sweep found a sweep artifact in a fresh store"
    )
    assert second_stats["restored"], (
        "the second process recomputed a grid the store already holds"
    )
    cache = second_stats["cache_stats"]
    assert cache["compile_misses"] == 0, (
        f"second process recompiled {cache['compile_misses']} kernels"
    )
    assert cache["predict_misses"] == 0, (
        f"second process re-predicted {cache['predict_misses']} points"
    )
    assert second_stats["store"]["sweep"]["hits"] >= 1
    assert "StoreWarning" not in second.stderr, second.stderr

    # Same answer, across processes and engines: the warm run's CSV
    # must match the uncached scalar reference byte for byte.
    assert second.stdout == cold.stdout, (
        "store-restored sweep CSV diverged from the uncached reference"
    )
    assert second_stats["points"] == cold_stats["points"]
    assert second_stats["failures"] == 0 == cold_stats["failures"]

    warm_disk_speedup = cold_stats["seconds"] / second_stats["seconds"]
    return {
        "benchmark": "store_cross_process",
        "mode": "smoke" if smoke else "full",
        "points": second_stats["points"],
        "warm_cmd_seconds": round(warm_cmd_seconds, 3),
        "warm_cmd_report": warm_out.stdout.splitlines()[0],
        "prime_seconds": round(prime_stats["seconds"], 6),
        "second_process_seconds": round(second_stats["seconds"], 6),
        "cold_scalar_seconds": round(cold_stats["seconds"], 6),
        "warm_disk_speedup": round(warm_disk_speedup, 2),
        "warm_disk_speedup_floor": floor,
        "second_process_restored": second_stats["restored"],
        "store_stats": second_stats["store"],
        "csv_identical": True,
    }


def _report(record: dict) -> str:
    return (
        f"cross-process store benchmark ({record['mode']}, "
        f"{record['points']} points):\n"
        f"  warm command:        {record['warm_cmd_seconds']:7.2f} s  "
        f"({record['warm_cmd_report']})\n"
        f"  priming sweep:       "
        f"{record['prime_seconds'] * 1e3:7.1f} ms (in-process)\n"
        f"  second process:      "
        f"{record['second_process_seconds'] * 1e3:7.1f} ms "
        f"(restored: {record['second_process_restored']})\n"
        f"  cold scalar:         "
        f"{record['cold_scalar_seconds'] * 1e3:7.1f} ms\n"
        f"  warm-disk speedup: {record['warm_disk_speedup']:6.1f}x  "
        f"(floor {record['warm_disk_speedup_floor']}x)   "
        f"CSV identical: {record['csv_identical']}"
    )


def test_store_survives_process_boundaries():
    record = run_benchmark(smoke=True)
    print("\n" + _report(record))
    assert record["warm_disk_speedup"] >= record["warm_disk_speedup_floor"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced grid with a looser speedup floor (CI)",
    )
    parser.add_argument(
        "--output", default=str(OUTPUT), metavar="PATH",
        help="where to write the JSON record (default: repo root)",
    )
    args = parser.parse_args(argv)
    record = run_benchmark(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(_report(record))
    print(f"wrote {args.output}")
    if record["warm_disk_speedup"] < record["warm_disk_speedup_floor"]:
        print("FAIL: cross-process warm-disk speedup below floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
