"""Macro-benchmark: the full-grid sweep fast path vs the naive reference.

Times the acceptance grid of the prediction-engine fast path — all 64
kernels x threads {1, 4, 8, 16, 32, 64} x {block, cyclic} x {fp32, fp64}
on the SG2042, ``noise_sigma=0`` — twice:

* **reference**: :func:`reference_mode` (per-core slowest-thread scans,
  per-core sharer map rebuilds) with both cache layers disabled — the
  engine's behaviour before the fast path existed;
* **fast**: the default path — placement symmetry-class dedup, shared
  compile cache, prediction memo.

It asserts the two sweeps are **bit-identical** (dataclass equality over
every float of every point), that the compile cache compiled each kernel
exactly once, and that the fast path clears the speedup floor (>= 5x on
the full grid; a looser >= 1.5x on the ``--reduced`` CI grid, whose
reference is too quick to amortize fixed costs). Results land in
``BENCH_sweep.json`` next to the repo root to start the perf trajectory.

Run directly (``python benchmarks/bench_sweep.py [--reduced]``) or via
pytest.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.kernels.registry import all_kernels
from repro.machine import catalog
from repro.perfmodel.placement import reference_mode
from repro.suite.config import Placement, Precision
from repro.suite.memo import SuiteCaches
from repro.suite.sweep import sweep

FULL_THREADS = (1, 4, 8, 16, 32, 64)
REDUCED_THREADS = (1, 8, 64)
PLACEMENTS = (Placement.BLOCK, Placement.CYCLIC)
PRECISIONS = (Precision.FP32, Precision.FP64)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def _grid(reduced: bool) -> dict:
    return {
        "threads": REDUCED_THREADS if reduced else FULL_THREADS,
        "placements": PLACEMENTS,
        "precisions": PRECISIONS,
    }


def run_benchmark(reduced: bool = False) -> dict:
    """Time reference vs fast sweeps; return the JSON-ready record."""
    cpu = catalog.sg2042()
    kernels = all_kernels()
    grid = _grid(reduced)
    floor = 1.5 if reduced else 5.0

    start = time.perf_counter()
    with reference_mode():
        ref = sweep(cpu, kernels=kernels, caches=SuiteCaches.disabled(),
                    **grid)
    ref_seconds = time.perf_counter() - start

    caches = SuiteCaches()
    start = time.perf_counter()
    fast = sweep(cpu, kernels=kernels, caches=caches, **grid)
    fast_seconds = time.perf_counter() - start

    assert fast == ref, "fast path diverged from the reference sweep"
    stats = caches.stats()
    assert stats.compile_misses == len(kernels), (
        f"expected exactly one compilation per kernel, got "
        f"{stats.compile_misses}"
    )

    speedup = ref_seconds / fast_seconds
    configs = (len(grid["threads"]) * len(grid["placements"])
               * len(grid["precisions"]))
    return {
        "benchmark": "sweep_fastpath",
        "mode": "reduced" if reduced else "full",
        "cpu": cpu.name,
        "kernels": len(kernels),
        "grid_points": configs,
        "predictions": configs * len(kernels),
        "reference_seconds": round(ref_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "speedup": round(speedup, 2),
        "speedup_floor": floor,
        "bit_identical": True,
        "compile_cache": {
            "misses": stats.compile_misses,
            "hits": stats.compile_hits,
            "entries": stats.compile_entries,
        },
        "prediction_memo": {
            "misses": stats.predict_misses,
            "hits": stats.predict_hits,
            "entries": stats.predict_entries,
        },
    }


def _report(record: dict) -> str:
    return (
        f"full-grid sweep fast path ({record['mode']} grid, "
        f"{record['predictions']} predictions):\n"
        f"  reference (per-core scan, no caches): "
        f"{record['reference_seconds'] * 1e3:9.1f} ms\n"
        f"  fast (dedup + compile cache + memo):  "
        f"{record['fast_seconds'] * 1e3:9.1f} ms\n"
        f"  speedup: {record['speedup']:6.1f}x  "
        f"(floor {record['speedup_floor']}x)   bit-identical: "
        f"{record['bit_identical']}\n"
        f"  compile cache: {record['compile_cache']['misses']} compiled, "
        f"{record['compile_cache']['hits']} reused"
    )


def test_fast_sweep_is_bit_identical_and_faster():
    # CI-friendly: the reduced grid keeps the reference run short, so
    # the asserted floor is deliberately loose; the full floor (5x,
    # comfortably cleared at ~15-20x) is checked by the direct run.
    record = run_benchmark(reduced=True)
    print("\n" + _report(record))
    assert record["speedup"] >= record["speedup_floor"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reduced", action="store_true",
        help="CI grid (threads 1/8/64) with a looser speedup floor",
    )
    parser.add_argument(
        "--output", default=str(OUTPUT), metavar="PATH",
        help="where to write the JSON record (default: repo root)",
    )
    args = parser.parse_args(argv)
    record = run_benchmark(reduced=args.reduced)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(_report(record))
    print(f"wrote {args.output}")
    if record["speedup"] < record["speedup_floor"]:
        print("FAIL: speedup below floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
