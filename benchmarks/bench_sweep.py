"""Macro-benchmark: the full-grid sweep fast path vs the naive reference.

Times the acceptance grid of the prediction engine — all 64 kernels x
threads {1, 4, 8, 16, 32, 64} x {block, cyclic} x {fp32, fp64} on the
SG2042, ``noise_sigma=0`` — four ways:

* **reference**: :func:`reference_mode` (per-core slowest-thread scans,
  per-core sharer map rebuilds) with both cache layers disabled — the
  engine's behaviour before any fast path existed;
* **fast**: the default warm path — placement symmetry-class dedup,
  shared compile cache, prediction memo, batch engine;
* **cold scalar**: ``engine="scalar"`` with caches disabled — what a
  cold (never-before-seen) grid cost before the batch engine;
* **cold batch**: ``engine="batch"`` with fresh (empty) caches — the
  cold path now: one compile per kernel, one vectorized NumPy pass per
  configuration.

Two more variants measure the persistent store's warm tiers — what a
*second process* pays over a store a prior process warmed:

* **warm disk**: the identical grid with fresh in-memory caches over
  the warmed store — restores whole from the sweep-level artifact in
  one read;
* **warm pages**: a different (sub-)grid over the same store — misses
  the whole-sweep artifact and restores every compile report and
  prediction from the page tier instead.

Every variant is timed best-of-:data:`BENCH_RUNS` — the same recipe
measured mode uses for host kernels — with fresh suite caches per
attempt, so a one-off allocator or scheduler hiccup cannot decide a
floor. It asserts all six sweeps are **bit-identical** (dataclass
equality over every float of every point), that the compile cache
compiled each kernel exactly once, that the store-backed sweeps
recompiled and re-predicted nothing, and that the speedup floors are
cleared: warm >= 5x, cold batch-vs-scalar >= 3.2x, and warm-disk vs
cold scalar >= 8x on the full grid (looser floors on the ``--reduced``
CI grid, whose runs are too quick to amortize fixed costs). Results
land in ``BENCH_sweep.json`` next to the repo root to extend the perf
trajectory.

Run directly (``python benchmarks/bench_sweep.py [--reduced]``) or via
pytest.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.kernels.registry import all_kernels
from repro.machine import catalog
from repro.perfmodel.placement import reference_mode
from repro.store import ArtifactStore
from repro.store.warm import warm_store
from repro.suite.config import Placement, Precision
from repro.suite.memo import SuiteCaches
from repro.suite.sweep import sweep

FULL_THREADS = (1, 4, 8, 16, 32, 64)
REDUCED_THREADS = (1, 8, 64)
PLACEMENTS = (Placement.BLOCK, Placement.CYCLIC)
PRECISIONS = (Precision.FP32, Precision.FP64)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

#: Timing attempts per variant; the best is reported (measured-mode
#: recipe: best-of is far less noise-sensitive than a single shot).
BENCH_RUNS = 3

#: Telemetry-off instrumentation overhead budget as a fraction of the
#: cold-batch sweep time (< 2%, per the observability acceptance
#: criteria — see docs/OBSERVABILITY.md).
TELEMETRY_OVERHEAD_BUDGET = 0.02

#: Microbenchmark loop count for the off-path primitive costs.
_MICRO_LOOPS = 50_000


def _telemetry_overhead(cold_batch_seconds: float, configs: int,
                        n_kernels: int) -> dict:
    """Project the telemetry-off overhead of the instrumented sweep.

    Measures the three off-path primitives the instrumentation pays —
    a hoisted local boolean test (per-kernel guarded sites), a
    ``telemetry.recorder()`` lookup plus ``.active`` read (per call-site
    entry), and a full null-span context cycle (per-configuration
    sites) — then multiplies by deliberately conservative per-sweep
    site counts. A projection, not a subtraction of two timed sweeps:
    the cold-batch grid runs in ~15 ms, so a direct ON-vs-OFF delta
    would be timing noise of the same order as the 2% budget itself.
    """
    from repro import telemetry

    rec = telemetry.recorder()
    assert not rec.active, (
        "benchmark must run without a telemetry session installed"
    )

    flag = rec.active
    start = time.perf_counter()
    for _ in range(_MICRO_LOOPS):
        if flag:
            pass  # pragma: no cover - flag is False
    flag_cost = (time.perf_counter() - start) / _MICRO_LOOPS

    start = time.perf_counter()
    for _ in range(_MICRO_LOOPS):
        telemetry.recorder().active
    lookup_cost = (time.perf_counter() - start) / _MICRO_LOOPS

    start = time.perf_counter()
    for _ in range(_MICRO_LOOPS):
        with rec.span("bench", kernel="X"):
            pass
    span_cost = (time.perf_counter() - start) / _MICRO_LOOPS

    # Conservative per-sweep site counts; the instrumented sources have
    # strictly fewer (e.g. run_suite hoists one boolean per suite and
    # tests it once per kernel, giving configs * kernels flag checks).
    flag_checks = 2 * configs * n_kernels
    lookups = 8 * configs + 16
    null_spans = 4 * configs + 8
    projected = (flag_checks * flag_cost + lookups * lookup_cost
                 + null_spans * span_cost)
    return {
        "budget_fraction": TELEMETRY_OVERHEAD_BUDGET,
        "flag_check_ns": round(flag_cost * 1e9, 2),
        "recorder_lookup_ns": round(lookup_cost * 1e9, 2),
        "null_span_ns": round(span_cost * 1e9, 2),
        "projected_seconds": round(projected, 9),
        "projected_fraction": round(projected / cold_batch_seconds, 6),
    }


def _best_of(make_run, runs: int = BENCH_RUNS):
    """Best wall time over ``runs`` fresh attempts.

    ``make_run`` builds and runs one attempt from scratch (fresh suite
    caches where the variant wants them) and returns
    ``(sweep_result, caches_or_None)``; the last attempt's pair is
    returned alongside the best time so the caller can assert on it.
    """
    best = float("inf")
    value = None
    for _ in range(runs):
        start = time.perf_counter()
        value = make_run()
        best = min(best, time.perf_counter() - start)
    return best, value


def _grid(reduced: bool) -> dict:
    return {
        "threads": REDUCED_THREADS if reduced else FULL_THREADS,
        "placements": PLACEMENTS,
        "precisions": PRECISIONS,
    }


def run_benchmark(reduced: bool = False) -> dict:
    """Time reference/fast/cold sweeps; return the JSON-ready record."""
    cpu = catalog.sg2042()
    kernels = all_kernels()
    grid = _grid(reduced)
    floor = 1.5 if reduced else 5.0
    cold_floor = 1.5 if reduced else 3.2
    warm_disk_floor = 4.0 if reduced else 8.0

    def run_reference():
        with reference_mode():
            return sweep(cpu, kernels=kernels,
                         caches=SuiteCaches.disabled(), **grid), None

    def run_fast():
        fast_caches = SuiteCaches()
        return (
            sweep(cpu, kernels=kernels, caches=fast_caches, **grid),
            fast_caches,
        )

    # Cold comparison: what a never-before-seen grid costs. The scalar
    # side runs uncached (each point recompiles and re-predicts, the
    # pre-batch cold behaviour); the batch side starts from fresh,
    # empty suite caches each attempt — every compile and every
    # prediction it makes is a cold miss.
    def run_cold_scalar():
        return sweep(cpu, kernels=kernels, engine="scalar",
                     caches=SuiteCaches.disabled(), **grid), None

    def run_cold_batch():
        batch_caches = SuiteCaches()
        return (
            sweep(cpu, kernels=kernels, engine="batch",
                  caches=batch_caches, **grid),
            batch_caches,
        )

    ref_seconds, (ref, _) = _best_of(run_reference)
    fast_seconds, (fast, caches) = _best_of(run_fast)
    cold_scalar_seconds, (cold_scalar, _) = _best_of(run_cold_scalar)
    cold_batch_seconds, (cold_batch, cold_caches) = _best_of(
        run_cold_batch
    )

    # Warm-disk: the second-process story, two tiers deep. A prior
    # process warmed the artifact store (compile reports via ``repro
    # warm``, prediction pages + the whole-sweep artifact via one
    # priming sweep); every timed attempt then starts from *fresh,
    # empty* in-memory caches over that store — exactly what a new
    # process sees. The identical grid restores whole from the
    # sweep-level artifact in one read (``result.restored``); a
    # *different* grid over the same configurations misses that tier
    # and falls back to the page tier, restoring every report and
    # prediction from disk without recomputing anything.
    sub_threads = tuple(grid["threads"][::2])
    sub_grid = dict(grid, threads=sub_threads)
    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        store = ArtifactStore(tmp)
        warm_store(store, cpu, kernels)
        sweep(cpu, kernels=kernels, engine="batch",
              caches=SuiteCaches.persistent(store), **grid)

        def run_warm_disk():
            disk_caches = SuiteCaches.persistent(store)
            return (
                sweep(cpu, kernels=kernels, engine="batch",
                      caches=disk_caches, **grid),
                disk_caches,
            )

        warm_disk_seconds, (warm_disk, disk_caches) = _best_of(
            run_warm_disk
        )

        # The sub-grid sweep persists its own whole-sweep artifact at
        # the end of each attempt; drop any artifact the priming run
        # did not write so every attempt really measures the page tier
        # (the unlink is a single small file — measurement noise).
        sweep_dir = Path(tmp) / "sweep"
        primed_artifacts = set(sweep_dir.iterdir())

        def run_warm_pages():
            for extra in set(sweep_dir.iterdir()) - primed_artifacts:
                extra.unlink()
            page_caches = SuiteCaches.persistent(store)
            return (
                sweep(cpu, kernels=kernels, engine="batch",
                      caches=page_caches, **sub_grid),
                page_caches,
            )

        warm_pages_seconds, (warm_pages, page_caches) = _best_of(
            run_warm_pages
        )

    assert fast == ref, "fast path diverged from the reference sweep"
    assert cold_scalar == ref, "scalar engine diverged from the reference"
    assert cold_batch == ref, "batch engine diverged from the reference"
    assert warm_disk == ref, (
        "store-restored sweep diverged from the reference"
    )
    assert warm_disk.restored, (
        "identical warmed grid should restore from the whole-sweep "
        "artifact"
    )
    disk_stats = disk_caches.stats()
    assert disk_stats.compile_misses == 0, (
        f"warm-disk sweep recompiled {disk_stats.compile_misses} "
        f"kernels; the store should have served the whole sweep"
    )
    assert disk_stats.predict_misses == 0, (
        f"warm-disk sweep recomputed {disk_stats.predict_misses} "
        f"predictions; the store should have served the whole sweep"
    )
    sub_set = set(sub_threads)
    assert warm_pages.points == tuple(
        p for p in ref.points if p.threads in sub_set
    ), "page-tier sweep diverged from the reference"
    assert not warm_pages.failures
    assert not warm_pages.restored, (
        "the sub-grid must miss the whole-sweep artifact"
    )
    page_stats = page_caches.stats()
    assert page_stats.compile_misses == 0, (
        f"page-tier sweep recompiled {page_stats.compile_misses} "
        f"kernels; the store should have served every report"
    )
    assert page_stats.predict_misses == 0, (
        f"page-tier sweep recomputed {page_stats.predict_misses} "
        f"predictions; the store should have served every page"
    )
    assert page_stats.compile_disk_hits == len(kernels)
    assert page_stats.predict_disk_hits > 0
    stats = caches.stats()
    assert stats.compile_misses == len(kernels), (
        f"expected exactly one compilation per kernel, got "
        f"{stats.compile_misses}"
    )
    assert cold_caches.stats().compile_misses == len(kernels)

    speedup = ref_seconds / fast_seconds
    cold_speedup = cold_scalar_seconds / cold_batch_seconds
    warm_disk_speedup = cold_scalar_seconds / warm_disk_seconds
    configs = (len(grid["threads"]) * len(grid["placements"])
               * len(grid["precisions"]))

    # Telemetry: (a) the off-path instrumentation overhead projection
    # must clear the <2% budget; (b) a traced cold-batch sweep must stay
    # bit-identical to the reference (timed once, informational — span
    # recording is real work the budget does not cover).
    telemetry_overhead = _telemetry_overhead(
        cold_batch_seconds, configs, len(kernels)
    )
    assert (telemetry_overhead["projected_fraction"]
            < TELEMETRY_OVERHEAD_BUDGET), (
        f"projected telemetry-off overhead "
        f"{telemetry_overhead['projected_fraction']:.2%} exceeds the "
        f"{TELEMETRY_OVERHEAD_BUDGET:.0%} budget"
    )
    from repro import telemetry

    with telemetry.telemetry_session():
        start = time.perf_counter()
        traced = sweep(cpu, kernels=kernels, engine="batch",
                       caches=SuiteCaches(), **grid)
        traced_seconds = time.perf_counter() - start
    assert traced == ref, "traced sweep diverged from the reference"
    assert traced.telemetry is not None and traced.telemetry.span_count

    return {
        "benchmark": "sweep_fastpath",
        "mode": "reduced" if reduced else "full",
        "cpu": cpu.name,
        "kernels": len(kernels),
        "grid_points": configs,
        "predictions": configs * len(kernels),
        "reference_seconds": round(ref_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "speedup": round(speedup, 2),
        "speedup_floor": floor,
        "cold_scalar_seconds": round(cold_scalar_seconds, 6),
        "cold_batch_seconds": round(cold_batch_seconds, 6),
        "cold_speedup": round(cold_speedup, 2),
        "cold_speedup_floor": cold_floor,
        "warm_disk_seconds": round(warm_disk_seconds, 6),
        "warm_disk_speedup": round(warm_disk_speedup, 2),
        "warm_disk_speedup_floor": warm_disk_floor,
        "warm_disk_restored": warm_disk.restored,
        "warm_pages_seconds": round(warm_pages_seconds, 6),
        "warm_pages_compile_restored": page_stats.compile_disk_hits,
        "warm_pages_predict_restored": page_stats.predict_disk_hits,
        "bit_identical": True,
        "compile_cache": {
            "misses": stats.compile_misses,
            "hits": stats.compile_hits,
            "entries": stats.compile_entries,
        },
        "prediction_memo": {
            "misses": stats.predict_misses,
            "hits": stats.predict_hits,
            "entries": stats.predict_entries,
        },
        "telemetry_overhead": telemetry_overhead,
        "traced_cold_batch_seconds": round(traced_seconds, 6),
    }


def _report(record: dict) -> str:
    return (
        f"full-grid sweep fast path ({record['mode']} grid, "
        f"{record['predictions']} predictions):\n"
        f"  reference (per-core scan, no caches): "
        f"{record['reference_seconds'] * 1e3:9.1f} ms\n"
        f"  fast (dedup + caches + batch):        "
        f"{record['fast_seconds'] * 1e3:9.1f} ms\n"
        f"  speedup: {record['speedup']:6.1f}x  "
        f"(floor {record['speedup_floor']}x)   bit-identical: "
        f"{record['bit_identical']}\n"
        f"  cold scalar (uncached):               "
        f"{record['cold_scalar_seconds'] * 1e3:9.1f} ms\n"
        f"  cold batch (fresh caches):            "
        f"{record['cold_batch_seconds'] * 1e3:9.1f} ms\n"
        f"  cold speedup: {record['cold_speedup']:6.1f}x  "
        f"(floor {record['cold_speedup_floor']}x)\n"
        f"  warm disk (fresh caches, warmed store):"
        f"{record['warm_disk_seconds'] * 1e3:8.1f} ms\n"
        f"  warm disk speedup vs cold scalar: "
        f"{record['warm_disk_speedup']:6.1f}x  "
        f"(floor {record['warm_disk_speedup_floor']}x; "
        f"whole-sweep artifact restored: "
        f"{record['warm_disk_restored']})\n"
        f"  warm pages (sub-grid, page tier):     "
        f"{record['warm_pages_seconds'] * 1e3:9.1f} ms  "
        f"({record['warm_pages_compile_restored']} reports + "
        f"{record['warm_pages_predict_restored']} predictions "
        f"restored)\n"
        f"  compile cache: {record['compile_cache']['misses']} compiled, "
        f"{record['compile_cache']['hits']} reused\n"
        f"  telemetry off-path overhead: "
        f"{record['telemetry_overhead']['projected_fraction']:.3%} "
        f"projected (budget "
        f"{record['telemetry_overhead']['budget_fraction']:.0%}); "
        f"traced cold batch: "
        f"{record['traced_cold_batch_seconds'] * 1e3:.1f} ms"
    )


def test_fast_sweep_is_bit_identical_and_faster():
    # CI-friendly: the reduced grid keeps the reference run short, so
    # the asserted floors are deliberately loose; the full floors (5x
    # warm, 3.2x cold, 8x warm-disk — comfortably cleared) are checked
    # by the direct run.
    record = run_benchmark(reduced=True)
    print("\n" + _report(record))
    assert record["speedup"] >= record["speedup_floor"]
    assert record["cold_speedup"] >= record["cold_speedup_floor"]
    assert record["warm_disk_speedup"] >= record["warm_disk_speedup_floor"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reduced", action="store_true",
        help="CI grid (threads 1/8/64) with a looser speedup floor",
    )
    parser.add_argument(
        "--output", default=str(OUTPUT), metavar="PATH",
        help="where to write the JSON record (default: repo root)",
    )
    args = parser.parse_args(argv)
    record = run_benchmark(reduced=args.reduced)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(_report(record))
    print(f"wrote {args.output}")
    if record["speedup"] < record["speedup_floor"]:
        print("FAIL: warm speedup below floor", file=sys.stderr)
        return 1
    if record["cold_speedup"] < record["cold_speedup_floor"]:
        print("FAIL: cold speedup below floor", file=sys.stderr)
        return 1
    if record["warm_disk_speedup"] < record["warm_disk_speedup_floor"]:
        print("FAIL: warm-disk speedup below floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
