"""Benchmark: regenerate the paper's table3 via the experiment pipeline."""


def test_table3(render):
    render("table3")
