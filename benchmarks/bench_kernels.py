"""Micro-benchmarks of the NumPy kernel implementations themselves.

These time the *executable* face of the suite (the host machine running
the NumPy code), one representative kernel per class — useful for
catching performance regressions in the kernel implementations and for
sizing test workloads.
"""

import pytest

from repro.kernels.registry import get_kernel
from repro.machine.vector import DType

#: One representative kernel per class at a laptop-friendly size.
REPRESENTATIVES = {
    "TRIAD": 200_000,
    "MEMCPY": 200_000,
    "DAXPY": 200_000,
    "HYDRO_1D": 200_000,
    "JACOBI_2D": 90_000,  # 300x300
    "FIR": 100_000,
}


@pytest.mark.parametrize("name,size", sorted(REPRESENTATIVES.items()))
def test_kernel_execute(benchmark, name, size):
    kernel = get_kernel(name)
    ws = kernel.prepare(size, DType.FP64)
    benchmark(kernel.execute, ws)
    assert kernel.checksum(ws) == kernel.checksum(ws)


def test_recursive_doubling_recurrence(benchmark):
    """The parallel reformulation used by TRIDIAG_ELIM/GEN_LIN_RECUR."""
    import numpy as np

    from repro.kernels.lcals import solve_linear_recurrence

    rng = np.random.default_rng(0)
    coef = rng.uniform(-0.9, 0.9, 100_000)
    rhs = rng.uniform(-1, 1, 100_000)
    result = benchmark(solve_linear_recurrence, coef, rhs)
    assert np.isfinite(result).all()
