"""Benchmark: regenerate the paper's figure1 via the experiment pipeline."""


def test_figure1(render):
    render("figure1")
