"""Benchmark: regenerate the paper's figure2 via the experiment pipeline."""


def test_figure2(render):
    render("figure2")
