"""Benchmarks: the classic HPC yardsticks built on the reproduction."""

import numpy as np

from repro.apps.hpl import hpl_measure, lu_factor, predict_hpl
from repro.apps.stream import predict_stream
from repro.machine import catalog
from repro.openmp.affinity import PlacementPolicy


def test_hpl_lu_factorization(benchmark):
    """Real blocked LU with partial pivoting at N=256."""
    rng = np.random.default_rng(0)
    a = rng.random((256, 256)) - 0.5
    lu, piv = benchmark(lu_factor, a, 64)
    assert np.isfinite(lu).all()


def test_hpl_end_to_end(benchmark):
    """Factor + solve + residual check at N=192."""
    gflops, residual = benchmark(hpl_measure, 192, 64)
    assert residual < 16.0


def test_stream_prediction_all_machines(benchmark):
    """Predict STREAM for every machine in the study."""

    def predict_all():
        return [
            predict_stream(cpu, threads=min(32, cpu.num_cores),
                           placement=PlacementPolicy.CYCLIC)
            for cpu in catalog.all_cpus().values()
        ]

    preds = benchmark(predict_all)
    assert len(preds) == 7


def test_hpl_prediction_all_machines(benchmark):
    preds = benchmark(
        lambda: [predict_hpl(cpu) for cpu in catalog.all_cpus().values()]
    )
    assert all(p.rmax_gflops > 0 for p in preds)
