"""Benchmarks of the reproduction's own substrates: the RVV-rollback
translator and the analytic performance model."""

from repro.compiler.model import VectorFlavor
from repro.isa.codegen import LoopSpec, generate_loop
from repro.isa.encoding import render_assembly
from repro.isa.rollback import rollback
from repro.machine import catalog
from repro.machine.vector import DType
from repro.suite.config import RunConfig
from repro.suite.runner import run_suite


def test_rollback_throughput(benchmark):
    """Translate a realistic vector loop body repeatedly (the rollback
    tool processes whole .s files in practice)."""
    spec = LoopSpec(
        dtype=DType.FP32, num_inputs=2, ops=("vfmacc.vv",), has_store=True
    )
    text = render_assembly(
        generate_loop(spec, VectorFlavor.VLA, rvv_version="1.0")
    )
    big = "\n".join([text] * 100)
    out = benchmark(rollback, big)
    assert "vle.v" in out


def test_full_suite_prediction(benchmark):
    """One complete 64-kernel suite prediction on the SG2042 — the unit
    of work every experiment is built from."""
    sg = catalog.sg2042()
    config = RunConfig(threads=32, precision="fp32", placement="cluster",
                       runs=1, noise_sigma=0.0)
    result = benchmark(run_suite, sg, config)
    assert len(result.runs) == 64


def test_placement_resolution(benchmark):
    """Thread placement for the full 64-core machine."""
    from repro.openmp.affinity import PlacementPolicy, assign_cores

    topo = catalog.sg2042().topology
    cores = benchmark(assign_cores, topo, 64, PlacementPolicy.CLUSTER)
    assert len(cores) == 64
