"""Benchmark: regenerate the paper's figure5 via the experiment pipeline."""


def test_figure5(render):
    render("figure5")
