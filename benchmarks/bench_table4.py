"""Benchmark: regenerate the paper's table4 via the experiment pipeline."""


def test_table4(render):
    render("table4")
