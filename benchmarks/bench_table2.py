"""Benchmark: regenerate the paper's table2 via the experiment pipeline."""


def test_table2(render):
    render("table2")
