"""CLI surfaces of the document registry."""

import json

from repro.cli import main


def _write_envelope(root, kind, envelope):
    folder = root / kind
    folder.mkdir(parents=True, exist_ok=True)
    path = folder / f"{envelope['name']}.json"
    path.write_text(json.dumps(envelope, indent=2) + "\n",
                    encoding="utf-8")
    return path


def _machine_envelope(name="cli_machine"):
    from repro.machine.serialize import cpu_to_dict
    from repro.registry import default_registry

    doc = cpu_to_dict(default_registry().machine("visionfive_v2"))
    doc["name"] = "CLI Machine"
    return {"schema": "repro.machine/v1", "name": name, "doc": doc}


class TestRegistryList:
    def test_lists_all_kinds(self, capsys):
        assert main(["registry", "list"]) == 0
        out = capsys.readouterr().out
        for kind in ("machines", "kernels", "compilers", "faults",
                     "placements"):
            assert kind in out
        assert "sophon_sg2044" in out

    def test_kind_filter(self, capsys):
        assert main(["registry", "list", "--kind", "placements"]) == 0
        out = capsys.readouterr().out
        assert "placements (3):" in out
        assert "machines" not in out

    def test_machines_listed_by_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sg2042_2s" in out


class TestRegistryShow:
    def test_show_round_trips_json(self, capsys):
        assert main(["registry", "show", "machines", "sg2042"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "repro.machine/v1"
        assert data["doc"]["part"] == "SG2042"

    def test_unknown_name_exit_2(self, capsys):
        assert main(["registry", "show", "machines", "sg9999"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRegistryValidate:
    def test_shipped_data_validates(self, capsys):
        assert main(["registry", "validate"]) == 0
        assert "document(s) valid" in capsys.readouterr().out

    def test_broken_user_root_exit_2(self, tmp_path, capsys):
        envelope = _machine_envelope()
        del envelope["doc"]["topology"]
        _write_envelope(tmp_path, "machines", envelope)
        assert main(["registry", "validate",
                     "--registry-path", str(tmp_path)]) == 2
        assert "missing field topology" in capsys.readouterr().err


class TestRegistryAdd:
    def test_add_then_use(self, tmp_path, capsys):
        doc_file = tmp_path / "machine.json"
        doc_file.write_text(json.dumps(_machine_envelope()),
                            encoding="utf-8")
        dest = tmp_path / "root"
        assert main(["registry", "add", str(doc_file),
                     "--dest", str(dest)]) == 0
        assert (dest / "machines" / "cli_machine.json").exists()
        capsys.readouterr()
        assert main(["describe", "cli_machine",
                     "--registry-path", str(dest)]) == 0
        assert "CLI Machine" in capsys.readouterr().out

    def test_add_rejects_invalid(self, tmp_path, capsys):
        envelope = _machine_envelope()
        envelope["doc"]["bogus"] = 1
        doc_file = tmp_path / "machine.json"
        doc_file.write_text(json.dumps(envelope), encoding="utf-8")
        assert main(["registry", "add", str(doc_file),
                     "--dest", str(tmp_path / "root")]) == 2
        assert "unknown field bogus" in capsys.readouterr().err


class TestMachineResolution:
    def test_run_on_registry_only_machine(self, capsys):
        assert main(["run", "--cpu", "sophon_sg2044",
                     "--threads", "2"]) == 0
        assert "Sophon SG2044" in capsys.readouterr().out

    def test_unknown_machine_lists_registry_names(self, capsys):
        assert main(["describe", "sg9999"]) == 2
        err = capsys.readouterr().err
        assert "unknown machine" in err
        assert "sophon_sg2044" in err

    def test_registry_path_resolves_user_machine(self, tmp_path,
                                                 capsys):
        _write_envelope(tmp_path, "machines", _machine_envelope())
        assert main(["describe", "cli_machine",
                     "--registry-path", str(tmp_path)]) == 0
        assert "CLI Machine" in capsys.readouterr().out


class TestWarmRegistryMachines:
    def test_warm_flavors_rollback_on_registry_machine(self, tmp_path,
                                                       capsys):
        assert main(["warm", "--store", str(tmp_path / "store"),
                     "--cpu", "sophon_sg2044", "--kernels", "TRIAD",
                     "--flavors", "vla", "--rollback"]) == 0
        out = capsys.readouterr().out
        assert "Sophon SG2044" in out
        assert "compile" in out

    def test_warm_user_registry_machine(self, tmp_path, capsys):
        root = tmp_path / "reg"
        _write_envelope(root, "machines", _machine_envelope())
        assert main(["warm", "--store", str(tmp_path / "store"),
                     "--cpu", "cli_machine", "--kernels", "TRIAD",
                     "--registry-path", str(root)]) == 0
        assert "CLI Machine" in capsys.readouterr().out


class TestLintRegistry:
    def test_clean_exit_0(self, capsys):
        assert main(["lint", "--registry", "--no-asm",
                     "--kernels", "TRIAD"]) == 0
        assert "registry documents" in capsys.readouterr().out

    def test_seeded_invalid_document_exit_3(self, tmp_path, capsys):
        envelope = _machine_envelope(name="broken")
        del envelope["doc"]["core"]
        _write_envelope(tmp_path, "machines", envelope)
        rc = main(["lint", "--registry", "--no-asm",
                   "--kernels", "TRIAD", "--format", "json",
                   "--registry-path", str(tmp_path)])
        assert rc == 3
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["errors"] >= 1
        assert any("missing field core" in f["message"]
                   for f in report["findings"])
