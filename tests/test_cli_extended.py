"""CLI tests for the analysis/measure/sweep/chart surfaces."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_roofline(self, capsys):
        assert main(["analyze", "roofline", "--cpu", "sg2042",
                     "--precision", "fp32"]) == 0
        out = capsys.readouterr().out
        assert "ridge" in out
        assert "GEMM" in out

    def test_bottleneck(self, capsys):
        assert main(["analyze", "bottleneck", "--cpu", "sg2042",
                     "--threads", "32"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck attribution" in out

    def test_unknown_cpu(self, capsys):
        assert main(["analyze", "roofline", "--cpu", "m68k"]) == 2

    def test_mode_required(self):
        with pytest.raises(SystemExit):
            main(["analyze", "everything"])


class TestMeasure:
    def test_stream_class(self, capsys):
        assert main(["measure", "--kernel-class", "stream",
                     "--size", "2000"]) == 0
        out = capsys.readouterr().out
        assert "TRIAD" in out and "GB/s" in out

    def test_fp32(self, capsys):
        assert main(["measure", "--kernel-class", "basic",
                     "--size", "1000", "--precision", "fp32"]) == 0


class TestSweep:
    def test_table_output(self, capsys):
        assert main(["sweep", "--kernels", "TRIAD",
                     "--threads", "1,8", "--placements", "cluster",
                     "--precisions", "fp32"]) == 0
        out = capsys.readouterr().out
        assert "best overall" in out

    def test_csv_output(self, capsys):
        assert main(["sweep", "--kernels", "TRIAD",
                     "--threads", "1", "--placements", "block",
                     "--precisions", "fp64", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("cpu,threads")

    def test_unknown_cpu(self, capsys):
        assert main(["sweep", "--cpu", "z80"]) == 2

    def test_unknown_kernel_surfaces_error(self, capsys):
        assert main(["sweep", "--kernels", "BOGUS"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_engine_flag_is_bit_identical(self, capsys):
        args = ["sweep", "--kernels", "TRIAD,GEMM", "--threads", "1,8",
                "--placements", "block", "--precisions", "fp64", "--csv"]
        assert main(args + ["--engine", "batch"]) == 0
        batch_out = capsys.readouterr().out
        assert main(args + ["--engine", "scalar"]) == 0
        scalar_out = capsys.readouterr().out
        assert batch_out == scalar_out

    def test_workers_mode_process(self, capsys):
        assert main(["sweep", "--kernels", "TRIAD", "--threads", "1,8",
                     "--placements", "block", "--precisions", "fp64",
                     "--workers", "2", "--workers-mode", "process"]) == 0
        assert "best overall" in capsys.readouterr().out

    def test_profile_writes_report_to_stderr(self, capsys):
        assert main(["sweep", "--kernels", "TRIAD", "--threads", "1",
                     "--placements", "block", "--precisions", "fp64",
                     "--profile"]) == 0
        captured = capsys.readouterr()
        assert "cumulative" in captured.err
        assert "sweep" in captured.err

    def test_profile_out_writes_file(self, capsys, tmp_path):
        out_file = tmp_path / "profile.txt"
        assert main(["sweep", "--kernels", "TRIAD", "--threads", "1",
                     "--placements", "block", "--precisions", "fp64",
                     "--profile", "--profile-out", str(out_file)]) == 0
        captured = capsys.readouterr()
        assert "profile written" in captured.err
        text = out_file.read_text()
        assert "cumulative" in text

    def test_profile_out_implies_profile(self, capsys, tmp_path):
        out_file = tmp_path / "profile.txt"
        assert main(["sweep", "--kernels", "TRIAD", "--threads", "1",
                     "--placements", "block", "--precisions", "fp64",
                     "--profile-out", str(out_file)]) == 0
        assert "profile written" in capsys.readouterr().err
        assert "cumulative" in out_file.read_text()


class TestChartFlag:
    def test_figure_with_chart(self, capsys):
        assert main(["experiment", "figure1", "--fast", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "bars: times faster/slower" in out

    def test_table_with_chart_flag_is_harmless(self, capsys):
        assert main(["experiment", "table4", "--fast", "--chart"]) == 0


class TestMachineFile:
    def test_run_with_custom_machine(self, capsys, tmp_path):
        from repro.machine import catalog
        from repro.machine.serialize import cpu_to_dict, save_cpu
        from repro.machine.serialize import cpu_from_dict

        data = cpu_to_dict(catalog.sg2042())
        data["name"] = "Custom-920"
        path = tmp_path / "custom.json"
        save_cpu(cpu_from_dict(data), path)
        assert main(["run", "--machine-file", str(path)]) == 0
        assert "Custom-920" in capsys.readouterr().out

    def test_missing_machine_file(self, capsys):
        assert main(["run", "--machine-file", "/nope.json"]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestExplain:
    def test_explain_triad(self, capsys):
        assert main(["explain", "TRIAD"]) == 0
        out = capsys.readouterr().out
        assert "characterization:" in out
        assert "XuanTie GCC 8.4" in out
        assert "roofline" in out

    def test_explain_case_insensitive(self, capsys):
        assert main(["explain", "gemm"]) == 0
        assert "GEMM" in capsys.readouterr().out

    def test_explain_unknown_kernel(self, capsys):
        assert main(["explain", "BOGUS"]) == 2

    def test_explain_unknown_cpu(self, capsys):
        assert main(["explain", "TRIAD", "--cpu", "z80"]) == 2


class TestExtensionExperiments:
    def test_yardsticks(self, capsys):
        assert main(["experiment", "extension_yardsticks"]) == 0
        out = capsys.readouterr().out
        assert "Rmax" in out
        assert "Sophon SG2042" in out


class TestSensitivityCli:
    def test_sensitivity_mode(self, capsys):
        assert main(["analyze", "sensitivity", "--threads", "32",
                     "--placement", "cluster",
                     "--precision", "fp32"]) == 0
        out = capsys.readouterr().out
        assert "parameter sensitivity" in out
        assert "elasticity" in out


class TestStorePrune:
    def _populate(self, tmp_path):
        import os

        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        store.put("predict", ("old",), {"v": 1})
        store.put("predict", ("new",), {"v": 2})
        old = store._path("predict", ("old",))
        ancient = old.stat().st_mtime - 10 * 86400
        os.utime(old, (ancient, ancient))
        return store

    def test_dry_run_reports_without_deleting(self, tmp_path, capsys):
        store = self._populate(tmp_path)
        assert main(["store", "prune", "--store", str(store.root),
                     "--max-age-days", "1", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would delete 1/2" in out
        assert store.get("predict", ("old",)) is not None

    def test_prune_deletes_by_age(self, tmp_path, capsys):
        store = self._populate(tmp_path)
        assert main(["store", "prune", "--store", str(store.root),
                     "--max-age-days", "1"]) == 0
        out = capsys.readouterr().out
        assert "deleted 1/2" in out
        assert store.get("predict", ("old",)) is None
        assert store.get("predict", ("new",)) is not None

    def test_prune_size_cap(self, tmp_path, capsys):
        store = self._populate(tmp_path)
        assert main(["store", "prune", "--store", str(store.root),
                     "--max-mb", "0"]) == 0
        assert "deleted 2/2" in capsys.readouterr().out

    def test_prune_requires_a_cap(self, tmp_path, capsys):
        store = self._populate(tmp_path)
        assert main(["store", "prune",
                     "--store", str(store.root)]) == 2
        assert "max_bytes" in capsys.readouterr().err
