"""Simulated OpenMP runtime tests."""

import pytest

from repro.openmp.affinity import PlacementPolicy
from repro.openmp.runtime import OpenMPRuntime, barrier_cost_seconds
from repro.util.errors import ConfigError


class TestOpenMPRuntime:
    def test_placement_resolves(self, sg2042):
        rt = OpenMPRuntime(nthreads=4, policy=PlacementPolicy.CYCLIC)
        assert rt.placement(sg2042) == (0, 8, 32, 40)

    def test_describe_mentions_env(self, sg2042):
        rt = OpenMPRuntime(nthreads=2)
        text = rt.describe(sg2042)
        assert "OMP_NUM_THREADS=2" in text
        assert "OMP_PROC_BIND=true" in text

    def test_unpinned_rejected(self):
        with pytest.raises(ConfigError, match="OMP_PROC_BIND"):
            OpenMPRuntime(nthreads=2, proc_bind=False)

    def test_zero_threads_rejected(self):
        with pytest.raises(ConfigError):
            OpenMPRuntime(nthreads=0)


class TestBarrierCost:
    def test_single_thread_free(self, sg2042):
        assert barrier_cost_seconds(sg2042, 1) == 0.0

    def test_grows_with_threads(self, sg2042):
        costs = [barrier_cost_seconds(sg2042, p) for p in (2, 8, 32, 64)]
        assert costs == sorted(costs)
        assert costs[0] > 0

    def test_x86_barriers_cheaper_than_sg2042(self, sg2042, amd_rome):
        assert barrier_cost_seconds(amd_rome, 64) < barrier_cost_seconds(
            sg2042, 64
        )
