"""Thread placement tests: the paper's exact example sequences plus
property-based invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.topology import contiguous_topology, sg2042_topology
from repro.openmp.affinity import (
    PlacementPolicy,
    assign_cores,
    parse_omp_places,
    parse_omp_proc_bind,
)
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def topo():
    return sg2042_topology()


class TestPaperSequences:
    """Section 3.2 gives these placements verbatim."""

    def test_block_is_identity(self, topo):
        assert assign_cores(topo, 8, PlacementPolicy.BLOCK) == tuple(
            range(8)
        )

    def test_cyclic_four_threads(self, topo):
        assert assign_cores(topo, 4, PlacementPolicy.CYCLIC) == (
            0, 8, 32, 40,
        )

    def test_cyclic_eight_threads(self, topo):
        assert assign_cores(topo, 8, PlacementPolicy.CYCLIC) == (
            0, 8, 32, 40, 1, 9, 33, 41,
        )

    def test_cluster_eight_threads(self, topo):
        assert assign_cores(topo, 8, PlacementPolicy.CLUSTER) == (
            0, 8, 32, 40, 16, 24, 48, 56,
        )

    def test_cluster_four_threads_matches_cyclic(self, topo):
        assert assign_cores(
            topo, 4, PlacementPolicy.CLUSTER
        ) == assign_cores(topo, 4, PlacementPolicy.CYCLIC)


class TestPlacementProperties:
    @pytest.mark.parametrize("policy", list(PlacementPolicy))
    @pytest.mark.parametrize("threads", [1, 2, 3, 7, 16, 33, 64])
    def test_no_duplicates_and_valid_cores(self, topo, policy, threads):
        cores = assign_cores(topo, threads, policy)
        assert len(cores) == threads
        assert len(set(cores)) == threads
        assert all(0 <= c < 64 for c in cores)

    @pytest.mark.parametrize("policy", list(PlacementPolicy))
    def test_full_machine_uses_every_core(self, topo, policy):
        cores = assign_cores(topo, 64, policy)
        assert sorted(cores) == list(range(64))

    def test_cyclic_balances_numa_regions(self, topo):
        for threads in (4, 8, 16, 32, 64):
            cores = assign_cores(topo, threads, PlacementPolicy.CYCLIC)
            counts = topo.active_per_numa(cores)
            assert max(counts.values()) - min(counts.values()) <= 1

    def test_cluster_minimizes_l2_sharing(self, topo):
        """Up to 16 threads the cluster policy never doubles up a
        cluster; the cyclic policy does from 5 threads on."""
        cores = assign_cores(topo, 16, PlacementPolicy.CLUSTER)
        assert max(topo.active_per_cluster(cores).values()) == 1
        cyc = assign_cores(topo, 16, PlacementPolicy.CYCLIC)
        assert max(topo.active_per_cluster(cyc).values()) > 1

    def test_block_fills_numa_zero_first(self, topo):
        cores = assign_cores(topo, 8, PlacementPolicy.BLOCK)
        assert topo.active_per_numa(cores) == {0: 8}

    def test_block_at_32_uses_only_two_regions(self, topo):
        """The paper's diagnosis of Table 1: block placement at medium
        thread counts leaves NUMA regions (and controllers) idle."""
        cores = assign_cores(topo, 32, PlacementPolicy.BLOCK)
        counts = topo.active_per_numa(cores)
        assert set(counts) == {0, 1}
        assert counts[0] == counts[1] == 16

    def test_too_many_threads_rejected(self, topo):
        with pytest.raises(ConfigError):
            assign_cores(topo, 65, PlacementPolicy.CLUSTER)

    def test_zero_threads_rejected(self, topo):
        with pytest.raises(ConfigError):
            assign_cores(topo, 0, PlacementPolicy.BLOCK)

    @given(threads=st.integers(1, 64))
    def test_prefix_property_cyclic(self, threads):
        """Placements are prefix-stable: adding a thread never moves
        existing ones."""
        topo = sg2042_topology()
        small = assign_cores(topo, threads, PlacementPolicy.CYCLIC)
        if threads < 64:
            big = assign_cores(topo, threads + 1, PlacementPolicy.CYCLIC)
            assert big[:threads] == small


class TestOtherTopologies:
    def test_single_numa_cyclic_equals_block(self):
        topo = contiguous_topology(18)
        assert assign_cores(
            topo, 10, PlacementPolicy.CYCLIC
        ) == assign_cores(topo, 10, PlacementPolicy.BLOCK)

    def test_rome_cyclic_spreads_regions(self):
        topo = contiguous_topology(64, num_numa=4, cluster_size=4)
        cores = assign_cores(topo, 4, PlacementPolicy.CYCLIC)
        assert {topo.numa_of(c) for c in cores} == {0, 1, 2, 3}


class TestEnvParsing:
    def test_proc_bind_true(self):
        assert parse_omp_proc_bind("true")
        assert parse_omp_proc_bind("SPREAD")

    def test_proc_bind_false(self):
        assert not parse_omp_proc_bind("false")

    def test_proc_bind_invalid(self):
        with pytest.raises(ConfigError):
            parse_omp_proc_bind("maybe")

    def test_places_cores(self):
        topo = sg2042_topology()
        places = parse_omp_places("cores", topo)
        assert len(places) == 64

    def test_places_sockets(self):
        topo = sg2042_topology()
        places = parse_omp_places("sockets", topo)
        assert len(places) == 4
        assert places[0] == topo.numa_nodes[0]

    def test_places_explicit(self):
        topo = sg2042_topology()
        assert parse_omp_places("{0,8},{1,9}", topo) == [(0, 8), (1, 9)]

    def test_places_invalid_core(self):
        topo = sg2042_topology()
        with pytest.raises(ConfigError):
            parse_omp_places("{99}", topo)

    def test_places_garbage(self):
        topo = sg2042_topology()
        with pytest.raises(ConfigError):
            parse_omp_places("everywhere", topo)
