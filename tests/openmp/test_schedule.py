"""Static scheduler tests: libgomp chunking semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.openmp.schedule import chunk_of_iteration, static_chunks
from repro.util.errors import ConfigError


class TestStaticChunks:
    def test_even_split(self):
        chunks = static_chunks(8, 4)
        assert [len(c) for c in chunks] == [2, 2, 2, 2]

    def test_remainder_goes_to_first_threads(self):
        chunks = static_chunks(10, 4)
        assert [len(c) for c in chunks] == [3, 3, 2, 2]

    def test_more_threads_than_iterations(self):
        chunks = static_chunks(2, 4)
        assert [len(c) for c in chunks] == [1, 1, 0, 0]

    def test_zero_iterations(self):
        assert all(len(c) == 0 for c in static_chunks(0, 4))

    def test_validation(self):
        with pytest.raises(ConfigError):
            static_chunks(-1, 2)
        with pytest.raises(ConfigError):
            static_chunks(10, 0)

    @given(n=st.integers(0, 1000), p=st.integers(1, 64))
    def test_coverage_and_disjointness(self, n, p):
        """Chunks partition [0, n) exactly: every iteration appears in
        exactly one chunk, in order."""
        chunks = static_chunks(n, p)
        assert len(chunks) == p
        flat = [i for c in chunks for i in c]
        assert flat == list(range(n))

    @given(n=st.integers(1, 1000), p=st.integers(1, 64))
    def test_balance(self, n, p):
        """Static scheduling never unbalances by more than one."""
        sizes = [len(c) for c in static_chunks(n, p)]
        assert max(sizes) - min(sizes) <= 1


class TestChunkOfIteration:
    @given(n=st.integers(1, 500), p=st.integers(1, 32))
    def test_agrees_with_chunks(self, n, p):
        chunks = static_chunks(n, p)
        for t, chunk in enumerate(chunks):
            for i in chunk:
                assert chunk_of_iteration(n, p, i) == t

    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            chunk_of_iteration(10, 2, 10)
