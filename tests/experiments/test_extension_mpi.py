"""Extension experiment tests (distributed Jacobi scaling)."""

import pytest

from repro.experiments.extension_mpi import run


@pytest.fixture(scope="module")
def result():
    return run(fast=True)


class TestExtensionMpi:
    def test_runs_and_renders(self, result):
        assert "Jacobi-2D" in result.render()

    def test_three_clusters(self, result):
        clusters = {row[0] for row in result.rows}
        assert len(clusters) == 3
        assert any("25GbE" in c for c in clusters)
        assert any("Slingshot" in c for c in clusters)

    def test_single_node_pe_is_one(self, result):
        for row in result.rows:
            if row[1] == 1:
                assert float(row[4]) == pytest.approx(1.0)

    def test_speedups_relative_to_one_node(self, result):
        for row in result.rows:
            assert float(row[3]) > 0

    def test_registered(self):
        from repro.experiments import ALL_EXPERIMENTS

        assert "extension_mpi" in ALL_EXPERIMENTS


class TestConclusionsExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.conclusions import run as run_conclusions

        return run_conclusions(fast=True)

    def test_covers_all_stated_claims(self, result):
        # 2 RISC-V rows + 14 x86 rows + 2 Sandybridge-multi rows.
        assert len(result.rows) == 18

    def test_sandybridge_multi_rows_show_sg2042_winning(self, result):
        sb_rows = [r for r in result.rows if "Sandybridge vs" in r[0]
                   and "multi" in r[0]]
        assert len(sb_rows) == 2
        for row in sb_rows:
            assert "SG2042 wins" in row[2]

    def test_single_core_factors_in_band(self, result):
        """Every single-core measured factor within 2x of the paper's."""
        for claim, paper, measured in result.rows:
            if "single" not in claim or "C920" in claim:
                continue
            paper_val = float(paper.rstrip("x"))
            measured_val = float(measured.split("x")[0])
            assert paper_val / 2 < measured_val < paper_val * 2, claim

    def test_registered(self):
        from repro.experiments import ALL_EXPERIMENTS

        assert "conclusions" in ALL_EXPERIMENTS
