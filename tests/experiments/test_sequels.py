"""The sequel experiments: SG2044 crossover + 2-socket scaling."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import sequels


@pytest.fixture(scope="module")
def crossover():
    return sequels.run_crossover(fast=True)


@pytest.fixture(scope="module")
def scaling():
    return sequels.run_scaling(fast=True)


class TestRegistration:
    def test_registered(self):
        assert ALL_EXPERIMENTS["sequel_crossover"] is sequels.run_crossover
        assert ALL_EXPERIMENTS["sequel_sockets"] is sequels.run_scaling

    def test_default_entry_point(self):
        assert sequels.run is sequels.run_crossover


class TestCrossover:
    def test_covers_all_kernels(self, crossover):
        assert len(crossover.rows) == 64
        assert crossover.exp_id == "sequel_crossover"

    def test_sg2044_wins_overall(self, crossover):
        """Native RVV 1.0 + DDR5 must beat the C920 on most kernels —
        the sequel paper's headline."""
        wins = sum(1 for row in crossover.rows if row[5] == "SG2044")
        assert wins > 32

    def test_renders_with_class_geomeans(self, crossover):
        text = crossover.render()
        assert "geomean" in text
        assert "SG2044" in text

    def test_chart_data_per_class(self, crossover):
        classes = [entry[0] for entry in crossover.chart_data]
        assert classes == sorted(classes)
        assert "stream" in classes


class TestScaling:
    def test_both_machines_swept(self, scaling):
        machines = {row[0] for row in scaling.rows}
        assert machines == {"SG2042 1S", "SG2042 2S"}

    def test_sockets_used_column(self, scaling):
        for row in scaling.rows:
            label, threads, sockets = row[0], row[1], row[2]
            if label == "SG2042 2S" and threads == 128:
                assert sockets == 2
            elif threads <= 64:
                assert sockets == 1

    def test_stream_collapses_across_sockets(self, scaling):
        """The paper's collapse: the stream class is *slower* at 128
        threads (two sockets) than at 64 (one socket)."""
        stream = {
            (row[0], row[1]): float(row[4]) for row in scaling.rows
        }
        assert stream[("SG2042 2S", 128)] > stream[("SG2042 2S", 64)]

    def test_notes_name_the_collapse(self, scaling):
        notes = " ".join(scaling.notes)
        assert "slower" in notes
        assert "socket" in notes
