"""Every experiment must run and render; spot checks on their rows."""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.common import (
    CLASS_ORDER,
    ExperimentResult,
    best_threaded_run,
)
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def results():
    """Run every experiment once in fast mode (shared across tests)."""
    return {name: fn(fast=True) for name, fn in EXPERIMENTS.items()}


class TestAllExperiments:
    def test_registry_covers_all_tables_and_figures(self):
        expected = {
            "figure1", "figure2", "figure3", "figure4", "figure5",
            "figure6", "figure7", "table1", "table2", "table3", "table4",
        }
        assert set(EXPERIMENTS) == expected

    def test_all_run_and_render(self, results):
        for name, result in results.items():
            assert isinstance(result, ExperimentResult)
            text = result.render()
            assert result.title in text
            assert len(text.splitlines()) >= 3, name

    def test_exp_ids_match_registry_keys(self, results):
        for name, result in results.items():
            assert result.exp_id == name

    def test_csv_export(self, results):
        for name, result in results.items():
            csv = result.to_csv()
            assert csv.count("\n") == len(result.rows)


class TestSpecificRows:
    def test_figure1_has_five_configurations(self, results):
        assert len(results["figure1"].rows) == 5

    def test_scaling_tables_sweep_threads(self, results):
        for name in ("table1", "table2", "table3"):
            threads = [row[0] for row in results[name].rows]
            assert threads == sorted(threads)
            assert threads[0] == 2

    def test_scaling_tables_have_class_columns(self, results):
        headers = results["table1"].headers
        for klass in CLASS_ORDER:
            assert f"{klass.value} speedup" in headers

    def test_figure2_has_both_precisions(self, results):
        labels = [row[0] for row in results["figure2"].rows]
        assert any("fp32" in lbl for lbl in labels)
        assert any("fp64" in lbl for lbl in labels)

    def test_figure3_covers_polybench(self, results):
        names = {row[0] for row in results["figure3"].rows}
        assert {"2MM", "3MM", "GEMM", "FLOYD_WARSHALL", "HEAT_3D",
                "JACOBI_1D", "JACOBI_2D"} <= names

    def test_figure3_signs_match_paper(self, results):
        rows = {row[0]: row for row in results["figure3"].rows}
        for name in ("2MM", "3MM", "GEMM", "JACOBI_2D"):
            assert float(rows[name][2]) < 0, name  # Clang VLS slower
        for name in ("FLOYD_WARSHALL", "HEAT_3D"):
            assert float(rows[name][2]) > 0, name

    def test_figure3_vls_at_least_vla(self, results):
        for row in results["figure3"].rows:
            assert float(row[2]) >= float(row[1]) - 1e-9, row[0]

    def test_table4_lists_four_x86(self, results):
        rows = results["table4"].rows
        assert len(rows) == 4
        parts = {row[1] for row in rows}
        assert parts == {
            "EPYC 7742", "Xeon E5-2695", "Xeon 6330", "Xeon E5-2609"
        }

    def test_x86_figures_have_four_rows(self, results):
        for name in ("figure4", "figure5", "figure6", "figure7"):
            assert len(results[name].rows) == 4, name


class TestBestThreadedRun:
    def test_x86_uses_all_cores(self, intel_broadwell):
        from repro.suite.config import Precision

        result = best_threaded_run(
            intel_broadwell, Precision.FP64, fast=True
        )
        assert result.config.threads == 18

    def test_sg2042_tries_32_and_64(self, sg2042):
        from repro.suite.config import Precision

        result = best_threaded_run(sg2042, Precision.FP32, fast=True)
        assert result.config.threads in (32, 64)


class TestExperimentResult:
    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentResult(
                exp_id="x", title="t", headers=("a",), rows=()
            )
