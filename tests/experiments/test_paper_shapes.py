"""Integration tests: the paper's headline qualitative shapes.

These are the acceptance criteria from DESIGN.md — who wins, by roughly
what factor, and where the crossovers fall. Absolute numbers are not
expected to match (our substrate is a model, not the authors' testbed);
the *shapes* are asserted here.
"""

import pytest

from repro.kernels.base import KernelClass
from repro.machine import catalog
from repro.suite.config import Placement, Precision, RunConfig
from repro.suite.report import (
    class_speedups,
    class_summaries,
    kernel_relative,
    suite_average_relative,
)
from repro.suite.runner import run_suite
from repro.util.stats import from_relative

CFG = dict(noise_sigma=0.0, runs=1)


@pytest.fixture(scope="module")
def sg():
    return catalog.sg2042()


@pytest.fixture(scope="module")
def sg_fp32_1t(sg):
    return run_suite(sg, RunConfig(threads=1, precision="fp32", **CFG))


@pytest.fixture(scope="module")
def sg_fp64_1t(sg):
    return run_suite(sg, RunConfig(threads=1, precision="fp64", **CFG))


class TestFigure1Shapes:
    """C920 vs U74 and V1 vs V2."""

    @pytest.fixture(scope="class")
    def v2_fp64(self):
        return run_suite(
            catalog.visionfive_v2(),
            RunConfig(threads=1, precision="fp64", **CFG),
        )

    def test_c920_fp64_four_to_sevenfold(self, v2_fp64, sg_fp64_1t):
        """Paper: 4.3-6.5x class averages at FP64."""
        for summary in class_summaries(v2_fp64, sg_fp64_1t).values():
            ratio = from_relative(summary.mean)
            assert 3.0 < ratio < 8.0

    def test_c920_fp32_five_to_fifteenfold(self, v2_fp64, sg_fp32_1t):
        """Paper: 5.6-11.8x class averages at FP32."""
        for summary in class_summaries(v2_fp64, sg_fp32_1t).values():
            ratio = from_relative(summary.mean)
            assert 4.5 < ratio < 16.0

    def test_no_kernel_slower_on_c920(self, v2_fp64, sg_fp64_1t,
                                      sg_fp32_1t):
        """Paper: 'there were no kernels that ran slower on the C920'."""
        for result in (sg_fp64_1t, sg_fp32_1t):
            rel = kernel_relative(v2_fp64, result)
            assert min(rel.values()) > 0

    def test_v1_slower_than_v2_with_fp64_asymmetry(self, v2_fp64):
        """Paper: V1 is 3-6x slower at FP64 but only 1-3x at FP32."""
        v1 = catalog.visionfive_v1()
        v1_fp64 = run_suite(
            v1, RunConfig(threads=1, precision="fp64", **CFG)
        )
        v1_fp32 = run_suite(
            v1, RunConfig(threads=1, precision="fp32", **CFG)
        )
        v2_fp32 = run_suite(
            catalog.visionfive_v2(),
            RunConfig(threads=1, precision="fp32", **CFG),
        )
        slow64 = 1 / from_relative(suite_average_relative(v2_fp64, v1_fp64))
        slow32 = 1 / from_relative(suite_average_relative(v2_fp32, v1_fp32))
        assert slow64 > 2.5
        # The asymmetry: FP64 hurts the bandwidth-starved V1 more. The
        # paper's gap (3-6x vs 1-3x) is larger than the pure-bandwidth
        # mechanism reproduces; we assert the direction and a 1.25x gap.
        assert slow64 > 1.25 * slow32


class TestTables123Shapes:
    """Placement-policy scaling."""

    def _speedups(self, sg, baseline, threads, placement):
        run = run_suite(
            sg,
            RunConfig(threads=threads, precision="fp32",
                      placement=placement, **CFG),
        )
        return class_speedups(baseline, run)

    def test_cyclic_beats_block_at_32(self, sg, sg_fp32_1t):
        block = self._speedups(sg, sg_fp32_1t, 32, Placement.BLOCK)
        cyclic = self._speedups(sg, sg_fp32_1t, 32, Placement.CYCLIC)
        for klass in KernelClass:
            assert cyclic[klass][0] >= 0.95 * block[klass][0], klass
        # Stream shows the dramatic gap the paper reports (13.91 vs 0.82).
        assert cyclic[KernelClass.STREAM][0] > 5 * (
            block[KernelClass.STREAM][0]
        )

    def test_block_stream_collapses_at_32(self, sg, sg_fp32_1t):
        """Paper Table 1: stream speedup 0.82 at 32 threads (slower
        than one thread)."""
        block = self._speedups(sg, sg_fp32_1t, 32, Placement.BLOCK)
        assert block[KernelClass.STREAM][0] < 1.5

    def test_cluster_beats_cyclic_up_to_32(self, sg, sg_fp32_1t):
        """Paper Table 3: cluster-aware placement helps through 32
        threads."""
        for threads in (8, 16, 32):
            cyclic = self._speedups(sg, sg_fp32_1t, threads,
                                    Placement.CYCLIC)
            cluster = self._speedups(sg, sg_fp32_1t, threads,
                                     Placement.CLUSTER)
            better = sum(
                1
                for klass in KernelClass
                if cluster[klass][0] >= cyclic[klass][0] * 0.98
            )
            assert better >= 4, threads

    def test_placements_coincide_at_64(self, sg, sg_fp32_1t):
        """At 64 threads every core is active: all policies equal."""
        results = [
            self._speedups(sg, sg_fp32_1t, 64, p)
            for p in (Placement.BLOCK, Placement.CYCLIC, Placement.CLUSTER)
        ]
        for klass in KernelClass:
            values = [r[klass][0] for r in results]
            assert max(values) - min(values) < 0.05 * max(values)

    def test_polybench_scales_best(self, sg, sg_fp32_1t):
        cyclic = self._speedups(sg, sg_fp32_1t, 64, Placement.CYCLIC)
        poly = cyclic[KernelClass.POLYBENCH][0]
        for klass in KernelClass:
            assert poly >= cyclic[klass][0], klass

    def test_stream_collapses_at_64(self, sg, sg_fp32_1t):
        """Paper: stream speedup drops to ~1.6-1.8 at 64 threads."""
        cyclic32 = self._speedups(sg, sg_fp32_1t, 32, Placement.CYCLIC)
        cyclic64 = self._speedups(sg, sg_fp32_1t, 64, Placement.CYCLIC)
        assert (
            cyclic64[KernelClass.STREAM][0]
            < 0.6 * cyclic32[KernelClass.STREAM][0]
        )

    def test_superlinear_stream_pe_with_cluster_placement(
        self, sg, sg_fp32_1t
    ):
        """Paper Table 3 reports PE up to 1.40 for stream — the shared
        L2 capacity effect."""
        cluster = self._speedups(sg, sg_fp32_1t, 16, Placement.CLUSTER)
        assert cluster[KernelClass.STREAM][1] > 1.0


class TestFigure2Shapes:
    """Vectorization on/off."""

    def _summaries(self, sg, precision):
        scalar = run_suite(
            sg,
            RunConfig(threads=1, precision=precision, vectorize=False,
                      **CFG),
        )
        vector = run_suite(
            sg, RunConfig(threads=1, precision=precision, **CFG)
        )
        return class_summaries(scalar, vector)

    def test_fp64_benefit_marginal(self, sg):
        summaries = self._summaries(sg, Precision.FP64)
        for klass, s in summaries.items():
            assert s.mean < 0.1, klass

    def test_fp64_basic_whisker_is_the_integer_kernel(self, sg):
        """One integer kernel drives the basic-class FP64 average up."""
        summaries = self._summaries(sg, Precision.FP64)
        assert summaries[KernelClass.BASIC].maximum > 0.2

    def test_fp32_benefit_positive_and_stream_largest(self, sg):
        summaries = self._summaries(sg, Precision.FP32)
        stream = summaries[KernelClass.STREAM].mean
        assert stream > 0.5
        for klass, s in summaries.items():
            assert s.mean >= -0.05, klass
            assert stream >= s.mean, klass


class TestFigures45Shapes:
    """Single-core x86 vs SG2042."""

    @pytest.mark.parametrize(
        "factory,lo,hi",
        [
            (catalog.amd_rome, 2.5, 6.0),
            (catalog.intel_broadwell, 2.5, 6.0),
            (catalog.intel_icelake, 3.0, 7.0),
            (catalog.intel_sandybridge, 1.0, 2.5),
        ],
    )
    def test_fp64_single_core_averages(self, sg_fp64_1t, factory, lo, hi):
        other = run_suite(
            factory(), RunConfig(threads=1, precision="fp64", **CFG)
        )
        avg = from_relative(
            suite_average_relative(sg_fp64_1t, other)
        )
        assert lo < avg < hi, factory.__name__

    def test_sandybridge_not_faster_for_stream_fp64(self, sg_fp64_1t):
        """Paper: SB performs slower on average for stream (and
        algorithm) at FP64 — its 10MiB L3 cannot hold the stream
        arrays while the SG2042's 64MiB system cache can."""
        sb = run_suite(
            catalog.intel_sandybridge(),
            RunConfig(threads=1, precision="fp64", **CFG),
        )
        summary = class_summaries(sg_fp64_1t, sb)[KernelClass.STREAM]
        assert summary.mean < 0.3

    def test_sandybridge_faster_everywhere_fp32(self, sg_fp32_1t):
        sb = run_suite(
            catalog.intel_sandybridge(),
            RunConfig(threads=1, precision="fp32", **CFG),
        )
        summaries = class_summaries(sg_fp32_1t, sb)
        for klass, s in summaries.items():
            assert s.mean > 0, klass


class TestFigures67Shapes:
    """Multithreaded x86 vs SG2042."""

    def _best(self, cpu, precision):
        from repro.experiments.common import best_threaded_run

        return best_threaded_run(cpu, precision, fast=True)

    @pytest.mark.parametrize("precision", ["fp64", "fp32"])
    def test_sg2042_beats_sandybridge_everywhere(self, sg, precision):
        prec = Precision.from_label(precision)
        base = self._best(sg, prec)
        sb = self._best(catalog.intel_sandybridge(), prec)
        for klass, s in class_summaries(base, sb).items():
            assert s.mean < 0, (precision, klass)

    @pytest.mark.parametrize("precision", ["fp64", "fp32"])
    def test_big_x86_beat_sg2042_on_average(self, sg, precision):
        prec = Precision.from_label(precision)
        base = self._best(sg, prec)
        for factory in (
            catalog.amd_rome,
            catalog.intel_broadwell,
            catalog.intel_icelake,
        ):
            other = self._best(factory(), prec)
            avg = from_relative(suite_average_relative(base, other))
            # Paper band is 4-8x; the model lands 2.5-13x (Rome's
            # cache-resident scaling is over-strong — see EXPERIMENTS.md).
            assert 1.5 < avg < 15.0, (factory.__name__, precision)
