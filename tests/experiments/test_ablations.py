"""Ablation tests: removing a modelled mechanism must remove exactly the
phenomenon it explains."""

import pytest

from repro.experiments.ablations import (
    ABLATIONS,
)


@pytest.fixture(scope="module")
def results():
    return {name: fn(fast=True) for name, fn in ABLATIONS.items()}


class TestAblationRegistry:
    def test_four_ablations(self):
        assert len(ABLATIONS) == 4

    def test_all_render(self, results):
        for name, result in results.items():
            assert result.render()
            assert result.exp_id == name


class TestL3Slicing:
    def test_sliced_l3_creates_placement_gap(self, results):
        rows = results["ablation_l3_slicing"].rows
        sliced, unified = rows
        # With slicing: big cyclic/block ratio; unified: ~1.
        assert float(sliced[3].rstrip("x")) > 5.0
        assert float(unified[3].rstrip("x")) < 1.5


class TestL3Contention:
    def test_contention_causes_collapse(self, results):
        rows = results["ablation_l3_contention"].rows
        base, ablated = rows
        assert base[3] == "collapses"
        assert ablated[3] == "keeps scaling"


class TestL2Sharing:
    def test_shared_l2_gives_cluster_advantage(self, results):
        rows = results["ablation_l2_sharing"].rows
        base, private = rows
        assert float(base[3].rstrip("x")) > 1.3
        assert float(private[3].rstrip("x")) == pytest.approx(1.0,
                                                              abs=0.1)


class TestBarrier:
    def test_free_barriers_improve_apps_scaling(self, results):
        rows = results["ablation_barrier"].rows
        base, free = rows
        assert float(free[2]) > float(base[2])  # 64-thread speedup
        assert float(free[1]) >= float(base[1])  # 2-thread speedup
