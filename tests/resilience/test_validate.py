"""Machine-description validator: catalog passes, corruption is caught."""

from dataclasses import replace

import pytest

from repro.machine.cache import CacheHierarchy, CacheLevel, Sharing
from repro.resilience.validate import cpu_violations, validate_cpu
from repro.util.errors import ConfigError


class TestCatalogIsValid:
    def test_every_catalog_machine_passes(self, all_cpus):
        for name, cpu in all_cpus.items():
            assert cpu_violations(cpu) == [], name

    def test_validate_cpu_is_silent_on_valid(self, sg2042):
        validate_cpu(sg2042)


class TestCorruptionCaught:
    def test_non_monotone_cache_capacities(self, sg2042):
        # Valid per-level and latency-monotone, but L2 smaller than L1:
        # only the cross-cutting validator can catch this.
        shrinking = CacheHierarchy(levels=(
            CacheLevel(name="L1D", capacity_bytes=64 * 1024,
                       sharing=Sharing.CORE, latency_cycles=4),
            CacheLevel(name="L2", capacity_bytes=32 * 1024,
                       sharing=Sharing.CLUSTER, latency_cycles=12),
        ))
        with pytest.raises(ConfigError, match="monotone"):
            replace(sg2042, caches=shrinking)

    def test_fractional_fp_issue_width(self, sg2042):
        with pytest.raises(ConfigError, match="issue width"):
            replace(sg2042, core=replace(
                sg2042.core, fp_ops_per_cycle=0.5
            ))

    def test_fractional_ls_issue_width(self, sg2042):
        with pytest.raises(ConfigError, match="issue width"):
            replace(sg2042, core=replace(
                sg2042.core, ls_ops_per_cycle=0.25
            ))

    def test_violation_message_names_machine(self, sg2042):
        with pytest.raises(ConfigError, match="Sophon SG2042"):
            replace(sg2042, core=replace(
                sg2042.core, fp_ops_per_cycle=0.5
            ))

    def test_all_violations_listed(self, sg2042):
        core = replace(
            sg2042.core, fp_ops_per_cycle=0.5, ls_ops_per_cycle=0.5
        )
        with pytest.raises(ConfigError) as err:
            replace(sg2042, core=core)
        assert "fp_ops_per_cycle" in str(err.value)
        assert "ls_ops_per_cycle" in str(err.value)
