"""Retry engine: policies, backoff schedule, deadlines, records."""

import pytest

from repro.resilience.retry import (
    FailurePolicy,
    FailureRecord,
    RetryExhaustedError,
    RetrySpec,
    call_with_retry,
)
from repro.util.errors import ConfigError, TransientError


class Flaky:
    """Callable failing the first ``failures`` times."""

    def __init__(self, failures: int, value: float = 42.0):
        self.failures = failures
        self.calls = 0
        self.value = value

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise TransientError(f"flake #{self.calls}")
        return self.value


class TestFailurePolicy:
    def test_labels_round_trip(self):
        for policy in FailurePolicy:
            assert FailurePolicy.from_label(policy.value) is policy

    def test_unknown_label(self):
        with pytest.raises(ConfigError):
            FailurePolicy.from_label("panic")


class TestRetrySpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetrySpec(max_retries=-1)
        with pytest.raises(ConfigError):
            RetrySpec(backoff_base_s=-0.1)
        with pytest.raises(ConfigError):
            RetrySpec(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            RetrySpec(deadline_s=0)

    def test_backoff_schedule_is_exponential(self):
        spec = RetrySpec(backoff_base_s=0.1, backoff_factor=2.0)
        assert spec.backoff_seconds(1) == pytest.approx(0.1)
        assert spec.backoff_seconds(2) == pytest.approx(0.2)
        assert spec.backoff_seconds(3) == pytest.approx(0.4)
        with pytest.raises(ConfigError):
            spec.backoff_seconds(0)


class TestCallWithRetry:
    def test_success_first_try(self):
        value, attempts = call_with_retry(Flaky(0), RetrySpec())
        assert (value, attempts) == (42.0, 1)

    def test_success_after_retries(self):
        value, attempts = call_with_retry(
            Flaky(2), RetrySpec(max_retries=3)
        )
        assert (value, attempts) == (42.0, 3)

    def test_exhaustion_raises_with_counts(self):
        with pytest.raises(RetryExhaustedError) as err:
            call_with_retry(Flaky(10), RetrySpec(max_retries=2))
        assert err.value.attempts == 3
        assert isinstance(err.value.last, TransientError)

    def test_zero_retries_means_single_attempt(self):
        flaky = Flaky(1)
        with pytest.raises(RetryExhaustedError):
            call_with_retry(flaky, RetrySpec(max_retries=0))
        assert flaky.calls == 1

    def test_non_repro_errors_propagate_immediately(self):
        def broken():
            raise ValueError("bug, not flake")

        with pytest.raises(ValueError):
            call_with_retry(broken, RetrySpec(max_retries=5))

    def test_backoff_sleeps_recorded(self):
        sleeps: list[float] = []
        with pytest.raises(RetryExhaustedError):
            call_with_retry(
                Flaky(10),
                RetrySpec(max_retries=3, backoff_base_s=0.5,
                          backoff_factor=2.0),
                sleep=sleeps.append,
            )
        assert sleeps == [0.5, 1.0, 2.0]

    def test_zero_backoff_never_sleeps(self):
        sleeps: list[float] = []
        call_with_retry(
            Flaky(2), RetrySpec(max_retries=3), sleep=sleeps.append
        )
        assert sleeps == []

    def test_deadline_stops_retries(self):
        now = [0.0]

        def clock():
            now[0] += 10.0
            return now[0]

        with pytest.raises(RetryExhaustedError) as err:
            call_with_retry(
                Flaky(10),
                RetrySpec(max_retries=100, deadline_s=25.0),
                clock=clock,
            )
        # start=10; retries allowed while elapsed < 25 -> a handful of
        # attempts, far fewer than the 101-attempt budget.
        assert err.value.attempts < 10


class TestFailureRecord:
    def test_from_exception_captures_site(self):
        exc = TransientError("injected")
        exc.fault_site = "run"
        record = FailureRecord.from_exception("TRIAD", exc, 4)
        assert record.kernel == "TRIAD"
        assert record.error_type == "TransientError"
        assert record.attempts == 4
        assert record.site == "run"

    def test_from_exception_without_site(self):
        record = FailureRecord.from_exception(
            "GEMM", ConfigError("bad"), 1
        )
        assert record.site is None


class TestJitter:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetrySpec(jitter=-0.1)
        with pytest.raises(ConfigError):
            RetrySpec(jitter=1.5)

    def test_zero_jitter_keeps_the_deterministic_schedule(self):
        spec = RetrySpec(backoff_base_s=0.1, backoff_factor=2.0)
        assert spec.backoff_seconds(2) == pytest.approx(0.2)

    def test_full_jitter_stays_inside_the_envelope(self):
        import random

        spec = RetrySpec(backoff_base_s=0.1, backoff_factor=2.0,
                         jitter=1.0)
        rng = random.Random(1234)
        for retry_index in (1, 2, 3):
            envelope = 0.1 * 2.0 ** (retry_index - 1)
            for _ in range(200):
                pause = spec.backoff_seconds(retry_index, rng=rng)
                assert 0.0 <= pause <= envelope

    def test_partial_jitter_randomizes_only_the_tail(self):
        import random

        spec = RetrySpec(backoff_base_s=1.0, jitter=0.25)
        rng = random.Random(7)
        for _ in range(200):
            pause = spec.backoff_seconds(1, rng=rng)
            assert 0.75 <= pause <= 1.0

    def test_pinned_seed_is_deterministic(self):
        import random

        spec = RetrySpec(backoff_base_s=0.1, jitter=1.0)
        draws_a = [
            spec.backoff_seconds(i, rng=random.Random(99))
            for i in (1, 2, 3)
        ]
        draws_b = [
            spec.backoff_seconds(i, rng=random.Random(99))
            for i in (1, 2, 3)
        ]
        assert draws_a == draws_b

    def test_jitter_actually_varies_the_schedule(self):
        import random

        spec = RetrySpec(backoff_base_s=0.1, jitter=1.0)
        rng = random.Random(5)
        draws = {spec.backoff_seconds(1, rng=rng) for _ in range(20)}
        assert len(draws) > 1

    def test_zero_base_never_sleeps_even_with_jitter(self):
        spec = RetrySpec(backoff_base_s=0.0, jitter=1.0)
        assert spec.backoff_seconds(1) == 0.0

    def test_call_with_retry_threads_the_rng_through(self):
        import random

        sleeps = []
        spec = RetrySpec(max_retries=2, backoff_base_s=0.1, jitter=1.0)
        call_with_retry(
            Flaky(2), spec,
            sleep=sleeps.append, rng=random.Random(42),
        )
        expected_rng = random.Random(42)
        expected = [
            spec.backoff_seconds(i, rng=expected_rng) for i in (1, 2)
        ]
        assert sleeps == expected

    def test_module_rng_used_when_none_given(self):
        spec = RetrySpec(backoff_base_s=0.1, jitter=1.0)
        pause = spec.backoff_seconds(1)
        assert 0.0 <= pause <= 0.1
