"""Checkpoint/resume: integrity header, torn lines, mid-grid resume
without recomputation, and seed-identical resumed results."""

import json

import pytest

from repro.kernels.registry import get_kernel
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    SweepCheckpoint,
    point_key,
)
from repro.suite.config import Placement, Precision
from repro.suite import sweep as sweep_mod
from repro.suite.sweep import sweep
from repro.util.errors import CheckpointError


KERNELS = ("TRIAD", "GEMM", "DOT")
GRID = dict(
    threads=(1, 8),
    placements=(Placement.CLUSTER,),
    precisions=(Precision.FP32,),
)


def grid_kernels():
    return [get_kernel(name) for name in KERNELS]


def run_grid(cpu, **kwargs):
    return sweep(cpu, grid_kernels(), **GRID, **kwargs)


class TestSweepCheckpointFile:
    def test_creates_header(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        SweepCheckpoint(path, grid_hash=123)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {
            "version": CHECKPOINT_VERSION, "grid_hash": 123,
        }

    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ck = SweepCheckpoint(path, grid_hash=1)
        ck.record({"threads": 1, "placement": "cluster",
                   "precision": "fp32", "kernel": "TRIAD",
                   "seconds": 0.5})
        again = SweepCheckpoint(path, grid_hash=1)
        assert len(again) == 1
        assert again.has(point_key(1, "cluster", "fp32", "TRIAD"))

    def test_mismatched_grid_hash_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        SweepCheckpoint(path, grid_hash=1)
        with pytest.raises(CheckpointError, match="different sweep"):
            SweepCheckpoint(path, grid_hash=2)

    def test_unreadable_header_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(CheckpointError, match="header"):
            SweepCheckpoint(path, grid_hash=1)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text(json.dumps(
            {"version": 999, "grid_hash": 1}
        ) + "\n")
        with pytest.raises(CheckpointError, match="version"):
            SweepCheckpoint(path, grid_hash=1)

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ck = SweepCheckpoint(path, grid_hash=1)
        ck.record({"threads": 1, "placement": "cluster",
                   "precision": "fp32", "kernel": "TRIAD",
                   "seconds": 0.5})
        with path.open("a") as fh:
            fh.write('{"threads": 8, "placement": "clu')  # kill mid-write
        again = SweepCheckpoint(path, grid_hash=1)
        assert len(again) == 1

    def test_corrupt_interior_line_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        SweepCheckpoint(path, grid_hash=1)
        lines = path.read_text()
        path.write_text(lines + "garbage\n" + json.dumps({
            "threads": 1, "placement": "cluster", "precision": "fp32",
            "kernel": "TRIAD", "seconds": 0.5,
        }) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            SweepCheckpoint(path, grid_hash=1)

    def test_missing_point_fields_rejected(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "ck.jsonl", grid_hash=1)
        with pytest.raises(CheckpointError, match="missing"):
            ck.record({"threads": 1, "seconds": 0.5})

    def test_duplicate_record_is_idempotent(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ck = SweepCheckpoint(path, grid_hash=1)
        point = {"threads": 1, "placement": "cluster",
                 "precision": "fp32", "kernel": "TRIAD", "seconds": 0.5}
        ck.record(point)
        ck.record(point)
        assert len(path.read_text().splitlines()) == 2  # header + 1


class TestSweepResume:
    def test_full_run_writes_all_points(self, sg2042, tmp_path):
        path = tmp_path / "sweep.jsonl"
        result = run_grid(sg2042, checkpoint=path)
        assert len(result.points) == 6
        assert len(path.read_text().splitlines()) == 7  # header + 6

    def test_resume_skips_completed_points(
        self, sg2042, tmp_path, monkeypatch
    ):
        path = tmp_path / "sweep.jsonl"
        full = run_grid(sg2042, checkpoint=path)

        # Simulate a kill after 4 completed points: drop the last 2.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:5]) + "\n")

        ran: list[str] = []
        real_run_suite = sweep_mod.run_suite

        def counting_run_suite(cpu, config, kernels=None, **kwargs):
            ran.extend(k.name for k in kernels)
            return real_run_suite(cpu, config, kernels=kernels, **kwargs)

        monkeypatch.setattr(sweep_mod, "run_suite", counting_run_suite)
        resumed = run_grid(sg2042, checkpoint=path)
        assert len(ran) == 2  # only the dropped points recompute
        assert [(p.kernel, p.threads, p.seconds) for p in resumed.points] \
            == [(p.kernel, p.threads, p.seconds) for p in full.points]

    def test_fully_checkpointed_sweep_runs_nothing(
        self, sg2042, tmp_path, monkeypatch
    ):
        path = tmp_path / "sweep.jsonl"
        full = run_grid(sg2042, checkpoint=path)

        def exploding_run_suite(*args, **kwargs):
            raise AssertionError("should not recompute anything")

        monkeypatch.setattr(sweep_mod, "run_suite", exploding_run_suite)
        resumed = run_grid(sg2042, checkpoint=path)
        assert [p.seconds for p in resumed.points] \
            == [p.seconds for p in full.points]

    def test_resumed_numbers_match_uncheckpointed_run(
        self, sg2042, tmp_path
    ):
        path = tmp_path / "sweep.jsonl"
        run_grid(sg2042, checkpoint=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")
        resumed = run_grid(sg2042, checkpoint=path)
        plain = run_grid(sg2042)
        assert [(p.kernel, p.seconds) for p in resumed.points] \
            == [(p.kernel, p.seconds) for p in plain.points]

    def test_different_grid_rejects_checkpoint(self, sg2042, tmp_path):
        path = tmp_path / "sweep.jsonl"
        run_grid(sg2042, checkpoint=path)
        with pytest.raises(CheckpointError, match="different sweep"):
            sweep(
                sg2042, grid_kernels(),
                threads=(1, 32),  # different axis
                placements=(Placement.CLUSTER,),
                precisions=(Precision.FP32,),
                checkpoint=path,
            )

    def test_failed_kernels_are_not_checkpointed(self, sg2042, tmp_path):
        from repro.resilience import chaos
        from repro.resilience.faults import transient_plan
        from repro.resilience.retry import FailurePolicy

        path = tmp_path / "sweep.jsonl"
        always = transient_plan(seed=1, probability=1.0)
        with chaos.inject_faults(always):
            run_grid(sg2042, checkpoint=path,
                     policy=FailurePolicy.SKIP)
        assert len(path.read_text().splitlines()) == 1  # header only
        # Resume without the faults: everything recomputes cleanly.
        resumed = run_grid(sg2042, checkpoint=path)
        assert len(resumed.points) == 6


class TestCrashSafety:
    def test_header_written_atomically_no_temp_left(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        SweepCheckpoint(path, grid_hash=1)
        assert path.exists()
        assert not (tmp_path / "ck.jsonl.tmp").exists()

    def test_valid_json_final_line_missing_fields_tolerated(
        self, tmp_path
    ):
        """A final line can tear *within* valid JSON (flushed through a
        page boundary): parseable but missing point fields. Resume must
        recompute that point, not fail."""
        path = tmp_path / "ck.jsonl"
        ck = SweepCheckpoint(path, grid_hash=1)
        ck.record({"threads": 1, "placement": "cluster",
                   "precision": "fp32", "kernel": "TRIAD",
                   "seconds": 0.5})
        with path.open("a") as fh:
            fh.write('{"threads": 8}\n')
        again = SweepCheckpoint(path, grid_hash=1)
        assert len(again) == 1
        assert again.has(point_key(1, "cluster", "fp32", "TRIAD"))

    def test_interior_line_missing_fields_still_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        SweepCheckpoint(path, grid_hash=1)
        good = json.dumps({"threads": 1, "placement": "cluster",
                           "precision": "fp32", "kernel": "TRIAD",
                           "seconds": 0.5})
        with path.open("a") as fh:
            fh.write('{"threads": 8}\n')
            fh.write(good + "\n")
        with pytest.raises(CheckpointError, match="missing"):
            SweepCheckpoint(path, grid_hash=1)

    def test_resume_after_torn_tail_recomputes_only_that_point(
        self, sg2042, tmp_path
    ):
        path = tmp_path / "sweep.jsonl"
        clean = run_grid(sg2042)
        run_grid(sg2042, checkpoint=path)
        # Simulate a mid-write kill: tear the final record.
        lines = path.read_text().splitlines()
        torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        path.write_text(torn)
        resumed = run_grid(sg2042, checkpoint=path)
        assert [
            (p.kernel, p.threads, p.seconds) for p in resumed.points
        ] == [
            (p.kernel, p.threads, p.seconds) for p in clean.points
        ]
        # The file healed: every line after the header is complete JSON.
        for line in path.read_text().splitlines()[1:]:
            json.loads(line)

    def test_record_survives_reload_after_every_append(self, tmp_path):
        """Each record() is durable on its own: reloading after every
        single append sees everything written so far."""
        path = tmp_path / "ck.jsonl"
        ck = SweepCheckpoint(path, grid_hash=1)
        for index, kernel in enumerate(("TRIAD", "GEMM", "DOT")):
            ck.record({"threads": 1, "placement": "cluster",
                       "precision": "fp32", "kernel": kernel,
                       "seconds": float(index)})
            assert len(SweepCheckpoint(path, grid_hash=1)) == index + 1
