"""Fault plan semantics: determinism, matching, serialization."""

import pytest

from repro.kernels.base import KernelClass
from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    FaultSite,
    load_fault_plan,
    transient_plan,
)
from repro.util.errors import ConfigError


class TestFaultRule:
    def test_probability_bounds(self):
        with pytest.raises(ConfigError):
            FaultRule(site=FaultSite.RUN, probability=1.5)
        with pytest.raises(ConfigError):
            FaultRule(site=FaultSite.RUN, probability=-0.1)

    def test_string_site_coerced(self):
        rule = FaultRule(site="run")
        assert rule.site is FaultSite.RUN

    def test_kernel_names_uppercased(self):
        rule = FaultRule(site=FaultSite.RUN, kernels=("triad",))
        assert rule.matches("TRIAD", None)
        assert not rule.matches("GEMM", None)

    def test_class_filter(self):
        rule = FaultRule(site=FaultSite.RUN, klass=KernelClass.STREAM)
        assert rule.matches("TRIAD", KernelClass.STREAM)
        assert not rule.matches("GEMM", KernelClass.POLYBENCH)

    def test_bad_prediction_mode_rejected(self):
        with pytest.raises(ConfigError):
            FaultRule(site=FaultSite.PREDICTION, mode="zero")

    def test_max_failures_positive(self):
        with pytest.raises(ConfigError):
            FaultRule(site=FaultSite.RUN, max_failures=0)

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError):
            FaultSite.from_label("meteor-strike")


class TestFaultPlanDeterminism:
    def test_same_seed_same_decisions(self):
        a = transient_plan(seed=11, probability=0.3)
        b = transient_plan(seed=11, probability=0.3)
        decisions_a = [
            a.fires(FaultSite.RUN, "TRIAD", None, n, 0) is not None
            for n in range(1, 50)
        ]
        decisions_b = [
            b.fires(FaultSite.RUN, "TRIAD", None, n, 0) is not None
            for n in range(1, 50)
        ]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seeds_differ(self):
        a = transient_plan(seed=1, probability=0.5)
        b = transient_plan(seed=2, probability=0.5)
        decisions_a = [
            a.fires(FaultSite.RUN, "TRIAD", None, n, 0) is not None
            for n in range(1, 100)
        ]
        decisions_b = [
            b.fires(FaultSite.RUN, "TRIAD", None, n, 0) is not None
            for n in range(1, 100)
        ]
        assert decisions_a != decisions_b

    def test_probability_one_always_fires(self):
        plan = transient_plan(seed=3, probability=1.0)
        assert plan.fires(FaultSite.RUN, "X", None, 1, 0) is not None

    def test_probability_zero_never_fires(self):
        plan = transient_plan(seed=3, probability=0.0)
        assert all(
            plan.fires(FaultSite.RUN, "X", None, n, 0) is None
            for n in range(1, 30)
        )

    def test_max_failures_stops_firing(self):
        plan = transient_plan(seed=5, probability=1.0, max_failures=2)
        assert plan.fires(FaultSite.RUN, "X", None, 1, 0) is not None
        assert plan.fires(FaultSite.RUN, "X", None, 2, 1) is not None
        assert plan.fires(FaultSite.RUN, "X", None, 3, 2) is None

    def test_wrong_site_never_fires(self):
        plan = transient_plan(seed=5, probability=1.0)
        assert plan.fires(FaultSite.SIMULATE, "X", None, 1, 0) is None

    def test_bad_attempt_rejected(self):
        plan = transient_plan(seed=5, probability=1.0)
        with pytest.raises(ConfigError):
            plan.fires(FaultSite.RUN, "X", None, 0, 0)

    def test_rate_roughly_matches_probability(self):
        plan = transient_plan(seed=9, probability=0.2)
        fired = sum(
            plan.fires(FaultSite.RUN, f"K{i}", None, 1, 0) is not None
            for i in range(500)
        )
        assert 60 <= fired <= 140  # 0.2 +- generous tolerance


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=42,
            rules=(
                FaultRule(site=FaultSite.RUN, probability=0.2,
                          max_failures=2),
                FaultRule(site=FaultSite.PREDICTION, probability=1.0,
                          kernels=("TRIAD",), mode="negative"),
                FaultRule(site=FaultSite.SIMULATE,
                          klass=KernelClass.STREAM),
            ),
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(transient_plan(1, 0.5).to_json())
        assert load_fault_plan(path) == transient_plan(1, 0.5)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            load_fault_plan(tmp_path / "absent.json")

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_json("{not json")
        with pytest.raises(ConfigError):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ConfigError):
            FaultPlan.from_json("{}")  # no seed

    def test_rule_needs_site(self):
        with pytest.raises(ConfigError):
            FaultRule.from_dict({"probability": 0.5})
