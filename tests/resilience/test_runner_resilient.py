"""Resilient suite execution under injected faults — the acceptance
scenarios: a seeded 20% transient failure rate across the full suite
must complete under the retry policy (everything eventually succeeds,
attempts recorded) and under the skip policy (failures listed, surviving
points intact), while the no-plan path stays seed-identical."""

import pytest

from repro.kernels.registry import all_kernels, get_kernel
from repro.resilience import chaos
from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    FaultSite,
    transient_plan,
)
from repro.resilience.retry import FailurePolicy, RetrySpec
from repro.suite.config import Placement, Precision, RunConfig
from repro.suite.report import failure_summary
from repro.suite.runner import run_suite
from repro.suite.sweep import sweep
from repro.util.errors import ConfigError, ReproError

#: The acceptance-criteria plan: 20% per-kernel transient failures,
#: bounded at 2 injected failures per kernel so retry always converges.
TWENTY_PCT = transient_plan(seed=2042, probability=0.2, max_failures=2)


@pytest.fixture
def config():
    return RunConfig(threads=4, precision="fp32")


class TestRetryPolicy:
    def test_full_suite_completes_with_attempts_recorded(
        self, sg2042, config
    ):
        with chaos.inject_faults(TWENTY_PCT):
            result = run_suite(
                sg2042, config,
                policy=FailurePolicy.RETRY,
                retry=RetrySpec(max_retries=3),
            )
            injected = len(chaos.injection_log())
        assert len(result.runs) == 64
        assert not result.failures
        retried = [r for r in result.runs.values() if r.attempts > 1]
        assert injected > 0
        assert len(retried) > 0
        assert result.total_attempts() == 64 + injected

    def test_retry_results_match_fault_free_run(self, sg2042, config):
        with chaos.inject_faults(TWENTY_PCT):
            faulted = run_suite(
                sg2042, config,
                policy=FailurePolicy.RETRY,
                retry=RetrySpec(max_retries=3),
            )
        clean = run_suite(sg2042, config)
        for name in clean.runs:
            assert faulted.time(name) == clean.time(name)

    def test_exhausted_retries_degrade_to_failure(self, sg2042, config):
        always = transient_plan(seed=1, probability=1.0)
        with chaos.inject_faults(always):
            result = run_suite(
                sg2042, config,
                kernels=[get_kernel("TRIAD"), get_kernel("GEMM")],
                policy=FailurePolicy.RETRY,
                retry=RetrySpec(max_retries=2),
            )
        assert not result.runs
        assert len(result.failures) == 2
        assert all(f.attempts == 3 for f in result.failures)
        assert all(f.site == "run" for f in result.failures)


class TestSkipPolicy:
    def test_failures_listed_and_survivors_intact(self, sg2042, config):
        with chaos.inject_faults(TWENTY_PCT):
            result = run_suite(
                sg2042, config, policy=FailurePolicy.SKIP
            )
        assert result.failures  # 20% of 64 — some must fail
        assert len(result.runs) + len(result.failures) == 64
        clean = run_suite(sg2042, config)
        for name in result.runs:
            assert result.time(name) == clean.time(name)

    def test_time_on_failed_kernel_explains_failure(self, sg2042, config):
        always = transient_plan(seed=1, probability=1.0)
        with chaos.inject_faults(always):
            result = run_suite(
                sg2042, config, kernels=[get_kernel("TRIAD")],
                policy=FailurePolicy.SKIP,
            )
        with pytest.raises(ConfigError, match="failed after 1 attempt"):
            result.time("TRIAD")

    def test_failure_summary_renders_gaps(self, sg2042, config):
        with chaos.inject_faults(TWENTY_PCT):
            result = run_suite(
                sg2042, config, policy=FailurePolicy.SKIP
            )
        text = failure_summary(result)
        assert "failed" in text
        assert "[injected: run]" in text

    def test_failure_summary_clean_suite(self, sg2042, config):
        result = run_suite(sg2042, config)
        assert "all 64 kernels ok" in failure_summary(result)


class TestAbortPolicy:
    def test_abort_is_default_and_raises(self, sg2042, config):
        always = transient_plan(seed=1, probability=1.0)
        with chaos.inject_faults(always):
            with pytest.raises(ReproError):
                run_suite(sg2042, config)


class TestOtherSites:
    def test_simulate_site_degrades_gracefully(self, sg2042, config):
        plan = FaultPlan(seed=3, rules=(
            FaultRule(site=FaultSite.SIMULATE, probability=1.0,
                      kernels=("TRIAD",)),
        ))
        with chaos.inject_faults(plan):
            result = run_suite(
                sg2042, config, policy=FailurePolicy.SKIP
            )
        assert result.failed_kernels().keys() == {"TRIAD"}
        assert result.failed_kernels()["TRIAD"].error_type == (
            "SimulationError"
        )

    @pytest.mark.parametrize("mode", ["nan", "negative"])
    def test_prediction_corruption_is_caught_not_silent(
        self, sg2042, config, mode
    ):
        plan = FaultPlan(seed=3, rules=(
            FaultRule(site=FaultSite.PREDICTION, probability=1.0,
                      kernels=("TRIAD",), mode=mode),
        ))
        with chaos.inject_faults(plan):
            result = run_suite(
                sg2042, config, policy=FailurePolicy.SKIP
            )
        assert "TRIAD" in result.failed_kernels()
        # Corruption never leaks into the surviving numbers.
        assert all(r.seconds > 0 for r in result.runs.values())

    def test_machine_site_aborts_whole_config(self, sg2042, config):
        plan = FaultPlan(seed=3, rules=(
            FaultRule(site=FaultSite.MACHINE, probability=1.0),
        ))
        with chaos.inject_faults(plan):
            with pytest.raises(ConfigError, match="machine description"):
                run_suite(sg2042, config, policy=FailurePolicy.SKIP)


class TestSweepResilience:
    def test_sweep_skip_policy_records_failures(self, sg2042):
        with chaos.inject_faults(TWENTY_PCT):
            result = sweep(
                sg2042,
                kernels=all_kernels(),
                threads=(1,),
                placements=(Placement.CLUSTER,),
                precisions=(Precision.FP32,),
                policy=FailurePolicy.SKIP,
            )
        assert result.failures
        assert len(result.points) + len(result.failures) == 64
        clean = sweep(
            sg2042,
            kernels=all_kernels(),
            threads=(1,),
            placements=(Placement.CLUSTER,),
            precisions=(Precision.FP32,),
        )
        clean_by_kernel = {p.kernel: p.seconds for p in clean.points}
        for point in result.points:
            assert point.seconds == clean_by_kernel[point.kernel]

    def test_sweep_retry_policy_completes_grid(self, sg2042):
        with chaos.inject_faults(TWENTY_PCT):
            result = sweep(
                sg2042,
                kernels=all_kernels(),
                threads=(1, 8),
                placements=(Placement.CLUSTER,),
                precisions=(Precision.FP32,),
                policy=FailurePolicy.RETRY,
                retry=RetrySpec(max_retries=3),
            )
        assert not result.failures
        assert len(result.points) == 128

    def test_machine_fault_fails_config_not_grid(self, sg2042):
        # Fault on the first MACHINE evaluation only: the first config
        # fails wholesale, the second completes.
        plan = FaultPlan(seed=3, rules=(
            FaultRule(site=FaultSite.MACHINE, probability=1.0,
                      max_failures=1),
        ))
        kernels = [get_kernel("TRIAD"), get_kernel("GEMM")]
        with chaos.inject_faults(plan):
            result = sweep(
                sg2042, kernels,
                threads=(1, 8),
                placements=(Placement.CLUSTER,),
                precisions=(Precision.FP32,),
                policy=FailurePolicy.SKIP,
            )
        assert [f.kernel for f in result.failures] == ["*"]
        assert {p.threads for p in result.points} == {8}
        assert "failure(s)" in result.failure_summary()

    def test_sweep_abort_policy_raises(self, sg2042):
        always = transient_plan(seed=1, probability=1.0)
        with chaos.inject_faults(always):
            with pytest.raises(ReproError):
                sweep(
                    sg2042, [get_kernel("TRIAD")],
                    threads=(1,),
                    placements=(Placement.CLUSTER,),
                    precisions=(Precision.FP32,),
                )


class TestSeedIdentical:
    def test_hardened_path_matches_historical_numbers(self, sg2042):
        """No plan installed: every policy produces identical numbers."""
        config = RunConfig(threads=8, precision="fp32")
        baseline = run_suite(sg2042, config)
        for policy in (FailurePolicy.SKIP, FailurePolicy.RETRY):
            hardened = run_suite(
                sg2042, config, policy=policy, retry=RetrySpec()
            )
            assert not hardened.failures
            for name in baseline.runs:
                assert hardened.time(name) == baseline.time(name)
