"""Chaos hook behaviour: sites, attempt counting, exception types."""

import math

import pytest

from repro.resilience import chaos
from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    FaultSite,
    transient_plan,
)
from repro.util.errors import (
    ConfigError,
    SimulationError,
    TransientError,
)


def always(site, **kwargs):
    return FaultPlan(seed=0, rules=(
        FaultRule(site=site, probability=1.0, **kwargs),
    ))


class TestHooks:
    def test_noop_without_plan(self):
        chaos.raise_if_fault(FaultSite.RUN, "TRIAD")
        assert chaos.corrupt_value(
            FaultSite.PREDICTION, "TRIAD", 1.25
        ) == 1.25
        assert chaos.active_plan() is None

    def test_run_site_raises_transient(self):
        with chaos.inject_faults(always(FaultSite.RUN)):
            with pytest.raises(TransientError) as err:
                chaos.raise_if_fault(FaultSite.RUN, "TRIAD")
        assert err.value.fault_site == "run"

    def test_simulate_site_raises_simulation_error(self):
        with chaos.inject_faults(always(FaultSite.SIMULATE)):
            with pytest.raises(SimulationError):
                chaos.raise_if_fault(FaultSite.SIMULATE, "TRIAD")

    def test_machine_site_raises_config_error(self):
        with chaos.inject_faults(always(FaultSite.MACHINE)):
            with pytest.raises(ConfigError):
                chaos.raise_if_fault(FaultSite.MACHINE)

    def test_prediction_nan_corruption(self):
        with chaos.inject_faults(always(FaultSite.PREDICTION, mode="nan")):
            value = chaos.corrupt_value(FaultSite.PREDICTION, "X", 2.0)
        assert math.isnan(value)

    def test_prediction_negative_corruption(self):
        with chaos.inject_faults(
            always(FaultSite.PREDICTION, mode="negative")
        ):
            assert chaos.corrupt_value(
                FaultSite.PREDICTION, "X", 2.0
            ) == -2.0

    def test_transient_clears_after_max_failures(self):
        plan = transient_plan(seed=1, probability=1.0, max_failures=2)
        with chaos.inject_faults(plan):
            for _ in range(2):
                with pytest.raises(TransientError):
                    chaos.raise_if_fault(FaultSite.RUN, "TRIAD")
            chaos.raise_if_fault(FaultSite.RUN, "TRIAD")  # healed
            # Counters are per kernel: a fresh kernel fails again.
            with pytest.raises(TransientError):
                chaos.raise_if_fault(FaultSite.RUN, "GEMM")

    def test_injection_log_records_faults(self):
        plan = transient_plan(seed=1, probability=1.0, max_failures=1)
        with chaos.inject_faults(plan):
            with pytest.raises(TransientError):
                chaos.raise_if_fault(FaultSite.RUN, "TRIAD")
            log = chaos.injection_log()
        assert len(log) == 1
        assert log[0].kernel == "TRIAD"
        assert log[0].site is FaultSite.RUN
        assert log[0].attempt == 1

    def test_counters_reset_per_installation(self):
        plan = transient_plan(seed=1, probability=1.0, max_failures=1)
        for _ in range(2):
            with chaos.inject_faults(plan):
                with pytest.raises(TransientError):
                    chaos.raise_if_fault(FaultSite.RUN, "TRIAD")

    def test_nested_plans_rejected(self):
        plan = transient_plan(seed=1, probability=1.0)
        with chaos.inject_faults(plan):
            with pytest.raises(ConfigError):
                with chaos.inject_faults(plan):
                    pass

    def test_plan_uninstalled_after_exception(self):
        plan = transient_plan(seed=1, probability=1.0)
        with pytest.raises(RuntimeError):
            with chaos.inject_faults(plan):
                raise RuntimeError("boom")
        assert chaos.active_plan() is None
