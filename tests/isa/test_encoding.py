"""Assembly parser/renderer tests."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import (
    Instruction,
    parse_assembly,
    parse_line,
    render_assembly,
)
from repro.util.errors import IsaError


class TestParseLine:
    def test_simple_instruction(self):
        inst = parse_line("    vadd.vv v0, v1, v2")
        assert inst.mnemonic == "vadd.vv"
        assert inst.operands == ("v0", "v1", "v2")

    def test_label_only(self):
        inst = parse_line("loop:")
        assert inst.label == "loop"
        assert not inst.is_code

    def test_label_with_instruction(self):
        inst = parse_line("loop: vle32.v v1, (a1)")
        assert inst.label == "loop"
        assert inst.mnemonic == "vle32.v"

    def test_directive(self):
        inst = parse_line("    .align 2")
        assert inst.directive == ".align 2"
        assert not inst.is_code

    def test_comment_stripped(self):
        inst = parse_line("    add a0, a0, t0  # bump pointer")
        assert inst.comment == "bump pointer"
        assert inst.operands == ("a0", "a0", "t0")

    def test_blank_line_is_none(self):
        assert parse_line("   ") is None

    def test_mnemonic_lowercased(self):
        assert parse_line("VSETVLI t0, a0, e32").mnemonic == "vsetvli"

    def test_empty_operand_rejected(self):
        with pytest.raises(IsaError):
            parse_line("add a0,, t0")

    def test_vsetvli_operands(self):
        inst = parse_line("vsetvli t0, a0, e32, m1, ta, ma")
        assert inst.operands == ("t0", "a0", "e32", "m1", "ta", "ma")


class TestRoundTrip:
    def test_parse_render_parse_fixpoint(self):
        src = "\n".join(
            [
                "loop:",
                "    vsetvli t0, a0, e32, m1, ta, ma",
                "    vle32.v v1, (a1)",
                "    vfadd.vv v0, v1, v1",
                "    vse32.v v0, (a3)",
                "    sub a0, a0, t0",
                "    bnez a0, loop",
                "    ret",
            ]
        )
        once = parse_assembly(src)
        twice = parse_assembly(render_assembly(once))
        assert [(i.mnemonic, i.operands, i.label) for i in once] == [
            (i.mnemonic, i.operands, i.label) for i in twice
        ]

    def test_line_numbers_in_errors(self):
        with pytest.raises(IsaError, match="line 2"):
            parse_assembly("add a0, a0, t0\nadd a0,, t0")

    @given(
        st.lists(
            st.sampled_from(
                ["add a0, a1, a2", "vadd.vv v0, v1, v2", "loop:",
                 "ret", "    .word 0"]
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_roundtrip_property(self, lines):
        text = "\n".join(lines)
        once = parse_assembly(text)
        twice = parse_assembly(render_assembly(once))
        assert [(i.mnemonic, i.operands) for i in once] == [
            (i.mnemonic, i.operands) for i in twice
        ]


class TestInstruction:
    def test_with_mnemonic_preserves_rest(self):
        inst = Instruction(mnemonic="vle32.v", operands=("v1", "(a1)"),
                           comment="load")
        new = inst.with_mnemonic("vle.v")
        assert new.mnemonic == "vle.v"
        assert new.operands == inst.operands
        assert new.comment == "load"

    def test_render_label_and_code(self):
        inst = Instruction(mnemonic="ret", label="done")
        assert inst.render().startswith("done: ret")
