"""Property-based fuzzing of the codegen -> rollback pipeline.

For any loop the code generator can emit in RVV v1.0, the rollback tool
must produce valid v0.7.1 assembly, idempotently, preserving the scalar
skeleton.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler.model import VectorFlavor
from repro.isa.codegen import LoopSpec, generate_loop
from repro.isa.encoding import parse_assembly, render_assembly
from repro.isa.rollback import rollback
from repro.isa.rvv import RVV_0_7_1
from repro.machine.vector import DType

SPEC_STRATEGY = st.builds(
    LoopSpec,
    dtype=st.sampled_from([DType.FP32, DType.FP64, DType.FP16]),
    num_inputs=st.sampled_from([1, 2]),
    ops=st.lists(
        st.sampled_from(
            ["vfadd.vv", "vfmul.vv", "vfmacc.vv", "vfsub.vv",
             "vfmin.vv", "vfmax.vv"]
        ),
        min_size=1,
        max_size=4,
    ).map(tuple),
    has_store=st.booleans(),
)

FLAVORS = st.sampled_from([VectorFlavor.VLS, VectorFlavor.VLA])


@settings(max_examples=60, deadline=None)
@given(spec=SPEC_STRATEGY, flavor=FLAVORS)
def test_rolled_back_output_always_valid_v071(spec, flavor):
    text = render_assembly(generate_loop(spec, flavor, rvv_version="1.0"))
    rolled = rollback(text)
    for inst in parse_assembly(rolled):
        if inst.is_code and inst.mnemonic.startswith("v"):
            RVV_0_7_1.validate_mnemonic(inst.mnemonic)


@settings(max_examples=40, deadline=None)
@given(spec=SPEC_STRATEGY, flavor=FLAVORS)
def test_rollback_idempotent(spec, flavor):
    text = render_assembly(generate_loop(spec, flavor, rvv_version="1.0"))
    once = rollback(text)
    assert rollback(once) == once


@settings(max_examples=40, deadline=None)
@given(spec=SPEC_STRATEGY, flavor=FLAVORS)
def test_rollback_preserves_scalar_skeleton(spec, flavor):
    """Scalar control flow and arithmetic instructions pass through
    untouched, in order."""
    original = generate_loop(spec, flavor, rvv_version="1.0")
    rolled = parse_assembly(rollback(render_assembly(original)))

    def scalars(instructions):
        return [
            (i.mnemonic, i.operands)
            for i in instructions
            if i.is_code
            and not i.mnemonic.startswith("v")
            and i.mnemonic != "li"  # vsetivli expansion may add li
        ]

    assert scalars(original) == scalars(rolled)


@settings(max_examples=40, deadline=None)
@given(spec=SPEC_STRATEGY, flavor=FLAVORS)
def test_v071_codegen_needs_no_rollback(spec, flavor):
    """Assembly generated directly in the v0.7.1 dialect passes through
    rollback unchanged (nothing to rewrite)."""
    text = render_assembly(
        generate_loop(spec, flavor, rvv_version="0.7.1")
    )
    assert rollback(text) == text
