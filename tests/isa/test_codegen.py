"""Vector loop code generator tests, including the VLA/VLS contrast and
the full generate -> rollback pipeline."""

import pytest

from repro.compiler.model import VectorFlavor
from repro.isa.codegen import (
    LoopSpec,
    count_dynamic_instructions,
    generate_loop,
)
from repro.isa.encoding import render_assembly
from repro.isa.rollback import rollback
from repro.isa.rvv import RVV_0_7_1, RVV_1_0
from repro.machine.vector import DType
from repro.util.errors import IsaError

TRIAD = LoopSpec(
    dtype=DType.FP32, num_inputs=2, ops=("vfmul.vf", "vfadd.vv")[:1],
)


def triad_spec():
    return LoopSpec(
        dtype=DType.FP32, num_inputs=2, ops=("vfmacc.vv",), has_store=True
    )


class TestGeneration:
    def test_vls_has_one_vsetvli_outside_loop(self):
        insts = generate_loop(triad_spec(), VectorFlavor.VLS)
        vsets = [i for i in insts if i.mnemonic == "vsetvli"]
        assert len(vsets) == 1
        # The single vsetvli precedes the loop label.
        labels = [i for i in insts if i.label]
        assert insts.index(vsets[0]) < insts.index(labels[0])

    def test_vla_renegotiates_inside_loop(self):
        insts = generate_loop(triad_spec(), VectorFlavor.VLA)
        vsets = [i for i in insts if i.mnemonic == "vsetvli"]
        assert len(vsets) == 1
        assert vsets[0].label == "vla_loop"  # inside the loop

    def test_v10_uses_width_encoded_memory_ops(self):
        insts = generate_loop(
            triad_spec(), VectorFlavor.VLS, rvv_version="1.0"
        )
        ms = {i.mnemonic for i in insts}
        assert "vle32.v" in ms and "vse32.v" in ms

    def test_v071_uses_sew_implicit_memory_ops(self):
        insts = generate_loop(
            triad_spec(), VectorFlavor.VLS, rvv_version="0.7.1"
        )
        ms = {i.mnemonic for i in insts}
        assert "vle.v" in ms and "vse.v" in ms

    def test_fp64_selects_e64(self):
        spec = LoopSpec(dtype=DType.FP64, num_inputs=1, ops=("vfadd.vv",))
        insts = generate_loop(spec, VectorFlavor.VLS)
        vset = next(i for i in insts if i.mnemonic == "vsetvli")
        assert "e64" in vset.operands

    def test_emitted_dialects_validate(self):
        for version, dialect in (("1.0", RVV_1_0), ("0.7.1", RVV_0_7_1)):
            insts = generate_loop(
                triad_spec(), VectorFlavor.VLA, rvv_version=version
            )
            for inst in insts:
                if inst.mnemonic.startswith("v"):
                    dialect.validate_mnemonic(inst.mnemonic)

    def test_unknown_version_rejected(self):
        with pytest.raises(IsaError):
            generate_loop(triad_spec(), VectorFlavor.VLS, rvv_version="2.0")

    def test_bad_spec_rejected(self):
        with pytest.raises(IsaError):
            LoopSpec(dtype=DType.FP32, num_inputs=3, ops=("vfadd.vv",))


class TestPipelineWithRollback:
    """The paper's Clang flow: emit v1.0, roll back, run on the C920."""

    @pytest.mark.parametrize("flavor", [VectorFlavor.VLS, VectorFlavor.VLA])
    def test_rolled_back_output_is_valid_v071(self, flavor):
        insts = generate_loop(triad_spec(), flavor, rvv_version="1.0")
        rolled = rollback(render_assembly(insts))
        from repro.isa.encoding import parse_assembly

        for inst in parse_assembly(rolled):
            if inst.is_code and inst.mnemonic.startswith("v"):
                RVV_0_7_1.validate_mnemonic(inst.mnemonic)

    def test_rollback_preserves_loop_structure(self):
        insts = generate_loop(
            triad_spec(), VectorFlavor.VLS, rvv_version="1.0"
        )
        rolled = rollback(render_assembly(insts))
        assert "vls_loop" in rolled
        assert "bnez" in rolled


class TestDynamicCounts:
    def test_vla_executes_more_instructions_than_vls(self):
        """The strip-mining overhead that makes VLA slower (Figure 3)."""
        spec = triad_spec()
        n = 10_000
        vla = count_dynamic_instructions(spec, VectorFlavor.VLA, n)
        vls = count_dynamic_instructions(spec, VectorFlavor.VLS, n)
        assert vla > vls

    def test_counts_scale_with_n(self):
        spec = triad_spec()
        small = count_dynamic_instructions(spec, VectorFlavor.VLS, 1000)
        large = count_dynamic_instructions(spec, VectorFlavor.VLS, 2000)
        assert large > small

    def test_wider_elements_mean_more_strips(self):
        fp64 = LoopSpec(dtype=DType.FP64, num_inputs=2, ops=("vfmacc.vv",))
        fp32 = triad_spec()
        n = 4096
        assert count_dynamic_instructions(
            fp64, VectorFlavor.VLS, n
        ) > count_dynamic_instructions(fp32, VectorFlavor.VLS, n)

    def test_negative_n_rejected(self):
        with pytest.raises(IsaError):
            count_dynamic_instructions(triad_spec(), VectorFlavor.VLS, -1)
