"""Vector loop code generator tests, including the VLA/VLS contrast and
the full generate -> rollback pipeline."""

import pytest

from repro.compiler.model import VectorFlavor
from repro.isa.codegen import (
    LoopSpec,
    count_dynamic_instructions,
    generate_dot_loop,
    generate_loop,
)
from repro.isa.encoding import render_assembly
from repro.isa.rollback import rollback
from repro.isa.rvv import RVV_0_7_1, RVV_1_0
from repro.machine.vector import DType
from repro.util.errors import IsaError

TRIAD = LoopSpec(
    dtype=DType.FP32, num_inputs=2, ops=("vfmul.vf", "vfadd.vv")[:1],
)


def triad_spec():
    return LoopSpec(
        dtype=DType.FP32, num_inputs=2, ops=("vfmacc.vv",), has_store=True
    )


class TestGeneration:
    def test_vls_has_one_vsetvli_outside_loop(self):
        insts = generate_loop(triad_spec(), VectorFlavor.VLS)
        vsets = [i for i in insts if i.mnemonic == "vsetvli"]
        assert len(vsets) == 1
        # The single vsetvli precedes the loop label.
        labels = [i for i in insts if i.label]
        assert insts.index(vsets[0]) < insts.index(labels[0])

    def test_vla_renegotiates_inside_loop(self):
        insts = generate_loop(triad_spec(), VectorFlavor.VLA)
        vsets = [i for i in insts if i.mnemonic == "vsetvli"]
        assert len(vsets) == 1
        assert vsets[0].label == "vla_loop"  # inside the loop

    def test_v10_uses_width_encoded_memory_ops(self):
        insts = generate_loop(
            triad_spec(), VectorFlavor.VLS, rvv_version="1.0"
        )
        ms = {i.mnemonic for i in insts}
        assert "vle32.v" in ms and "vse32.v" in ms

    def test_v071_uses_sew_implicit_memory_ops(self):
        insts = generate_loop(
            triad_spec(), VectorFlavor.VLS, rvv_version="0.7.1"
        )
        ms = {i.mnemonic for i in insts}
        assert "vle.v" in ms and "vse.v" in ms

    def test_fp64_selects_e64(self):
        spec = LoopSpec(dtype=DType.FP64, num_inputs=1, ops=("vfadd.vv",))
        insts = generate_loop(spec, VectorFlavor.VLS)
        vset = next(i for i in insts if i.mnemonic == "vsetvli")
        assert "e64" in vset.operands

    def test_emitted_dialects_validate(self):
        for version, dialect in (("1.0", RVV_1_0), ("0.7.1", RVV_0_7_1)):
            insts = generate_loop(
                triad_spec(), VectorFlavor.VLA, rvv_version=version
            )
            for inst in insts:
                if inst.mnemonic.startswith("v"):
                    dialect.validate_mnemonic(inst.mnemonic)

    def test_unknown_version_rejected(self):
        with pytest.raises(IsaError):
            generate_loop(triad_spec(), VectorFlavor.VLS, rvv_version="2.0")

    def test_bad_spec_rejected(self):
        with pytest.raises(IsaError):
            LoopSpec(dtype=DType.FP32, num_inputs=3, ops=("vfadd.vv",))


class TestLoadDest:
    """The TRSM/SYRK-style load-modify-store update pattern."""

    def update_spec(self):
        return LoopSpec(
            dtype=DType.FP64, num_inputs=2, ops=("vfnmsac.vv",),
            has_store=True, load_dest=True,
        )

    def test_destination_is_loaded_not_zeroed(self):
        insts = generate_loop(self.update_spec(), VectorFlavor.VLS)
        mnemonics = [i.mnemonic for i in insts]
        assert "vmv.v.i" not in mnemonics
        dest_loads = [
            i for i in insts
            if i.mnemonic == "vle64.v" and "(a3)" in i.operands
        ]
        assert len(dest_loads) == 1

    def test_without_load_dest_accumulator_is_zeroed(self):
        spec = LoopSpec(
            dtype=DType.FP64, num_inputs=2, ops=("vfnmsac.vv",)
        )
        insts = generate_loop(spec, VectorFlavor.VLS)
        assert "vmv.v.i" in [i.mnemonic for i in insts]

    def test_load_dest_requires_a_store(self):
        with pytest.raises(IsaError, match="store"):
            LoopSpec(
                dtype=DType.FP64, num_inputs=2, ops=("vfmacc.vv",),
                has_store=False, load_dest=True,
            )


class TestDotLoop:
    """The BLAS inner-product microkernel, both flavours and dialects."""

    def test_v10_uses_tail_undisturbed_policy(self):
        insts = generate_dot_loop(DType.FP64, VectorFlavor.VLS)
        vsets = [i for i in insts if i.mnemonic == "vsetvli"]
        assert vsets and all("tu" in v.operands for v in vsets)
        assert all("ta" not in v.operands for v in vsets)

    def test_v10_folds_with_vfredusum_and_vsetivli(self):
        mnemonics = [
            i.mnemonic
            for i in generate_dot_loop(DType.FP64, VectorFlavor.VLS)
        ]
        assert "vfredusum.vs" in mnemonics
        assert "vsetivli" in mnemonics

    def test_v071_folds_with_vfredsum_and_no_policy_flags(self):
        insts = generate_dot_loop(
            DType.FP64, VectorFlavor.VLS, rvv_version="0.7.1"
        )
        mnemonics = [i.mnemonic for i in insts]
        assert "vfredsum.vs" in mnemonics
        assert "vsetivli" not in mnemonics
        for inst in insts:
            if inst.mnemonic == "vsetvli":
                assert "tu" not in inst.operands

    def test_vls_flavour_has_the_strip_mine_remainder_idiom(self):
        insts = generate_dot_loop(DType.FP64, VectorFlavor.VLS)
        mnemonics = [i.mnemonic for i in insts]
        for branch in ("bltu", "bgeu", "beqz", "bnez"):
            assert branch in mnemonics
        labels = {i.label for i in insts if i.label}
        assert {"dot_main", "dot_rem", "dot_fold"} <= labels

    def test_vla_flavour_strip_mines_one_loop(self):
        insts = generate_dot_loop(DType.FP64, VectorFlavor.VLA)
        labels = {i.label for i in insts if i.label}
        assert "dot_loop" in labels
        assert "dot_main" not in labels

    @pytest.mark.parametrize(
        "flavor", [VectorFlavor.VLS, VectorFlavor.VLA]
    )
    def test_rolled_back_dot_loop_is_valid_v071(self, flavor):
        from repro.isa.encoding import parse_assembly

        rolled = rollback(
            render_assembly(generate_dot_loop(DType.FP64, flavor))
        )
        for inst in parse_assembly(rolled):
            if inst.is_code and inst.mnemonic.startswith("v"):
                RVV_0_7_1.validate_mnemonic(inst.mnemonic)

    def test_unknown_version_rejected(self):
        with pytest.raises(IsaError):
            generate_dot_loop(
                DType.FP64, VectorFlavor.VLS, rvv_version="2.0"
            )


class TestPipelineWithRollback:
    """The paper's Clang flow: emit v1.0, roll back, run on the C920."""

    @pytest.mark.parametrize("flavor", [VectorFlavor.VLS, VectorFlavor.VLA])
    def test_rolled_back_output_is_valid_v071(self, flavor):
        insts = generate_loop(triad_spec(), flavor, rvv_version="1.0")
        rolled = rollback(render_assembly(insts))
        from repro.isa.encoding import parse_assembly

        for inst in parse_assembly(rolled):
            if inst.is_code and inst.mnemonic.startswith("v"):
                RVV_0_7_1.validate_mnemonic(inst.mnemonic)

    def test_rollback_preserves_loop_structure(self):
        insts = generate_loop(
            triad_spec(), VectorFlavor.VLS, rvv_version="1.0"
        )
        rolled = rollback(render_assembly(insts))
        assert "vls_loop" in rolled
        assert "bnez" in rolled


class TestDynamicCounts:
    def test_vla_executes_more_instructions_than_vls(self):
        """The strip-mining overhead that makes VLA slower (Figure 3)."""
        spec = triad_spec()
        n = 10_000
        vla = count_dynamic_instructions(spec, VectorFlavor.VLA, n)
        vls = count_dynamic_instructions(spec, VectorFlavor.VLS, n)
        assert vla > vls

    def test_counts_scale_with_n(self):
        spec = triad_spec()
        small = count_dynamic_instructions(spec, VectorFlavor.VLS, 1000)
        large = count_dynamic_instructions(spec, VectorFlavor.VLS, 2000)
        assert large > small

    def test_wider_elements_mean_more_strips(self):
        fp64 = LoopSpec(dtype=DType.FP64, num_inputs=2, ops=("vfmacc.vv",))
        fp32 = triad_spec()
        n = 4096
        assert count_dynamic_instructions(
            fp64, VectorFlavor.VLS, n
        ) > count_dynamic_instructions(fp32, VectorFlavor.VLS, n)

    def test_negative_n_rejected(self):
        with pytest.raises(IsaError):
            count_dynamic_instructions(triad_spec(), VectorFlavor.VLS, -1)
