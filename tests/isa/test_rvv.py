"""RVV dialect table tests."""

import pytest

from repro.isa.rvv import RVV_0_7_1, RVV_1_0, sew_bits
from repro.util.errors import IsaError


class TestDialectMembership:
    def test_v10_memory_ops_not_in_v071(self):
        assert RVV_1_0.is_vector("vle32.v")
        assert not RVV_0_7_1.is_vector("vle32.v")

    def test_v071_memory_ops_not_in_v10(self):
        assert RVV_0_7_1.is_vector("vle.v")
        assert not RVV_1_0.is_vector("vle.v")

    def test_common_ops_in_both(self):
        for m in ("vfadd.vv", "vfmacc.vv", "vsetvli", "vredsum.vs"):
            assert RVV_0_7_1.is_vector(m)
            assert RVV_1_0.is_vector(m)

    def test_renamed_pairs_split_correctly(self):
        assert RVV_0_7_1.is_vector("vpopc.m")
        assert RVV_1_0.is_vector("vcpop.m")
        assert not RVV_1_0.is_vector("vpopc.m")
        assert not RVV_0_7_1.is_vector("vcpop.m")


class TestValidateMnemonic:
    def test_wrong_dialect_raises_with_version(self):
        with pytest.raises(IsaError, match="not part of RVV 0.7.1"):
            RVV_0_7_1.validate_mnemonic("vle32.v")

    def test_unknown_vector_op_raises(self):
        with pytest.raises(IsaError, match="unknown vector"):
            RVV_1_0.validate_mnemonic("vmadeup.vv")

    def test_scalar_ops_pass(self):
        RVV_0_7_1.validate_mnemonic("add")
        RVV_0_7_1.validate_mnemonic("bnez")


class TestValidateVsetvli:
    def test_v071_accepts_plain(self):
        RVV_0_7_1.validate_vsetvli(("t0", "a0", "e32", "m1"))

    def test_v071_rejects_policy_flags(self):
        with pytest.raises(IsaError, match="v1.0-only"):
            RVV_0_7_1.validate_vsetvli(
                ("t0", "a0", "e32", "m1", "ta", "ma")
            )

    def test_v10_accepts_policy_flags(self):
        RVV_1_0.validate_vsetvli(("t0", "a0", "e32", "m1", "ta", "ma"))

    def test_v071_rejects_fractional_lmul(self):
        with pytest.raises(IsaError, match="mf2"):
            RVV_0_7_1.validate_vsetvli(("t0", "a0", "e32", "mf2"))

    def test_v10_accepts_fractional_lmul(self):
        RVV_1_0.validate_vsetvli(("t0", "a0", "e32", "mf2"))

    def test_invalid_sew_rejected(self):
        with pytest.raises(IsaError, match="SEW"):
            RVV_1_0.validate_vsetvli(("t0", "a0", "e128"))

    def test_lmul_defaults_to_m1(self):
        RVV_1_0.validate_vsetvli(("t0", "a0", "e32", "ta", "ma"))


class TestSewBits:
    def test_values(self):
        assert sew_bits("e8") == 8
        assert sew_bits("e64") == 64

    def test_invalid(self):
        with pytest.raises(IsaError):
            sew_bits("e128")
