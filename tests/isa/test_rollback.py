"""RVV-rollback rewriter tests: every published rewrite rule."""

import pytest

from repro.isa.encoding import parse_assembly
from repro.isa.rollback import RollbackError, rollback
from repro.isa.rvv import RVV_0_7_1


def mnemonics(text: str) -> list[str]:
    return [i.mnemonic for i in parse_assembly(text) if i.is_code]


class TestVsetvli:
    def test_policy_flags_stripped(self):
        out = rollback("vsetvli t0, a0, e32, m1, ta, ma")
        assert "ta" not in out and "ma" not in out
        assert "vsetvli t0, a0, e32, m1" in out

    def test_lmul_preserved(self):
        out = rollback("vsetvli t0, a0, e64, m4, ta, ma")
        assert "e64, m4" in out

    def test_fractional_lmul_rejected(self):
        with pytest.raises(RollbackError, match="fractional LMUL"):
            rollback("vsetvli t0, a0, e32, mf2, ta, ma")

    def test_vsetivli_expanded_through_scratch_register(self):
        out = rollback("vsetivli t0, 8, e32, m1, ta, ma")
        ms = mnemonics(out)
        assert ms == ["li", "vsetvli"]
        assert "t6, 8" in out

    @pytest.mark.parametrize("imm", [0, 31])
    def test_vsetivli_immediate_boundaries_accepted(self, imm):
        out = rollback(f"vsetivli t0, {imm}, e32, m1, ta, ma")
        assert f"t6, {imm}" in out

    @pytest.mark.parametrize("imm", ["32", "-1", "100"])
    def test_vsetivli_immediate_out_of_field_rejected(self, imm):
        with pytest.raises(RollbackError, match="5-bit immediate"):
            rollback(f"vsetivli t0, {imm}, e32, m1, ta, ma")

    def test_vsetivli_non_integer_immediate_rejected(self):
        with pytest.raises(RollbackError, match="not an integer"):
            rollback("vsetivli t0, a0, e32, m1, ta, ma")

    def test_vsetivli_hex_immediate_accepted(self):
        out = rollback("vsetivli t0, 0x1f, e32, m1, ta, ma")
        assert "t6, 0x1f" in out

    def test_vsetivli_fractional_lmul_rejected(self):
        with pytest.raises(RollbackError, match="fractional LMUL"):
            rollback("vsetivli t0, 8, e32, mf2, ta, ma")

    def test_malformed_rejected(self):
        with pytest.raises(RollbackError):
            rollback("vsetvli t0")


class TestMemoryOps:
    def test_unit_stride_load(self):
        out = rollback("vsetvli t0, a0, e32, m1, ta, ma\nvle32.v v1, (a1)")
        assert "vle.v v1, (a1)" in out

    def test_unit_stride_store(self):
        out = rollback("vsetvli t0, a0, e64, m1\nvse64.v v0, (a2)")
        assert "vse.v v0, (a2)" in out

    def test_strided_load(self):
        out = rollback(
            "vsetvli t0, a0, e32, m1\nvlse32.v v1, (a1), t2"
        )
        assert "vlse.v" in out

    def test_indexed_load(self):
        out = rollback(
            "vsetvli t0, a0, e32, m1\nvluxei32.v v1, (a1), v2"
        )
        assert "vlxe.v" in out

    def test_eew_sew_mismatch_rejected(self):
        with pytest.raises(RollbackError, match="EEW 64.*SEW is 32"):
            rollback("vsetvli t0, a0, e32, m1\nvle64.v v1, (a1)")

    def test_memory_op_before_vsetvli_rejected(self):
        with pytest.raises(RollbackError, match="before any vsetvli"):
            rollback("vle32.v v1, (a1)")

    def test_sew_tracking_across_multiple_vsetvli(self):
        src = "\n".join(
            [
                "vsetvli t0, a0, e32, m1",
                "vle32.v v1, (a1)",
                "vsetvli t0, a0, e64, m1",
                "vle64.v v2, (a2)",
            ]
        )
        out = rollback(src)
        assert out.count("vle.v") == 2


class TestRenames:
    @pytest.mark.parametrize(
        "v10,v071",
        [
            ("vcpop.m t0, v0", "vpopc.m"),
            ("vfirst.m t0, v0", "vmfirst.m"),
            ("vmandn.mm v0, v1, v2", "vmandnot.mm"),
            ("vmorn.mm v0, v1, v2", "vmornot.mm"),
            ("vfredusum.vs v0, v1, v2", "vfredsum.vs"),
        ],
    )
    def test_rename(self, v10, v071):
        assert v071 in rollback(v10)

    def test_vmv1r_becomes_vmv_v_v(self):
        assert "vmv.v.v" in rollback("vmv1r.v v0, v1")

    def test_group_moves_rejected(self):
        with pytest.raises(RollbackError):
            rollback("vmv2r.v v0, v2")

    def test_extension_ops_rejected(self):
        with pytest.raises(RollbackError, match="no RVV v0.7.1"):
            rollback("vzext.vf2 v0, v1")


class TestPassThrough:
    def test_scalar_code_untouched(self):
        src = "add a0, a0, t0\nbnez a0, loop\nret"
        assert mnemonics(rollback(src)) == ["add", "bnez", "ret"]

    def test_common_vector_arith_untouched(self):
        out = rollback("vfmacc.vv v0, v1, v2")
        assert "vfmacc.vv" in out

    def test_labels_and_comments_survive(self):
        out = rollback("loop: vfadd.vv v0, v1, v2  # hot loop")
        assert "loop:" in out and "hot loop" in out


class TestEndToEnd:
    def test_output_is_valid_v071(self):
        """Every vector mnemonic in rolled-back output must exist in
        the v0.7.1 dialect."""
        src = "\n".join(
            [
                "vsetvli t0, a0, e32, m1, ta, ma",
                "loop:",
                "vle32.v v1, (a1)",
                "vle32.v v2, (a2)",
                "vfmacc.vv v0, v1, v2",
                "vse32.v v0, (a3)",
                "sub a0, a0, t0",
                "bnez a0, loop",
                "vfredusum.vs v0, v0, v31",
                "ret",
            ]
        )
        for inst in parse_assembly(rollback(src)):
            if inst.is_code and inst.mnemonic.startswith("v"):
                RVV_0_7_1.validate_mnemonic(inst.mnemonic)

    def test_idempotent_on_v071_output(self):
        """Rolling back already-rolled-back code is the identity."""
        src = "vsetvli t0, a0, e32, m1, ta, ma\nvle32.v v1, (a1)"
        once = rollback(src)
        assert rollback(once) == once

    def test_idempotent_on_every_codegen_output(self):
        """rollback(rollback(x)) == rollback(x) for the full sweep of
        generated programs, including the vsetivli-carrying dot loop."""
        from repro.compiler.model import VectorFlavor
        from repro.isa.codegen import (
            LoopSpec,
            generate_dot_loop,
            generate_loop,
        )
        from repro.isa.encoding import render_assembly
        from repro.machine.vector import DType

        spec = LoopSpec(
            dtype=DType.FP32, num_inputs=2, ops=("vfmacc.vv",)
        )
        for flavor in (VectorFlavor.VLS, VectorFlavor.VLA):
            programs = [
                render_assembly(generate_loop(spec, flavor)),
                render_assembly(
                    generate_dot_loop(DType.FP64, flavor)
                ),
            ]
            for text in programs:
                once = rollback(text)
                assert rollback(once) == once
