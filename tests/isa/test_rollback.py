"""RVV-rollback rewriter tests: every published rewrite rule."""

import pytest

from repro.isa.encoding import parse_assembly
from repro.isa.rollback import RollbackError, rollback
from repro.isa.rvv import RVV_0_7_1


def mnemonics(text: str) -> list[str]:
    return [i.mnemonic for i in parse_assembly(text) if i.is_code]


class TestVsetvli:
    def test_policy_flags_stripped(self):
        out = rollback("vsetvli t0, a0, e32, m1, ta, ma")
        assert "ta" not in out and "ma" not in out
        assert "vsetvli t0, a0, e32, m1" in out

    def test_lmul_preserved(self):
        out = rollback("vsetvli t0, a0, e64, m4, ta, ma")
        assert "e64, m4" in out

    def test_fractional_lmul_rejected(self):
        with pytest.raises(RollbackError, match="fractional LMUL"):
            rollback("vsetvli t0, a0, e32, mf2, ta, ma")

    def test_vsetivli_expanded_through_scratch_register(self):
        out = rollback("vsetivli t0, 8, e32, m1, ta, ma")
        ms = mnemonics(out)
        assert ms == ["li", "vsetvli"]
        assert "t6, 8" in out

    def test_malformed_rejected(self):
        with pytest.raises(RollbackError):
            rollback("vsetvli t0")


class TestMemoryOps:
    def test_unit_stride_load(self):
        out = rollback("vsetvli t0, a0, e32, m1, ta, ma\nvle32.v v1, (a1)")
        assert "vle.v v1, (a1)" in out

    def test_unit_stride_store(self):
        out = rollback("vsetvli t0, a0, e64, m1\nvse64.v v0, (a2)")
        assert "vse.v v0, (a2)" in out

    def test_strided_load(self):
        out = rollback(
            "vsetvli t0, a0, e32, m1\nvlse32.v v1, (a1), t2"
        )
        assert "vlse.v" in out

    def test_indexed_load(self):
        out = rollback(
            "vsetvli t0, a0, e32, m1\nvluxei32.v v1, (a1), v2"
        )
        assert "vlxe.v" in out

    def test_eew_sew_mismatch_rejected(self):
        with pytest.raises(RollbackError, match="EEW 64.*SEW is 32"):
            rollback("vsetvli t0, a0, e32, m1\nvle64.v v1, (a1)")

    def test_memory_op_before_vsetvli_rejected(self):
        with pytest.raises(RollbackError, match="before any vsetvli"):
            rollback("vle32.v v1, (a1)")

    def test_sew_tracking_across_multiple_vsetvli(self):
        src = "\n".join(
            [
                "vsetvli t0, a0, e32, m1",
                "vle32.v v1, (a1)",
                "vsetvli t0, a0, e64, m1",
                "vle64.v v2, (a2)",
            ]
        )
        out = rollback(src)
        assert out.count("vle.v") == 2


class TestRenames:
    @pytest.mark.parametrize(
        "v10,v071",
        [
            ("vcpop.m t0, v0", "vpopc.m"),
            ("vfirst.m t0, v0", "vmfirst.m"),
            ("vmandn.mm v0, v1, v2", "vmandnot.mm"),
            ("vmorn.mm v0, v1, v2", "vmornot.mm"),
            ("vfredusum.vs v0, v1, v2", "vfredsum.vs"),
        ],
    )
    def test_rename(self, v10, v071):
        assert v071 in rollback(v10)

    def test_vmv1r_becomes_vmv_v_v(self):
        assert "vmv.v.v" in rollback("vmv1r.v v0, v1")

    def test_group_moves_rejected(self):
        with pytest.raises(RollbackError):
            rollback("vmv2r.v v0, v2")

    def test_extension_ops_rejected(self):
        with pytest.raises(RollbackError, match="no RVV v0.7.1"):
            rollback("vzext.vf2 v0, v1")


class TestPassThrough:
    def test_scalar_code_untouched(self):
        src = "add a0, a0, t0\nbnez a0, loop\nret"
        assert mnemonics(rollback(src)) == ["add", "bnez", "ret"]

    def test_common_vector_arith_untouched(self):
        out = rollback("vfmacc.vv v0, v1, v2")
        assert "vfmacc.vv" in out

    def test_labels_and_comments_survive(self):
        out = rollback("loop: vfadd.vv v0, v1, v2  # hot loop")
        assert "loop:" in out and "hot loop" in out


class TestEndToEnd:
    def test_output_is_valid_v071(self):
        """Every vector mnemonic in rolled-back output must exist in
        the v0.7.1 dialect."""
        src = "\n".join(
            [
                "vsetvli t0, a0, e32, m1, ta, ma",
                "loop:",
                "vle32.v v1, (a1)",
                "vle32.v v2, (a2)",
                "vfmacc.vv v0, v1, v2",
                "vse32.v v0, (a3)",
                "sub a0, a0, t0",
                "bnez a0, loop",
                "vfredusum.vs v0, v0, v31",
                "ret",
            ]
        )
        for inst in parse_assembly(rollback(src)):
            if inst.is_code and inst.mnemonic.startswith("v"):
                RVV_0_7_1.validate_mnemonic(inst.mnemonic)

    def test_idempotent_on_v071_output(self):
        """Rolling back already-rolled-back code is the identity."""
        src = "vsetvli t0, a0, e32, m1, ta, ma\nvle32.v v1, (a1)"
        once = rollback(src)
        assert rollback(once) == once
