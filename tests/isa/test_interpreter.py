"""Semantic equivalence: generated loops — v1.0, v0.7.1, and rolled-back
v1.0 — all compute the NumPy reference result when actually executed."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.model import VectorFlavor
from repro.isa.codegen import LoopSpec, generate_dot_loop, generate_loop
from repro.isa.encoding import render_assembly
from repro.isa.interpreter import (
    MachineState,
    RvvInterpreter,
    run_dot_loop,
    run_triad_loop,
)
from repro.isa.rollback import rollback
from repro.machine.vector import DType
from repro.util.errors import IsaError


def fmacc_spec(dtype=DType.FP32):
    return LoopSpec(dtype=dtype, num_inputs=2, ops=("vfmacc.vv",),
                    has_store=True)


def gen(flavor, version, dtype=DType.FP32):
    return render_assembly(
        generate_loop(fmacc_spec(dtype), flavor, rvv_version=version)
    )


def data(n, dtype=np.float32, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random(n).astype(dtype), rng.random(n).astype(dtype))


class TestSemanticEquivalence:
    """The rollback tool's correctness, proven by execution."""

    def test_vla_v10_computes_fmacc(self):
        b, c = data(1000)  # deliberately not a lane multiple
        out = run_triad_loop(gen(VectorFlavor.VLA, "1.0"), b, c)
        np.testing.assert_allclose(out, b * c, rtol=1e-6)

    def test_vls_v10_computes_fmacc(self):
        b, c = data(1024)  # VLS assumes a lane-multiple trip count
        out = run_triad_loop(gen(VectorFlavor.VLS, "1.0"), b, c)
        np.testing.assert_allclose(out, b * c, rtol=1e-6)

    @pytest.mark.parametrize("flavor", [VectorFlavor.VLA,
                                        VectorFlavor.VLS])
    def test_rolled_back_equals_original(self, flavor):
        n = 1024
        b, c = data(n)
        original = gen(flavor, "1.0")
        rolled = rollback(original)
        out_orig = run_triad_loop(original, b, c)
        out_rolled = run_triad_loop(rolled, b, c)
        np.testing.assert_array_equal(out_orig, out_rolled)

    def test_native_v071_equals_rolled_back_v10(self):
        n = 512
        b, c = data(n)
        native = gen(VectorFlavor.VLA, "0.7.1")
        rolled = rollback(gen(VectorFlavor.VLA, "1.0"))
        np.testing.assert_array_equal(
            run_triad_loop(native, b, c), run_triad_loop(rolled, b, c)
        )

    def test_fp64_loop(self):
        b, c = data(512, np.float64)
        out = run_triad_loop(
            gen(VectorFlavor.VLA, "1.0", DType.FP64), b, c
        )
        np.testing.assert_allclose(out, b * c, rtol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(4, 2000))
    def test_vla_handles_any_trip_count(self, n):
        """VLA strip-mining handles tails of every length."""
        b, c = data(n)
        out = run_triad_loop(gen(VectorFlavor.VLA, "1.0"), b, c)
        np.testing.assert_allclose(out, b * c, rtol=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(
        ops=st.lists(
            st.sampled_from(["vfadd.vv", "vfmul.vv", "vfsub.vv"]),
            min_size=1, max_size=3,
        ).map(tuple)
    )
    def test_arbitrary_op_chains_execute(self, ops):
        spec = LoopSpec(dtype=DType.FP32, num_inputs=2, ops=ops,
                        has_store=True)
        text = render_assembly(
            generate_loop(spec, VectorFlavor.VLA, rvv_version="1.0")
        )
        b, c = data(96)
        out = run_triad_loop(text, b, c)
        assert np.isfinite(out).all()


class TestDotLoopExecution:
    """The BLAS dot microkernel, executed on real data: remainder
    strips exercise the tail-undisturbed accumulator path."""

    def dot_text(self, flavor, version="1.0", dtype=DType.FP64):
        return render_assembly(
            generate_dot_loop(dtype, flavor, rvv_version=version)
        )

    @pytest.mark.parametrize("flavor", [VectorFlavor.VLS,
                                        VectorFlavor.VLA])
    def test_dot_matches_numpy_with_remainder(self, flavor):
        a, b = data(19, np.float64)  # 19 = 9 full fp64 strips + 1
        out = run_dot_loop(self.dot_text(flavor), a, b)
        assert out == pytest.approx(float(a @ b), rel=1e-12)

    @pytest.mark.parametrize("flavor", [VectorFlavor.VLS,
                                        VectorFlavor.VLA])
    def test_rolled_back_dot_is_bit_identical(self, flavor):
        a, b = data(19, np.float64)
        original = self.dot_text(flavor)
        assert run_dot_loop(rollback(original), a, b) == run_dot_loop(
            original, a, b
        )

    def test_native_v071_dot_matches_numpy(self):
        a, b = data(13, np.float64)
        out = run_dot_loop(
            self.dot_text(VectorFlavor.VLA, version="0.7.1"), a, b
        )
        assert out == pytest.approx(float(a @ b), rel=1e-12)

    def test_lane_multiple_trip_count(self):
        a, b = data(16, np.float64)  # no remainder strip at all
        out = run_dot_loop(self.dot_text(VectorFlavor.VLS), a, b)
        assert out == pytest.approx(float(a @ b), rel=1e-12)

    def test_short_trip_goes_straight_to_remainder(self):
        a, b = data(1, np.float64)  # below one full fp64 strip
        out = run_dot_loop(self.dot_text(VectorFlavor.VLS), a, b)
        assert out == pytest.approx(float(a[0] * b[0]), rel=1e-12)

    def test_fp32_dot(self):
        a, b = data(11, np.float32)
        out = run_dot_loop(self.dot_text(VectorFlavor.VLA,
                                         dtype=DType.FP32), a, b)
        assert out == pytest.approx(float(a.astype(np.float64)
                                          @ b.astype(np.float64)),
                                    rel=1e-5)

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(IsaError):
            run_dot_loop(
                "ret",
                np.ones(4, dtype=np.float64),
                np.ones(5, dtype=np.float64),
            )


class TestInterpreterMechanics:
    def test_vsetvli_caps_at_vlmax(self):
        state = MachineState()
        state.set_s("a0", 1000)
        interp = RvvInterpreter(state)
        interp.run("vsetvli t0, a0, e32, m1, ta, ma\nret")
        assert state.vl == 4  # 128 bits / 32
        assert state.get_s("t0") == 4

    def test_vsetvli_tail(self):
        state = MachineState()
        state.set_s("a0", 3)
        RvvInterpreter(state).run("vsetvli t0, a0, e32, m1\nret")
        assert state.vl == 3

    def test_scalar_arithmetic(self):
        state = MachineState()
        RvvInterpreter(state).run(
            "li t0, 6\nli t1, 7\nadd t2, t0, t1\nslli t3, t2, 2\nret"
        )
        assert state.get_s("t2") == 13
        assert state.get_s("t3") == 52

    def test_x0_hardwired_zero(self):
        state = MachineState()
        RvvInterpreter(state).run("li x0, 99\nret")
        assert state.get_s("x0") == 0

    def test_branch_loop(self):
        state = MachineState()
        program = "\n".join(
            ["li t0, 5", "li t1, 1", "loop:", "sub t0, t0, t1",
             "bnez t0, loop", "ret"]
        )
        steps = RvvInterpreter(state).run(program)
        assert state.get_s("t0") == 0
        assert steps == 2 + 2 * 5 + 1  # 2 li + 5x(sub+bnez) + ret

    def test_missing_ret_rejected(self):
        with pytest.raises(IsaError, match="without ret"):
            RvvInterpreter().run("li t0, 1")

    def test_unknown_label_rejected(self):
        with pytest.raises(IsaError, match="unknown label"):
            RvvInterpreter().run("li t0, 1\nbnez t0, nowhere\nret")

    def test_runaway_loop_bounded(self):
        program = "li t0, 1\nspin:\nbnez t0, spin\nret"
        with pytest.raises(IsaError, match="budget"):
            RvvInterpreter().run(program)

    def test_oob_store_rejected(self):
        state = MachineState(memory_bytes=64)
        state.memory = bytearray(64)
        with pytest.raises(IsaError, match="out of bounds"):
            state.write_array(60, np.ones(4, dtype=np.float32))

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(IsaError):
            run_triad_loop(
                "ret",
                np.ones(4, dtype=np.float32),
                np.ones(5, dtype=np.float32),
            )


class TestExecutionGuards:
    """Guard paths: runaway loops, unconfigured vector state,
    mismatched element widths."""

    def test_vector_op_before_vsetvli_rejected(self):
        with pytest.raises(IsaError, match="before any vsetvli"):
            RvvInterpreter().run("vfadd.vv v0, v1, v1\nret")

    def test_vector_load_before_vsetvli_rejected(self):
        state = MachineState()
        state.set_s("a1", 0)
        with pytest.raises(IsaError, match="before any vsetvli"):
            RvvInterpreter(state).run("vle.v v1, (a1)\nret")

    def test_mismatched_eew_load_rejected(self):
        state = MachineState()
        state.set_s("a0", 4)
        state.set_s("a1", 0)
        program = (
            "vsetvli t0, a0, e32, m1, ta, ma\n"
            "vle64.v v1, (a1)\n"
            "ret"
        )
        with pytest.raises(IsaError, match="does not match the active"):
            RvvInterpreter(state).run(program)

    def test_mismatched_eew_store_rejected(self):
        state = MachineState()
        state.set_s("a0", 4)
        state.set_s("a3", 0)
        program = (
            "vsetvli t0, a0, e64, m1, ta, ma\n"
            "vmv.v.i v0, 0\n"
            "vse32.v v0, (a3)\n"
            "ret"
        )
        with pytest.raises(IsaError, match="does not match the active"):
            RvvInterpreter(state).run(program)

    def test_matching_eew_still_executes(self):
        b, c = data(8)
        out = run_triad_loop(gen(VectorFlavor.VLA, "1.0"), b, c)
        np.testing.assert_allclose(out, b * c, rtol=1e-6)

    def test_runaway_vector_loop_bounded(self):
        # The cap catches loops whose trip register never reaches zero.
        state = MachineState()
        state.set_s("a0", 3)
        program = (
            "vsetvli t0, a0, e32, m1, ta, ma\n"
            "li t1, 0\n"
            "spin:\n"
            "sub a0, a0, t1\n"
            "bnez a0, spin\n"
            "ret"
        )
        with pytest.raises(IsaError, match="budget"):
            RvvInterpreter(state).run(program)
