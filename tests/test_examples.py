"""Smoke tests: every example script must run end-to-end.

Examples are documentation that executes; these tests keep them from
rotting. Each is run in-process via runpy with stdout captured.
"""

import runpy
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

EXPECTED_EXAMPLES = {
    "quickstart.py",
    "placement_tuning.py",
    "compiler_flow.py",
    "future_hardware.py",
    "distributed_jacobi.py",
    "hpl_stream.py",
    "custom_machine.py",
    "tracing_sweep.py",
    "serve_client.py",
}


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), path
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


def test_examples_directory_complete():
    found = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert found == EXPECTED_EXAMPLES


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "predicted class times" in out
    assert "numerical verification" in out


def test_placement_tuning(capsys):
    out = run_example("placement_tuning.py", capsys)
    assert "recommendation: OMP_NUM_THREADS=" in out


def test_compiler_flow(capsys):
    out = run_example("compiler_flow.py", capsys)
    assert "vle.v" in out  # rolled-back assembly shown
    assert "'vectorized': 30" in out.replace('"', "'")


def test_future_hardware(capsys):
    out = run_example("future_hardware.py", capsys)
    assert "next-gen (all)" in out


def test_distributed_jacobi(capsys):
    out = run_example("distributed_jacobi.py", capsys)
    assert "max |parallel - sequential| = 0.000e+00" in out


def test_hpl_stream(capsys):
    out = run_example("hpl_stream.py", capsys)
    assert "Rmax" in out
    assert "passes < 16" in out


def test_custom_machine(capsys):
    out = run_example("custom_machine.py", capsys)
    assert "SG2042-Pro" in out


def test_tracing_sweep(capsys):
    out = run_example("tracing_sweep.py", capsys)
    assert "telemetry:" in out                  # rendered summary
    assert "span tree" in out
    assert "sweep.prefetch" in out              # tree shows pipeline phases
    assert "Chrome trace written to" in out


def test_serve_client(capsys):
    out = run_example("serve_client.py", capsys)
    assert "coalesced burst" in out
    assert "code='not_found'" in out
    assert "server drained cleanly" in out
