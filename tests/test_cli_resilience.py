"""CLI robustness: fault-plan/policy/checkpoint flags, clean top-level
error handling with exit code 2, and --debug re-raising."""

import json

import pytest

from repro.cli import main
from repro.resilience.faults import transient_plan
from repro.util.errors import ConfigError


@pytest.fixture
def always_fail_plan(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(transient_plan(seed=1, probability=1.0).to_json())
    return str(path)


@pytest.fixture
def transient_plan_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(
        transient_plan(seed=2042, probability=0.3,
                       max_failures=2).to_json()
    )
    return str(path)


class TestTopLevelErrors:
    def test_repro_error_exits_2_with_one_line(self, capsys):
        rc = main(["run", "--cpu", "sg2042", "--compiler", "clang-16"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_debug_reraises(self):
        with pytest.raises(ConfigError):
            main(["--debug", "run", "--cpu", "sg2042",
                  "--compiler", "clang-16"])

    def test_debug_does_not_change_success(self, capsys):
        assert main(["--debug", "list"]) == 0


class TestRunFlags:
    def test_skip_policy_prints_failure_summary(
        self, capsys, always_fail_plan
    ):
        rc = main(["run", "--cpu", "sg2042", "--threads", "2",
                   "--fault-plan", always_fail_plan,
                   "--on-failure", "skip"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "64 failed" in out
        assert "injected" in out

    def test_retry_policy_recovers_transients(
        self, capsys, transient_plan_file
    ):
        rc = main(["run", "--cpu", "sg2042", "--threads", "2",
                   "--fault-plan", transient_plan_file,
                   "--on-failure", "retry", "--retries", "4"])
        assert rc == 0
        assert "failed" not in capsys.readouterr().out

    def test_abort_policy_surfaces_fault(self, capsys, always_fail_plan):
        rc = main(["run", "--cpu", "sg2042",
                   "--fault-plan", always_fail_plan])
        assert rc == 2
        assert "injected fault" in capsys.readouterr().err

    def test_missing_fault_plan_file(self, capsys):
        rc = main(["run", "--fault-plan", "/nope/plan.json"])
        assert rc == 2
        assert "not found" in capsys.readouterr().err


class TestSweepFlags:
    def test_checkpoint_written_and_resumed(self, capsys, tmp_path):
        ckpt = str(tmp_path / "sweep.jsonl")
        args = ["sweep", "--kernels", "TRIAD,DOT", "--threads", "1,8",
                "--placements", "cluster", "--precisions", "fp32",
                "--checkpoint", ckpt]
        assert main(args) == 0
        first = capsys.readouterr().out
        lines = (tmp_path / "sweep.jsonl").read_text().splitlines()
        assert len(lines) == 5  # header + 4 points
        assert main(args) == 0  # full resume, no recompute
        resumed = capsys.readouterr().out

        def table(text: str) -> list[str]:
            # Everything but the cache-counter telemetry line, which
            # legitimately differs on resume (nothing is recompiled).
            return [line for line in text.splitlines()
                    if not line.startswith("compile cache:")]

        assert table(resumed) == table(first)
        assert "compile cache: 0 compiled" in resumed

    def test_checkpoint_grid_mismatch_is_clean_error(
        self, capsys, tmp_path
    ):
        ckpt = str(tmp_path / "sweep.jsonl")
        base = ["sweep", "--kernels", "TRIAD", "--placements", "cluster",
                "--precisions", "fp32", "--checkpoint", ckpt]
        assert main(base + ["--threads", "1"]) == 0
        capsys.readouterr()
        assert main(base + ["--threads", "1,8"]) == 2
        assert "different sweep" in capsys.readouterr().err

    def test_sweep_skip_policy_lists_failures(
        self, capsys, always_fail_plan
    ):
        rc = main(["sweep", "--kernels", "TRIAD,DOT", "--threads", "1",
                   "--placements", "cluster", "--precisions", "fp32",
                   "--fault-plan", always_fail_plan,
                   "--on-failure", "skip"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 failure(s)" in out

    def test_checkpoint_header_carries_grid_hash(self, tmp_path):
        ckpt = tmp_path / "sweep.jsonl"
        main(["sweep", "--kernels", "TRIAD", "--threads", "1",
              "--placements", "cluster", "--precisions", "fp32",
              "--checkpoint", str(ckpt)])
        header = json.loads(ckpt.read_text().splitlines()[0])
        assert set(header) == {"version", "grid_hash"}
