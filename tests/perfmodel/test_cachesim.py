"""Set-associative cache simulator tests, and its agreement with the
analytic capacity model's fit rule."""

import numpy as np
import pytest

from repro.machine.cache import CacheLevel, Sharing
from repro.perfmodel.cachesim import (
    SetAssociativeCache,
    streaming_miss_rate,
)
from repro.util.errors import ConfigError
from repro.util.units import KIB


def small_cache(capacity=4 * KIB, assoc=4):
    return CacheLevel(
        "T", capacity, Sharing.CORE, associativity=assoc, latency_cycles=3
    )


class TestBasicBehaviour:
    def test_first_access_misses_second_hits(self):
        cache = SetAssociativeCache(small_cache())
        assert not cache.access(0)
        assert cache.access(0)

    def test_same_line_hits(self):
        cache = SetAssociativeCache(small_cache())
        cache.access(0)
        assert cache.access(63)  # same 64B line
        assert not cache.access(64)  # next line

    def test_lru_eviction_order(self):
        # Direct-mapped-ish: 2 ways, force 3 conflicting lines.
        cache = SetAssociativeCache(small_cache(capacity=128 * 64, assoc=2))
        sets = cache.num_sets
        a, b, c = 0, sets * 64, 2 * sets * 64  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a: b is now LRU
        cache.access(c)  # evicts b
        assert cache.access(a)
        assert not cache.access(b)

    def test_eviction_counted(self):
        cache = SetAssociativeCache(small_cache(capacity=128 * 64, assoc=2))
        sets = cache.num_sets
        for i in range(3):
            cache.access(i * sets * 64)
        assert cache.stats.evictions == 1

    def test_reset(self):
        cache = SetAssociativeCache(small_cache())
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.access(0)

    def test_negative_address_rejected(self):
        cache = SetAssociativeCache(small_cache())
        with pytest.raises(ConfigError):
            cache.access(-1)

    def test_access_array(self):
        cache = SetAssociativeCache(small_cache())
        addrs = np.array([0, 64, 0, 64])
        assert cache.access_array(addrs) == 2

    def test_hit_rate_without_accesses_rejected(self):
        cache = SetAssociativeCache(small_cache())
        with pytest.raises(ConfigError):
            cache.stats.hit_rate


class TestStreamingMissRate:
    """Validates the analytic fit rule's shape: footprints within
    capacity re-stream almost free; larger ones miss every line."""

    def test_fitting_footprint_hits(self):
        rate = streaming_miss_rate(small_cache(16 * KIB), 8 * KIB)
        assert rate == 0.0

    def test_capacity_footprint_hits(self):
        rate = streaming_miss_rate(small_cache(16 * KIB), 16 * KIB)
        assert rate == 0.0

    def test_oversized_footprint_misses_everything(self):
        # Classic LRU pathology: streaming 2x capacity misses 100%.
        rate = streaming_miss_rate(small_cache(16 * KIB), 32 * KIB)
        assert rate == 1.0

    def test_monotone_in_footprint(self):
        cache_level = small_cache(16 * KIB)
        rates = [
            streaming_miss_rate(cache_level, kb * KIB)
            for kb in (4, 8, 16, 24, 32)
        ]
        assert rates == sorted(rates)


class TestAgreementWithAnalyticModel:
    def test_fit_headroom_constants_are_conservative(self):
        """The analytic FIT_HEADROOM_FEW (0.9) must be safe: a footprint
        at 90% of capacity really does re-stream with ~0 misses."""
        from repro.perfmodel.memory import FIT_HEADROOM_FEW

        level = small_cache(64 * KIB, assoc=8)
        footprint = int(level.capacity_bytes * FIT_HEADROOM_FEW)
        assert streaming_miss_rate(level, footprint) == 0.0
