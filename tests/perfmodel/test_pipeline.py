"""Pipeline model tests: the vectorization asymmetries the paper hinges
on must come straight out of the throughput arithmetic."""

import pytest

from repro.machine import catalog
from repro.machine.vector import DType
from repro.perfmodel.pipeline import pipeline_time_per_iter
from repro.util.errors import SimulationError


@pytest.fixture(scope="module")
def c920():
    return catalog.sg2042().core


@pytest.fixture(scope="module")
def triad_traits(kernels_by_name=None):
    from repro.kernels.registry import get_kernel

    return get_kernel("TRIAD").traits


class TestVectorizationEffects:
    def test_fp32_vector_faster_than_scalar(self, c920, triad_traits):
        scalar = pipeline_time_per_iter(
            c920, triad_traits, DType.FP32, vectorized=False
        )
        vector = pipeline_time_per_iter(
            c920, triad_traits, DType.FP32, vectorized=True
        )
        assert vector < scalar

    def test_fp64_vector_no_faster_than_scalar(self, c920, triad_traits):
        """The C920's missing FP64 vectors: 'vector' FP64 == scalar."""
        scalar = pipeline_time_per_iter(
            c920, triad_traits, DType.FP64, vectorized=False
        )
        vector = pipeline_time_per_iter(
            c920, triad_traits, DType.FP64, vectorized=True
        )
        assert vector == pytest.approx(scalar)

    def test_int64_vectorizes_on_c920(self, c920):
        from repro.kernels.registry import get_kernel

        traits = get_kernel("REDUCE3_INT").traits
        scalar = pipeline_time_per_iter(
            c920, traits, DType.INT64, vectorized=False
        )
        vector = pipeline_time_per_iter(
            c920, traits, DType.INT64, vectorized=True
        )
        assert vector < scalar

    def test_avx2_fp64_vectorizes(self, triad_traits):
        rome = catalog.amd_rome().core
        scalar = pipeline_time_per_iter(
            rome, triad_traits, DType.FP64, vectorized=False
        )
        vector = pipeline_time_per_iter(
            rome, triad_traits, DType.FP64, vectorized=True
        )
        assert vector < scalar

    def test_efficiency_scales_vector_time(self, c920, triad_traits):
        fast = pipeline_time_per_iter(
            c920, triad_traits, DType.FP32, True, vector_efficiency=1.0
        )
        slow = pipeline_time_per_iter(
            c920, triad_traits, DType.FP32, True, vector_efficiency=0.25
        )
        assert slow > fast

    def test_bad_efficiency_rejected(self, c920, triad_traits):
        with pytest.raises(SimulationError):
            pipeline_time_per_iter(
                c920, triad_traits, DType.FP32, True, vector_efficiency=0
            )


class TestRelativeCoreSpeeds:
    def test_c920_beats_u74_scalar(self, c920, triad_traits):
        u74 = catalog.visionfive_v2().core
        c920_time = pipeline_time_per_iter(
            c920, triad_traits, DType.FP64, False
        )
        u74_time = pipeline_time_per_iter(
            u74, triad_traits, DType.FP64, False
        )
        assert u74_time > 2 * c920_time

    def test_x86_beats_c920_scalar(self, c920, triad_traits):
        for cpu in catalog.x86_cpus().values():
            x86_time = pipeline_time_per_iter(
                cpu.core, triad_traits, DType.FP64, False
            )
            c920_time = pipeline_time_per_iter(
                c920, triad_traits, DType.FP64, False
            )
            assert x86_time < c920_time, cpu.name

    def test_compute_bound_kernel_governed_by_flops(self, c920):
        from repro.kernels.registry import get_kernel

        gemm = get_kernel("GEMM").traits
        triad = get_kernel("TRIAD").traits
        gemm_t = pipeline_time_per_iter(c920, gemm, DType.FP64, False)
        triad_t = pipeline_time_per_iter(c920, triad, DType.FP64, False)
        # GEMM does 1000x the flops per iteration.
        assert gemm_t > 100 * triad_t
