"""Memory-path model tests: serving levels, placement sensitivity and
contention — the mechanisms behind Tables 1-3."""

import pytest

from repro.kernels.registry import get_kernel
from repro.machine.vector import DType
from repro.openmp.affinity import PlacementPolicy, assign_cores
from repro.perfmodel.memory import (
    fit_headroom,
    memory_time_per_iter,
    serving_level,
)
from repro.util.errors import SimulationError


def placement(cpu, threads, policy=PlacementPolicy.CYCLIC):
    return assign_cores(cpu.topology, threads, policy)


class TestServingLevel:
    def test_stream_fits_sg2042_l3_single_core(self, sg2042):
        """1M-element FP32 stream arrays (12MB) live in a 16MiB L3
        slice — the serving level behind Figure 2's stream numbers."""
        triad = get_kernel("TRIAD")
        level = serving_level(
            sg2042, triad, triad.default_size, DType.FP32, 0, (0,)
        )
        assert level is not None and level.name == "L3"

    def test_stream_fp64_exceeds_l3_slice(self, sg2042):
        triad = get_kernel("TRIAD")
        level = serving_level(
            sg2042, triad, triad.default_size, DType.FP64, 0, (0,)
        )
        assert level is None  # DRAM

    def test_stream_misses_sandybridge_l3(self, intel_sandybridge):
        """24MB > 10MiB L3: why the paper finds Sandybridge slower for
        stream at FP64 (Figure 4)."""
        triad = get_kernel("TRIAD")
        level = serving_level(
            intel_sandybridge, triad, triad.default_size, DType.FP64,
            0, (0,),
        )
        assert level is None

    def test_stream_fits_broadwell_l3(self, intel_broadwell):
        triad = get_kernel("TRIAD")
        level = serving_level(
            intel_broadwell, triad, triad.default_size, DType.FP64,
            0, (0,),
        )
        assert level is not None and level.name == "L3"

    def test_small_footprint_fits_l1(self, sg2042):
        triad = get_kernel("TRIAD")
        level = serving_level(sg2042, triad, 1000, DType.FP32, 0, (0,))
        assert level is not None and level.name == "L1D"

    def test_cluster_placement_unlocks_l2(self, sg2042):
        """At 16 threads the per-thread stream slice fits the 1MiB L2
        only if the placement leaves one thread per cluster — the
        Table 3 mechanism."""
        triad = get_kernel("TRIAD")
        n = triad.default_size
        cluster = placement(sg2042, 16, PlacementPolicy.CLUSTER)
        cyclic = placement(sg2042, 16, PlacementPolicy.CYCLIC)
        lvl_cluster = serving_level(
            sg2042, triad, n, DType.FP32, cluster[0], cluster
        )
        lvl_cyclic = serving_level(
            sg2042, triad, n, DType.FP32, cyclic[0], cyclic
        )
        assert lvl_cluster.name == "L2"
        assert lvl_cyclic.name == "L3"

    def test_fit_headroom_monotone(self):
        assert fit_headroom(1) >= fit_headroom(3)
        with pytest.raises(SimulationError):
            fit_headroom(0)


class TestBandwidthAndContention:
    def test_block_slower_than_cyclic_at_32(self, sg2042):
        """Block placement crams 16 threads per region (2 regions idle);
        cyclic spreads 8 per region — Table 1 vs Table 2."""
        triad = get_kernel("TRIAD")
        n = triad.default_size
        block = placement(sg2042, 32, PlacementPolicy.BLOCK)
        cyclic = placement(sg2042, 32, PlacementPolicy.CYCLIC)
        t_block = memory_time_per_iter(
            sg2042, triad, n, DType.FP32, block[0], block
        )
        t_cyclic = memory_time_per_iter(
            sg2042, triad, n, DType.FP32, cyclic[0], cyclic
        )
        assert t_block.seconds_per_iter > 3 * t_cyclic.seconds_per_iter

    def test_64_thread_contention_collapse(self, sg2042):
        """All 64 threads hammering the L3 slices degrades per-thread
        bandwidth below the 32-thread point (the Tables' collapse)."""
        triad = get_kernel("TRIAD")
        n = triad.default_size
        p32 = placement(sg2042, 32, PlacementPolicy.CYCLIC)
        p64 = placement(sg2042, 64, PlacementPolicy.CYCLIC)
        t32 = memory_time_per_iter(
            sg2042, triad, n, DType.FP32, p32[0], p32
        )
        t64 = memory_time_per_iter(
            sg2042, triad, n, DType.FP32, p64[0], p64
        )
        # Per-iteration time at 64 threads is much worse than 2x the
        # 32-thread time: total throughput collapses.
        assert t64.seconds_per_iter > 4 * t32.seconds_per_iter

    def test_single_thread_bandwidths_ranked(self, sg2042, visionfive_v2):
        triad = get_kernel("TRIAD")
        n = triad.default_size
        t_sg = memory_time_per_iter(
            sg2042, triad, n, DType.FP64, 0, (0,)
        )
        t_v2 = memory_time_per_iter(
            visionfive_v2, triad, n, DType.FP64, 0, (0,)
        )
        assert t_v2.seconds_per_iter > 3 * t_sg.seconds_per_iter

    def test_gather_penalty_applied(self, sg2042):
        halo = get_kernel("HALOEXCHANGE")
        fir = get_kernel("FIR")
        n = 125_000
        t_halo = memory_time_per_iter(
            sg2042, halo, n, DType.FP64, 0, (0,)
        )
        t_fir = memory_time_per_iter(sg2042, fir, n, DType.FP64, 0, (0,))
        # Same serving-level class of kernel, but the indirection kernel
        # gets the gather derating.
        assert t_halo.per_thread_bandwidth < t_fir.per_thread_bandwidth

    def test_invalid_core_rejected(self, sg2042):
        triad = get_kernel("TRIAD")
        with pytest.raises(SimulationError):
            memory_time_per_iter(
                sg2042, triad, 1000, DType.FP32, 5, (0, 1)
            )

    def test_invalid_size_rejected(self, sg2042):
        triad = get_kernel("TRIAD")
        with pytest.raises(SimulationError):
            memory_time_per_iter(sg2042, triad, 0, DType.FP32, 0, (0,))
