"""Property-based invariants of the execution model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.model import XUANTIE_GCC_8_4
from repro.compiler.vectorizer import analyze
from repro.kernels.registry import get_kernel
from repro.machine import catalog
from repro.machine.vector import DType
from repro.openmp.affinity import PlacementPolicy, assign_cores
from repro.perfmodel.execution import simulate_kernel

SG = catalog.sg2042()


def report_for(kernel):
    return analyze(XUANTIE_GCC_8_4, kernel, SG.core.isa)


KERNEL_NAMES = st.sampled_from(
    ["TRIAD", "DAXPY", "GEMM", "HYDRO_1D", "FIR", "REDUCE_SUM"]
)


class TestScalingProperties:
    @settings(max_examples=30, deadline=None)
    @given(name=KERNEL_NAMES, reps=st.integers(1, 50))
    def test_time_linear_in_reps(self, name, reps):
        kernel = get_kernel(name)
        rep = report_for(kernel)
        one = simulate_kernel(
            kernel, SG, (0,), DType.FP32, rep, n=10_000, reps=1
        )
        many = simulate_kernel(
            kernel, SG, (0,), DType.FP32, rep, n=10_000, reps=reps
        )
        assert many.seconds == pytest.approx(reps * one.seconds)

    @settings(max_examples=30, deadline=None)
    @given(
        name=KERNEL_NAMES,
        n1=st.integers(1_000, 100_000),
        n2=st.integers(1_000, 100_000),
    )
    def test_time_monotone_in_problem_size(self, name, n1, n2):
        if n1 > n2:
            n1, n2 = n2, n1
        kernel = get_kernel(name)
        rep = report_for(kernel)
        small = simulate_kernel(
            kernel, SG, (0,), DType.FP32, rep, n=n1, reps=1
        )
        large = simulate_kernel(
            kernel, SG, (0,), DType.FP32, rep, n=n2, reps=1
        )
        assert large.seconds >= small.seconds * 0.999

    @settings(max_examples=20, deadline=None)
    @given(name=KERNEL_NAMES, seed=st.integers(0, 1000))
    def test_placement_order_irrelevant(self, name, seed):
        """Only the *set* of cores matters, not the thread ordering."""
        import random

        kernel = get_kernel(name)
        rep = report_for(kernel)
        cores = assign_cores(SG.topology, 8, PlacementPolicy.CLUSTER)
        shuffled = list(cores)
        random.Random(seed).shuffle(shuffled)
        a = simulate_kernel(kernel, SG, cores, DType.FP32, rep)
        b = simulate_kernel(
            kernel, SG, tuple(shuffled), DType.FP32, rep
        )
        assert a.seconds == pytest.approx(b.seconds)

    @settings(max_examples=15, deadline=None)
    @given(name=KERNEL_NAMES)
    def test_fp64_never_faster_than_fp32(self, name):
        """Doubling the element width never speeds a kernel up."""
        kernel = get_kernel(name)
        rep = report_for(kernel)
        t32 = simulate_kernel(kernel, SG, (0,), DType.FP32, rep)
        t64 = simulate_kernel(kernel, SG, (0,), DType.FP64, rep)
        assert t64.seconds >= t32.seconds * 0.999


class TestCrossMachineProperties:
    @settings(max_examples=10, deadline=None)
    @given(name=KERNEL_NAMES)
    def test_c920_always_beats_u74(self, name):
        """Figure 1's 'no kernel slower' as a property over kernels."""
        v2 = catalog.visionfive_v2()
        kernel = get_kernel(name)
        sg_rep = report_for(kernel)
        from repro.compiler.model import GCC_8_3

        v2_rep = analyze(GCC_8_3, kernel, v2.core.isa)
        t_sg = simulate_kernel(kernel, SG, (0,), DType.FP64, sg_rep)
        t_v2 = simulate_kernel(kernel, v2, (0,), DType.FP64, v2_rep)
        assert t_sg.seconds < t_v2.seconds
