"""Trace-driven validation of the analytic cache model."""

import numpy as np
import pytest

from repro.machine.cache import CacheHierarchy, CacheLevel, Sharing
from repro.perfmodel.traces import (
    HierarchySimulator,
    blocked_trace,
    gather_trace,
    streaming_trace,
    strided_trace,
)
from repro.util.errors import ConfigError
from repro.util.units import KIB


def tiny_hierarchy():
    """A scaled-down two-level hierarchy (16KiB L1, 128KiB L2)."""
    return CacheHierarchy(
        levels=(
            CacheLevel("L1D", 16 * KIB, Sharing.CORE, associativity=8,
                       latency_cycles=3),
            CacheLevel("L2", 128 * KIB, Sharing.CORE, associativity=8,
                       latency_cycles=12),
        )
    )


class TestTraceGenerators:
    def test_streaming_covers_buffer(self):
        trace = streaming_trace(1024, elem_bytes=8)
        assert trace.size == 128
        assert trace[0] == 0 and trace[-1] == 1016

    def test_strided_skips(self):
        trace = strided_trace(1024, stride_bytes=64)
        assert trace.size == 16

    def test_blocked_repeats_blocks(self):
        trace = blocked_trace(512, block_bytes=256, passes=3)
        assert trace.size == 3 * 64  # 2 blocks * 3 passes * 32 elems
        # First block repeated before second begins.
        assert trace[0] == trace[32] == 0

    def test_gather_within_bounds(self):
        trace = gather_trace(4096, count=100)
        assert trace.size == 100
        assert trace.max() < 4096

    def test_validation(self):
        with pytest.raises(ConfigError):
            streaming_trace(4, elem_bytes=8)
        with pytest.raises(ConfigError):
            blocked_trace(128, block_bytes=256, passes=1)


class TestHierarchySimulator:
    def test_small_buffer_served_by_l1(self):
        sim = HierarchySimulator(tiny_hierarchy())
        trace = streaming_trace(8 * KIB)
        assert sim.serving_level_steady_state(trace) == "L1D"

    def test_medium_buffer_served_by_l2(self):
        sim = HierarchySimulator(tiny_hierarchy())
        trace = streaming_trace(64 * KIB)
        assert sim.serving_level_steady_state(trace) == "L2"

    def test_large_buffer_goes_to_dram(self):
        sim = HierarchySimulator(tiny_hierarchy())
        trace = streaming_trace(512 * KIB)
        assert sim.serving_level_steady_state(trace) == "DRAM"

    def test_blocked_access_defeats_capacity_limit(self):
        """Tiling keeps a DRAM-sized working set cache-resident — the
        justification for ``traffic_scale`` in the kernel traits."""
        sim = HierarchySimulator(tiny_hierarchy())
        trace = blocked_trace(512 * KIB, block_bytes=8 * KIB, passes=8)
        sim.replay(trace)
        stats = {s.name: s for s in sim.stats()}
        # 7 of every 8 block passes hit L1.
        assert stats["L1D"].hit_rate > 0.8

    def test_gather_hit_rate_below_streaming(self):
        """Random gathers over a large buffer miss more than streaming —
        the GATHER_EFFICIENCY derating."""
        hierarchy = tiny_hierarchy()
        stream_sim = HierarchySimulator(hierarchy)
        stream = streaming_trace(256 * KIB)
        stream_sim.replay(stream)
        stream_sim.replay(stream)
        stream_l1 = stream_sim.stats()[0].hit_rate

        gather_sim = HierarchySimulator(tiny_hierarchy())
        gather = gather_trace(256 * KIB, count=stream.size)
        gather_sim.replay(gather)
        gather_sim.replay(gather)
        gather_l1 = gather_sim.stats()[0].hit_rate
        # Streaming enjoys spatial locality within each 64B line (8
        # consecutive elements); random gathers do not.
        assert gather_l1 < stream_l1

    def test_reset(self):
        sim = HierarchySimulator(tiny_hierarchy())
        sim.replay(streaming_trace(8 * KIB))
        sim.reset()
        assert sim.stats()[0].accesses == 0
        assert sim.dram_accesses == 0

    def test_empty_trace_rejected(self):
        sim = HierarchySimulator(tiny_hierarchy())
        with pytest.raises(ConfigError):
            sim.replay(np.array([], dtype=np.int64))


class TestAgreementWithAnalyticRule:
    """The analytic serving_level decision and the simulator must agree
    on the fit/no-fit boundary for streaming workloads."""

    @pytest.mark.parametrize(
        "footprint_kib,expected",
        [(8, "L1D"), (14, "L1D"), (64, "L2"), (112, "L2"), (256, "DRAM")],
    )
    def test_streaming_boundaries(self, footprint_kib, expected):
        sim = HierarchySimulator(tiny_hierarchy())
        trace = streaming_trace(footprint_kib * KIB)
        assert sim.serving_level_steady_state(trace) == expected

    def test_analytic_headroom_is_safe_side(self):
        """The analytic rule uses 0.9 headroom for <=2 sharers; confirm
        0.9x capacity still simulates as resident."""
        from repro.perfmodel.memory import FIT_HEADROOM_FEW

        sim = HierarchySimulator(tiny_hierarchy())
        nbytes = int(16 * KIB * FIT_HEADROOM_FEW)
        trace = streaming_trace(nbytes)
        assert sim.serving_level_steady_state(trace) == "L1D"
