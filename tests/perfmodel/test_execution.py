"""End-to-end execution model tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.model import XUANTIE_GCC_8_4
from repro.compiler.vectorizer import VectorizationReport, analyze
from repro.kernels.registry import get_kernel
from repro.machine.vector import DType
from repro.openmp.affinity import PlacementPolicy, assign_cores
from repro.perfmodel.execution import execution_dtype, simulate_kernel
from repro.perfmodel.threading import (
    barrier_seconds,
    compose_parallel_time,
)
from repro.util.errors import SimulationError

SCALAR = VectorizationReport(
    vectorized=False, vector_path_executed=False, flavor=None,
    efficiency=1.0, reason="test",
)


def vec_report(kernel, cpu):
    return analyze(XUANTIE_GCC_8_4, kernel, cpu.core.isa)


class TestExecutionDtype:
    def test_float_kernels_keep_precision(self):
        assert execution_dtype(get_kernel("TRIAD"), DType.FP32) == DType.FP32

    def test_integer_kernel_maps_precisions(self):
        k = get_kernel("REDUCE3_INT")
        assert execution_dtype(k, DType.FP32) == DType.INT32
        assert execution_dtype(k, DType.FP64) == DType.INT64


class TestSimulateKernel:
    def test_returns_positive_time(self, sg2042):
        k = get_kernel("DAXPY")
        result = simulate_kernel(k, sg2042, (0,), DType.FP64, SCALAR)
        assert result.seconds > 0
        assert result.seconds == pytest.approx(
            result.seconds_per_rep * k.reps
        )

    def test_vectorized_fp32_faster(self, sg2042):
        k = get_kernel("TRIAD")
        scalar = simulate_kernel(k, sg2042, (0,), DType.FP32, SCALAR)
        vector = simulate_kernel(
            k, sg2042, (0,), DType.FP32, vec_report(k, sg2042)
        )
        assert vector.seconds < scalar.seconds
        assert vector.vector_executed

    def test_vectorized_fp64_identical_to_scalar(self, sg2042):
        """Executing FP64 'vector' code on the C920 runs the scalar
        datapath (Figure 2)."""
        k = get_kernel("TRIAD")
        scalar = simulate_kernel(k, sg2042, (0,), DType.FP64, SCALAR)
        vector = simulate_kernel(
            k, sg2042, (0,), DType.FP64, vec_report(k, sg2042)
        )
        assert vector.seconds == pytest.approx(scalar.seconds, rel=0.01)

    def test_threads_reduce_time_for_parallel_kernel(self, sg2042):
        k = get_kernel("GEMM")
        report = vec_report(k, sg2042)
        one = simulate_kernel(k, sg2042, (0,), DType.FP32, report)
        cores = assign_cores(sg2042.topology, 16, PlacementPolicy.CLUSTER)
        many = simulate_kernel(k, sg2042, cores, DType.FP32, report)
        assert many.seconds < one.seconds / 8

    def test_amdahl_limits_serial_kernel(self, sg2042):
        k = get_kernel("SORT")  # parallel_fraction 0.30
        cores = assign_cores(sg2042.topology, 64, PlacementPolicy.CLUSTER)
        one = simulate_kernel(k, sg2042, (0,), DType.FP64, SCALAR)
        many = simulate_kernel(k, sg2042, cores, DType.FP64, SCALAR)
        assert one.seconds / many.seconds < 1.0 / 0.70 + 0.2

    def test_regions_per_rep_multiplies_overhead(self, sg2042):
        halo = get_kernel("HALOEXCHANGE")
        fused = get_kernel("HALOEXCHANGE_FUSED")
        cores = assign_cores(sg2042.topology, 64, PlacementPolicy.CYCLIC)
        t_halo = simulate_kernel(halo, sg2042, cores, DType.FP64, SCALAR)
        t_fused = simulate_kernel(fused, sg2042, cores, DType.FP64, SCALAR)
        # Fusing the packing loops is faster at scale — the reason the
        # FUSED variant exists in RAJAPerf.
        assert t_fused.seconds < t_halo.seconds

    def test_duplicate_cores_rejected(self, sg2042):
        with pytest.raises(SimulationError):
            simulate_kernel(
                get_kernel("TRIAD"), sg2042, (0, 0), DType.FP32, SCALAR
            )

    def test_empty_placement_rejected(self, sg2042):
        with pytest.raises(SimulationError):
            simulate_kernel(
                get_kernel("TRIAD"), sg2042, (), DType.FP32, SCALAR
            )

    def test_explicit_size_and_reps(self, sg2042):
        k = get_kernel("DAXPY")
        small = simulate_kernel(
            k, sg2042, (0,), DType.FP64, SCALAR, n=1000, reps=1
        )
        large = simulate_kernel(
            k, sg2042, (0,), DType.FP64, SCALAR, n=1000, reps=10
        )
        assert large.seconds == pytest.approx(10 * small.seconds)

    @settings(max_examples=20, deadline=None)
    @given(threads=st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    def test_time_positive_for_all_thread_counts(self, threads):
        from repro.machine import catalog

        sg = catalog.sg2042()
        cores = assign_cores(sg.topology, threads, PlacementPolicy.CYCLIC)
        k = get_kernel("HYDRO_1D")
        result = simulate_kernel(k, sg, cores, DType.FP32, SCALAR)
        assert result.seconds > 0


class TestThreadingPrimitives:
    def test_compose_rejects_negative(self):
        with pytest.raises(SimulationError):
            compose_parallel_time(-1.0, 1.0, 0.0)

    def test_barrier_zero_for_one_thread(self, sg2042):
        assert barrier_seconds(sg2042, 1) == 0.0

    def test_barrier_validation(self, sg2042):
        with pytest.raises(SimulationError):
            barrier_seconds(sg2042, 0)
