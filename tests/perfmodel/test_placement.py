"""Placement symmetry classes: grouping, tie-breaking, cached lookups.

These pin the invariants the fast-path scan in ``simulate_kernel``
relies on: classes partition the placement, sharer counts match the
direct topology computation, and the class order/representative choice
reproduces the per-core reference scan's last-wins tie-break.
"""

import pytest

from repro.openmp.affinity import assign_cores
from repro.perfmodel.placement import (
    CoreClass,
    PlacementProfile,
    placement_profile,
    reference_active,
    reference_mode,
)
from repro.suite.config import Placement
from repro.util.errors import SimulationError


def profile_for(cpu, nthreads, policy):
    cores = assign_cores(cpu.topology, nthreads, policy)
    return placement_profile(cpu.topology, cores)


class TestClassGrouping:
    def test_single_thread_is_one_class(self, sg2042):
        p = profile_for(sg2042, 1, Placement.BLOCK)
        assert p.classes == (
            CoreClass(representative=0, count=1,
                      cluster_sharers=1, numa_sharers=1),
        )

    def test_full_machine_block_collapses_to_one_class(self, sg2042):
        # All 64 cores see 4 cluster sharers and 16 NUMA sharers; the
        # whole scan reduces to a single representative.
        p = profile_for(sg2042, 64, Placement.BLOCK)
        assert len(p.classes) == 1
        cc = p.classes[0]
        assert (cc.count, cc.cluster_sharers, cc.numa_sharers) == (64, 4, 16)

    def test_aligned_block_is_one_class(self, sg2042):
        # 8 threads fill two full clusters inside one NUMA region.
        p = profile_for(sg2042, 8, Placement.BLOCK)
        assert [
            (c.count, c.cluster_sharers, c.numa_sharers)
            for c in p.classes
        ] == [(8, 4, 8)]

    def test_ragged_block_splits_at_cluster_boundary(self, sg2042):
        # 5 threads = one full cluster of 4 plus a lone core in the
        # next cluster; both see 5 NUMA sharers.
        p = profile_for(sg2042, 5, Placement.BLOCK)
        assert [
            (c.count, c.cluster_sharers, c.numa_sharers)
            for c in p.classes
        ] == [(4, 4, 5), (1, 1, 5)]

    def test_classes_partition_the_placement(self, sg2042, amd_rome):
        for cpu in (sg2042, amd_rome):
            for nthreads in (1, 3, 6, 16, 64):
                for policy in (Placement.BLOCK, Placement.CYCLIC):
                    p = profile_for(cpu, nthreads, policy)
                    assert sum(c.count for c in p.classes) == nthreads
                    assert p.nthreads == nthreads

    def test_sharer_counts_match_direct_topology_computation(self, sg2042):
        topo = sg2042.topology
        cores = assign_cores(topo, 11, Placement.CYCLIC)
        p = placement_profile(topo, cores)
        per_cluster = topo.active_per_cluster(cores)
        per_numa = topo.active_per_numa(cores)
        for core in cores:
            assert p.numa_of(core) == topo.numa_of(core)
            assert p.cluster_sharers(core) == per_cluster[
                topo.cluster_of(core)
            ]
            assert p.numa_sharers(core) == per_numa[topo.numa_of(core)]


class TestTieBreakOrder:
    def test_representative_is_last_member_in_placement_order(self, sg2042):
        # The reference scan keeps the LAST core among maximum ties, so
        # each class must be represented by its last-placed member.
        topo = sg2042.topology
        cores = assign_cores(topo, 6, Placement.BLOCK)
        p = placement_profile(topo, cores)
        per_cluster = topo.active_per_cluster(cores)
        per_numa = topo.active_per_numa(cores)
        sharers = {
            c: (per_cluster[topo.cluster_of(c)],
                per_numa[topo.numa_of(c)])
            for c in cores
        }
        for cc in p.classes:
            members = [c for c in cores
                       if sharers[c] == (cc.cluster_sharers,
                                         cc.numa_sharers)]
            assert cc.representative == members[-1]

    def test_classes_ordered_by_last_member_position(self, sg2042):
        topo = sg2042.topology
        for nthreads in (5, 6, 11, 13):
            cores = assign_cores(topo, nthreads, Placement.CYCLIC)
            p = placement_profile(topo, cores)
            positions = [cores.index(c.representative) for c in p.classes]
            assert positions == sorted(positions)


class TestProfileCache:
    def test_equal_inputs_share_one_instance(self, sg2042):
        a = placement_profile(sg2042.topology, (0, 1, 2))
        b = placement_profile(sg2042.topology, (0, 1, 2))
        assert a is b

    def test_distinct_placements_get_distinct_profiles(self, sg2042):
        a = placement_profile(sg2042.topology, (0, 1))
        b = placement_profile(sg2042.topology, (0, 8))
        assert a is not b
        assert a.classes != b.classes


class TestValidation:
    def test_empty_placement_rejected(self, sg2042):
        with pytest.raises(SimulationError):
            PlacementProfile(sg2042.topology, ())

    def test_duplicate_cores_rejected(self, sg2042):
        with pytest.raises(SimulationError):
            PlacementProfile(sg2042.topology, (0, 1, 0))

    def test_foreign_core_lookup_rejected(self, sg2042):
        p = placement_profile(sg2042.topology, (0, 1))
        with pytest.raises(SimulationError):
            p.numa_of(63)
        with pytest.raises(SimulationError):
            p.cluster_sharers(63)
        with pytest.raises(SimulationError):
            p.numa_sharers(63)


class TestReferenceMode:
    def test_flag_restored_on_exit(self):
        assert not reference_active()
        with reference_mode():
            assert reference_active()
        assert not reference_active()

    def test_flag_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with reference_mode():
                raise RuntimeError("boom")
        assert not reference_active()

    def test_nesting_preserves_outer_state(self):
        with reference_mode():
            with reference_mode():
                assert reference_active()
            assert reference_active()
        assert not reference_active()
