"""Numerical correctness of the algorithm-class kernels."""

import numpy as np
import pytest

from repro.kernels.registry import get_kernel
from repro.machine.vector import DType

N = 300


def test_scan_is_exclusive_prefix_sum():
    k = get_kernel("SCAN")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    x = ws["x"]
    expected = np.concatenate([[0.0], np.cumsum(x)[:-1]])
    np.testing.assert_allclose(ws["y"], expected, rtol=1e-12)


def test_scan_first_element_zero():
    k = get_kernel("SCAN")
    ws = k.prepare(N, DType.FP32)
    k.execute(ws)
    assert ws["y"][0] == 0.0


def test_sort_produces_sorted_permutation():
    k = get_kernel("SORT")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    out = ws["out"]
    assert (np.diff(out) >= 0).all()
    np.testing.assert_array_equal(np.sort(ws["x"]), out)


def test_sort_checksum_changes_if_unsorted():
    """The weighted checksum must be order-sensitive."""
    k = get_kernel("SORT")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    good = k.checksum(ws)
    ws["out"][0], ws["out"][-1] = ws["out"][-1], ws["out"][0]
    assert k.checksum(ws) != pytest.approx(good)


def test_sortpairs_keys_sorted_and_values_follow():
    k = get_kernel("SORTPAIRS")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    assert (np.diff(ws["out_keys"]) >= 0).all()
    # Each output (key, value) pair must exist in the input pairing.
    order = np.argsort(ws["keys"], kind="stable")
    np.testing.assert_array_equal(ws["out_vals"], ws["vals"][order])


def test_reduce_sum_matches_naive():
    k = get_kernel("REDUCE_SUM")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    assert ws["sum"] == pytest.approx(float(np.sum(ws["x"])), rel=1e-10)


def test_memset_fills_value():
    k = get_kernel("MEMSET")
    ws = k.prepare(N, DType.FP32)
    k.execute(ws)
    assert (ws["x"] == ws["value"]).all()


def test_memcpy_copies():
    k = get_kernel("MEMCPY")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    np.testing.assert_array_equal(ws["y"], ws["x"])


def test_sort_reps_do_equal_work():
    """SORT must re-sort the same scrambled input each rep (checksum
    stable across reps)."""
    k = get_kernel("SORT")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    first = k.checksum(ws)
    k.execute(ws)
    assert k.checksum(ws) == first
