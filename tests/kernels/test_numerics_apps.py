"""Numerical correctness of the apps-class kernels."""

import numpy as np
import pytest

from repro.kernels.registry import get_kernel
from repro.machine.vector import DType


def test_fir_matches_naive_convolution():
    k = get_kernel("FIR")
    ws = k.prepare(100, DType.FP64)
    k.execute(ws)
    x, coeff = ws["in"], ws["coeff"]
    for i in (0, 50, 99):
        expected = sum(
            float(coeff[j]) * float(x[i + j]) for j in range(16)
        )
        assert ws["out"][i] == pytest.approx(expected, rel=1e-9)


def test_ltimes_matches_naive_contraction():
    k = get_kernel("LTIMES")
    ws = k.prepare(5, DType.FP64)
    phi0 = ws["phi"].copy()
    k.execute(ws)
    ell, psi = ws["ell"], ws["psi"]
    expected = phi0 + np.einsum("md,zgd->zgm", ell, psi)
    np.testing.assert_allclose(ws["phi"], expected, rtol=1e-10)


def test_ltimes_noview_same_contraction_shape():
    k = get_kernel("LTIMES_NOVIEW")
    ws = k.prepare(5, DType.FP64)
    phi0 = ws["phi"].copy()
    k.execute(ws)
    expected = phi0 + np.einsum("md,zgd->zgm", ws["ell"], ws["psi"])
    np.testing.assert_allclose(ws["phi"], expected, rtol=1e-10)


def test_ltimes_accumulates_across_reps():
    k = get_kernel("LTIMES")
    ws = k.prepare(4, DType.FP64)
    k.execute(ws)
    once = ws["phi"].copy()
    k.execute(ws)
    np.testing.assert_allclose(ws["phi"], 2 * once, rtol=1e-10)


def test_haloexchange_roundtrip_preserves_data():
    """Pack then unpack through the same index lists is the identity."""
    k = get_kernel("HALOEXCHANGE")
    ws = k.prepare(6**3, DType.FP64)
    before = [v.copy() for v in ws["vars"]]
    k.execute(ws)
    for var, orig in zip(ws["vars"], before):
        np.testing.assert_array_equal(var, orig)


def test_haloexchange_fused_roundtrip():
    k = get_kernel("HALOEXCHANGE_FUSED")
    ws = k.prepare(6**3, DType.FP64)
    before = [v.copy() for v in ws["vars"]]
    k.execute(ws)
    for var, orig in zip(ws["vars"], before):
        np.testing.assert_array_equal(var, orig)


def test_halo_lists_cover_faces():
    from repro.kernels.apps import _halo_index_lists

    dim = 5
    lists = _halo_index_lists(dim, width=1)
    assert len(lists) == 6
    grid = np.zeros((dim, dim, dim), dtype=int)
    for lst in lists:
        grid.ravel()[lst] += 1
    # Interior untouched, face centers touched exactly once, edges and
    # corners shared by several faces.
    assert grid[2, 2, 2] == 0
    assert grid[0, 2, 2] == 1
    assert grid[0, 0, 0] == 3


def test_nodal_accumulation_conserves_total():
    """Scatter-add of vol/8 to 8 corners conserves the total volume."""
    k = get_kernel("NODAL_ACCUMULATION_3D")
    ws = k.prepare(4**3, DType.FP64)
    k.execute(ws)
    assert float(np.sum(ws["x"])) == pytest.approx(
        float(np.sum(ws["vol"])), rel=1e-12
    )


def test_nodal_accumulation_interior_node_gets_eight_shares():
    k = get_kernel("NODAL_ACCUMULATION_3D")
    ws = k.prepare(3**3, DType.FP64)
    ws["vol"][:] = 1.0
    k.execute(ws)
    side = 4
    interior = (1 * side + 1) * side + 1
    assert ws["x"][interior] == pytest.approx(1.0)  # 8 * 1/8


def test_vol3d_unit_cubes_have_unit_volume():
    k = get_kernel("VOL3D")
    ws = k.prepare(4**3, DType.FP64)
    # Replace jittered coordinates with a perfect unit grid.
    side = ws["x"].shape[0]
    axes = np.arange(side, dtype=float)
    zz, yy, xx = np.meshgrid(axes, axes, axes, indexing="ij")
    ws["x"][:], ws["y"][:], ws["z"][:] = xx, yy, zz
    k.execute(ws)
    np.testing.assert_allclose(ws["vol"], 1.0, rtol=1e-12)


def test_vol3d_scales_cubically():
    k = get_kernel("VOL3D")
    ws = k.prepare(3**3, DType.FP64)
    side = ws["x"].shape[0]
    axes = np.arange(side, dtype=float) * 2.0  # double the spacing
    zz, yy, xx = np.meshgrid(axes, axes, axes, indexing="ij")
    ws["x"][:], ws["y"][:], ws["z"][:] = xx, yy, zz
    k.execute(ws)
    np.testing.assert_allclose(ws["vol"], 8.0, rtol=1e-12)


def test_del_dot_vec_2d_uniform_flow_has_zero_divergence():
    k = get_kernel("DEL_DOT_VEC_2D")
    ws = k.prepare(10 * 10, DType.FP64)
    # Uniform velocity field on the jittery mesh: divergence ~ 0.
    ws["xdot"][:] = 1.0
    ws["ydot"][:] = 1.0
    k.execute(ws)
    np.testing.assert_allclose(ws["div"], 0.0, atol=1e-9)


def test_del_dot_vec_2d_linear_expansion_detected():
    k = get_kernel("DEL_DOT_VEC_2D")
    ws = k.prepare(8 * 8, DType.FP64)
    dim = 8
    side = dim + 1
    ii, jj = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    ws["x"][:] = jj.ravel().astype(float)
    ws["y"][:] = ii.ravel().astype(float)
    ws["xdot"][:] = ws["x"]  # v = (x, y): div = 2
    ws["ydot"][:] = ws["y"]
    k.execute(ws)
    np.testing.assert_allclose(ws["div"], 2.0, rtol=1e-9)


def test_energy_guards_and_floors():
    k = get_kernel("ENERGY")
    ws = k.prepare(500, DType.FP64)
    k.execute(ws)
    assert np.isfinite(ws["e_new"]).all()
    assert (ws["e_new"] >= float(ws["emin"])).all()
    # q_new is zeroed exactly where the zone is expanding.
    expanding = ws["delvc"] > 0
    assert (ws["q_new"][expanding] == 0).all()


def test_pressure_floors_and_cutoffs():
    k = get_kernel("PRESSURE")
    ws = k.prepare(500, DType.FP64)
    k.execute(ws)
    assert (ws["p_new"] >= float(ws["pmin"])).all()
    assert np.isfinite(ws["bvc"]).all()


def test_mass3dpa_linear_in_dofs():
    """The mass operator is linear: M(2u) = 2 M(u)."""
    k = get_kernel("MASS3DPA")
    ws = k.prepare(3, DType.FP64)
    k.execute(ws)
    once = ws["out"].copy()
    ws["dofs"] *= 2.0
    k.execute(ws)
    np.testing.assert_allclose(ws["out"], 2 * once, rtol=1e-10)


def test_diffusion3dpa_zero_coefficient_gives_zero():
    k = get_kernel("DIFFUSION3DPA")
    ws = k.prepare(3, DType.FP64)
    ws["coeff"][:] = 0.0
    k.execute(ws)
    np.testing.assert_array_equal(ws["out"], 0.0)


def test_convection3dpa_zero_velocity_gives_zero():
    k = get_kernel("CONVECTION3DPA")
    ws = k.prepare(3, DType.FP64)
    ws["vel"][:] = 0.0
    k.execute(ws)
    np.testing.assert_array_equal(ws["out"], 0.0)


def test_convection3dpa_linear_in_velocity():
    k = get_kernel("CONVECTION3DPA")
    ws = k.prepare(3, DType.FP64)
    k.execute(ws)
    once = ws["out"].copy()
    ws["vel"] *= 3.0
    k.execute(ws)
    np.testing.assert_allclose(ws["out"], 3 * once, rtol=1e-10)
