"""Fuzz tests: every kernel must prepare/execute/checksum at arbitrary
problem sizes — odd sizes, non-squares, non-cubes — without crashing or
producing non-finite results.

These catch slicing and dimension-derivation bugs (kernels map ``n`` to
grid sides via roots, so awkward sizes stress the rounding paths).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.registry import get_kernel, kernel_names
from repro.machine.vector import DType

#: Sizes chosen to stress rounding: primes, one-off-perfect powers.
AWKWARD_SIZES = [17, 97, 100, 101, 127, 343, 344, 1000, 1021]


@pytest.mark.parametrize("name", kernel_names())
@pytest.mark.parametrize("n", [17, 343, 1021])
def test_kernel_survives_awkward_sizes(name, n):
    kernel = get_kernel(name)
    for dtype in (DType.FP32, DType.FP64):
        ws = kernel.prepare(n, dtype)
        kernel.execute(ws)
        kernel.execute(ws)  # second rep exercises state handling
        assert math.isfinite(kernel.checksum(ws)), (name, n, dtype)


@settings(max_examples=20, deadline=None)
@given(
    name=st.sampled_from(kernel_names()),
    n=st.integers(min_value=8, max_value=2000),
)
def test_kernel_fuzz_sizes(name, n):
    kernel = get_kernel(name)
    ws = kernel.prepare(n, DType.FP64)
    kernel.execute(ws)
    assert math.isfinite(kernel.checksum(ws))


@pytest.mark.parametrize("name", kernel_names())
def test_checksum_stable_across_instances(name):
    """Two fresh instances at the same size produce identical
    checksums (deterministic init — the golden-test precondition)."""
    a, b = get_kernel(name), get_kernel(name)
    ws_a = a.prepare(513, DType.FP64)
    ws_b = b.prepare(513, DType.FP64)
    a.execute(ws_a)
    b.execute(ws_b)
    assert a.checksum(ws_a) == b.checksum(ws_b)


def test_workspaces_do_not_share_arrays():
    """prepare() must allocate fresh arrays each call (kernels are
    stateless; state lives in workspaces)."""
    kernel = get_kernel("TRIAD")
    ws1 = kernel.prepare(100, DType.FP64)
    ws2 = kernel.prepare(100, DType.FP64)
    ws1["b"][:] = -999.0
    assert not np.array_equal(ws1["b"], ws2["b"])
