"""Numerical correctness of the basic-class kernels."""

import math

import numpy as np
import pytest

from repro.kernels.registry import get_kernel
from repro.machine.vector import DType

N = 400


def test_daxpy_matches_naive():
    k = get_kernel("DAXPY")
    ws = k.prepare(N, DType.FP64)
    y0 = ws["y"].copy()
    k.execute(ws)
    np.testing.assert_allclose(ws["y"], y0 + 0.5 * ws["x"], rtol=1e-12)


def test_daxpy_accumulates_across_reps():
    k = get_kernel("DAXPY")
    ws = k.prepare(N, DType.FP64)
    y0 = ws["y"].copy()
    k.execute(ws)
    k.execute(ws)
    np.testing.assert_allclose(ws["y"], y0 + 1.0 * ws["x"], rtol=1e-12)


def test_daxpy_atomic_same_math_as_daxpy():
    plain, atomic = get_kernel("DAXPY"), get_kernel("DAXPY_ATOMIC")
    ws_p = plain.prepare(N, DType.FP64)
    ws_a = atomic.prepare(N, DType.FP64)
    plain.execute(ws_p)
    atomic.execute(ws_a)
    np.testing.assert_allclose(ws_p["y"], ws_a["y"], rtol=1e-12)


def test_if_quad_roots_satisfy_equation():
    k = get_kernel("IF_QUAD")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    a, b, c = ws["a"], ws["b"], ws["c"]
    disc = b * b - 4 * a * c
    ok = disc >= 0
    for root in (ws["x1"], ws["x2"]):
        residual = a[ok] * root[ok] ** 2 + b[ok] * root[ok] + c[ok]
        np.testing.assert_allclose(residual, 0.0, atol=1e-9)


def test_indexlist_finds_negatives():
    k = get_kernel("INDEXLIST")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    expected = np.nonzero(ws["x"] < 0)[0]
    assert ws["len"] == expected.size
    np.testing.assert_array_equal(ws["list"][: ws["len"]], expected)


def test_indexlist_3loop_agrees_with_indexlist():
    one = get_kernel("INDEXLIST")
    three = get_kernel("INDEXLIST_3LOOP")
    ws1 = one.prepare(N, DType.FP64)
    ws3 = three.prepare(N, DType.FP64)
    one.execute(ws1)
    three.execute(ws3)
    # Same RNG stream per kernel name differs; compare each against its
    # own input instead.
    expected3 = np.nonzero(ws3["x"] < 0)[0]
    assert ws3["len"] == expected3.size
    np.testing.assert_array_equal(ws3["list"][: ws3["len"]], expected3)


def test_init3():
    k = get_kernel("INIT3")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    expected = -ws["in1"] - ws["in2"]
    for out in ("out1", "out2", "out3"):
        np.testing.assert_allclose(ws[out], expected, rtol=1e-12)


def test_init_view1d():
    k = get_kernel("INIT_VIEW1D")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    expected = np.arange(1, N + 1) * 0.00000123
    np.testing.assert_allclose(ws["a"], expected, rtol=1e-9)


def test_mat_mat_shared_matches_naive():
    k = get_kernel("MAT_MAT_SHARED")
    ws = k.prepare(16 * 16, DType.FP64)  # 16x16 matrices
    k.execute(ws)
    naive = np.zeros_like(ws["c"])
    a, b = ws["a"], ws["b"]
    for i in range(a.shape[0]):
        for j in range(a.shape[0]):
            naive[i, j] = np.dot(a[i, :], b[:, j])
    np.testing.assert_allclose(ws["c"], naive, rtol=1e-10)


def test_muladdsub():
    k = get_kernel("MULADDSUB")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    np.testing.assert_allclose(ws["out1"], ws["in1"] * ws["in2"])
    np.testing.assert_allclose(ws["out2"], ws["in1"] + ws["in2"])
    np.testing.assert_allclose(ws["out3"], ws["in1"] - ws["in2"])


def test_nested_init():
    k = get_kernel("NESTED_INIT")
    ws = k.prepare(6**3, DType.FP64)
    k.execute(ws)
    arr = ws["array"]
    dim = arr.shape[0]
    for i in (0, dim - 1):
        for j in (0, dim - 1):
            for kk in (0, dim - 1):
                assert arr[i, j, kk] == i * j * kk


def test_pi_kernels_approximate_pi():
    for name in ("PI_ATOMIC", "PI_REDUCE"):
        k = get_kernel(name)
        ws = k.prepare(100_000, DType.FP64)
        k.execute(ws)
        assert ws["pi"] == pytest.approx(math.pi, abs=1e-6), name


def test_reduce3_int_matches_naive():
    k = get_kernel("REDUCE3_INT")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    x = ws["x"]
    assert ws["sum"] == int(np.sum(x))
    assert ws["min"] == int(np.min(x))
    assert ws["max"] == int(np.max(x))
    assert x.dtype == np.int64  # FP64 config -> INT64 datapath


def test_reduce3_int_uses_int32_at_fp32():
    k = get_kernel("REDUCE3_INT")
    ws = k.prepare(N, DType.FP32)
    assert ws["x"].dtype == np.int32


def test_reduce_struct():
    k = get_kernel("REDUCE_STRUCT")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    out = ws["out"]
    assert out[0] == pytest.approx(float(np.sum(ws["x"])))
    assert out[1] == float(np.min(ws["x"]))
    assert out[2] == float(np.max(ws["x"]))
    assert out[4] == float(np.min(ws["y"]))


def test_trap_int_converges():
    """Integral of x^2/sqrt(2+x^4) on [0,1] ~ 0.20326."""
    k = get_kernel("TRAP_INT")
    ws = k.prepare(200_000, DType.FP64)
    k.execute(ws)
    coarse = get_kernel("TRAP_INT")
    ws2 = coarse.prepare(1_000, DType.FP64)
    coarse.execute(ws2)
    # Finer grid must agree with coarse to quadrature accuracy.
    assert ws["sumx"] == pytest.approx(ws2["sumx"], abs=1e-4)
