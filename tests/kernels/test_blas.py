"""BLAS library family: composition, registry fallback, IR coverage,
microkernel codegen, and numerical correctness of the executable
faces."""

import numpy as np
import pytest

from repro.analyze.driver import lint_kernel
from repro.analyze.report import Severity
from repro.compiler.model import VectorFlavor
from repro.kernels.blas import (
    BLAS_KERNELS,
    BlasKernel,
    Dgemm,
    Dtrsm,
    all_blas_kernels,
    blas_kernel_types,
    microkernel_loop,
)
from repro.kernels.ir_defs import ir_for
from repro.kernels.registry import all_kernels, get_kernel
from repro.machine.vector import DType
from repro.util.errors import ConfigError


class TestFamilyComposition:
    def test_four_kernels_with_unique_names(self):
        names = [k.name for k in BLAS_KERNELS]
        assert names == ["DGEMM", "DGEMV", "DTRSM", "DSYRK"]

    def test_microkernel_assignment(self):
        by_name = blas_kernel_types()
        assert by_name["DGEMM"].microkernel == "dot"
        assert by_name["DGEMV"].microkernel == "dot"
        assert by_name["DTRSM"].microkernel == "update"
        assert by_name["DSYRK"].microkernel == "update"

    def test_update_ops(self):
        by_name = blas_kernel_types()
        assert by_name["DTRSM"].update_op == "vfnmsac.vv"
        assert by_name["DSYRK"].update_op == "vfmacc.vv"

    def test_unknown_microkernel_rejected_at_class_creation(self):
        with pytest.raises(ConfigError, match="microkernel"):
            type(
                "Bad",
                (BlasKernel,),
                {"name": "BAD", "microkernel": "gather"},
            )

    def test_family_stays_out_of_the_suite_registry(self):
        """The 64-kernel RAJAPerf composition is pinned to the paper;
        the library family must not leak into it."""
        suite_names = {k.name for k in all_kernels()}
        assert len(suite_names) == 64
        assert suite_names.isdisjoint(blas_kernel_types())

    def test_get_kernel_falls_back_to_the_library(self):
        kernel = get_kernel("dgemm")
        assert isinstance(kernel, Dgemm)

    def test_unknown_kernel_error_lists_the_library_too(self):
        with pytest.raises(ConfigError, match="DGEMM"):
            get_kernel("NOT_A_KERNEL")


class TestCharacterization:
    @pytest.mark.parametrize(
        "kernel", all_blas_kernels(), ids=lambda k: k.name
    )
    def test_every_kernel_has_an_ir(self, kernel):
        nest = ir_for(kernel.name)
        assert nest.loops

    @pytest.mark.parametrize(
        "kernel", all_blas_kernels(), ids=lambda k: k.name
    )
    def test_traits_and_ir_lint_clean(self, kernel):
        findings = lint_kernel(kernel)
        assert not any(
            f.severity is Severity.ERROR for f in findings
        )


class TestMicrokernelCodegen:
    @pytest.mark.parametrize(
        "kernel", all_blas_kernels(), ids=lambda k: k.name
    )
    @pytest.mark.parametrize(
        "flavor", [VectorFlavor.VLS, VectorFlavor.VLA]
    )
    def test_loop_emits_the_declared_microkernel(self, kernel, flavor):
        insts = microkernel_loop(kernel, flavor, rvv_version="1.0")
        mnemonics = {i.mnemonic for i in insts}
        if kernel.microkernel == "dot":
            assert "vfredusum.vs" in mnemonics
            assert "vfmacc.vv" in mnemonics
        else:
            assert kernel.update_op in mnemonics
            assert "vfredusum.vs" not in mnemonics
            # The update pattern loads the destination, never zeroes it.
            assert "vmv.v.i" not in mnemonics

    def test_update_loop_loads_the_destination_stream(self):
        insts = microkernel_loop(get_kernel("DTRSM"), VectorFlavor.VLS)
        loads = [
            i for i in insts if i.mnemonic == "vle64.v"
            and "(a3)" in i.operands
        ]
        assert len(loads) == 1


class TestNumerics:
    def test_dgemm_computes_the_blas_update(self):
        kernel = get_kernel("DGEMM")
        ws = kernel.prepare(16, DType.FP64)
        expected = ws["beta"] * ws["C"] + ws["alpha"] * (
            ws["A"] @ ws["B"]
        )
        kernel.execute(ws)
        np.testing.assert_allclose(ws["C"], expected, rtol=1e-12)

    def test_dgemv_computes_the_blas_update(self):
        kernel = get_kernel("DGEMV")
        ws = kernel.prepare(16, DType.FP64)
        expected = ws["beta"] * ws["y"] + ws["alpha"] * (
            ws["A"] @ ws["x"]
        )
        kernel.execute(ws)
        np.testing.assert_allclose(ws["y"], expected, rtol=1e-12)

    def test_dtrsm_solves_the_triangular_system(self):
        kernel = get_kernel("DTRSM")
        ws = kernel.prepare(64, DType.FP64)
        kernel.execute(ws)
        np.testing.assert_allclose(
            ws["x"], np.linalg.solve(ws["L"], ws["b"]), rtol=1e-10
        )

    def test_dtrsm_checksum_tracks_the_solution(self):
        kernel = Dtrsm()
        ws = kernel.prepare(16, DType.FP64)
        before = kernel.checksum(ws)
        kernel.execute(ws)
        assert kernel.checksum(ws) != before
        assert kernel.checksum(ws) == pytest.approx(
            float(np.sum(ws["x"]))
        )

    def test_dsyrk_computes_the_rank_k_update(self):
        kernel = get_kernel("DSYRK")
        ws = kernel.prepare(16, DType.FP64)
        expected = ws["beta"] * ws["C"] + ws["alpha"] * (
            ws["A"] @ ws["A"].T
        )
        kernel.execute(ws)
        np.testing.assert_allclose(ws["C"], expected, rtol=1e-12)
