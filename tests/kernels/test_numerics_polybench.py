"""Numerical correctness of the Polybench kernels vs naive references."""

import numpy as np
import pytest

from repro.kernels.registry import get_kernel
from repro.machine.vector import DType

# Problem sizes map to matrix side sqrt(n); keep tiny for naive loops.
N_MAT = 12 * 12


def test_gemm_matches_naive():
    k = get_kernel("GEMM")
    ws = k.prepare(N_MAT, DType.FP64)
    a, b = ws["A"].copy(), ws["B"].copy()
    c0 = ws["C"].copy()
    k.execute(ws)
    expected = 1.2 * c0 + 1.5 * (a @ b)
    np.testing.assert_allclose(ws["C"], expected, rtol=1e-10)


def test_2mm_matches_naive():
    k = get_kernel("2MM")
    ws = k.prepare(N_MAT, DType.FP64)
    a, b, c, d0 = (ws[x].copy() for x in "ABCD")
    k.execute(ws)
    expected = 1.2 * d0 + (1.5 * (a @ b)) @ c
    np.testing.assert_allclose(ws["D"], expected, rtol=1e-10)


def test_3mm_matches_naive():
    k = get_kernel("3MM")
    ws = k.prepare(N_MAT, DType.FP64)
    k.execute(ws)
    expected = (ws["A"] @ ws["B"]) @ (ws["C"] @ ws["D"])
    np.testing.assert_allclose(ws["G"], expected, rtol=1e-10)


def test_atax_matches_naive():
    k = get_kernel("ATAX")
    ws = k.prepare(N_MAT, DType.FP64)
    k.execute(ws)
    expected = ws["A"].T @ (ws["A"] @ ws["x"])
    np.testing.assert_allclose(ws["y"], expected, rtol=1e-6)


def test_gesummv_matches_naive():
    k = get_kernel("GESUMMV")
    ws = k.prepare(N_MAT, DType.FP64)
    k.execute(ws)
    expected = 1.5 * (ws["A"] @ ws["x"]) + 1.2 * (ws["B"] @ ws["x"])
    np.testing.assert_allclose(ws["y"], expected, rtol=1e-10)


def test_mvt_matches_naive():
    k = get_kernel("MVT")
    ws = k.prepare(N_MAT, DType.FP64)
    x1_0, x2_0 = ws["x1"].copy(), ws["x2"].copy()
    k.execute(ws)
    np.testing.assert_allclose(
        ws["x1"], x1_0 + ws["A"] @ ws["y1"], rtol=1e-10
    )
    np.testing.assert_allclose(
        ws["x2"], x2_0 + ws["A"].T @ ws["y2"], rtol=1e-10
    )


def test_gemver_matches_naive():
    k = get_kernel("GEMVER")
    ws = k.prepare(N_MAT, DType.FP64)
    a0 = ws["A"].copy()
    k.execute(ws)
    a_hat = a0 + np.outer(ws["u1"], ws["v1"]) + np.outer(ws["u2"], ws["v2"])
    x = 1.2 * (a_hat.T @ ws["y"]) + ws["z"]
    np.testing.assert_allclose(ws["x"], x, rtol=1e-10)
    np.testing.assert_allclose(ws["w"], 1.5 * (a_hat @ x), rtol=1e-10)


def test_floyd_warshall_shortest_paths():
    k = get_kernel("FLOYD_WARSHALL")
    ws = k.prepare(8 * 8, DType.FP64)
    path0 = ws["path"].copy()
    k.execute(ws)
    # Reference: naive triple loop.
    ref = path0.copy()
    n = ref.shape[0]
    for kk in range(n):
        for i in range(n):
            for j in range(n):
                ref[i, j] = min(ref[i, j], ref[i, kk] + ref[kk, j])
    np.testing.assert_allclose(ws["path"], ref, rtol=1e-12)


def test_floyd_warshall_triangle_inequality():
    k = get_kernel("FLOYD_WARSHALL")
    ws = k.prepare(10 * 10, DType.FP64)
    k.execute(ws)
    p = ws["path"]
    via = p[:, :, None] + p[None, :, :]
    # p[i,j] <= p[i,k] + p[k,j] for all k after convergence.
    assert (p[:, None, :] <= via.transpose(0, 1, 2) + 1e-9).all()


def test_jacobi_1d_stencil():
    k = get_kernel("JACOBI_1D")
    ws = k.prepare(64, DType.FP64)
    a0 = ws["A"].copy()
    k.execute(ws)
    expected = (a0[:-2] + a0[1:-1] + a0[2:]) / 3.0
    np.testing.assert_allclose(ws["A"][1:-1], expected, rtol=1e-12)


def test_jacobi_2d_stencil():
    k = get_kernel("JACOBI_2D")
    ws = k.prepare(12 * 12, DType.FP64)
    a0 = ws["A"].copy()
    k.execute(ws)
    i, j = 5, 7
    expected = 0.2 * (
        a0[i, j] + a0[i, j - 1] + a0[i, j + 1] + a0[i + 1, j] + a0[i - 1, j]
    )
    assert ws["A"][i, j] == pytest.approx(expected, rel=1e-12)


def test_jacobi_converges_to_constant():
    """Repeated Jacobi smoothing flattens the field (a real invariant of
    the average stencil: the range contracts)."""
    k = get_kernel("JACOBI_2D")
    ws = k.prepare(10 * 10, DType.FP64)
    before = np.ptp(ws["A"][1:-1, 1:-1])
    for _ in range(50):
        k.execute(ws)
    after = np.ptp(ws["A"][3:-3, 3:-3])
    assert after < before


def test_heat_3d_stencil():
    k = get_kernel("HEAT_3D")
    ws = k.prepare(8**3, DType.FP64)
    a0 = ws["A"].copy()
    k.execute(ws)
    i = j = m = 3
    lap = (
        (a0[i + 1, j, m] - 2 * a0[i, j, m] + a0[i - 1, j, m])
        + (a0[i, j + 1, m] - 2 * a0[i, j, m] + a0[i, j - 1, m])
        + (a0[i, j, m + 1] - 2 * a0[i, j, m] + a0[i, j, m - 1])
    )
    expected = a0[i, j, m] + 0.125 * lap
    assert ws["A"][i, j, m] == pytest.approx(expected, rel=1e-12)


def test_heat_3d_buffers_swap():
    k = get_kernel("HEAT_3D")
    ws = k.prepare(8**3, DType.FP64)
    a_id = id(ws["A"])
    k.execute(ws)
    assert id(ws["B"]) == a_id  # swapped


def test_fdtd_2d_updates_all_fields():
    k = get_kernel("FDTD_2D")
    ws = k.prepare(16 * 16, DType.FP64)
    before = {f: ws[f].copy() for f in ("ex", "ey", "hz")}
    k.execute(ws)
    for f in ("ex", "ey", "hz"):
        assert not np.array_equal(ws[f], before[f]), f
    assert ws["t"] == 1


def test_adi_sweep_is_linear_recurrence():
    from repro.kernels.polybench import Adi

    src = np.ones((3, 6))
    out = Adi._sweep(src, a=0.5, b=1.0)
    # x[j] = 1 + 0.5 x[j-1] -> geometric approach to 2.
    expected = [1.0, 1.5, 1.75, 1.875, 1.9375, 1.96875]
    np.testing.assert_allclose(out[0], expected, rtol=1e-12)


def test_adi_remains_finite_over_reps():
    k = get_kernel("ADI")
    ws = k.prepare(20 * 20, DType.FP64)
    for _ in range(5):
        k.execute(ws)
    assert np.isfinite(ws["u"]).all()
