"""The committed kernel reference must match the generated one."""

from pathlib import Path

from repro.kernels.docgen import generate_kernel_reference


def test_kernels_md_in_sync():
    committed = (
        Path(__file__).resolve().parents[2] / "docs" / "KERNELS.md"
    ).read_text(encoding="utf-8")
    assert committed == generate_kernel_reference(), (
        "docs/KERNELS.md is stale; regenerate with "
        "`python -m repro.kernels.docgen`"
    )


def test_reference_covers_all_classes():
    text = generate_kernel_reference()
    for heading in ("Algorithm (6", "Apps (13", "Basic (16",
                    "Lcals (11", "Polybench (13", "Stream (5"):
        assert heading in text
