"""Registry tests: the suite must match Section 2.2 exactly."""

import pytest

from repro.kernels.base import KernelClass
from repro.kernels.registry import (
    EXPECTED_CLASS_SIZES,
    all_kernels,
    get_kernel,
    kernel_names,
    kernels_in_class,
)
from repro.util.errors import ConfigError


class TestSuiteComposition:
    """The paper: 64 kernels in six classes (6/13/16/11/13/5)."""

    def test_total_is_64(self, kernels):
        assert len(kernels) == 64

    def test_class_sizes(self):
        for klass, expected in EXPECTED_CLASS_SIZES.items():
            assert len(kernels_in_class(klass)) == expected, klass

    def test_unique_names(self, kernels):
        names = [k.name for k in kernels]
        assert len(set(names)) == 64

    def test_every_kernel_belongs_to_its_class(self):
        for klass in KernelClass:
            for kernel in kernels_in_class(klass):
                assert kernel.klass is klass

    def test_named_kernels_present(self, kernels_by_name):
        # The kernels the paper names explicitly.
        for name in (
            "MEMSET", "DAXPY", "REDUCE3_INT", "2MM", "3MM", "GEMM",
            "FLOYD_WARSHALL", "HEAT_3D", "JACOBI_1D", "JACOBI_2D",
            "TRIAD", "FIR", "HALOEXCHANGE", "TRIDIAG_ELIM", "ADI",
        ):
            assert name in kernels_by_name


class TestLookup:
    def test_get_kernel_case_insensitive(self):
        assert get_kernel("daxpy").name == "DAXPY"

    def test_get_kernel_unknown(self):
        with pytest.raises(ConfigError):
            get_kernel("NOT_A_KERNEL")

    def test_kernels_in_class_by_label(self):
        assert len(kernels_in_class("stream")) == 5

    def test_kernels_in_class_bad_label(self):
        with pytest.raises(ConfigError):
            kernels_in_class("streamz")

    def test_kernel_names_order_stable(self):
        assert kernel_names() == [k.name for k in all_kernels()]

    def test_fresh_instances(self):
        assert get_kernel("TRIAD") is not get_kernel("TRIAD")


class TestTraitsSanity:
    def test_all_traits_valid(self, kernels):
        for kernel in kernels:
            traits = kernel.traits
            assert traits.flops_per_iter >= 0, kernel.name
            assert (
                traits.reads_per_iter + traits.writes_per_iter > 0
            ), kernel.name
            assert 0 < traits.parallel_fraction <= 1, kernel.name

    def test_default_sizes_positive(self, kernels):
        for kernel in kernels:
            assert kernel.default_size >= 1
            assert kernel.reps >= 1

    def test_arithmetic_intensity_consistency(self, kernels_by_name):
        from repro.machine.vector import DType

        triad = kernels_by_name["TRIAD"].traits
        # 2 flops over 24 bytes at FP64.
        assert triad.arithmetic_intensity(DType.FP64) == pytest.approx(
            2 / 24
        )
        assert triad.arithmetic_intensity(DType.FP32) == pytest.approx(
            2 / 12
        )

    def test_integer_kernel_flag(self, kernels_by_name):
        assert kernels_by_name["REDUCE3_INT"].traits.integer_kernel
        assert not kernels_by_name["DAXPY"].traits.integer_kernel

    def test_footprints_scale_with_size(self, kernels):
        from repro.machine.vector import DType

        for kernel in kernels:
            small = kernel.footprint_bytes(1000, DType.FP64)
            large = kernel.footprint_bytes(2000, DType.FP64)
            assert large == pytest.approx(2 * small), kernel.name
