"""Numerical correctness of the stream kernels against naive loops."""

import numpy as np
import pytest

from repro.kernels.registry import get_kernel
from repro.machine.vector import DType

N = 257  # odd size catches off-by-one slicing


@pytest.fixture(params=[DType.FP32, DType.FP64], ids=["fp32", "fp64"])
def dtype(request):
    return request.param


def test_add(dtype):
    k = get_kernel("ADD")
    ws = k.prepare(N, dtype)
    k.execute(ws)
    np.testing.assert_allclose(ws["c"], ws["a"] + ws["b"], rtol=1e-6)


def test_copy(dtype):
    k = get_kernel("COPY")
    ws = k.prepare(N, dtype)
    k.execute(ws)
    np.testing.assert_array_equal(ws["c"], ws["a"])


def test_dot_matches_naive(dtype):
    k = get_kernel("DOT")
    ws = k.prepare(N, dtype)
    k.execute(ws)
    naive = sum(float(a) * float(b) for a, b in zip(ws["a"], ws["b"]))
    assert ws["dot"] == pytest.approx(naive, rel=1e-4)


def test_mul(dtype):
    k = get_kernel("MUL")
    ws = k.prepare(N, dtype)
    k.execute(ws)
    np.testing.assert_allclose(ws["b"], 0.5 * ws["c"], rtol=1e-6)


def test_triad_matches_naive(dtype):
    k = get_kernel("TRIAD")
    ws = k.prepare(N, dtype)
    k.execute(ws)
    expected = ws["b"] + ws["alpha"] * ws["c"]
    np.testing.assert_allclose(ws["a"], expected, rtol=1e-6)


def test_triad_idempotent_across_reps(dtype):
    """Stream kernels overwrite their output: re-running must not
    accumulate."""
    k = get_kernel("TRIAD")
    ws = k.prepare(N, dtype)
    k.execute(ws)
    first = ws["a"].copy()
    k.execute(ws)
    np.testing.assert_array_equal(ws["a"], first)


def test_checksums_deterministic(dtype):
    for name in ("ADD", "COPY", "DOT", "MUL", "TRIAD"):
        k = get_kernel(name)
        ws1 = k.prepare(N, dtype)
        k.execute(ws1)
        ws2 = k.prepare(N, dtype)
        k.execute(ws2)
        assert k.checksum(ws1) == k.checksum(ws2), name
