"""Numerical correctness of the Lcals kernels, in particular the
recursive-doubling recurrence solver against sequential references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.lcals import solve_linear_recurrence
from repro.kernels.registry import get_kernel
from repro.machine.vector import DType

N = 350


class TestLinearRecurrenceSolver:
    def _sequential(self, coef, rhs):
        out = np.zeros_like(rhs, dtype=np.float64)
        prev = 0.0
        for i in range(rhs.size):
            prev = rhs[i] + coef[i] * prev
            out[i] = prev
        return out

    def test_matches_sequential(self):
        rng = np.random.default_rng(0)
        coef = rng.uniform(-0.9, 0.9, 100)
        rhs = rng.uniform(-1, 1, 100)
        np.testing.assert_allclose(
            solve_linear_recurrence(coef, rhs),
            self._sequential(coef, rhs),
            rtol=1e-10,
        )

    def test_zero_coefficients_reduce_to_rhs(self):
        rhs = np.arange(10.0)
        np.testing.assert_array_equal(
            solve_linear_recurrence(np.zeros(10), rhs), rhs
        )

    def test_single_element(self):
        out = solve_linear_recurrence(np.array([0.5]), np.array([2.0]))
        assert out[0] == 2.0

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(-0.95, 0.95, allow_nan=False), min_size=1,
            max_size=64,
        )
    )
    def test_property_vs_sequential(self, coefs):
        coef = np.asarray(coefs)
        rhs = np.linspace(-1, 1, coef.size)
        np.testing.assert_allclose(
            solve_linear_recurrence(coef, rhs),
            self._sequential(coef, rhs),
            rtol=1e-8,
            atol=1e-12,
        )


def test_first_diff():
    k = get_kernel("FIRST_DIFF")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    np.testing.assert_allclose(
        ws["x"], ws["y"][1:] - ws["y"][:-1], rtol=1e-12
    )


def test_first_sum():
    k = get_kernel("FIRST_SUM")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    y = ws["y"]
    assert ws["x"][0] == pytest.approx(2 * y[0])
    np.testing.assert_allclose(ws["x"][1:], y[:-1] + y[1:], rtol=1e-12)


def test_first_min_finds_planted_minimum():
    k = get_kernel("FIRST_MIN")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    assert ws["loc"] == N // 2
    assert ws["val"] == -1.0


def test_eos_matches_naive():
    k = get_kernel("EOS")
    ws = k.prepare(50, DType.FP64)
    k.execute(ws)
    y, z, u = ws["y"], ws["z"], ws["u"]
    q, r, t = float(ws["q"]), float(ws["r"]), float(ws["t"])
    for i in (0, 17, 49):
        expected = (
            u[i]
            + r * (z[i] + r * y[i])
            + t * (
                u[i + 3]
                + r * (u[i + 2] + r * u[i + 1])
                + t * (u[i + 6] + q * (u[i + 5] + q * u[i + 4]))
            )
        )
        assert ws["x"][i] == pytest.approx(expected, rel=1e-12)


def test_hydro_1d_matches_naive():
    k = get_kernel("HYDRO_1D")
    ws = k.prepare(50, DType.FP64)
    k.execute(ws)
    y, z = ws["y"], ws["z"]
    q, r, t = float(ws["q"]), float(ws["r"]), float(ws["t"])
    for i in (0, 25, 49):
        expected = q + y[i] * (r * z[i + 10] + t * z[i + 11])
        assert ws["x"][i] == pytest.approx(expected, rel=1e-12)


def test_tridiag_elim_matches_sequential():
    k = get_kernel("TRIDIAG_ELIM")
    ws = k.prepare(200, DType.FP64)
    k.execute(ws)
    x, y, z = ws["x"], ws["y"], ws["z"]
    seq = np.zeros(200)
    prev = 0.0
    for i in range(200):
        prev = z[i] * (y[i] - prev)
        seq[i] = prev
    np.testing.assert_allclose(x, seq, rtol=1e-6, atol=1e-10)


def test_gen_lin_recur_matches_sequential():
    k = get_kernel("GEN_LIN_RECUR")
    ws = k.prepare(200, DType.FP64)
    k.execute(ws)
    sa, sb = ws["sa"], ws["sb"]
    seq = np.zeros(200)
    prev = 0.0
    for i in range(200):
        prev = sa[i] + sb[i] * prev
        seq[i] = prev
    np.testing.assert_allclose(ws["b5"], seq, rtol=1e-6, atol=1e-10)


def test_planckian_matches_naive():
    k = get_kernel("PLANCKIAN")
    ws = k.prepare(N, DType.FP64)
    k.execute(ws)
    expected = ws["x"] / (np.exp(ws["u"] / ws["v"]) - 1.0)
    np.testing.assert_allclose(ws["w"], expected, rtol=1e-9)


def test_diff_predict_runs_and_shifts_predictors():
    k = get_kernel("DIFF_PREDICT")
    ws = k.prepare(N, DType.FP64)
    before = ws["px"].copy()
    k.execute(ws)
    # First predictor row becomes cx (the new observation chain head).
    np.testing.assert_allclose(ws["px"][0], ws["cx"], rtol=1e-12)
    assert not np.array_equal(ws["px"], before)


def test_int_predict_polynomial_combination():
    k = get_kernel("INT_PREDICT")
    ws = k.prepare(N, DType.FP64)
    px_before = ws["px"].copy()
    k.execute(ws)
    c = ws["c"]
    expected = sum(c[j] * px_before[j + 1] for j in range(12))
    np.testing.assert_allclose(ws["px"][0], expected, rtol=1e-9)


def test_hydro_2d_interior_update_finite():
    k = get_kernel("HYDRO_2D")
    ws = k.prepare(20 * 20, DType.FP64)
    k.execute(ws)
    for key in ("za", "zb", "zr", "zz"):
        assert np.isfinite(ws[key]).all()
    # Boundary rows untouched by the interior-slice update.
    assert (ws["za"][0, :] == 0).all()
