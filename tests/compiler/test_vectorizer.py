"""Auto-vectorization decision tests: every published statistic and
every kernel the paper names."""

import pytest

from repro.compiler.model import (
    CLANG_16,
    GCC_8_3,
    VectorFlavor,
    XUANTIE_GCC_8_4,
)
from repro.compiler.vectorizer import analyze, suite_statistics
from repro.kernels.registry import all_kernels, get_kernel
from repro.machine.vector import avx2, rvv_0_7_1, rvv_1_0, scalar_only
from repro.util.errors import CompilationError


@pytest.fixture(scope="module")
def kernels():
    return all_kernels()


class TestPublishedCounts:
    """Section 3.2 quoting [11]: GCC vectorizes 30/64 (7 runtime-scalar),
    Clang 59/64 (3 runtime-scalar)."""

    def test_gcc_counts(self, kernels):
        stats = suite_statistics(XUANTIE_GCC_8_4, kernels, rvv_0_7_1())
        assert stats == {
            "total": 64, "vectorized": 30, "runtime_scalar": 7
        }

    def test_clang_counts(self, kernels):
        stats = suite_statistics(
            CLANG_16, kernels, rvv_1_0(), rollback=True
        )
        assert stats == {
            "total": 64, "vectorized": 59, "runtime_scalar": 3
        }


class TestNamedKernels:
    """Kernels the paper names explicitly in Figure 3's discussion."""

    def gcc(self, name):
        return analyze(XUANTIE_GCC_8_4, get_kernel(name), rvv_0_7_1())

    def clang(self, name, flavor=VectorFlavor.VLS):
        return analyze(
            CLANG_16, get_kernel(name), rvv_0_7_1(),
            flavor=flavor, rollback=True,
        )

    def test_gcc_cannot_vectorize_floyd_warshall(self):
        assert not self.gcc("FLOYD_WARSHALL").vectorized

    def test_gcc_cannot_vectorize_heat_3d(self):
        assert not self.gcc("HEAT_3D").vectorized

    @pytest.mark.parametrize("name", ["JACOBI_1D", "JACOBI_2D"])
    def test_gcc_vectorizes_jacobi_but_scalar_at_runtime(self, name):
        report = self.gcc(name)
        assert report.vectorized
        assert not report.vector_path_executed

    @pytest.mark.parametrize("name", ["2MM", "3MM", "GEMM"])
    def test_clang_vectorizes_matmuls_but_scalar_at_runtime(self, name):
        report = self.clang(name)
        assert report.vectorized
        assert not report.vector_path_executed

    @pytest.mark.parametrize("name", ["2MM", "3MM", "GEMM"])
    def test_gcc_executes_vector_path_for_matmuls(self, name):
        report = self.gcc(name)
        assert report.effective

    def test_gcc_vectorizes_all_stream_kernels(self):
        """'The stream class is unique as GCC is able to vectorise all
        of its constituent kernels.'"""
        for name in ("ADD", "COPY", "DOT", "MUL", "TRIAD"):
            assert self.gcc(name).effective, name

    def test_clang_vectorizes_warshall_and_heat3d(self):
        assert self.clang("FLOYD_WARSHALL").effective
        assert self.clang("HEAT_3D").effective

    def test_jacobi_2d_clang_quirk_applied(self):
        report = self.clang("JACOBI_2D")
        assert report.effective
        assert report.efficiency < 0.25  # derated per Figure 3

    def test_vla_less_efficient_than_vls(self):
        vls = self.clang("FLOYD_WARSHALL", VectorFlavor.VLS)
        vla = self.clang("FLOYD_WARSHALL", VectorFlavor.VLA)
        assert vla.efficiency < vls.efficiency


class TestCompatibilityRules:
    def test_clang_without_rollback_rejected_on_c920(self):
        """'It is not possible to use Clang directly to compile code
        targeting the C920's RVV.'"""
        with pytest.raises(CompilationError, match="RVV-rollback"):
            analyze(CLANG_16, get_kernel("TRIAD"), rvv_0_7_1())

    def test_clang_with_rollback_accepted(self):
        report = analyze(
            CLANG_16, get_kernel("TRIAD"), rvv_0_7_1(), rollback=True
        )
        assert report.effective

    def test_clang_direct_on_rvv10_target(self):
        report = analyze(CLANG_16, get_kernel("TRIAD"), rvv_1_0())
        assert report.effective

    def test_gcc_cannot_emit_vla(self):
        with pytest.raises(CompilationError, match="VLA"):
            analyze(
                XUANTIE_GCC_8_4, get_kernel("TRIAD"), rvv_0_7_1(),
                flavor=VectorFlavor.VLA,
            )

    def test_scalar_target_never_vectorizes(self):
        report = analyze(GCC_8_3, get_kernel("TRIAD"), scalar_only())
        assert not report.vectorized
        assert "no vector unit" in report.reason

    def test_x86_gcc_on_avx2(self):
        report = analyze(GCC_8_3, get_kernel("TRIAD"), avx2())
        assert report.effective


class TestReports:
    def test_blocked_report_names_features(self):
        report = analyze(
            XUANTIE_GCC_8_4, get_kernel("SORT"), rvv_0_7_1()
        )
        assert "library_call" in report.reason

    def test_runtime_scalar_report_explains(self):
        report = analyze(
            XUANTIE_GCC_8_4, get_kernel("JACOBI_1D"), rvv_0_7_1()
        )
        assert "scalar path" in report.reason

    def test_efficiency_bounded(self, kernels):
        for kernel in kernels:
            report = analyze(XUANTIE_GCC_8_4, kernel, rvv_0_7_1())
            assert 0 < report.efficiency <= 1
