"""Compile cache: exactly-once compilation, identical reports/errors."""

import pytest

from repro.compiler.cache import CompileCache, compile_key
from repro.compiler.model import CLANG_16, XUANTIE_GCC_8_4, VectorFlavor
from repro.compiler.vectorizer import analyze
from repro.kernels.registry import all_kernels, get_kernel
from repro.machine.vector import rvv_0_7_1, rvv_1_0
from repro.util.errors import CompilationError


class TestCompileCache:
    def test_hit_returns_the_same_report_object(self):
        cache = CompileCache()
        kernel = get_kernel("TRIAD")
        first = cache.analyze(XUANTIE_GCC_8_4, kernel, rvv_0_7_1())
        second = cache.analyze(XUANTIE_GCC_8_4, kernel, rvv_0_7_1())
        assert second is first
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.entries == 1
        assert cache.stats.calls == 2

    def test_reports_match_uncached_analyze(self):
        cache = CompileCache()
        isa = rvv_0_7_1()
        for kernel in all_kernels():
            assert cache.analyze(
                XUANTIE_GCC_8_4, kernel, isa
            ) == analyze(XUANTIE_GCC_8_4, kernel, isa)

    def test_distinct_flavors_are_distinct_entries(self):
        cache = CompileCache()
        kernel = get_kernel("TRIAD")
        vls = cache.analyze(
            CLANG_16, kernel, rvv_1_0(), flavor=VectorFlavor.VLS
        )
        vla = cache.analyze(
            CLANG_16, kernel, rvv_1_0(), flavor=VectorFlavor.VLA
        )
        assert cache.stats.misses == 2
        assert vls is not vla

    def test_errors_reraise_and_are_not_cached(self):
        # Clang on RVV 0.7.1 without rollback cannot target the ISA;
        # every call must fail afresh rather than poison the cache.
        cache = CompileCache()
        kernel = get_kernel("TRIAD")
        for _ in range(2):
            with pytest.raises(CompilationError):
                cache.analyze(CLANG_16, kernel, rvv_0_7_1(), rollback=False)
        assert cache.stats.entries == 0
        assert cache.stats.misses == 0

    def test_clear_resets_everything(self):
        cache = CompileCache()
        cache.analyze(XUANTIE_GCC_8_4, get_kernel("TRIAD"), rvv_0_7_1())
        cache.clear()
        assert cache.stats == type(cache.stats)(hits=0, misses=0, entries=0)

    def test_key_covers_everything_analyze_reads(self):
        kernel = get_kernel("TRIAD")
        base = compile_key(
            XUANTIE_GCC_8_4, kernel, rvv_0_7_1(), VectorFlavor.VLS, False
        )
        varied = [
            compile_key(CLANG_16, kernel, rvv_0_7_1(),
                        VectorFlavor.VLS, False),
            compile_key(XUANTIE_GCC_8_4, get_kernel("DOT"), rvv_0_7_1(),
                        VectorFlavor.VLS, False),
            compile_key(XUANTIE_GCC_8_4, kernel, rvv_1_0(),
                        VectorFlavor.VLS, False),
            compile_key(XUANTIE_GCC_8_4, kernel, rvv_0_7_1(),
                        VectorFlavor.VLA, False),
            compile_key(XUANTIE_GCC_8_4, kernel, rvv_0_7_1(),
                        VectorFlavor.VLS, True),
        ]
        assert len({base, *varied}) == len(varied) + 1


class TestSuiteResolution:
    """Bulk resolution: ``analyze_many`` and the composite fast path."""

    def test_analyze_many_matches_looped_analyze(self):
        cache = CompileCache()
        kernels = all_kernels()
        reports = cache.analyze_many(XUANTIE_GCC_8_4, kernels, rvv_0_7_1())
        loop = CompileCache()
        for kernel, report in zip(kernels, reports):
            assert report == loop.analyze(XUANTIE_GCC_8_4, kernel, rvv_0_7_1())
        assert cache.stats == loop.stats

    def test_analyze_many_yields_none_for_failed_compilations(self):
        # Clang on RVV 0.7.1 without rollback fails for every kernel;
        # the batch returns None placeholders and caches nothing.
        cache = CompileCache()
        kernels = all_kernels()[:4]
        reports = cache.analyze_many(CLANG_16, kernels, rvv_0_7_1())
        assert reports == [None] * 4
        assert cache.stats.entries == 0
        assert cache.stats.misses == 0

    def test_analyze_suite_counters_match_per_kernel_loop(self):
        kernels = tuple(all_kernels())
        suite = CompileCache()
        for _ in range(3):
            suite.analyze_suite(XUANTIE_GCC_8_4, kernels, rvv_0_7_1())
        loop = CompileCache()
        for _ in range(3):
            for kernel in kernels:
                loop.analyze(XUANTIE_GCC_8_4, kernel, rvv_0_7_1())
        assert suite.stats == loop.stats
        assert suite.stats.misses == len(kernels)
        assert suite.stats.hits == 2 * len(kernels)

    def test_analyze_suite_composite_hit_returns_equal_reports(self):
        kernels = tuple(all_kernels())
        cache = CompileCache()
        first = cache.analyze_suite(XUANTIE_GCC_8_4, kernels, rvv_0_7_1())
        second = cache.analyze_suite(XUANTIE_GCC_8_4, kernels, rvv_0_7_1())
        assert second == first
        assert all(a is b for a, b in zip(first, second))

    def test_analyze_suite_never_caches_failing_lists(self):
        cache = CompileCache()
        kernels = tuple(all_kernels()[:4])
        for _ in range(2):
            reports = cache.analyze_suite(CLANG_16, kernels, rvv_0_7_1())
            assert reports == [None] * 4
        assert cache.stats.hits == 0

    def test_clear_drops_composites_too(self):
        kernels = tuple(all_kernels())
        cache = CompileCache()
        cache.analyze_suite(XUANTIE_GCC_8_4, kernels, rvv_0_7_1())
        cache.clear()
        cache.analyze_suite(XUANTIE_GCC_8_4, kernels, rvv_0_7_1())
        assert cache.stats.hits == 0
        assert cache.stats.misses == len(kernels)
