"""Static loop analysis tests: every kernel's declared traits must be a
consequence of its IR, and the derived features must drive the
vectorizer to identical decisions."""

import pytest

from repro.compiler.analysis import (
    DECISIVE_FEATURES,
    derive_features,
    features_agree,
)
from repro.compiler.ir import (
    Access,
    AccessKind,
    Call,
    Compute,
    Loop,
    LoopNest,
    Recurrence,
    Reduce,
    ReduceOp,
    Scan,
    TRIP_N,
    read,
    write,
)
from repro.compiler.model import CLANG_16, XUANTIE_GCC_8_4
from repro.kernels.base import LoopFeature
from repro.kernels.ir_defs import KERNEL_IR, ir_for
from repro.util.errors import CompilationError, ConfigError


class TestIrCoverage:
    def test_every_kernel_has_ir(self, kernels):
        for kernel in kernels:
            assert kernel.name in KERNEL_IR, kernel.name
        assert len(KERNEL_IR) == 64

    def test_ir_for_unknown_kernel(self):
        with pytest.raises(ConfigError):
            ir_for("NOT_A_KERNEL")


class TestDerivedEqualsDeclared:
    """The central pin: traits features are consequences of the IR."""

    def test_all_64_kernels_agree(self, kernels):
        mismatches = []
        for kernel in kernels:
            derived = derive_features(ir_for(kernel.name))
            if not features_agree(kernel.traits.features, derived):
                mismatches.append(
                    (
                        kernel.name,
                        sorted(
                            f.value
                            for f in kernel.traits.features
                            & DECISIVE_FEATURES
                        ),
                        sorted(
                            f.value for f in derived & DECISIVE_FEATURES
                        ),
                    )
                )
        assert not mismatches, mismatches

    def test_vectorizer_decisions_identical_under_derived_features(
        self, kernels
    ):
        """Swapping declared features for IR-derived features must not
        change a single compilation outcome."""
        from dataclasses import replace

        from repro.compiler.vectorizer import analyze
        from repro.machine.vector import rvv_0_7_1

        for kernel in kernels:
            derived = derive_features(ir_for(kernel.name))
            shim = type(kernel)()
            shim.traits = replace(kernel.traits, features=derived)
            for compiler, rollback in (
                (XUANTIE_GCC_8_4, False),
                (CLANG_16, True),
            ):
                a = analyze(compiler, kernel, rvv_0_7_1(),
                            rollback=rollback)
                b = analyze(compiler, shim, rvv_0_7_1(),
                            rollback=rollback)
                assert a.vectorized == b.vectorized, kernel.name
                assert (
                    a.vector_path_executed == b.vector_path_executed
                ), kernel.name


class TestAnalysisRules:
    def test_gather_detected(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Compute((read("x", stride=None), write("y"))),
        )),))
        assert LoopFeature.INDIRECTION in derive_features(nest)

    def test_nonunit_stride_detected(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Compute((read("x", stride=4), write("y"))),
        )),))
        assert LoopFeature.NONUNIT_STRIDE in derive_features(nest)

    def test_float_minmax_adds_conditional(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Reduce(ReduceOp.MIN, (read("x"),), is_float=True),
        )),))
        feats = derive_features(nest)
        assert LoopFeature.CONDITIONAL in feats
        assert LoopFeature.REDUCTION_MINMAX in feats

    def test_int_minmax_is_branch_free(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Reduce(ReduceOp.MIN, (read("x"),), is_float=False),
        )),))
        assert LoopFeature.CONDITIONAL not in derive_features(nest)

    def test_depth2_symbolic_reduction_is_nested(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Loop(TRIP_N, body=(Reduce(ReduceOp.SUM, (read("A"),)),)),
        )),))
        feats = derive_features(nest)
        assert LoopFeature.NESTED_REDUCTION in feats
        assert LoopFeature.SMALL_INNER_TRIP not in feats

    def test_depth3_symbolic_reduction_is_cost_model_trap(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Loop(TRIP_N, body=(
                Loop(TRIP_N, body=(
                    Reduce(ReduceOp.SUM, (read("A"),)),
                )),
            )),
        )),))
        feats = derive_features(nest)
        assert LoopFeature.SMALL_INNER_TRIP in feats
        assert LoopFeature.NESTED_REDUCTION not in feats

    def test_constant_trip_reduction_is_free(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Loop(16, body=(Reduce(ReduceOp.SUM, (read("A"),)),)),
        )),))
        assert not (derive_features(nest) & DECISIVE_FEATURES)

    def test_alias_requires_write(self):
        read_only = LoopNest(
            loops=(Loop(TRIP_N, body=(
                Reduce(ReduceOp.SUM, (read("x"),)),
            )),),
            restrict_pointers=False,
        )
        assert LoopFeature.ALIAS_UNPROVABLE not in derive_features(
            read_only
        )

    def test_alias_detected_on_writes(self):
        nest = LoopNest(
            loops=(Loop(TRIP_N, body=(
                Compute((read("a", offset=1), write("b"))),
            )),),
            restrict_pointers=False,
        )
        assert LoopFeature.ALIAS_UNPROVABLE in derive_features(nest)

    def test_library_call(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(Call("qsort"),)),))
        assert LoopFeature.LIBRARY_CALL in derive_features(nest)

    def test_recurrence_and_scan(self):
        rec = LoopNest(loops=(Loop(TRIP_N, body=(
            Recurrence((read("a"), write("x"))),
        )),))
        scan = LoopNest(loops=(Loop(TRIP_N, body=(
            Scan((read("a"), write("x"))),
        )),))
        assert LoopFeature.LOOP_CARRIED_DEP in derive_features(rec)
        assert LoopFeature.SCAN_DEP in derive_features(scan)


class TestIrValidation:
    def test_zero_stride_rejected(self):
        with pytest.raises(CompilationError):
            Access("x", 0, AccessKind.READ)

    def test_empty_loop_rejected(self):
        with pytest.raises(CompilationError):
            Loop(TRIP_N, body=())

    def test_empty_nest_rejected(self):
        with pytest.raises(CompilationError):
            LoopNest(loops=())

    def test_bad_recurrence_distance(self):
        with pytest.raises(CompilationError):
            Recurrence((read("a"),), distance=0)

    def test_walk_reports_depth(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Loop(4, body=(Compute((write("x"),)),)),
        )),))
        ((stmt, depth, path),) = list(nest.walk())
        assert depth == 2
        assert path[0].trip == TRIP_N and path[1].trip == 4


class TestSymbolicStride:
    """The ROW sentinel: symbolic magnitude that survives arithmetic."""

    def test_row_is_symbolic(self):
        from repro.compiler.ir import SymbolicStride, is_symbolic
        from repro.kernels.ir_defs import ROW

        assert isinstance(ROW, SymbolicStride)
        assert is_symbolic(ROW)
        assert not is_symbolic(1) and not is_symbolic(-1024)

    def test_arithmetic_preserves_symbolism(self):
        from repro.compiler.ir import is_symbolic
        from repro.kernels.ir_defs import ROW

        for value in (-ROW, ROW + 1, ROW - 1, ROW * ROW, 2 * ROW):
            assert is_symbolic(value), value

    def test_symbolic_stride_is_nonunit(self):
        from repro.kernels.ir_defs import ROW

        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Compute((read("a", stride=ROW), write("b"))),
        )),))
        assert LoopFeature.NONUNIT_STRIDE in derive_features(nest)

    def test_indirect_access_still_distinct(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Compute((read("a", stride=None), write("b"))),
        )),))
        derived = derive_features(nest)
        assert LoopFeature.INDIRECTION in derived
        assert LoopFeature.NONUNIT_STRIDE not in derived


class TestFeaturesDiff:
    """Structured drift reporting consumed by the lint driver."""

    def _diff(self, declared, derived, informational=frozenset()):
        from repro.compiler.analysis import features_diff

        return features_diff(
            frozenset(declared), frozenset(derived),
            frozenset(informational),
        )

    def test_clean_when_identical(self):
        drift = self._diff({LoopFeature.REDUCTION_SUM},
                           {LoopFeature.REDUCTION_SUM})
        assert drift.clean and drift.decisive_clean
        assert drift.warnings() == []

    def test_decisive_undeclared(self):
        drift = self._diff(set(), {LoopFeature.SCAN_DEP})
        assert not drift.decisive_clean
        assert drift.decisive_undeclared == {LoopFeature.SCAN_DEP}

    def test_decisive_stale(self):
        drift = self._diff({LoopFeature.ATOMIC}, set())
        assert drift.decisive_stale == {LoopFeature.ATOMIC}

    def test_informational_drift_is_warning_not_decisive(self):
        drift = self._diff(
            set(), set(), informational={LoopFeature.STENCIL}
        )
        assert drift.decisive_clean and not drift.clean
        (warning,) = drift.warnings()
        assert "stencil" in warning

    def test_informational_stale(self):
        drift = self._diff({LoopFeature.OUTER_ONLY_PARALLEL}, set())
        assert drift.informational_stale == {
            LoopFeature.OUTER_ONLY_PARALLEL
        }
        assert any("no such structure" in w for w in drift.warnings())

    def test_features_agree_ignores_informational_drift(self):
        declared = frozenset({LoopFeature.STENCIL})
        assert features_agree(declared, frozenset())


class TestDeriveInformationalFeatures:
    def test_stencil_from_offsets(self):
        from repro.compiler.analysis import derive_informational_features

        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Compute((read("a", offset=1), write("b"))),
        )),))
        assert LoopFeature.STENCIL in derive_informational_features(nest)

    def test_outer_only_parallel_from_structure(self):
        from repro.compiler.analysis import derive_informational_features

        nest = LoopNest(loops=(Loop(TRIP_N, parallel=True, body=(
            Loop(TRIP_N, parallel=False, body=(
                Compute((write("b"),)),
            )),
        )),))
        derived = derive_informational_features(nest)
        assert LoopFeature.OUTER_ONLY_PARALLEL in derived

    def test_flat_streaming_loop_derives_nothing(self):
        from repro.compiler.analysis import derive_informational_features

        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Compute((read("a"), write("b"))),
        )),))
        assert derive_informational_features(nest) == frozenset()
