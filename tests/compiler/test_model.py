"""Compiler description tests."""

import pytest

from repro.compiler.model import (
    CLANG_16,
    Compiler,
    GCC_8_3,
    GCC_11_2,
    VectorFlavor,
    XUANTIE_GCC_8_4,
    compiler_by_name,
)
from repro.kernels.base import LoopFeature
from repro.util.errors import ConfigError


class TestCompilerDefinitions:
    def test_xuantie_gcc_emits_rvv_071(self):
        assert XUANTIE_GCC_8_4.rvv_version == "0.7.1"

    def test_clang_emits_rvv_10_only(self):
        assert CLANG_16.rvv_version == "1.0"

    def test_x86_gcc_emits_no_rvv(self):
        assert GCC_8_3.rvv_version is None
        assert GCC_11_2.rvv_version is None

    def test_gcc_vls_only(self):
        assert XUANTIE_GCC_8_4.flavors == (VectorFlavor.VLS,)
        assert not XUANTIE_GCC_8_4.supports_flavor(VectorFlavor.VLA)

    def test_clang_supports_both_flavors(self):
        assert CLANG_16.supports_flavor(VectorFlavor.VLA)
        assert CLANG_16.supports_flavor(VectorFlavor.VLS)

    def test_clang_blockers_are_subset_of_gcc_blockers(self):
        """Clang vectorizes strictly more than GCC (59 vs 30)."""
        assert CLANG_16.blockers < XUANTIE_GCC_8_4.blockers

    def test_gcc_family_rules_shared(self):
        assert GCC_8_3.blockers == XUANTIE_GCC_8_4.blockers
        assert GCC_11_2.blockers == GCC_8_3.blockers

    def test_alias_check_is_gcc_runtime_scalar_trigger(self):
        assert (
            LoopFeature.ALIAS_UNPROVABLE
            in XUANTIE_GCC_8_4.runtime_scalar_features
        )

    def test_small_inner_trip_is_clang_runtime_scalar_trigger(self):
        assert (
            LoopFeature.SMALL_INNER_TRIP
            in CLANG_16.runtime_scalar_features
        )


class TestLookup:
    @pytest.mark.parametrize(
        "name", ["xuantie-gcc-8.4", "gcc-8.3", "gcc-11.2", "clang-16"]
    )
    def test_known_names(self, name):
        assert compiler_by_name(name).name

    def test_case_insensitive(self):
        assert compiler_by_name("CLANG-16") is CLANG_16

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            compiler_by_name("icc")


class TestValidation:
    def test_bad_family_rejected(self):
        with pytest.raises(ConfigError):
            Compiler(
                name="x", family="msvc", rvv_version=None,
                flavors=(VectorFlavor.VLS,),
                blockers=frozenset(),
                runtime_scalar_features=frozenset(),
            )

    def test_empty_flavors_rejected(self):
        with pytest.raises(ConfigError):
            Compiler(
                name="x", family="gcc", rvv_version=None, flavors=(),
                blockers=frozenset(),
                runtime_scalar_features=frozenset(),
            )

    def test_bad_quirk_rejected(self):
        with pytest.raises(ConfigError):
            Compiler(
                name="x", family="gcc", rvv_version=None,
                flavors=(VectorFlavor.VLS,),
                blockers=frozenset(),
                runtime_scalar_features=frozenset(),
                kernel_quirks={"K": 0.0},
            )
