"""Standalone trace/metrics validator for CI's telemetry-smoke step.

Usage::

    python tests/telemetry/check_trace.py trace.json [trace.jsonl ...]
    python tests/telemetry/check_trace.py --metrics metrics.txt trace.json

Exits non-zero (with the failed assertion) on any schema violation, and
additionally requires the Chrome-format traces to cover the pipeline's
core phases (:data:`~tests.telemetry.schema.PIPELINE_PHASES`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

try:
    from tests.telemetry.schema import (
        PIPELINE_PHASES,
        validate_chrome_trace,
        validate_jsonl,
        validate_metrics_dump,
    )
except ImportError:  # run as a loose script (CI: no installed package)
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from schema import (
        PIPELINE_PHASES,
        validate_chrome_trace,
        validate_jsonl,
        validate_metrics_dump,
    )


def check_trace(path: Path) -> str:
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".jsonl":
        spans = validate_jsonl(text)
        names = {span["name"] for span in spans}
        count = len(spans)
    else:
        events = validate_chrome_trace(json.loads(text))
        names = {event["name"] for event in events}
        count = len(events)
    missing = PIPELINE_PHASES - names
    assert not missing, f"{path}: trace misses phases {sorted(missing)}"
    return f"{path}: ok ({count} spans, {len(names)} phases)"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("traces", nargs="+", metavar="TRACE",
                        help="trace files (.json Chrome format, .jsonl)")
    parser.add_argument("--metrics", default=None, metavar="FILE",
                        help="also validate a flat metrics dump")
    args = parser.parse_args(argv)
    for trace in args.traces:
        print(check_trace(Path(trace)))
    if args.metrics:
        tables = validate_metrics_dump(
            Path(args.metrics).read_text(encoding="utf-8")
        )
        assert tables["counter"], "metrics dump has no counters"
        print(f"{args.metrics}: ok ({sum(map(len, tables.values()))} "
              f"metrics)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
