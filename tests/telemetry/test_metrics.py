"""Unit tests: counters, gauges, histograms, snapshots, merging."""

import threading

import pytest

from repro.telemetry.metrics import (
    NULL_METRICS,
    HistogramStat,
    MetricsRegistry,
)
from repro.util.errors import ConfigError


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(4)
        assert reg.snapshot().counters["hits"] == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.counter("hits").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("entries").set(10)
        reg.gauge("entries").set(3)
        assert reg.snapshot().gauges["entries"] == 3

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("backoff")
        for v in (0.5, 1.0, 2.0):
            h.observe(v)
        stat = reg.snapshot().histograms["backoff"]
        assert stat.count == 3
        assert stat.total == 3.5
        assert stat.minimum == 0.5
        assert stat.maximum == 2.0
        assert stat.mean == pytest.approx(3.5 / 3)

    def test_instruments_are_interned(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")

    def test_counter_thread_safety(self):
        reg = MetricsRegistry()
        counter = reg.counter("n")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.snapshot().counters["n"] == 4000


class TestSnapshotAndMerge:
    def test_snapshot_is_immutable_view(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        snap = reg.snapshot()
        reg.counter("a").inc()
        assert snap.counters["a"] == 1
        assert reg.snapshot().counters["a"] == 2

    def test_merge_semantics(self):
        main = MetricsRegistry()
        main.counter("runs").inc(2)
        main.gauge("entries").set(5)
        main.histogram("pause").observe(1.0)

        worker = MetricsRegistry()
        worker.counter("runs").inc(3)
        worker.gauge("entries").set(7)
        worker.histogram("pause").observe(3.0)

        main.merge(worker.snapshot())
        snap = main.snapshot()
        assert snap.counters["runs"] == 5            # counters add
        assert snap.gauges["entries"] == 7           # last write wins
        stat = snap.histograms["pause"]              # histograms combine
        assert stat.count == 2 and stat.total == 4.0
        assert stat.minimum == 1.0 and stat.maximum == 3.0

    def test_histogram_stat_combine_identity(self):
        empty = HistogramStat()
        one = HistogramStat(count=1, total=2.0, minimum=2.0, maximum=2.0)
        assert empty.combine(one) == one
        assert one.combine(empty) == one

    def test_render_format(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.gauge("a.size").set(1)
        reg.histogram("c.wait").observe(0.5)
        text = reg.snapshot().render()
        lines = text.splitlines()
        assert lines[0].startswith("# repro.telemetry metrics")
        assert "counter b.count 2" in lines
        assert "gauge a.size 1" in lines
        assert any(line.startswith("histogram c.wait count=1")
                   for line in lines)

    def test_null_metrics_inert(self):
        assert NULL_METRICS.active is False
        NULL_METRICS.counter("x").inc(5)
        NULL_METRICS.gauge("y").set(1)
        NULL_METRICS.histogram("z").observe(2.0)
        snap = NULL_METRICS.snapshot()
        assert not snap.counters and not snap.gauges
        assert not snap.histograms
