"""CLI surface: ``trace`` subcommand, ``--telemetry`` flags, the
``--profile-out`` implication warning, and artifact schemas."""

import json


from repro.cli import main
from tests.telemetry.schema import (
    PIPELINE_PHASES,
    validate_chrome_trace,
    validate_jsonl,
    validate_metrics_dump,
)

SWEEP_ARGS = ["--kernels", "TRIAD,DAXPY", "--threads", "1,4",
              "--placements", "cyclic", "--precisions", "fp32"]


class TestTraceCommand:
    def test_trace_sweep_writes_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc = main(["trace", "sweep", *SWEEP_ARGS,
                   "--trace-out", str(trace)])
        assert rc == 0
        captured = capsys.readouterr()
        assert f"trace written to {trace}" in captured.err
        assert "telemetry:" in captured.out        # summary printed
        events = validate_chrome_trace(json.loads(trace.read_text()))
        names = {e["name"] for e in events}
        assert PIPELINE_PHASES <= names

    def test_trace_sweep_jsonl_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.txt"
        rc = main(["trace", "sweep", *SWEEP_ARGS,
                   "--trace-out", str(trace),
                   "--metrics-out", str(metrics)])
        assert rc == 0
        spans = validate_jsonl(trace.read_text())
        assert {s["name"] for s in spans} >= {"sweep", "suite.run"}
        tables = validate_metrics_dump(metrics.read_text())
        assert tables["counter"]["sweep.runs"] == "1"
        assert "cache.predict.misses" in tables["gauge"]

    def test_trace_experiment(self, tmp_path, capsys):
        trace = tmp_path / "exp.json"
        rc = main(["trace", "table2", "--fast",
                   "--trace-out", str(trace)])
        assert rc == 0
        events = validate_chrome_trace(json.loads(trace.read_text()))
        assert events

    def test_trace_unknown_target(self, tmp_path, capsys):
        rc = main(["trace", "nonsense",
                   "--trace-out", str(tmp_path / "t.json")])
        assert rc == 2
        assert "unknown trace target" in capsys.readouterr().err

    def test_trace_unknown_machine(self, tmp_path, capsys):
        rc = main(["trace", "sweep", "--cpu", "z80",
                   "--trace-out", str(tmp_path / "t.json")])
        assert rc == 2


class TestTelemetryFlags:
    def test_sweep_telemetry_prints_summary(self, capsys):
        rc = main(["sweep", *SWEEP_ARGS, "--telemetry"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "sweep.points" in out

    def test_sweep_without_telemetry_has_no_summary(self, capsys):
        rc = main(["sweep", *SWEEP_ARGS])
        assert rc == 0
        assert "telemetry:" not in capsys.readouterr().out

    def test_trace_out_implies_telemetry(self, tmp_path, capsys):
        trace = tmp_path / "sweep.jsonl"
        rc = main(["sweep", *SWEEP_ARGS, "--trace-out", str(trace)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "telemetry:" in captured.out
        validate_jsonl(trace.read_text())

    def test_run_telemetry(self, capsys):
        rc = main(["run", "--cpu", "sg2042", "--threads", "4",
                   "--telemetry"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "counter suite.kernel_runs = 64" in out

    def test_run_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "run-metrics.txt"
        rc = main(["run", "--cpu", "sg2042", "--threads", "1",
                   "--metrics-out", str(metrics)])
        assert rc == 0
        tables = validate_metrics_dump(metrics.read_text())
        assert tables["counter"]["suite.runs"] == "1"

    def test_explain_telemetry_appends_digest(self, capsys):
        rc = main(["explain", "TRIAD", "--telemetry"])
        assert rc == 0
        assert "telemetry:" in capsys.readouterr().out


class TestProfileOutImplication:
    def test_profile_out_alone_profiles_and_warns(self, tmp_path,
                                                  capsys):
        out = tmp_path / "profile.txt"
        rc = main(["sweep", "--kernels", "TRIAD", "--threads", "1",
                   "--placements", "cyclic", "--precisions", "fp32",
                   "--profile-out", str(out)])
        assert rc == 0
        err = capsys.readouterr().err
        assert "--profile is implied" in err      # the warning names it
        assert f"profile written to {out}" in err
        assert "cumulative" in out.read_text()    # pstats report

    def test_profile_with_out_does_not_warn(self, tmp_path, capsys):
        out = tmp_path / "profile.txt"
        rc = main(["sweep", "--kernels", "TRIAD", "--threads", "1",
                   "--placements", "cyclic", "--precisions", "fp32",
                   "--profile", "--profile-out", str(out)])
        assert rc == 0
        assert "implied" not in capsys.readouterr().err
