"""Integration: the instrumented pipeline under a telemetry session.

Pins the acceptance criteria: a traced sweep covers the
compile/predict/memo (and, under chaos, retry) phases, the ``cache.*``
gauges reconcile *exactly* with the legacy ``cache_stats`` view, traced
results stay bit-identical to untraced ones, and with telemetry off the
results carry no summary at all.
"""


from repro import telemetry
from repro.kernels.registry import all_kernels
from repro.machine import catalog
from repro.resilience import chaos, transient_plan
from repro.resilience.retry import FailurePolicy, RetrySpec
from repro.suite.config import Placement, Precision, RunConfig
from repro.suite.runner import run_suite
from repro.suite.sweep import sweep

CPU = catalog.sg2042()
KERNELS = all_kernels()[:8]
GRID = dict(
    threads=(1, 8),
    placements=(Placement.BLOCK, Placement.CYCLIC),
    precisions=(Precision.FP32,),
)


class TestSuiteTelemetry:
    def test_off_by_default(self):
        result = run_suite(CPU, RunConfig(threads=4), kernels=KERNELS)
        assert result.telemetry is None

    def test_traced_suite_summary(self):
        with telemetry.telemetry_session():
            result = run_suite(CPU, RunConfig(threads=4),
                               kernels=KERNELS)
        summary = result.telemetry
        assert summary is not None
        assert summary.phase_counts["suite.run"] == 1
        assert summary.phase_counts["kernel.run"] == len(KERNELS)
        assert summary.counters["suite.runs"] == 1
        assert summary.counters["suite.kernel_runs"] == len(KERNELS)
        assert summary.dropped_spans == 0

    def test_traced_suite_bit_identical(self):
        plain = run_suite(CPU, RunConfig(threads=4), kernels=KERNELS)
        with telemetry.telemetry_session():
            traced = run_suite(CPU, RunConfig(threads=4),
                               kernels=KERNELS)
        assert traced == plain  # telemetry/cache_stats excluded from eq

    def test_render_mentions_phases(self):
        with telemetry.telemetry_session():
            result = run_suite(CPU, RunConfig(threads=1),
                               kernels=KERNELS)
        text = result.telemetry.render()
        assert "suite.run" in text
        assert "span(s)" in text


class TestSweepTelemetry:
    def test_off_by_default(self):
        result = sweep(CPU, KERNELS, **GRID)
        assert result.telemetry is None

    def test_phase_coverage(self):
        with telemetry.telemetry_session() as (rec, _):
            result = sweep(CPU, KERNELS, **GRID)
        names = {r.name for r in rec.records()}
        assert {"sweep", "sweep.prefetch", "suite.run", "kernel.run",
                "memo.peek", "compile.resolve", "compile.analyze",
                "predict.grid"} <= names
        assert result.telemetry.phase_counts["sweep"] == 1

    def test_span_tree_roots_at_sweep(self):
        with telemetry.telemetry_session() as (rec, _):
            sweep(CPU, KERNELS, **GRID)
        records = rec.records()
        by_id = {r.span_id: r for r in records}
        (root,) = [r for r in records if r.name == "sweep"]
        assert root.parent_id is None
        for r in records:
            if r.name in ("sweep.prefetch", "suite.run"):
                assert by_id[r.parent_id].name == "sweep"

    def test_cache_gauges_reconcile_exactly(self):
        with telemetry.telemetry_session():
            result = sweep(CPU, KERNELS, **GRID)
        stats = result.cache_stats
        gauges = result.telemetry.gauges
        for metric, field_name in stats.METRIC_FIELDS:
            assert gauges[metric] == getattr(stats, field_name), metric

    def test_sweep_counters(self):
        with telemetry.telemetry_session():
            result = sweep(CPU, KERNELS, **GRID)
        counters = result.telemetry.counters
        assert counters["sweep.runs"] == 1
        assert counters["sweep.points"] == len(result.points)
        assert counters["suite.runs"] == 4  # grid points
        assert "sweep.failures" not in counters
        # Every batched prediction fills one memo slot, so the engine
        # counter equals the memo's miss count exactly.
        assert (counters["engine.batch.predictions"]
                == result.telemetry.gauges["cache.predict.misses"])

    def test_traced_sweep_bit_identical(self):
        plain = sweep(CPU, KERNELS, **GRID)
        with telemetry.telemetry_session():
            traced = sweep(CPU, KERNELS, **GRID)
        assert traced == plain

    def test_scalar_engine_records_scalar_predictions(self):
        with telemetry.telemetry_session():
            result = sweep(CPU, KERNELS, engine="scalar", **GRID)
        assert "predict.scalar" in result.telemetry.phase_counts
        assert "predict.grid" not in result.telemetry.phase_counts


class TestRetryTelemetry:
    def test_retry_phases_and_counters_under_chaos(self):
        plan = transient_plan(seed=2042, probability=0.2,
                              max_failures=2)
        with telemetry.telemetry_session():
            with chaos.inject_faults(plan):
                result = sweep(
                    CPU, KERNELS, policy=FailurePolicy.RETRY,
                    retry=RetrySpec(max_retries=3), **GRID,
                )
        summary = result.telemetry
        assert summary.phase_counts.get("retry", 0) >= 1
        assert summary.phase_counts.get("retry.attempt", 0) >= 1
        assert summary.counters.get("retry.attempts", 0) >= 1

    def test_exhausted_counter(self):
        always = transient_plan(seed=1, probability=1.0)
        with telemetry.telemetry_session():
            with chaos.inject_faults(always):
                result = sweep(
                    CPU, KERNELS[:2], policy=FailurePolicy.RETRY,
                    retry=RetrySpec(max_retries=1), threads=(1,),
                )
        assert result.failures
        summary = result.telemetry
        assert summary.counters["retry.exhausted"] >= 1
        assert summary.counters["sweep.failures"] == len(result.failures)


class TestSummaryShape:
    def test_phase_seconds_are_inclusive(self):
        with telemetry.telemetry_session():
            result = sweep(CPU, KERNELS, **GRID)
        summary = result.telemetry
        # The root sweep span contains everything, so its inclusive time
        # dominates any child phase.
        assert summary.phase_seconds["sweep"] >= max(
            v for k, v in summary.phase_seconds.items() if k != "sweep"
        )

    def test_summary_is_picklable(self):
        import pickle

        with telemetry.telemetry_session():
            result = sweep(CPU, KERNELS, **GRID)
        clone = pickle.loads(pickle.dumps(result.telemetry))
        assert clone.counters == result.telemetry.counters

    def test_report_helper_renders(self):
        from repro.suite.report import telemetry_summary

        plain = sweep(CPU, KERNELS, **GRID)
        assert "telemetry: off" in telemetry_summary(plain)
        with telemetry.telemetry_session():
            traced = sweep(CPU, KERNELS, **GRID)
        assert "span(s)" in telemetry_summary(traced)
