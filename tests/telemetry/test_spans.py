"""Unit tests: span records, nesting, thread safety, ring buffering."""

import pickle
import threading

import pytest

from repro import telemetry
from repro.telemetry.spans import (
    NULL_RECORDER,
    NULL_SPAN,
    SpanRecord,
    TraceRecorder,
)
from repro.util.errors import ConfigError


class TestSpanBasics:
    def test_records_name_duration_and_attrs(self):
        rec = TraceRecorder()
        with rec.span("phase", kernel="TRIAD", n=100):
            pass
        (record,) = rec.records()
        assert record.name == "phase"
        assert record.duration_ns >= 0
        assert record.attributes() == {"kernel": "TRIAD", "n": 100}
        assert record.parent_id is None
        assert record.seconds == record.duration_ns / 1e9
        assert record.end_ns == record.start_ns + record.duration_ns

    def test_set_attaches_attributes_mid_span(self):
        rec = TraceRecorder()
        with rec.span("phase") as sp:
            sp.set(hits=3, misses=1)
        (record,) = rec.records()
        assert record.attributes() == {"hits": 3, "misses": 1}

    def test_nesting_links_parents_per_thread(self):
        rec = TraceRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                with rec.span("leaf"):
                    pass
        by_name = {r.name: r for r in rec.records()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["leaf"].parent_id == by_name["inner"].span_id

    def test_sibling_spans_share_parent(self):
        rec = TraceRecorder()
        with rec.span("parent"):
            with rec.span("a"):
                pass
            with rec.span("b"):
                pass
        by_name = {r.name: r for r in rec.records()}
        assert by_name["a"].parent_id == by_name["parent"].span_id
        assert by_name["b"].parent_id == by_name["parent"].span_id

    def test_exception_recorded_and_reraised(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError):
            with rec.span("failing"):
                raise ValueError("boom")
        (record,) = rec.records()
        assert record.attributes()["error"] == "ValueError"

    def test_records_sorted_by_start_time(self):
        rec = TraceRecorder()
        for name in ("a", "b", "c"):
            with rec.span(name):
                pass
        starts = [r.start_ns for r in rec.records()]
        assert starts == sorted(starts)

    def test_span_records_are_picklable(self):
        rec = TraceRecorder()
        with rec.span("phase", kernel="TRIAD"):
            pass
        (record,) = rec.records()
        assert pickle.loads(pickle.dumps(record)) == record


class TestRingBuffer:
    def test_bounded_memory_drops_oldest(self):
        rec = TraceRecorder(max_spans=3)
        for i in range(5):
            with rec.span(f"s{i}"):
                pass
        records = rec.records()
        assert [r.name for r in records] == ["s2", "s3", "s4"]
        assert rec.dropped == 2
        assert len(rec) == 3

    def test_merge_respects_capacity(self):
        rec = TraceRecorder(max_spans=2)
        other = TraceRecorder()
        for i in range(3):
            with other.span(f"w{i}"):
                pass
        rec.merge(other.records())
        assert len(rec) == 2
        assert rec.dropped == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_spans=0)

    def test_clear_resets(self):
        rec = TraceRecorder(max_spans=1)
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
        rec.clear()
        assert len(rec) == 0 and rec.dropped == 0


class TestThreadSafety:
    def test_concurrent_spans_keep_per_thread_parents(self):
        rec = TraceRecorder()
        barrier = threading.Barrier(4)

        def work(i):
            barrier.wait()
            for _ in range(50):
                with rec.span(f"outer-{i}"):
                    with rec.span(f"inner-{i}"):
                        pass

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = rec.records()
        assert len(records) == 4 * 50 * 2
        outers = {r.span_id: r for r in records
                  if r.name.startswith("outer")}
        for r in records:
            if r.name.startswith("inner"):
                parent = outers[r.parent_id]
                # inner-i nests under outer-i of the same thread
                assert parent.name == "outer" + r.name[5:]
                assert parent.tid == r.tid


class TestNullObjects:
    def test_null_recorder_is_inert(self):
        assert NULL_RECORDER.active is False
        assert NULL_RECORDER.span("x", a=1) is NULL_SPAN
        with NULL_RECORDER.span("x") as sp:
            sp.set(ignored=True)
        assert NULL_RECORDER.records() == []
        assert len(NULL_RECORDER) == 0
        assert NULL_RECORDER.dropped == 0
        NULL_RECORDER.merge([SpanRecord("x", 0, 0, 1, None, 0, 0)])
        assert NULL_RECORDER.records() == []


class TestSession:
    def test_session_installs_and_restores(self):
        assert telemetry.active() is False
        with telemetry.telemetry_session() as (rec, reg):
            assert telemetry.active() is True
            assert telemetry.recorder() is rec
            assert telemetry.metrics() is reg
        assert telemetry.active() is False
        assert telemetry.recorder() is NULL_RECORDER

    def test_sessions_nest(self):
        with telemetry.telemetry_session() as (outer, _):
            with telemetry.telemetry_session() as (inner, _):
                assert telemetry.recorder() is inner
            assert telemetry.recorder() is outer

    def test_session_restored_on_error(self):
        with pytest.raises(ConfigError):
            with telemetry.telemetry_session():
                raise ConfigError("boom")
        assert telemetry.active() is False

    def test_session_max_spans_forwarded(self):
        with telemetry.telemetry_session(max_spans=1) as (rec, _):
            with rec.span("a"):
                pass
            with rec.span("b"):
                pass
            assert len(rec) == 1 and rec.dropped == 1
