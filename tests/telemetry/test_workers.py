"""Telemetry under parallel sweeps: thread and process worker modes.

The acceptance criteria for multi-worker tracing: spans recorded in
worker *processes* merge back into one trace ordered by start time, and
the deterministic counters agree with a serial run in every mode.
"""


from repro import telemetry
from repro.kernels.registry import all_kernels
from repro.machine import catalog
from repro.suite.config import Placement, Precision
from repro.suite.sweep import sweep

CPU = catalog.sg2042()
KERNELS = all_kernels()[:6]
GRID = dict(
    threads=(1, 4, 8),
    placements=(Placement.BLOCK,),
    precisions=(Precision.FP32, Precision.FP64),
)

#: Counters that must not depend on worker count or mode. Cache and
#: compile counts deliberately excluded: process workers own per-process
#: caches, so their hit/miss split differs by design.
DETERMINISTIC_COUNTERS = ("sweep.runs", "sweep.points",
                          "suite.runs", "suite.kernel_runs")


def _traced_sweep(**kwargs):
    with telemetry.telemetry_session() as (rec, _):
        result = sweep(CPU, KERNELS, **GRID, **kwargs)
    return result, rec.records()


class TestThreadWorkers:
    def test_results_and_counters_match_serial(self):
        serial, _ = _traced_sweep(workers=1)
        threaded, records = _traced_sweep(workers=3,
                                          workers_mode="thread")
        assert threaded == serial  # bit-identical points
        for name in DETERMINISTIC_COUNTERS:
            assert (threaded.telemetry.counters[name]
                    == serial.telemetry.counters[name]), name
        # Thread workers share the sweep caches, so even the cache
        # gauges reconcile with the serial run's.
        assert (threaded.telemetry.gauges
                == serial.telemetry.gauges)

    def test_worker_thread_spans_in_one_trace(self):
        _, records = _traced_sweep(workers=3, workers_mode="thread")
        assert len({r.pid for r in records}) == 1
        suite_spans = [r for r in records if r.name == "suite.run"]
        assert len(suite_spans) == 6  # one per grid point
        starts = [r.start_ns for r in records]
        assert starts == sorted(starts)


class TestProcessWorkers:
    def test_results_and_counters_match_serial(self):
        serial, _ = _traced_sweep(workers=1)
        processed, _ = _traced_sweep(workers=2,
                                     workers_mode="process")
        assert processed == serial
        for name in DETERMINISTIC_COUNTERS:
            assert (processed.telemetry.counters[name]
                    == serial.telemetry.counters[name]), name

    def test_worker_process_spans_merge_ordered(self):
        result, records = _traced_sweep(workers=2,
                                        workers_mode="process")
        pids = {r.pid for r in records}
        assert len(pids) > 1, "expected spans from worker processes"
        starts = [r.start_ns for r in records]
        assert starts == sorted(starts), "merged trace must be ordered"
        suite_spans = [r for r in records if r.name == "suite.run"]
        assert len(suite_spans) == 6
        # Worker processes hand back full suite traces, not stubs.
        main_pid = next(r.pid for r in records if r.name == "sweep")
        worker_names = {r.name for r in records if r.pid != main_pid}
        assert {"suite.run", "kernel.run"} <= worker_names

    def test_final_gauges_are_main_process(self):
        # The last cache.* publish is the sweep's own stats(), so the
        # summary gauges equal cache_stats exactly even though workers
        # also published their per-process gauges.
        result, _ = _traced_sweep(workers=2, workers_mode="process")
        stats = result.cache_stats
        gauges = result.telemetry.gauges
        for metric, field_name in stats.METRIC_FIELDS:
            assert gauges[metric] == getattr(stats, field_name), metric

    def test_worker_telemetry_counters_merge(self):
        result, _ = _traced_sweep(workers=2, workers_mode="process")
        counters = result.telemetry.counters
        # Every grid point's suite ran somewhere; the merged registry
        # must have absorbed all of them.
        assert counters["suite.runs"] == 6
        assert counters["suite.kernel_runs"] == 6 * len(KERNELS)
