"""Schema validation for the telemetry exporter formats.

Used two ways: imported by the test suite, and run standalone by CI's
``telemetry-smoke`` step via :mod:`tests.telemetry.check_trace` against
artifacts a real ``repro trace`` invocation wrote. Validation is
structural — required keys, types, value ranges — so it catches format
drift without pinning machine-dependent content.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Span phases the full pipeline must cover in a traced sweep (the
#: acceptance criterion: compile, predict, memo and suite phases all
#: present; ``retry`` additionally under a chaos plan).
PIPELINE_PHASES = frozenset({
    "sweep", "suite.run", "compile.analyze", "predict.grid", "memo.peek",
})

_EVENT_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
_JSONL_KEYS = {
    "name", "span_id", "parent_id", "pid", "tid", "start_ns",
    "duration_ns", "attrs",
}


def validate_chrome_trace(document: dict) -> list[dict]:
    """Validate a Chrome trace-event document; return its events."""
    assert isinstance(document, dict), "trace document must be an object"
    assert "traceEvents" in document, "missing traceEvents"
    assert document.get("displayTimeUnit") == "ms"
    other = document.get("otherData", {})
    assert other.get("generator") == "repro.telemetry"
    events = document["traceEvents"]
    assert isinstance(events, list) and events, "trace has no events"
    assert other.get("spans") == len(events)
    ids_seen = set()
    for event in events:
        missing = _EVENT_KEYS - set(event)
        assert not missing, f"event missing keys {sorted(missing)}"
        assert event["ph"] == "X", "spans must be complete (X) events"
        assert event["cat"] == "repro"
        assert isinstance(event["name"], str) and event["name"]
        assert event["dur"] >= 0, "negative duration"
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        args = event["args"]
        assert isinstance(args, dict) and "span_id" in args
        ids_seen.add((event["pid"], args["span_id"]))
    # Parent links must resolve within the trace (same process).
    for event in events:
        parent = event["args"].get("parent_id")
        if parent is not None:
            assert (event["pid"], parent) in ids_seen, (
                f"dangling parent_id {parent} in {event['name']}"
            )
    return events


def validate_jsonl(text: str) -> list[dict]:
    """Validate a JSONL span log; return the parsed span objects."""
    lines = [line for line in text.splitlines() if line.strip()]
    assert lines, "JSONL trace is empty"
    spans = []
    for line in lines:
        span = json.loads(line)
        missing = _JSONL_KEYS - set(span)
        assert not missing, f"span missing keys {sorted(missing)}"
        assert isinstance(span["name"], str) and span["name"]
        assert span["duration_ns"] >= 0
        assert isinstance(span["attrs"], dict)
        spans.append(span)
    starts = [span["start_ns"] for span in spans]
    assert starts == sorted(starts), "JSONL spans not ordered by start"
    return spans


def validate_metrics_dump(text: str) -> dict[str, dict[str, str]]:
    """Validate the flat metrics text dump; return ``{kind: {name:
    value-ish string}}``."""
    lines = text.splitlines()
    assert lines and lines[0].startswith("# repro.telemetry metrics")
    out: dict[str, dict[str, str]] = {
        "counter": {}, "gauge": {}, "histogram": {},
    }
    for line in lines[1:]:
        if not line.strip():
            continue
        kind, name, rest = line.split(" ", 2)
        assert kind in out, f"unknown metric kind {kind!r}"
        assert name not in out[kind], f"duplicate metric {name}"
        if kind in ("counter", "gauge"):
            float(rest)  # must parse as a number
        out[kind][name] = rest
    return out


def validate_trace_file(path: str | Path) -> int:
    """Validate a trace file written by ``write_trace`` (dispatching on
    suffix, like the writer); return the span count."""
    text = Path(path).read_text(encoding="utf-8")
    if str(path).endswith(".jsonl"):
        return len(validate_jsonl(text))
    return len(validate_chrome_trace(json.loads(text)))
