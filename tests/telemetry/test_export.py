"""Unit tests: Chrome trace-event, JSONL and metrics-dump exporters."""

import json

from repro.telemetry.export import (
    chrome_trace,
    span_to_event,
    span_to_json,
    spans_to_jsonl,
    write_metrics,
    write_trace,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanRecord, TraceRecorder
from tests.telemetry.schema import (
    validate_chrome_trace,
    validate_jsonl,
    validate_metrics_dump,
)


def _sample_records():
    rec = TraceRecorder()
    with rec.span("sweep", cpu="sg2042"):
        with rec.span("suite.run", threads=8):
            pass
    return rec.records()


class TestChromeTrace:
    def test_event_shape(self):
        record = SpanRecord(
            name="predict.batch", start_ns=2_000_000, duration_ns=500,
            span_id=7, parent_id=3, pid=11, tid=22,
            attrs=(("kernels", 64),),
        )
        event = span_to_event(record)
        assert event["ph"] == "X"
        assert event["ts"] == 2_000.0       # microseconds
        assert event["dur"] == 0.5
        assert event["pid"] == 11 and event["tid"] == 22
        assert event["args"] == {
            "kernels": 64, "span_id": 7, "parent_id": 3,
        }

    def test_root_span_omits_parent(self):
        record = SpanRecord("sweep", 0, 1, 1, None, 1, 1)
        assert "parent_id" not in span_to_event(record)["args"]

    def test_document_validates_and_carries_metrics(self):
        reg = MetricsRegistry()
        reg.counter("sweep.runs").inc()
        reg.gauge("cache.predict.entries").set(12)
        doc = chrome_trace(_sample_records(), reg.snapshot())
        events = validate_chrome_trace(doc)
        assert {e["name"] for e in events} == {"sweep", "suite.run"}
        assert doc["otherData"]["counters"] == {"sweep.runs": 1}
        assert doc["otherData"]["gauges"] == {
            "cache.predict.entries": 12
        }

    def test_document_is_json_serializable(self):
        json.dumps(chrome_trace(_sample_records()))


class TestJsonl:
    def test_one_object_per_line(self):
        records = _sample_records()
        text = spans_to_jsonl(records)
        spans = validate_jsonl(text)
        assert len(spans) == len(records)
        assert spans[0]["name"] == "sweep"
        assert spans[0]["attrs"] == {"cpu": "sg2042"}

    def test_round_trip_fields(self):
        (record,) = [r for r in _sample_records()
                     if r.name == "suite.run"]
        span = span_to_json(record)
        assert span["start_ns"] == record.start_ns
        assert span["duration_ns"] == record.duration_ns
        assert span["parent_id"] == record.parent_id


class TestWriteTrace:
    def test_suffix_dispatch(self, tmp_path):
        records = _sample_records()
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        write_trace(chrome, records)
        write_trace(jsonl, records)
        validate_chrome_trace(json.loads(chrome.read_text()))
        validate_jsonl(jsonl.read_text())

    def test_metrics_dump(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("suite.runs").inc(2)
        reg.histogram("retry.backoff_seconds").observe(0.25)
        out = tmp_path / "metrics.txt"
        write_metrics(out, reg.snapshot())
        tables = validate_metrics_dump(out.read_text())
        assert tables["counter"]["suite.runs"] == "2"
        assert "retry.backoff_seconds" in tables["histogram"]
