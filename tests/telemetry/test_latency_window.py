"""LatencyWindow: bounded ring buffer, nearest-rank percentiles."""

import pytest

from repro.telemetry import LatencyWindow
from repro.util.errors import ConfigError


class TestObserve:
    def test_empty_window_has_no_percentiles(self):
        window = LatencyWindow()
        assert window.percentile(50) is None
        assert window.count == 0

    def test_single_observation_is_every_percentile(self):
        window = LatencyWindow()
        window.observe(0.5)
        assert window.percentile(0) == 0.5
        assert window.percentile(50) == 0.5
        assert window.percentile(100) == 0.5

    def test_nearest_rank_on_known_data(self):
        window = LatencyWindow()
        for value in range(1, 101):  # 1..100
            window.observe(value)
        assert window.percentile(50) == 50
        assert window.percentile(99) == 99
        assert window.percentile(100) == 100
        assert window.percentile(1) == 1

    def test_count_tracks_all_observations(self):
        window = LatencyWindow(maxlen=4)
        for value in range(10):
            window.observe(value)
        assert window.count == 10

    def test_ring_retains_only_the_newest(self):
        window = LatencyWindow(maxlen=4)
        for value in (100.0, 100.0, 100.0, 100.0):
            window.observe(value)
        for value in (1.0, 2.0, 3.0, 4.0):  # evict all the 100s
            window.observe(value)
        assert window.percentile(100) == 4.0
        assert window.percentile(0) == 1.0

    def test_partial_eviction_mixes_old_and_new(self):
        window = LatencyWindow(maxlen=4)
        for value in (10.0, 20.0, 30.0, 40.0, 50.0):
            window.observe(value)
        # 10.0 was evicted; the window holds {20, 30, 40, 50}.
        assert window.percentile(0) == 20.0
        assert window.percentile(100) == 50.0


class TestValidation:
    def test_maxlen_must_be_positive(self):
        with pytest.raises(ConfigError):
            LatencyWindow(maxlen=0)

    def test_percentile_range_checked(self):
        window = LatencyWindow()
        window.observe(1.0)
        with pytest.raises(ConfigError):
            window.percentile(-1)
        with pytest.raises(ConfigError):
            window.percentile(101)
