"""STREAM prediction tests."""

import pytest

from repro.apps.stream import (
    STREAM_OPS,
    predict_stream,
    render_stream_table,
)
from repro.openmp.affinity import PlacementPolicy
from repro.util.errors import ConfigError


class TestPredictStream:
    def test_all_ops_predicted(self, sg2042):
        pred = predict_stream(sg2042, threads=1)
        assert set(pred.bandwidth_gb) == set(STREAM_OPS)
        assert all(v > 0 for v in pred.bandwidth_gb.values())

    def test_cache_defeating_sizes_hit_dram(self, sg2042):
        """Unlike the RAJAPerf defaults, STREAM sizing defeats the
        SG2042's 64MiB system cache: single-thread triad is bounded by
        the per-core DRAM draw."""
        pred = predict_stream(sg2042, threads=1)
        per_core = sg2042.memory.per_core_bandwidth_bytes / 1e9
        assert pred.bandwidth_gb["triad"] <= per_core * 1.01

    def test_package_bandwidth_bounds_full_machine(self, sg2042):
        pred = predict_stream(
            sg2042, threads=32, placement=PlacementPolicy.CYCLIC
        )
        package = sg2042.memory.package_bandwidth / 1e9
        assert pred.best() <= package * 1.01

    def test_sg2042_sustains_near_package_at_32(self, sg2042):
        """The real SG2042 STREAM story: ~24 GB/s package-wide."""
        pred = predict_stream(
            sg2042, threads=32, placement=PlacementPolicy.CYCLIC
        )
        assert pred.best() > 0.6 * sg2042.memory.package_bandwidth / 1e9

    def test_rome_far_more_bandwidth(self, sg2042, amd_rome):
        sg = predict_stream(sg2042, threads=32,
                            placement=PlacementPolicy.CYCLIC)
        rome = predict_stream(amd_rome, threads=64,
                              placement=PlacementPolicy.CYCLIC)
        assert rome.best() > 4 * sg.best()

    def test_explicit_size(self, sg2042):
        pred = predict_stream(sg2042, threads=1, n=50_000_000)
        assert pred.bandwidth_gb["copy"] > 0

    def test_thread_validation(self, sg2042):
        with pytest.raises(ConfigError):
            predict_stream(sg2042, threads=0)


class TestRender:
    def test_table(self, sg2042, intel_sandybridge):
        text = render_stream_table(
            [
                predict_stream(sg2042, threads=32,
                               placement=PlacementPolicy.CYCLIC),
                predict_stream(intel_sandybridge, threads=4,
                               placement=PlacementPolicy.BLOCK),
            ]
        )
        assert "triad GB/s" in text
        assert "Sophon SG2042" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            render_stream_table([])
