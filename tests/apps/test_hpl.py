"""HPL tests: the blocked LU against SciPy, the residual check, and the
machine predictions."""

import numpy as np
import pytest
import scipy.linalg

from repro.apps.hpl import (
    hpl_flops,
    hpl_measure,
    hpl_residual,
    lu_factor,
    lu_solve,
    miscompiled_blas_kernels,
    predict_hpl,
    predict_hpl_library_impact,
)
from repro.util.errors import ConfigError


def random_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, n)) - 0.5


class TestLuFactor:
    @pytest.mark.parametrize("n,block", [(5, 2), (16, 4), (64, 16),
                                         (100, 64), (30, 64)])
    def test_matches_scipy(self, n, block):
        a = random_matrix(n)
        lu, piv = lu_factor(a, block)
        lu_ref, piv_ref = scipy.linalg.lu_factor(a)
        np.testing.assert_allclose(lu, lu_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_array_equal(piv, piv_ref)

    def test_identity(self):
        lu, piv = lu_factor(np.eye(8))
        np.testing.assert_array_equal(lu, np.eye(8))
        np.testing.assert_array_equal(piv, np.arange(8))

    def test_pivoting_happens(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        lu, piv = lu_factor(a)
        assert piv[0] == 1  # first pivot selects row 1

    def test_singular_rejected(self):
        with pytest.raises(ConfigError, match="singular"):
            lu_factor(np.zeros((4, 4)))

    def test_non_square_rejected(self):
        with pytest.raises(ConfigError):
            lu_factor(np.zeros((3, 4)))

    def test_input_not_mutated(self):
        a = random_matrix(10)
        before = a.copy()
        lu_factor(a)
        np.testing.assert_array_equal(a, before)


class TestLuSolve:
    @pytest.mark.parametrize("n", [3, 17, 80])
    def test_solves_system(self, n):
        a = random_matrix(n, seed=n)
        b = np.linspace(-1, 1, n)
        lu, piv = lu_factor(a)
        x = lu_solve(lu, piv, b)
        np.testing.assert_allclose(a @ x, b, rtol=1e-8, atol=1e-10)

    def test_matches_scipy_solve(self):
        a = random_matrix(40)
        b = np.arange(40, dtype=float)
        x = lu_solve(*lu_factor(a), b)
        np.testing.assert_allclose(x, np.linalg.solve(a, b), rtol=1e-8)

    def test_rhs_mismatch_rejected(self):
        lu, piv = lu_factor(random_matrix(4))
        with pytest.raises(ConfigError):
            lu_solve(lu, piv, np.zeros(5))


class TestHplRun:
    def test_measure_passes_residual(self):
        gflops, residual = hpl_measure(128, block=32)
        assert gflops > 0
        assert residual < 16.0

    def test_flop_count(self):
        assert hpl_flops(1000) == pytest.approx(
            (2 / 3) * 1e9 + 2e6
        )

    def test_residual_detects_wrong_solution(self):
        a = random_matrix(16)
        b = np.ones(16)
        x = np.ones(16)  # not the solution
        assert hpl_residual(a, x, b) > 16.0

    def test_residual_degenerate_denominator_rejected(self):
        a = random_matrix(16)
        with pytest.raises(ConfigError):
            hpl_residual(a, np.zeros(16), np.ones(16))


class TestPredictions:
    def test_c920_rmax_far_below_rpeak(self, sg2042):
        """The C920 cannot vectorize FP64: its HPL efficiency collapses
        relative to the 128-bit paper Rpeak."""
        pred = predict_hpl(sg2042)
        assert pred.efficiency < 0.35

    def test_x86_efficiency_healthy(self, amd_rome):
        pred = predict_hpl(amd_rome)
        assert pred.efficiency > 0.35

    def test_rome_beats_sg2042(self, sg2042, amd_rome):
        assert predict_hpl(amd_rome).rmax_gflops > 3 * predict_hpl(
            sg2042
        ).rmax_gflops

    def test_threads_scale_linearly(self, sg2042):
        one = predict_hpl(sg2042, threads=1)
        many = predict_hpl(sg2042, threads=64)
        assert many.rmax_gflops == pytest.approx(64 * one.rmax_gflops)

    def test_thread_validation(self, sg2042):
        with pytest.raises(ConfigError):
            predict_hpl(sg2042, threads=65)


class TestLibraryImpact:
    """Translation-validation verdicts propagated to whole-application
    terms: a miscompiled DGEMM forces the scalar BLAS fallback."""

    def test_clean_library_keeps_the_vector_rmax(self, sg2042):
        impact = predict_hpl_library_impact(sg2042)
        assert impact.miscompiled == ()
        assert impact.rmax_gflops == impact.vector_rmax_gflops
        assert impact.slowdown == pytest.approx(1.0)

    def test_miscompiled_dgemm_falls_back_to_scalar(self,
                                                    intel_icelake):
        impact = predict_hpl_library_impact(
            intel_icelake, miscompiled=("DGEMM",)
        )
        assert impact.rmax_gflops == impact.fallback_rmax_gflops
        assert impact.slowdown > 3.0

    def test_sg2042_fallback_costs_nothing(self, sg2042):
        """The paper's FP64 finding in library terms: the C920 has no
        FP64 vectors, so the scalar fallback loses nothing."""
        impact = predict_hpl_library_impact(
            sg2042, miscompiled=("DGEMM",)
        )
        assert impact.slowdown == pytest.approx(1.0)

    def test_only_dgemm_gates_rmax(self, intel_icelake):
        impact = predict_hpl_library_impact(
            intel_icelake, miscompiled=("DGEMV", "DTRSM")
        )
        assert impact.rmax_gflops == impact.vector_rmax_gflops
        assert impact.miscompiled == ("DGEMV", "DTRSM")

    def test_names_are_normalized_and_sorted(self, sg2042):
        impact = predict_hpl_library_impact(
            sg2042, miscompiled=["dsyrk", "dgemm"]
        )
        assert impact.miscompiled == ("DGEMM", "DSYRK")

    def test_extraction_from_lint_findings(self):
        from repro.analyze.report import Finding, Severity

        findings = [
            Finding(Severity.ERROR, "transval",
                    "blas/DGEMM/dot/vls:store[0].elem[0]", "boom",
                    category="tail-policy"),
            Finding(Severity.WARNING, "transval",
                    "blas/DSYRK/update/vls:vtype[1]", "drift",
                    category="vl-drift"),
            Finding(Severity.ERROR, "transval",
                    "triad/fp32/vls:store[0]", "boom"),
            Finding(Severity.ERROR, "races", "blas/DGEMV:loop[0]",
                    "not transval"),
        ]
        assert miscompiled_blas_kernels(findings) == ("DGEMM",)

    def test_end_to_end_demo_sweep_gates_hpl(self, intel_icelake):
        """repro lint --transval --demo-miscompile -> DGEMM/DGEMV
        refuted -> icelake HPL collapses to the scalar path."""
        from repro.analyze.driver import lint_transval

        findings, _count = lint_transval(demo_miscompile=True)
        refuted = miscompiled_blas_kernels(findings)
        assert refuted == ("DGEMM", "DGEMV")
        impact = predict_hpl_library_impact(
            intel_icelake, miscompiled=refuted
        )
        assert impact.slowdown > 3.0
