"""Shared fixtures: machine models, kernels, small run configurations."""

from __future__ import annotations

import pytest

from repro.kernels.registry import all_kernels
from repro.machine import catalog


@pytest.fixture(scope="session")
def sg2042():
    return catalog.sg2042()


@pytest.fixture(scope="session")
def visionfive_v2():
    return catalog.visionfive_v2()


@pytest.fixture(scope="session")
def visionfive_v1():
    return catalog.visionfive_v1()


@pytest.fixture(scope="session")
def amd_rome():
    return catalog.amd_rome()


@pytest.fixture(scope="session")
def intel_broadwell():
    return catalog.intel_broadwell()


@pytest.fixture(scope="session")
def intel_icelake():
    return catalog.intel_icelake()


@pytest.fixture(scope="session")
def intel_sandybridge():
    return catalog.intel_sandybridge()


@pytest.fixture(scope="session")
def all_cpus():
    return catalog.all_cpus()


@pytest.fixture(scope="session")
def kernels():
    """One instance of every kernel (session-scoped: kernels hold no
    mutable state — workspaces do)."""
    return all_kernels()


@pytest.fixture(scope="session")
def kernels_by_name(kernels):
    return {k.name: k for k in kernels}
