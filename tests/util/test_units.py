"""Unit-handling tests: parsing, formatting, error paths."""

import pytest

from repro.util.errors import ConfigError
from repro.util.units import (
    GIB,
    KB,
    KIB,
    MIB,
    format_bytes,
    format_seconds,
    parse_size,
)


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("512") == 512
        assert parse_size("512B") == 512

    def test_binary_units(self):
        assert parse_size("64KiB") == 64 * KIB
        assert parse_size("1MiB") == MIB
        assert parse_size("2GiB") == 2 * GIB

    def test_decimal_units(self):
        assert parse_size("1KB") == KB
        assert parse_size("25.6GB") == 25_600_000_000

    def test_case_insensitive(self):
        assert parse_size("64kib") == 64 * KIB

    def test_whitespace_tolerated(self):
        assert parse_size("  64 KiB ") == 64 * KIB

    def test_fractional_decimal_allowed_when_integral(self):
        assert parse_size("0.5KiB") == 512

    @pytest.mark.parametrize("bad", ["", "KiB", "12XB", "1.2.3MB", "-5KB"])
    def test_malformed_raises(self, bad):
        with pytest.raises(ConfigError):
            parse_size(bad)

    def test_non_integral_bytes_raises(self):
        with pytest.raises(ConfigError):
            parse_size("0.3B")


class TestFormatBytes:
    def test_small(self):
        assert format_bytes(512) == "512B"

    def test_kib(self):
        assert format_bytes(64 * KIB) == "64.0KiB"

    def test_mib(self):
        assert format_bytes(MIB) == "1.0MiB"

    def test_negative_raises(self):
        with pytest.raises(ConfigError):
            format_bytes(-1)

    def test_roundtrip_with_parse(self):
        for n in (1, KIB, 3 * MIB, 7 * GIB):
            assert parse_size(format_bytes(n)) == n


class TestFormatSeconds:
    def test_seconds(self):
        assert format_seconds(1.5) == "1.500s"

    def test_milliseconds(self):
        assert format_seconds(0.0025) == "2.500ms"

    def test_microseconds(self):
        assert format_seconds(3.2e-5) == "32.000us"

    def test_nanoseconds(self):
        assert format_seconds(5e-9) == "5.000ns"

    def test_negative_raises(self):
        with pytest.raises(ConfigError):
            format_seconds(-0.1)
