"""Statistics tests, including hypothesis properties for the paper's
"times faster/slower" convention."""


import pytest
from hypothesis import given, strategies as st

from repro.util.errors import ConfigError
from repro.util.stats import (
    Summary,
    arithmetic_mean,
    from_relative,
    geometric_mean,
    parallel_efficiency,
    relative_to_baseline,
    speedup,
    summarize,
)

positive_times = st.floats(
    min_value=1e-9, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSpeedup:
    def test_faster(self):
        assert speedup(2.0, 1.0) == 2.0

    def test_slower(self):
        assert speedup(1.0, 2.0) == 0.5

    def test_equal(self):
        assert speedup(3.0, 3.0) == 1.0

    @pytest.mark.parametrize("t1,t2", [(0, 1), (1, 0), (-1, 1), (1, -1)])
    def test_nonpositive_raises(self, t1, t2):
        with pytest.raises(ConfigError):
            speedup(t1, t2)


class TestParallelEfficiency:
    def test_ideal(self):
        assert parallel_efficiency(8.0, 8) == 1.0

    def test_superlinear_allowed(self):
        # The paper reports PE 1.40 for stream at 8 threads (Table 3).
        assert parallel_efficiency(11.2, 8) == pytest.approx(1.40)

    def test_zero_threads_raises(self):
        with pytest.raises(ConfigError):
            parallel_efficiency(1.0, 0)


class TestRelativeConvention:
    """The figures' signed times-faster/slower axis."""

    def test_same_performance_is_zero(self):
        assert relative_to_baseline(1.0, 1.0) == 0.0

    def test_twice_as_fast_is_plus_one(self):
        assert relative_to_baseline(2.0, 1.0) == pytest.approx(1.0)

    def test_twice_as_slow_is_minus_one(self):
        assert relative_to_baseline(1.0, 2.0) == pytest.approx(-1.0)

    def test_forty_times_faster(self):
        # The paper's memset result: 40x faster -> +39 on the axis.
        assert relative_to_baseline(40.0, 1.0) == pytest.approx(39.0)

    @given(positive_times, positive_times)
    def test_antisymmetry(self, a, b):
        """Swapping baseline and subject flips the sign."""
        fwd = relative_to_baseline(a, b)
        rev = relative_to_baseline(b, a)
        assert fwd == pytest.approx(-rev, rel=1e-9, abs=1e-9)

    @given(positive_times, positive_times)
    def test_from_relative_roundtrip(self, a, b):
        rel = relative_to_baseline(a, b)
        assert from_relative(rel) == pytest.approx(a / b, rel=1e-9)

    @given(positive_times, positive_times)
    def test_sign_tracks_ordering(self, a, b):
        rel = relative_to_baseline(a, b)
        if a > b:
            assert rel > 0
        elif a < b:
            assert rel < 0


class TestMeans:
    def test_geometric_mean_of_ratios(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ConfigError):
            geometric_mean([])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    @given(st.lists(positive_times, min_size=1, max_size=30))
    def test_geo_mean_bounded_by_extremes(self, values):
        gm = geometric_mean(values)
        assert min(values) <= gm * (1 + 1e-9)
        assert gm <= max(values) * (1 + 1e-9)


class TestSummary:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s == Summary(mean=2.0, minimum=1.0, maximum=3.0, count=3)

    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == s.minimum == s.maximum == 5.0

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            summarize([])

    def test_inconsistent_summary_rejected(self):
        with pytest.raises(ConfigError):
            Summary(mean=5.0, minimum=1.0, maximum=2.0, count=3)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=50))
    def test_mean_within_whiskers(self, values):
        s = summarize(values)
        assert s.minimum <= s.mean <= s.maximum
        assert s.count == len(values)
