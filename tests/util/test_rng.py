"""Deterministic RNG tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.errors import ConfigError
from repro.util.rng import derive_seed, noise_factors


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)

    def test_order_sensitive(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_parts_are_delimited(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_seed("ab", "c") != derive_seed("a", "bc")

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            derive_seed()

    def test_fits_63_bits(self):
        for salt in range(50):
            assert 0 <= derive_seed("x", salt) < 2**63

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_stable_across_calls(self, a, b):
        assert derive_seed(a, b) == derive_seed(a, b)


class TestNoiseFactors:
    def test_zero_sigma_is_exact(self):
        assert np.array_equal(noise_factors(1, 5, sigma=0.0), np.ones(5))

    def test_deterministic_per_seed(self):
        assert np.array_equal(
            noise_factors(42, 10), noise_factors(42, 10)
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            noise_factors(1, 10), noise_factors(2, 10)
        )

    def test_positive(self):
        assert (noise_factors(7, 1000) > 0).all()

    def test_median_near_one(self):
        factors = noise_factors(3, 20_000, sigma=0.02)
        assert np.median(factors) == pytest.approx(1.0, abs=0.01)

    def test_count_validation(self):
        with pytest.raises(ConfigError):
            noise_factors(1, 0)

    def test_sigma_validation(self):
        with pytest.raises(ConfigError):
            noise_factors(1, 5, sigma=-0.1)
