"""Exception hierarchy contract: every package error is a ReproError,
catching ReproError never swallows programming errors."""

import pytest

from repro.util import errors
from repro.util.errors import (
    CheckpointError,
    CompilationError,
    ConfigError,
    IsaError,
    ReproError,
    SimulationError,
    TransientError,
)

ALL_ERRORS = (
    ConfigError,
    SimulationError,
    IsaError,
    CompilationError,
    TransientError,
    CheckpointError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", ALL_ERRORS)
    def test_derives_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)
        assert issubclass(exc_type, Exception)

    def test_checkpoint_error_is_a_config_error(self):
        # Callers catching ConfigError on sweep setup also see
        # checkpoint integrity failures.
        assert issubclass(CheckpointError, ConfigError)

    def test_programming_errors_are_not_repro_errors(self):
        for exc_type in (TypeError, ValueError, KeyError, OSError):
            assert not issubclass(exc_type, ReproError)

    def test_every_public_error_is_exported(self):
        public = {
            name for name in dir(errors)
            if isinstance(getattr(errors, name), type)
            and issubclass(getattr(errors, name), ReproError)
        }
        assert public == {
            "ReproError", "ConfigError", "SimulationError", "IsaError",
            "CompilationError", "TransientError", "CheckpointError",
        }

    def test_catching_base_catches_all(self):
        for exc_type in ALL_ERRORS:
            with pytest.raises(ReproError):
                raise exc_type("boom")

    def test_messages_preserved(self):
        exc = TransientError("node fell over")
        assert str(exc) == "node fell over"

    def test_siblings_are_distinct(self):
        with pytest.raises(SimulationError):
            raise SimulationError("x")
        assert not issubclass(SimulationError, ConfigError)
        assert not issubclass(TransientError, SimulationError)
