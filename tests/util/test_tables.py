"""ASCII table / chart rendering tests."""

import pytest

from repro.util.errors import ConfigError
from repro.util.tables import render_bar_chart, render_csv, render_table


class TestRenderTable:
    def test_basic(self):
        text = render_table(("a", "b"), [(1, 2), (30, 40)])
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert "30" in lines[-1]

    def test_title(self):
        text = render_table(("x",), [(1,)], title="My Table")
        assert text.startswith("My Table\n========")

    def test_column_alignment(self):
        text = render_table(("col",), [("short",), ("longer-cell",)])
        lines = text.splitlines()
        # All rows padded to same width.
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_arity_mismatch_raises(self):
        with pytest.raises(ConfigError):
            render_table(("a", "b"), [(1,)])

    def test_empty_headers_raises(self):
        with pytest.raises(ConfigError):
            render_table((), [])


class TestRenderCsv:
    def test_basic(self):
        assert render_csv(("a", "b"), [(1, 2)]) == "a,b\n1,2"

    def test_comma_in_cell_raises(self):
        with pytest.raises(ConfigError):
            render_csv(("a",), [("x,y",)])

    def test_arity_mismatch_raises(self):
        with pytest.raises(ConfigError):
            render_csv(("a",), [(1, 2)])


class TestRenderBarChart:
    def test_positive_and_negative_bars(self):
        text = render_bar_chart(
            ["fast", "slow"], [2.0, -1.0], [1.5, -1.2], [2.5, -0.8]
        )
        lines = text.splitlines()
        assert "+" in lines[0]
        assert "-" in lines[1]
        assert "[+1.50, +2.50]" in lines[0]

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigError):
            render_bar_chart(["a"], [1.0, 2.0], [0.0], [1.0])

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            render_bar_chart([], [], [], [])

    def test_all_zero_means_no_crash(self):
        text = render_bar_chart(["z"], [0.0], [0.0], [0.0])
        assert "z" in text
