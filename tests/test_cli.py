"""CLI tests driving ``sg2042-repro`` through its main() entry."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sg2042" in out
        assert "table2" in out
        assert "TRIAD" in out


class TestDescribe:
    def test_describe_sg2042(self, capsys):
        assert main(["describe", "sg2042"]) == 0
        out = capsys.readouterr().out
        assert "XuanTie C920" in out
        assert "NUMA node0 CPU(s):   0-7,16-23" in out

    def test_unknown_machine(self, capsys):
        assert main(["describe", "pentium"]) == 2
        assert "unknown machine" in capsys.readouterr().err


class TestRun:
    def test_run_single_core(self, capsys):
        assert main(["run", "--cpu", "sg2042", "--threads", "1"]) == 0
        out = capsys.readouterr().out
        assert "TRIAD" in out
        assert "fp64" in out

    def test_run_with_placement(self, capsys):
        rc = main(
            ["run", "--cpu", "sg2042", "--threads", "8",
             "--placement", "cluster", "--precision", "fp32"]
        )
        assert rc == 0
        assert "cluster" in capsys.readouterr().out

    def test_run_clang_requires_rollback(self, capsys):
        rc = main(
            ["run", "--cpu", "sg2042", "--compiler", "clang-16"]
        )
        assert rc == 2
        assert "rollback" in capsys.readouterr().err

    def test_run_clang_with_rollback(self, capsys):
        rc = main(
            ["run", "--cpu", "sg2042", "--compiler", "clang-16",
             "--rollback"]
        )
        assert rc == 0

    def test_unknown_machine(self, capsys):
        assert main(["run", "--cpu", "z80"]) == 2


class TestExperiment:
    def test_single_experiment(self, capsys):
        assert main(["experiment", "table4", "--fast"]) == 0
        assert "EPYC 7742" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "table9"]) == 2

    def test_figure2_fast(self, capsys):
        assert main(["experiment", "figure2", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "vectorized fp32" in out


class TestVerify:
    def test_verify_small(self, capsys):
        assert main(["verify", "--size", "500"]) == 0
        out = capsys.readouterr().out
        assert "64/64 kernels verified" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_precision_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--precision", "fp16"])
