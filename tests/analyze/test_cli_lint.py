"""The ``repro lint`` subcommand: exit codes and output contract."""

import json
from dataclasses import replace
from types import SimpleNamespace

from repro.cli import main
from repro.kernels.base import LoopFeature
from repro.kernels.registry import get_kernel


class TestLintCommand:
    def test_lint_all_exits_zero(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "lint: clean" in out
        assert "64 kernels" in out

    def test_lint_kernel_subset_no_asm(self, capsys):
        assert main(["lint", "--kernels", "TRIAD,DOT", "--no-asm"]) == 0
        out = capsys.readouterr().out
        assert "2 kernels, 0 assembly programs" in out

    def test_min_severity_hides_warning_keeps_exit(self, capsys):
        assert main(["lint", "--all", "--min-severity", "error"]) == 0
        out = capsys.readouterr().out
        assert "JACOBI_2D" not in out
        assert "lint: clean" in out

    def test_unknown_kernel_is_generic_cli_error(self):
        assert main(["lint", "--kernels", "NOT_A_KERNEL",
                     "--no-asm"]) == 2


class TestTransvalCommand:
    def test_transval_sweep_is_clean(self, capsys):
        assert main(["lint", "--all", "--transval"]) == 0
        out = capsys.readouterr().out
        assert "20 rollback pairs" in out
        assert "lint: clean" in out

    def test_demo_miscompile_exits_three(self, capsys):
        rc = main(
            ["lint", "--no-asm", "--kernels", "TRIAD", "--transval",
             "--demo-miscompile"]
        )
        assert rc == 3
        out = capsys.readouterr().out
        assert "tail-policy" in out
        assert "blas/DGEMM" in out and "blas/DGEMV" in out
        assert "lint: FAIL" in out

    def test_json_format_emits_the_stable_schema(self, capsys):
        rc = main(
            ["lint", "--no-asm", "--kernels", "TRIAD", "--transval",
             "--format", "json"]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema_version"] == 1
        summary = report["summary"]
        assert summary["pairs_checked"] == 20
        assert summary["status"] == "clean"
        assert summary["exit_code"] == 0

    def test_json_findings_carry_categories(self, capsys):
        rc = main(
            ["lint", "--no-asm", "--kernels", "TRIAD", "--transval",
             "--demo-miscompile", "--format", "json",
             "--min-severity", "error"]
        )
        assert rc == 3
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["exit_code"] == 3
        assert report["findings"]
        assert all(
            f["category"] == "tail-policy" and f["severity"] == "error"
            for f in report["findings"]
        )


class TestAsmFileLint:
    def test_bad_file_exits_three(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("    vle32.v v1, (a1)\n    ret\n")
        rc = main(["lint", "--asm-file", str(bad),
                   "--dialect", "0.7.1"])
        assert rc == 3
        out = capsys.readouterr().out
        assert "ERROR" in out and "lint: FAIL" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.s"
        good.write_text(
            "loop:\n"
            "    vsetvli t0, a0, e32, m1\n"
            "    vle.v v1, (a1)\n"
            "    vfadd.vv v0, v1, v1\n"
            "    vse.v v0, (a3)\n"
            "    sub a0, a0, t0\n"
            "    bnez a0, loop\n"
            "    ret\n"
        )
        assert main(["lint", "--asm-file", str(good),
                     "--dialect", "0.7.1"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_wrong_dialect_claim_exits_three(self, tmp_path):
        v071 = tmp_path / "old.s"
        v071.write_text(
            "loop:\n"
            "    vsetvli t0, a0, e32, m1\n"
            "    vle.v v1, (a1)\n"
            "    vse.v v1, (a3)\n"
            "    sub a0, a0, t0\n"
            "    bnez a0, loop\n"
            "    ret\n"
        )
        assert main(["lint", "--asm-file", str(v071),
                     "--dialect", "1.0"]) == 3


class TestSeededTraitFlipEndToEnd:
    def test_lint_exits_three_on_seeded_kernel(self, monkeypatch,
                                               capsys):
        kernel = get_kernel("SCAN")
        seeded = SimpleNamespace(
            name="SCAN",
            traits=replace(
                kernel.traits,
                features=kernel.traits.features
                - {LoopFeature.SCAN_DEP},
            ),
        )
        monkeypatch.setattr(
            "repro.analyze.driver.all_kernels", lambda: [seeded]
        )
        rc = main(["lint", "--all", "--no-asm"])
        assert rc == 3
        out = capsys.readouterr().out
        assert "ERROR" in out
        assert "SCAN:loop[0]" in out
        assert "scan" in out
