"""Translation validation: the symbolic domain, the lockstep machine,
pair verdicts and their miscompile classifications, and the lint
sweep's coverage."""

import pytest

from repro.analyze.driver import iter_transval_pairs, lint_transval
from repro.analyze.report import Severity
from repro.analyze.transval import (
    INPUT_A,
    SymbolicMachine,
    validate_pair,
)
from repro.compiler.model import VectorFlavor
from repro.isa.codegen import LoopSpec, generate_dot_loop, generate_loop
from repro.isa.encoding import render_assembly
from repro.isa.rollback import rollback
from repro.isa.symbolic import (
    Bin,
    Fold,
    Lit,
    Mem,
    Reinterpret,
    SymbolicMemory,
    Undef,
    canonical_op,
    compare_terms,
    contains_undef,
    fresh_undef,
    load_widths,
)
from repro.machine.vector import DType
from repro.util.errors import IsaError


def categories(verdict):
    return {f.category for f in verdict.findings}


def error_categories(verdict):
    return {
        f.category
        for f in verdict.findings
        if f.severity is Severity.ERROR
    }


def dot_pair(flavor=VectorFlavor.VLS, dtype=DType.FP64):
    v10 = render_assembly(generate_dot_loop(dtype, flavor))
    return v10, rollback(v10)


def triad_pair(flavor=VectorFlavor.VLS, dtype=DType.FP32):
    spec = LoopSpec(
        dtype=dtype, num_inputs=2, ops=("vfmul.vv", "vfadd.vv")
    )
    v10 = render_assembly(generate_loop(spec, flavor, rvv_version="1.0"))
    return v10, rollback(v10)


class TestSymbolicTerms:
    def test_identical_terms_compare_equal(self):
        a = Bin("fadd", Mem(0x10, 32), Mem(0x20, 32))
        b = Bin("fadd", Mem(0x10, 32), Mem(0x20, 32))
        assert compare_terms(a, b) is None

    def test_renamed_reductions_share_a_canonical_op(self):
        assert canonical_op("vfredusum.vs") == canonical_op(
            "vfredsum.vs"
        )
        fold_a = Fold("fredsum", Lit(0), (Mem(0, 64),))
        fold_b = Fold("fredsum", Lit(0), (Mem(0, 64),))
        assert compare_terms(fold_a, fold_b) is None

    def test_undef_vs_defined_is_tail_policy(self):
        mismatch = compare_terms(Mem(0, 32), fresh_undef("tail"))
        assert mismatch is not None
        assert mismatch.reason == "tail-policy"

    def test_two_bare_undefs_are_compatible(self):
        assert compare_terms(
            fresh_undef("a"), fresh_undef("b")
        ) is None

    def test_undef_mixed_into_arithmetic_is_still_tail_policy(self):
        a = Bin("fadd", fresh_undef("t"), Mem(0, 32))
        b = Bin("fadd", fresh_undef("t"), Mem(0, 32))
        mismatch = compare_terms(a, b)
        assert mismatch is not None
        assert mismatch.reason == "tail-policy"
        assert contains_undef(a) and contains_undef(b)

    def test_reinterpret_is_width_load(self):
        witness = Reinterpret(0x10, 32, ((0x10, 64, Lit(1)),))
        mismatch = compare_terms(Mem(0x10, 32), witness)
        assert mismatch is not None
        assert mismatch.reason == "width-load"

    def test_differing_load_widths_are_width_load(self):
        mismatch = compare_terms(Mem(0x10, 32), Mem(0x10, 64))
        assert mismatch is not None
        assert mismatch.reason == "width-load"
        assert load_widths(Mem(0x10, 64)) == frozenset({64})

    def test_plain_divergence_is_value(self):
        a = Bin("fadd", Mem(0, 32), Mem(4, 32))
        b = Bin("fmul", Mem(0, 32), Mem(4, 32))
        mismatch = compare_terms(a, b)
        assert mismatch is not None
        assert mismatch.reason == "value"


class TestSymbolicMemory:
    def test_unwritten_load_yields_mem_leaf(self):
        mem = SymbolicMemory()
        assert mem.load(0x100, 64) == Mem(0x100, 64)

    def test_exact_match_returns_stored_term(self):
        mem = SymbolicMemory()
        mem.store(0x100, 32, Lit(7))
        assert mem.load(0x100, 32) == Lit(7)

    def test_width_mismatched_reload_is_reinterpret(self):
        mem = SymbolicMemory()
        mem.store(0x100, 64, Lit(7))
        loaded = mem.load(0x100, 32)
        assert isinstance(loaded, Reinterpret)
        assert loaded.parts == ((0x100, 64, Lit(7)),)

    def test_partial_overlap_is_reinterpret(self):
        mem = SymbolicMemory()
        mem.store(0x100, 32, Lit(1))
        loaded = mem.load(0x102, 32)
        assert isinstance(loaded, Reinterpret)


class TestSymbolicMachine:
    def run_machine(self, text, n=2, tail_model="policy"):
        machine = SymbolicMachine(tail_model=tail_model)
        machine.set_s("a0", n)
        machine.set_s("a1", INPUT_A)
        machine.run(text)
        return machine

    def test_unknown_tail_model_rejected(self):
        with pytest.raises(IsaError, match="tail model"):
            SymbolicMachine(tail_model="mystery")

    def test_vtype_trace_records_sew_and_vl(self):
        machine = self.run_machine(
            "vsetvli t0, a0, e32, m1, ta, ma\nret", n=3
        )
        assert len(machine.vtype_trace) == 1
        event = machine.vtype_trace[0]
        assert event.sew == 32 and event.vl == 3

    def test_policy_model_honours_flags(self):
        ta = self.run_machine("vsetvli t0, a0, e32, m1, ta, ma\nret")
        tu = self.run_machine("vsetvli t0, a0, e32, m1, tu, ma\nret")
        assert ta.tail_policy == "agnostic"
        assert tu.tail_policy == "undisturbed"

    def test_agnostic_model_clobbers_tail_lanes(self):
        machine = self.run_machine(
            "vsetvli t0, a0, e32, m1\nvle.v v1, (a1)\nret",
            tail_model="agnostic",
        )
        tail = machine.vectors["v1"][machine.vl :]
        assert tail and all(
            isinstance(t, Undef) and t.origin.startswith("tail:")
            for t in tail
        )

    def test_undisturbed_model_leaves_tails_alone(self):
        machine = self.run_machine(
            "vsetvli t0, a0, e32, m1\nvle.v v1, (a1)\nret",
            tail_model="undisturbed",
        )
        tail = machine.vectors["v1"][machine.vl :]
        assert all(t.origin.startswith("uninit:") for t in tail)

    def test_store_trace_records_symbolic_lanes(self):
        machine = SymbolicMachine()
        machine.set_s("a0", 2)
        machine.set_s("a1", INPUT_A)
        machine.set_s("a3", 0x3000)
        machine.run(
            "vsetvli t0, a0, e32, m1, ta, ma\n"
            "vle32.v v1, (a1)\n"
            "vse32.v v1, (a3)\n"
            "ret"
        )
        assert len(machine.store_trace) == 1
        event = machine.store_trace[0]
        assert event.addr == 0x3000 and event.width == 32
        assert event.elems == (Mem(INPUT_A, 32), Mem(INPUT_A + 4, 32))


SRC_COPY = (
    "vsetvli t0, a0, e32, m1, ta, ma\n"
    "vle32.v v1, (a1)\n"
    "vse32.v v1, (a3)\n"
    "ret"
)


class TestValidatePair:
    def test_correct_rollback_is_equivalent(self):
        v10, v071 = triad_pair(VectorFlavor.VLS)
        verdict = validate_pair(v10, v071, "triad/vls", n=12)
        assert verdict.equivalent
        assert verdict.findings == []
        assert verdict.store_events > 0

    def test_dot_rollback_is_equivalent_on_real_hardware_model(self):
        v10, v071 = dot_pair(VectorFlavor.VLS)
        verdict = validate_pair(v10, v071, "dot/vls", n=5)
        assert verdict.equivalent
        assert verdict.findings == []

    @pytest.mark.parametrize(
        "flavor", [VectorFlavor.VLS, VectorFlavor.VLA]
    )
    def test_tail_agnostic_rollback_miscompiles_dot(self, flavor):
        """The seeded demo: a rollback assuming tail-agnostic hardware
        clobbers the cross-strip partial sums the fold reads back."""
        v10, v071 = dot_pair(flavor)
        verdict = validate_pair(
            v10, v071, "dot", n=5, target_tail_model="agnostic"
        )
        assert not verdict.equivalent
        assert "tail-policy" in error_categories(verdict)

    def test_tail_agnostic_model_spares_elementwise_loops(self):
        """Elementwise loops never observe a tail lane: the demo model
        pinpoints the kernels where the policy matters."""
        v10, v071 = triad_pair(VectorFlavor.VLS)
        verdict = validate_pair(
            v10, v071, "triad", n=12, target_tail_model="agnostic"
        )
        assert verdict.equivalent

    def test_vl_drift_without_stores_is_a_warning(self):
        src = "vsetvli t0, a0, e32, m1, ta, ma\nret"
        tgt = "li t5, 2\nvsetvli t0, t5, e32, m1\nret"
        verdict = validate_pair(src, tgt, "pair", n=3)
        assert verdict.equivalent  # warning only
        assert categories(verdict) == {"vl-drift"}
        assert verdict.findings[0].severity is Severity.WARNING

    def test_observed_vl_drift_is_an_error(self):
        tgt = (
            "li t5, 2\n"
            "vsetvli t0, t5, e32, m1\n"
            "vle.v v1, (a1)\n"
            "vse.v v1, (a3)\n"
            "ret"
        )
        verdict = validate_pair(SRC_COPY, tgt, "pair", n=3)
        assert not verdict.equivalent
        assert "vl-drift" in error_categories(verdict)

    def test_sew_divergence_is_vtype_drift(self):
        src = "vsetvli t0, a0, e32, m1, ta, ma\nret"
        tgt = "vsetvli t0, a0, e64, m1\nret"
        verdict = validate_pair(src, tgt, "pair", n=2)
        assert error_categories(verdict) == {"vtype-drift"}

    def test_vset_count_divergence_is_vtype_drift(self):
        src = "vsetvli t0, a0, e32, m1, ta, ma\nret"
        tgt = (
            "vsetvli t0, a0, e32, m1\n"
            "vsetvli t0, a0, e32, m1\n"
            "ret"
        )
        verdict = validate_pair(src, tgt, "pair", n=2)
        assert error_categories(verdict) == {"vtype-drift"}
        assert any(
            "configures vtype" in f.message for f in verdict.findings
        )

    def test_store_width_divergence_is_width_load(self):
        tgt = (
            "vsetvli t0, a0, e32, m1\n"
            "vle.v v1, (a1)\n"
            "vse64.v v1, (a3)\n"
            "ret"
        )
        verdict = validate_pair(SRC_COPY, tgt, "pair", n=3)
        assert "width-load" in error_categories(verdict)

    def test_load_width_divergence_is_width_load(self):
        tgt = (
            "vsetvli t0, a0, e32, m1\n"
            "vle64.v v1, (a1)\n"
            "vse.v v1, (a3)\n"
            "ret"
        )
        verdict = validate_pair(SRC_COPY, tgt, "pair", n=3)
        assert "width-load" in error_categories(verdict)

    def test_dropped_store_is_value_divergence(self):
        tgt = "vsetvli t0, a0, e32, m1\nvle.v v1, (a1)\nret"
        verdict = validate_pair(SRC_COPY, tgt, "pair", n=3)
        assert "value" in error_categories(verdict)
        assert any(
            "vector stores" in f.message for f in verdict.findings
        )

    def test_different_computation_is_value_divergence(self):
        src = (
            "vsetvli t0, a0, e32, m1, ta, ma\n"
            "vle32.v v1, (a1)\n"
            "vle32.v v2, (a2)\n"
            "vfadd.vv v0, v1, v2\n"
            "vse32.v v0, (a3)\n"
            "ret"
        )
        tgt = (
            "vsetvli t0, a0, e32, m1\n"
            "vle.v v1, (a1)\n"
            "vle.v v2, (a2)\n"
            "vfmul.vv v0, v1, v2\n"
            "vse.v v0, (a3)\n"
            "ret"
        )
        verdict = validate_pair(src, tgt, "pair", n=3)
        assert error_categories(verdict) == {"value"}

    def test_broken_target_is_exec_error(self):
        verdict = validate_pair(
            SRC_COPY, "vfadd.vv v0, v1, v2\nret", "pair", n=3
        )
        assert error_categories(verdict) == {"exec-error"}
        assert verdict.findings[0].site.endswith(":target")

    def test_broken_source_is_exec_error(self):
        verdict = validate_pair(
            "vfadd.vv v0, v1, v2\nret", SRC_COPY, "pair", n=3
        )
        assert error_categories(verdict) == {"exec-error"}
        assert verdict.findings[0].site.endswith(":source")

    def test_findings_carry_the_pair_id_site_prefix(self):
        v10, v071 = dot_pair()
        verdict = validate_pair(
            v10, v071, "blas/DGEMM/dot/vls", n=5,
            target_tail_model="agnostic",
        )
        assert verdict.findings
        assert all(
            f.site.startswith("blas/DGEMM/dot/vls:")
            for f in verdict.findings
        )


class TestLintSweep:
    def test_sweep_covers_every_pair(self):
        pairs = list(iter_transval_pairs())
        ids = [pair_id for pair_id, _v10, _v071, _n in pairs]
        # 2 shapes x 3 dtypes x 2 flavours + 4 BLAS kernels x 2 flavours
        assert len(ids) == 20
        assert len(set(ids)) == 20
        for token in (
            "triad/fp64/vls",
            "axpy/fp16/vla",
            "blas/DGEMM/dot/vls",
            "blas/DGEMV/dot/vla",
            "blas/DTRSM/update/vls",
            "blas/DSYRK/update/vla",
        ):
            assert token in ids

    def test_clean_sweep_proves_all_pairs(self):
        findings, count = lint_transval()
        assert count == 20
        assert findings == []

    def test_demo_miscompile_pinpoints_the_dot_microkernels(self):
        findings, count = lint_transval(demo_miscompile=True)
        assert count == 20
        errs = [
            f for f in findings if f.severity is Severity.ERROR
        ]
        assert len(errs) == 4
        assert all(f.category == "tail-policy" for f in errs)
        assert {f.site.split(":")[0] for f in errs} == {
            "blas/DGEMM/dot/vls",
            "blas/DGEMM/dot/vla",
            "blas/DGEMV/dot/vls",
            "blas/DGEMV/dot/vla",
        }
