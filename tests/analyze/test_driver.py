"""Lint driver: aggregation, coverage counters, and report rendering."""

from dataclasses import replace
from types import SimpleNamespace

from repro.analyze.driver import (
    iter_asm_programs,
    lint_assembly,
    lint_assembly_file,
    lint_kernel,
    lint_kernels,
    run_lint,
)
from repro.analyze.report import Finding, LintReport, Severity
from repro.isa.rvv import RVV_0_7_1
from repro.kernels.base import LoopFeature
from repro.kernels.registry import get_kernel


class TestShippedTreeIsClean:
    def test_full_lint_exits_zero(self):
        report = run_lint()
        assert not report.has_errors
        assert report.exit_code == 0
        assert report.kernels_checked == 64
        assert report.programs_checked == 36

    def test_jacobi_2d_informational_drift_is_the_only_warning(self):
        report = run_lint(asm=False)
        warnings = report.by_severity(Severity.WARNING)
        assert len(warnings) == 1
        assert warnings[0].site.startswith("JACOBI_2D")
        assert "outer_only_parallel" in warnings[0].message

    def test_render_reports_coverage_and_clean(self):
        report = run_lint()
        text = report.render(min_severity=Severity.ERROR)
        assert "64 kernels, 36 assembly programs" in text
        assert text.endswith("lint: clean")


class TestSweeps:
    def test_asm_sweep_covers_all_variants(self):
        ids = [pid for pid, _text, _dialect in iter_asm_programs()]
        assert len(ids) == 36
        # 2 shapes x 3 dtypes x 2 flavours x 3 variants
        for token in ("triad", "axpy", "fp16", "fp32", "fp64", "vls",
                      "vla", "/v1.0", "/v0.7.1", "/rollback"):
            assert any(token in pid for pid in ids)

    def test_asm_sweep_has_no_errors(self):
        findings, count = lint_assembly()
        assert count == 36
        assert not any(
            f.severity is Severity.ERROR for f in findings
        )

    def test_kernel_subset(self):
        findings, count = lint_kernels(["TRIAD", "GEMM"])
        assert count == 2
        assert not any(
            f.severity is Severity.ERROR for f in findings
        )


class TestSeededInconsistency:
    def test_trait_flip_surfaces_as_error(self):
        kernel = get_kernel("SORT")
        bad = SimpleNamespace(
            name="SORT",
            traits=replace(
                kernel.traits,
                features=kernel.traits.features
                - {LoopFeature.LIBRARY_CALL},
            ),
        )
        findings = lint_kernel(bad)
        errs = [f for f in findings if f.severity is Severity.ERROR]
        assert errs
        # Both the race cross-check and the decisive feature-drift check
        # catch it, each with a located site.
        assert any(f.analyzer == "races" for f in errs)
        assert any(f.analyzer == "features" for f in errs)
        assert all(f.site.startswith("SORT:") for f in errs)

    def test_assembly_file_lint(self, tmp_path):
        bad = tmp_path / "bad.s"
        bad.write_text("    vle32.v v1, (a1)\n    ret\n")
        findings, count = lint_assembly_file(str(bad), RVV_0_7_1)
        assert count == 1
        assert any(f.severity is Severity.ERROR for f in findings)
        assert all(f.site.startswith(str(bad)) for f in findings)


class TestReport:
    def test_exit_code_contract(self):
        clean = LintReport()
        assert clean.exit_code == 0
        dirty = LintReport(findings=[
            Finding(Severity.ERROR, "races", "X:loop[0]", "boom"),
        ])
        assert dirty.exit_code == 3

    def test_warnings_do_not_fail(self):
        report = LintReport(findings=[
            Finding(Severity.WARNING, "features", "X", "drift"),
            Finding(Severity.INFO, "asm", "Y", "assumption"),
        ])
        assert report.exit_code == 0

    def test_render_orders_most_severe_first(self):
        report = LintReport(findings=[
            Finding(Severity.INFO, "asm", "a", "info line"),
            Finding(Severity.ERROR, "races", "b", "error line"),
            Finding(Severity.WARNING, "features", "c", "warn line"),
        ])
        text = report.render()
        assert text.index("ERROR") < text.index("WARNING")
        assert text.index("WARNING") < text.index("INFO")
        assert text.endswith("lint: FAIL")

    def test_min_severity_filters_display_only(self):
        report = LintReport(findings=[
            Finding(Severity.INFO, "asm", "a", "quiet note"),
        ])
        assert "quiet note" not in report.render(Severity.WARNING)
        assert report.exit_code == 0

    def test_finding_renders_hint(self):
        f = Finding(Severity.ERROR, "races", "K:loop[0]", "msg",
                    hint="fix it")
        assert "hint: fix it" in f.render()

    def test_finding_renders_category_tag(self):
        f = Finding(Severity.ERROR, "transval", "p:store[0]", "msg",
                    category="tail-policy")
        assert "<tail-policy>" in f.render()
        assert "<" not in Finding(
            Severity.INFO, "asm", "a", "plain"
        ).render()

    def test_pairs_counter_only_rendered_when_the_sweep_ran(self):
        silent = LintReport(kernels_checked=2)
        assert "rollback pairs" not in silent.render()
        ran = LintReport(kernels_checked=2, pairs_checked=20)
        assert "20 rollback pairs" in ran.render()


class TestJsonReport:
    def test_schema_and_summary(self):
        report = LintReport(
            findings=[
                Finding(Severity.INFO, "asm", "a", "note"),
                Finding(Severity.ERROR, "transval", "b", "boom",
                        category="vl-drift"),
            ],
            kernels_checked=64,
            programs_checked=36,
            pairs_checked=20,
        )
        doc = report.to_json()
        assert doc["schema_version"] == 1
        assert doc["summary"] == {
            "kernels_checked": 64,
            "programs_checked": 36,
            "pairs_checked": 20,
            "documents_checked": 0,
            "errors": 1,
            "warnings": 0,
            "infos": 1,
            "status": "fail",
            "exit_code": 3,
        }
        # Most severe first; findings are the stable per-item form.
        assert doc["findings"][0] == {
            "severity": "error",
            "analyzer": "transval",
            "category": "vl-drift",
            "site": "b",
            "message": "boom",
            "hint": "",
        }

    def test_min_severity_filters_findings_not_counts(self):
        report = LintReport(findings=[
            Finding(Severity.INFO, "asm", "a", "note"),
        ])
        doc = report.to_json(min_severity=Severity.WARNING)
        assert doc["findings"] == []
        assert doc["summary"]["infos"] == 1
        assert doc["summary"]["status"] == "clean"
