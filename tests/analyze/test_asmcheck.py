"""Assembly verifier: the vsetvli state machine, dialect legality,
def-before-use, and termination proofs."""

import pytest

from repro.analyze.asmcheck import check_assembly
from repro.analyze.report import Severity
from repro.compiler.model import VectorFlavor
from repro.isa.codegen import LoopSpec, generate_dot_loop, generate_loop
from repro.isa.encoding import render_assembly
from repro.isa.rollback import rollback
from repro.isa.rvv import RVV_0_7_1, RVV_1_0
from repro.machine.vector import DType


def triad_asm(flavor=VectorFlavor.VLA, version="1.0",
              dtype=DType.FP64):
    spec = LoopSpec(dtype=dtype, num_inputs=2,
                    ops=("vfmul.vv", "vfadd.vv"))
    return render_assembly(generate_loop(spec, flavor, version))


def errors(findings):
    return [f for f in findings if f.severity is Severity.ERROR]


class TestCleanPrograms:
    def test_vla_v10_is_clean(self):
        assert check_assembly(triad_asm(), RVV_1_0) == []

    def test_vls_v10_has_only_divisibility_info(self):
        findings = check_assembly(
            triad_asm(flavor=VectorFlavor.VLS), RVV_1_0
        )
        assert errors(findings) == []
        assert all(f.severity is Severity.INFO for f in findings)
        assert any("multiple" in f.message for f in findings)

    def test_native_v071_is_clean(self):
        findings = check_assembly(
            triad_asm(version="0.7.1"), RVV_0_7_1
        )
        assert errors(findings) == []

    def test_rolled_back_v10_is_clean_under_v071(self):
        findings = check_assembly(
            rollback(triad_asm()), RVV_0_7_1
        )
        assert errors(findings) == []

    def test_accumulating_loop_is_clean(self):
        spec = LoopSpec(dtype=DType.FP32, num_inputs=2,
                        ops=("vfmacc.vv",))
        asm = render_assembly(
            generate_loop(spec, VectorFlavor.VLA, "1.0")
        )
        assert check_assembly(asm, RVV_1_0) == []


class TestDialectLegality:
    def test_unrolled_width_encoded_load_fails_v071(self):
        # The seeded-inconsistency demo: claim a v1.0 program was rolled
        # back without running the rollback tool.
        findings = check_assembly(triad_asm(), RVV_0_7_1, "fake-rollback")
        errs = errors(findings)
        assert any("width-encoded" in e.message for e in errs)
        assert any("rollback" in e.hint for e in errs)
        assert all(e.site.startswith("fake-rollback:insn[") for e in errs)

    def test_v071_mnemonic_fails_v10(self):
        findings = check_assembly(
            triad_asm(version="0.7.1"), RVV_1_0
        )
        assert any(
            "not part of RVV 1.0" in e.message for e in errors(findings)
        )

    def test_policy_flags_fail_v071(self):
        asm = (
            "loop:\n"
            "    vsetvli t0, a0, e32, m1, ta, ma\n"
            "    sub a0, a0, t0\n"
            "    bnez a0, loop\n"
            "    ret\n"
        )
        assert any(
            "vsetvli" in e.message
            for e in errors(check_assembly(asm, RVV_0_7_1))
        )

    def test_eew_sew_mismatch_warns_in_v10(self):
        asm = (
            "loop:\n"
            "    vsetvli t0, a0, e32, m1, ta, ma\n"
            "    vle64.v v1, (a1)\n"
            "    vse64.v v1, (a3)\n"
            "    sub a0, a0, t0\n"
            "    bnez a0, loop\n"
            "    ret\n"
        )
        findings = check_assembly(asm, RVV_1_0)
        warns = [f for f in findings if f.severity is Severity.WARNING]
        assert len(warns) == 2
        assert "EEW 64" in warns[0].message


class TestStateMachine:
    def test_vector_op_before_vsetvli(self):
        asm = "    vfadd.vv v0, v1, v1\n    ret\n"
        errs = errors(check_assembly(asm, RVV_1_0))
        assert any("before any vsetvli" in e.message for e in errs)

    def test_load_before_vsetvli(self):
        asm = "    vle.v v1, (a1)\n    ret\n"
        errs = errors(check_assembly(asm, RVV_0_7_1))
        assert any("before any vsetvli" in e.message for e in errs)


class TestDefBeforeUse:
    def test_undefined_vector_source(self):
        asm = (
            "    vsetvli t0, a0, e32, m1, ta, ma\n"
            "    vfadd.vv v0, v9, v9\n"
            "    ret\n"
        )
        errs = errors(check_assembly(asm, RVV_1_0))
        assert any("'v9'" in e.message for e in errs)

    def test_accumulator_read_without_init(self):
        # vfmacc reads its destination: without vmv.v.i the add source
        # is garbage.
        asm = (
            "    vsetvli t0, a0, e32, m1, ta, ma\n"
            "    vle32.v v1, (a1)\n"
            "    vfmacc.vv v0, v1, v1\n"
            "    ret\n"
        )
        errs = errors(check_assembly(asm, RVV_1_0))
        assert any("'v0'" in e.message for e in errs)

    def test_undefined_scalar_base_address(self):
        asm = (
            "    vsetvli t0, a0, e32, m1, ta, ma\n"
            "    vle32.v v1, (t5)\n"
            "    ret\n"
        )
        errs = errors(check_assembly(asm, RVV_1_0))
        assert any("'t5'" in e.message for e in errs)

    def test_abi_registers_are_live_in(self):
        asm = (
            "    vsetvli t0, a0, e32, m1, ta, ma\n"
            "    vle32.v v1, (a7)\n"
            "    ret\n"
        )
        assert errors(check_assembly(asm, RVV_1_0)) == []


class TestTermination:
    def test_missing_decrement(self):
        asm = (
            "loop:\n"
            "    vsetvli t0, a0, e32, m1, ta, ma\n"
            "    bnez a0, loop\n"
            "    ret\n"
        )
        errs = errors(check_assembly(asm, RVV_1_0))
        assert any("cannot terminate" in e.message for e in errs)

    def test_nonpositive_constant_step(self):
        asm = (
            "    li t1, 0\n"
            "loop:\n"
            "    sub a0, a0, t1\n"
            "    bnez a0, loop\n"
            "    ret\n"
        )
        errs = errors(check_assembly(asm, RVV_1_0))
        assert any("non-positive" in e.message for e in errs)

    def test_clobbered_loop_register(self):
        asm = (
            "    li t1, 4\n"
            "loop:\n"
            "    li a0, 7\n"
            "    sub a0, a0, t1\n"
            "    bnez a0, loop\n"
            "    ret\n"
        )
        errs = errors(check_assembly(asm, RVV_1_0))
        assert any("redefined" in e.message for e in errs)

    def test_vsetvli_over_loop_register_proves_exact_termination(self):
        asm = (
            "loop:\n"
            "    vsetvli t0, a0, e32, m1, ta, ma\n"
            "    sub a0, a0, t0\n"
            "    bnez a0, loop\n"
            "    ret\n"
        )
        assert check_assembly(asm, RVV_1_0) == []

    def test_vsetvli_over_other_register_warns(self):
        asm = (
            "loop:\n"
            "    vsetvli t0, a5, e32, m1, ta, ma\n"
            "    sub a0, a0, t0\n"
            "    bnez a0, loop\n"
            "    ret\n"
        )
        findings = check_assembly(asm, RVV_1_0)
        assert any(
            f.severity is Severity.WARNING and "relationship" in f.message
            for f in findings
        )

    def test_unknown_branch_target(self):
        asm = "    li t0, 1\n    bnez t0, nowhere\n    ret\n"
        errs = errors(check_assembly(asm, RVV_1_0))
        assert any("unknown label" in e.message for e in errs)


class TestThresholdBackedges:
    """bgeu/blt-terminated loops — the strip-mine remainder idiom the
    dot microkernel emits.  Threshold exits terminate for any positive
    step, so no lane-multiple INFO applies."""

    @pytest.mark.parametrize("flavor", [VectorFlavor.VLS,
                                        VectorFlavor.VLA])
    @pytest.mark.parametrize("version,dialect",
                             [("1.0", RVV_1_0), ("0.7.1", RVV_0_7_1)])
    def test_dot_loops_prove_clean(self, flavor, version, dialect):
        asm = render_assembly(
            generate_dot_loop(DType.FP64, flavor, rvv_version=version)
        )
        assert check_assembly(asm, dialect) == []

    def test_rolled_back_dot_loop_proves_clean(self):
        asm = render_assembly(
            generate_dot_loop(DType.FP64, VectorFlavor.VLS)
        )
        assert check_assembly(rollback(asm), RVV_0_7_1) == []

    def test_bgeu_countdown_loop_needs_no_divisibility_info(self):
        asm = (
            "    li t1, 4\n"
            "loop:\n"
            "    sub a0, a0, t1\n"
            "    bgeu a0, t1, loop\n"
            "    ret\n"
        )
        assert check_assembly(asm, RVV_1_0) == []

    def test_blt_countup_loop_proves_clean(self):
        asm = (
            "    li t0, 0\n"
            "    li t1, 4\n"
            "    li t2, 64\n"
            "loop:\n"
            "    add t0, t0, t1\n"
            "    blt t0, t2, loop\n"
            "    ret\n"
        )
        assert check_assembly(asm, RVV_1_0) == []

    def test_blt_commuted_add_proves_clean(self):
        asm = (
            "    li t0, 0\n"
            "    li t1, 4\n"
            "    li t2, 64\n"
            "loop:\n"
            "    add t0, t1, t0\n"
            "    blt t0, t2, loop\n"
            "    ret\n"
        )
        assert check_assembly(asm, RVV_1_0) == []

    def test_bgeu_loop_without_decrement_is_an_error(self):
        asm = (
            "    li t1, 4\n"
            "loop:\n"
            "    add a1, a1, t1\n"
            "    bgeu a0, t1, loop\n"
            "    ret\n"
        )
        errs = errors(check_assembly(asm, RVV_1_0))
        assert any("cannot terminate" in e.message for e in errs)

    def test_blt_loop_without_increment_is_an_error(self):
        asm = (
            "    li t0, 0\n"
            "    li t2, 64\n"
            "loop:\n"
            "    add a1, a1, t2\n"
            "    blt t0, t2, loop\n"
            "    ret\n"
        )
        errs = errors(check_assembly(asm, RVV_1_0))
        assert any("never increments" in e.message for e in errs)

    def test_clobbered_threshold_register_is_an_error(self):
        asm = (
            "    li t1, 4\n"
            "loop:\n"
            "    li a0, 9\n"
            "    sub a0, a0, t1\n"
            "    bgeu a0, t1, loop\n"
            "    ret\n"
        )
        errs = errors(check_assembly(asm, RVV_1_0))
        assert any("redefined" in e.message for e in errs)

    def test_threshold_branch_to_unknown_label(self):
        asm = "    li t1, 4\n    bgeu a0, t1, nowhere\n    ret\n"
        errs = errors(check_assembly(asm, RVV_1_0))
        assert any("unknown label" in e.message for e in errs)

    def test_threshold_branch_checks_both_registers(self):
        asm = "    bltu a0, t5, done\ndone:\n    ret\n"
        errs = errors(check_assembly(asm, RVV_1_0))
        assert any("'t5'" in e.message for e in errs)


class TestProgramShape:
    def test_missing_ret(self):
        errs = errors(check_assembly("    li t0, 1\n", RVV_1_0))
        assert any("without ret" in e.message for e in errs)

    @pytest.mark.parametrize("dtype", [DType.FP16, DType.FP32,
                                       DType.FP64])
    @pytest.mark.parametrize("flavor", [VectorFlavor.VLS,
                                        VectorFlavor.VLA])
    def test_all_codegen_outputs_error_free(self, dtype, flavor):
        for version, dialect in (("1.0", RVV_1_0),
                                 ("0.7.1", RVV_0_7_1)):
            asm = triad_asm(flavor=flavor, version=version, dtype=dtype)
            assert errors(check_assembly(asm, dialect)) == []
