"""Race detector: verdicts, dependence tests, and the traits
cross-check — pinned to agree with the declared traits of all 64
kernels."""

from dataclasses import replace

import pytest

from repro.analyze.races import Verdict, classify_nest, crosscheck_traits
from repro.analyze.report import Severity
from repro.compiler.ir import (
    Compute,
    Loop,
    LoopNest,
    SymbolicStride,
    TRIP_N,
    read,
    write,
)
from repro.kernels.base import KernelTraits, LoopFeature
from repro.kernels.ir_defs import ir_for
from repro.kernels.registry import all_kernels, get_kernel

ROW = SymbolicStride(name="ROW")


def errors_for(kernel, traits=None):
    _report, findings = crosscheck_traits(
        kernel.name, ir_for(kernel.name), traits or kernel.traits
    )
    return [f for f in findings if f.severity is Severity.ERROR]


class TestAllKernelsAgree:
    """The acceptance pin: detector verdicts vs declared traits."""

    @pytest.mark.parametrize(
        "kernel", all_kernels(), ids=lambda k: k.name
    )
    def test_no_error_findings(self, kernel):
        assert errors_for(kernel) == []

    def test_covers_all_64(self):
        assert len(all_kernels()) == 64


class TestVerdicts:
    @pytest.mark.parametrize(
        "name", ["SCAN", "GEN_LIN_RECUR", "TRIDIAG_ELIM", "SORT",
                 "SORTPAIRS"]
    )
    def test_serial_kernels(self, name):
        assert classify_nest(ir_for(name)).verdict is Verdict.SERIAL

    @pytest.mark.parametrize(
        "name", ["DAXPY_ATOMIC", "PI_ATOMIC", "NODAL_ACCUMULATION_3D"]
    )
    def test_atomic_kernels(self, name):
        assert classify_nest(ir_for(name)).verdict is Verdict.NEEDS_ATOMIC

    @pytest.mark.parametrize(
        "name", ["REDUCE_SUM", "DOT", "FIRST_MIN", "TRAP_INT"]
    )
    def test_reduction_kernels(self, name):
        assert (
            classify_nest(ir_for(name)).verdict is Verdict.NEEDS_REDUCTION
        )

    @pytest.mark.parametrize(
        "name", ["TRIAD", "DAXPY", "COPY", "JACOBI_2D", "NESTED_INIT"]
    )
    def test_parallel_safe_kernels(self, name):
        assert classify_nest(ir_for(name)).verdict is Verdict.PARALLEL_SAFE

    def test_nested_reduction_is_private(self):
        report = classify_nest(ir_for("GEMM"))
        assert report.verdict is Verdict.PARALLEL_SAFE
        assert any("private" in n for n in report.notes())

    def test_indirect_write_noted(self):
        report = classify_nest(ir_for("HALOEXCHANGE"))
        assert any("injective" in n for n in report.notes())

    def test_verdict_severity_order(self):
        ranks = [
            Verdict.PARALLEL_SAFE.rank,
            Verdict.NEEDS_REDUCTION.rank,
            Verdict.NEEDS_ATOMIC.rank,
            Verdict.SERIAL.rank,
        ]
        assert ranks == sorted(ranks)


class TestDependenceAnalysis:
    """Hand-built nests exercising the affine and slab tests."""

    def test_write_write_race_detected(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Compute((write("x"),)),
            Compute((write("x", offset=1),)),
        )),))
        report = classify_nest(nest)
        assert report.verdict is Verdict.SERIAL
        (conflict,) = report.conflicts()
        assert conflict.kind == "write-write"
        assert conflict.array == "x"

    def test_read_write_race_detected(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Compute((read("x", offset=1), write("x"))),
        )),))
        report = classify_nest(nest)
        assert report.verdict is Verdict.SERIAL
        (conflict,) = report.conflicts()
        assert conflict.kind == "read-write"

    def test_disjoint_strided_lanes_are_safe(self):
        # Write even elements, read odd: delta 1 not divisible by 2.
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Compute((read("x", stride=2, offset=1),
                     write("x", stride=2))),
        )),))
        assert classify_nest(nest).verdict is Verdict.PARALLEL_SAFE

    def test_gcd_test_catches_intersecting_strides(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Compute((write("x", stride=2),)),
            Compute((read("x", stride=3),)),
        )),))
        assert classify_nest(nest).verdict is Verdict.SERIAL

    def test_stencil_read_within_slab_is_safe(self):
        # Outer-parallel nest: neighbour reads at element offsets stay
        # inside the thread's contiguous slab.
        nest = LoopNest(loops=(Loop(TRIP_N, parallel=True, body=(
            Loop(TRIP_N, parallel=False, body=(
                Compute((read("a", offset=1), read("a", offset=-1),
                         write("b"))),
            )),
        )),))
        assert classify_nest(nest).verdict is Verdict.PARALLEL_SAFE

    def test_row_offset_crosses_slab(self):
        # In-place row-offset write/read: reaches the neighbour thread's
        # rows.
        nest = LoopNest(loops=(Loop(TRIP_N, parallel=True, body=(
            Loop(TRIP_N, parallel=False, body=(
                Compute((read("a", offset=ROW), write("a"))),
            )),
        )),))
        report = classify_nest(nest)
        assert report.verdict is Verdict.SERIAL
        assert any("slab" in c.reason for c in report.conflicts())

    def test_same_element_same_iteration_is_safe(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Compute((read("x"), write("x"))),
        )),))
        assert classify_nest(nest).verdict is Verdict.PARALLEL_SAFE


class TestSeededInconsistencies:
    """Flipping one trait produces a located, human-readable ERROR."""

    def test_undeclared_scan_dep(self):
        kernel = get_kernel("SCAN")
        bad = replace(
            kernel.traits,
            features=kernel.traits.features - {LoopFeature.SCAN_DEP},
        )
        (err, *rest) = errors_for(kernel, bad)
        assert "scan" in err.message
        assert "SCAN:loop[0]" in err.site
        assert "SCAN_DEP" in err.hint

    def test_serial_with_full_parallel_fraction(self):
        kernel = get_kernel("SCAN")
        with pytest.warns(UserWarning, match="scan_dep"):
            bad = replace(kernel.traits, parallel_fraction=1.0)
        errs = errors_for(kernel, bad)
        assert any("parallel_fraction" in e.site for e in errs)

    def test_undeclared_atomic(self):
        kernel = get_kernel("DAXPY_ATOMIC")
        bad = replace(
            kernel.traits,
            features=kernel.traits.features - {LoopFeature.ATOMIC},
        )
        errs = errors_for(kernel, bad)
        assert any("ATOMIC" in e.message or "atomic" in e.message
                   for e in errs)

    def test_stale_atomic(self):
        kernel = get_kernel("TRIAD")
        bad = replace(
            kernel.traits,
            features=kernel.traits.features | {LoopFeature.ATOMIC},
        )
        errs = errors_for(kernel, bad)
        assert any("declare ATOMIC" in e.message for e in errs)

    def test_undeclared_reduction(self):
        kernel = get_kernel("REDUCE_SUM")
        bad = replace(
            kernel.traits,
            features=kernel.traits.features
            - {LoopFeature.REDUCTION_SUM},
        )
        errs = errors_for(kernel, bad)
        assert any("REDUCTION" in e.message for e in errs)

    def test_actual_race_is_error_regardless_of_traits(self):
        nest = LoopNest(loops=(Loop(TRIP_N, body=(
            Compute((read("x", offset=1), write("x"))),
        )),))
        traits = KernelTraits(
            flops_per_iter=1, reads_per_iter=1, writes_per_iter=1,
            footprint_elems=1.0, parallel_fraction=0.9,
        )
        _report, findings = crosscheck_traits("FAKE", nest, traits)
        errs = [f for f in findings if f.severity is Severity.ERROR]
        assert errs and "race" in errs[0].message.replace("-", " ")


class TestTraitsConstructionWarning:
    """kernels/base.py warns at construction on the contradiction."""

    def test_scan_dep_with_full_fraction_warns(self):
        with pytest.warns(UserWarning, match="parallel_fraction"):
            KernelTraits(
                flops_per_iter=1, reads_per_iter=1, writes_per_iter=1,
                footprint_elems=1.0,
                features=frozenset({LoopFeature.SCAN_DEP}),
                parallel_fraction=1.0,
            )

    def test_loop_carried_dep_with_lowered_fraction_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            KernelTraits(
                flops_per_iter=1, reads_per_iter=1, writes_per_iter=1,
                footprint_elems=1.0,
                features=frozenset({LoopFeature.LOOP_CARRIED_DEP}),
                parallel_fraction=0.7,
            )
