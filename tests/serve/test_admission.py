"""Admission control: bounded in-flight budget, shedding, hints."""

import pytest

from repro.serve.admission import AdmissionController
from repro.util.errors import ConfigError


class TestAdmission:
    def test_admits_up_to_watermark(self):
        adm = AdmissionController(max_inflight=3)
        assert all(adm.try_acquire() for _ in range(3))
        assert adm.depth == 3
        assert not adm.try_acquire()
        assert adm.shed_count == 1

    def test_release_frees_a_slot(self):
        adm = AdmissionController(max_inflight=1)
        assert adm.try_acquire()
        assert not adm.try_acquire()
        adm.release()
        assert adm.try_acquire()
        assert adm.admitted_count == 2

    def test_release_without_acquire_raises(self):
        with pytest.raises(ConfigError):
            AdmissionController().release()

    def test_idle(self):
        adm = AdmissionController()
        assert adm.idle()
        adm.try_acquire()
        assert not adm.idle()
        adm.release()
        assert adm.idle()

    def test_retry_after_grows_with_the_shed_streak(self):
        adm = AdmissionController(max_inflight=2,
                                  base_retry_after_ms=100)
        assert adm.retry_after_ms() == 100  # idle: the base hint
        adm.try_acquire()
        adm.try_acquire()
        adm.try_acquire()  # shed #1
        adm.try_acquire()  # shed #2
        assert adm.retry_after_ms() == 200  # 100 * (1 + 2/2)
        # An admitted request resets the streak (and the hint).
        adm.release()
        adm.try_acquire()
        assert adm.retry_after_ms() == 100

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ConfigError):
            AdmissionController(base_retry_after_ms=0)
