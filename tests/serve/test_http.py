"""HTTP framing: parsing, limits, serialization."""

import asyncio
import json

import pytest

from repro.serve.errors import BadRequest
from repro.serve.http import (
    MAX_BODY_BYTES,
    HttpRequest,
    json_body,
    read_request,
    write_response,
)


def parse(raw: bytes, **kwargs):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(run())


class TestReadRequest:
    def test_round_trip_with_body(self):
        body = b'{"kernel":"TRIAD"}'
        raw = (
            b"POST /predict HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.path == "/predict"
        assert request.headers["host"] == "x"
        assert request.json() == {"kernel": "TRIAD"}

    def test_no_body(self):
        request = parse(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert request.method == "GET"
        assert request.body == b""
        assert request.json() == {}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(BadRequest, match="malformed request line"):
            parse(b"BANANAS\r\n\r\n")

    def test_wrong_protocol(self):
        with pytest.raises(BadRequest):
            parse(b"GET / SPDY/3\r\n\r\n")

    def test_malformed_header(self):
        with pytest.raises(BadRequest, match="malformed header"):
            parse(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n")

    def test_truncated_headers(self):
        with pytest.raises(BadRequest):
            parse(b"GET / HTTP/1.1\r\nHost: x\r\n")

    def test_truncated_body(self):
        with pytest.raises(BadRequest, match="mid-body"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_invalid_content_length(self):
        with pytest.raises(BadRequest, match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")

    def test_oversized_body_rejected_before_reading(self):
        raw = (
            b"POST / HTTP/1.1\r\nContent-Length: "
            + str(MAX_BODY_BYTES + 1).encode() + b"\r\n\r\n"
        )
        with pytest.raises(BadRequest, match="outside"):
            parse(raw)

    def test_chunked_rejected(self):
        with pytest.raises(BadRequest, match="chunked"):
            parse(b"POST / HTTP/1.1\r\n"
                  b"Transfer-Encoding: chunked\r\n\r\n")


class TestHttpRequest:
    def test_keep_alive_default(self):
        assert HttpRequest("GET", "/").keep_alive

    def test_connection_close(self):
        request = HttpRequest("GET", "/",
                              headers={"connection": "Close"})
        assert not request.keep_alive

    def test_json_rejects_non_object(self):
        request = HttpRequest("POST", "/", body=b"[1,2]")
        with pytest.raises(BadRequest, match="JSON object"):
            request.json()

    def test_json_rejects_garbage(self):
        request = HttpRequest("POST", "/", body=b"{nope")
        with pytest.raises(BadRequest, match="not valid JSON"):
            request.json()


class TestWriteResponse:
    def _render(self, **kwargs):
        class Sink:
            def __init__(self):
                self.data = b""

            def write(self, chunk):
                self.data += chunk

        sink = Sink()
        write_response(sink, 200, b'{"ok":true}', **kwargs)
        return sink.data

    def test_status_line_and_framing(self):
        data = self._render()
        head, _, body = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 11" in head
        assert body == b'{"ok":true}'

    def test_keep_alive_header(self):
        assert b"Connection: keep-alive" in self._render()
        assert b"Connection: close" in self._render(keep_alive=False)

    def test_extra_headers(self):
        data = self._render(extra_headers={"Retry-After": "2"})
        assert b"Retry-After: 2\r\n" in data

    def test_json_body_is_compact(self):
        payload = json_body({"a": 1, "b": [2, 3]})
        assert payload == b'{"a":1,"b":[2,3]}'
        assert json.loads(payload) == {"a": 1, "b": [2, 3]}
