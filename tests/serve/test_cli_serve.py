"""The ``serve`` CLI command: startup banner, SIGTERM drain, flags."""

import asyncio
import json
import signal
import subprocess
import sys
import time


from repro.cli import build_parser

from tests.serve.helpers import http_request


def start_server(*extra_args):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         *extra_args],
        stderr=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )


def wait_for_port(proc, timeout=30.0):
    """Parse 'serving on http://host:port' from the banner line."""
    deadline = time.monotonic() + timeout
    line = proc.stderr.readline()
    assert time.monotonic() < deadline, "no banner before timeout"
    assert "serving on http://" in line, line
    return int(line.rsplit(":", 1)[1])


class TestServeCommand:
    def test_parser_accepts_serve_flags(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--max-inflight", "8",
            "--deadline-ms", "500", "--batch-window-ms", "1",
            "--max-batch", "16", "--breaker-threshold", "3",
            "--breaker-cooldown", "0.5", "--on-failure", "skip",
            "--retries", "1", "--engine-workers", "1",
            "--drain-timeout", "2",
        ])
        assert args.command == "serve"
        assert args.max_inflight == 8
        assert args.on_failure == "skip"

    def test_sigterm_drains_cleanly(self):
        proc = start_server("--drain-timeout", "2")
        try:
            port = wait_for_port(proc)
            status, _, body = asyncio.run(
                http_request(port, "POST", "/predict",
                             {"kernel": "TRIAD", "threads": 8})
            )
            assert status == 200
            assert body["kernel"] == "TRIAD"
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "draining..." in stderr
        assert "drain complete" in stderr
        # The final telemetry summary is part of the drain output.
        assert "serve.requests" in stderr

    def test_fault_plan_flag_mounts_chaos(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({
            "seed": 3,
            "rules": [{"site": "run", "probability": 1.0,
                       "kernels": ["TRIAD"]}],
        }))
        proc = start_server("--fault-plan", str(plan_path),
                            "--retries", "0", "--drain-timeout", "2")
        try:
            port = wait_for_port(proc)
            status, _, body = asyncio.run(
                http_request(port, "POST", "/predict",
                             {"kernel": "TRIAD", "deadline_ms": 10000})
            )
            assert status == 500
            assert body["error"]["code"] == "engine_fault"
            assert body["error"]["details"]["fault_site"] == "run"
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "drain complete" in stderr
