"""Adaptive coalescing window: latency-optimal idle, throughput under load."""

import pytest

from repro import telemetry
from repro.serve.coalescer import AdaptiveWindow, Coalescer, CoalescerConfig


def _fed(window, gap, arrivals=50, start=0.0):
    """Feed a steady stream with the given inter-arrival gap."""
    now = start
    for _ in range(arrivals):
        window.observe_arrival(now)
        now += gap
    return now - gap  # timestamp of the last arrival


class TestColdStart:
    def test_first_request_gets_the_floor(self):
        window = AdaptiveWindow(cap_s=0.01)
        assert window.window_s(0.0) == 0.0
        window.observe_arrival(0.0)
        # One arrival establishes no gap estimate yet.
        assert window.window_s(0.0) == 0.0

    def test_nonzero_floor_is_respected(self):
        window = AdaptiveWindow(cap_s=0.01, min_s=0.002)
        assert window.window_s(0.0) == pytest.approx(0.002)

    def test_floor_is_clamped_to_the_cap(self):
        window = AdaptiveWindow(cap_s=0.001, min_s=0.05)
        assert window.min_s == pytest.approx(0.001)


class TestPressure:
    def test_heavy_arrival_rate_saturates_at_the_cap(self):
        window = AdaptiveWindow(cap_s=0.01, target_batch=8)
        # 10k req/s: 100 expected arrivals per 10ms window >> target.
        last = _fed(window, gap=1e-4)
        assert window.window_s(last) == pytest.approx(0.01)

    def test_light_arrival_rate_stays_at_the_floor(self):
        window = AdaptiveWindow(cap_s=0.01, target_batch=8)
        # One request per second: expected arrivals per window ~ 0.01.
        last = _fed(window, gap=1.0)
        assert window.window_s(last) == 0.0

    def test_intermediate_rate_is_between_floor_and_cap(self):
        window = AdaptiveWindow(cap_s=0.01, target_batch=8)
        # Gap 2.5ms: expected = 4 per window, pressure = 3/7.
        last = _fed(window, gap=0.0025)
        got = window.window_s(last)
        assert 0.0 < got < 0.01
        assert got == pytest.approx(0.01 * (3 / 7), rel=0.05)

    def test_idle_time_decays_the_estimate(self):
        window = AdaptiveWindow(cap_s=0.01, target_batch=8)
        last = _fed(window, gap=1e-4)
        assert window.window_s(last) == pytest.approx(0.01)
        # A burst followed by silence must not remember its peak rate:
        # the effective gap is max(ewma, now - last_arrival).
        assert window.window_s(last + 5.0) == 0.0

    def test_window_never_exceeds_the_cap_or_drops_below_floor(self):
        window = AdaptiveWindow(cap_s=0.01, min_s=0.001, target_batch=4)
        for gap in (1e-6, 1e-4, 1e-2, 1.0):
            last = _fed(window, gap=gap)
            got = window.window_s(last)
            assert 0.001 <= got <= 0.01


class TestGuardrail:
    def test_high_p99_scales_the_window_down(self):
        latency = telemetry.LatencyWindow(maxlen=64)
        window = AdaptiveWindow(
            cap_s=0.01, target_batch=8,
            guardrail_p99_s=0.05, latency=latency,
        )
        last = _fed(window, gap=1e-4)
        assert window.window_s(last) == pytest.approx(0.01)
        for _ in range(64):
            latency.observe(0.200)  # p99 = 200ms >> 50ms guardrail
        got = window.window_s(last)
        assert got == pytest.approx(0.01 * (0.05 / 0.200), rel=0.05)

    def test_healthy_p99_leaves_the_window_alone(self):
        latency = telemetry.LatencyWindow(maxlen=64)
        window = AdaptiveWindow(
            cap_s=0.01, target_batch=8,
            guardrail_p99_s=0.05, latency=latency,
        )
        for _ in range(64):
            latency.observe(0.001)
        last = _fed(window, gap=1e-4)
        assert window.window_s(last) == pytest.approx(0.01)


class TestCoalescerWiring:
    def test_adaptive_is_off_by_default(self):
        assert CoalescerConfig().adaptive is False

    def test_fixed_window_publishes_the_gauge(self):
        with telemetry.telemetry_session() as (_, registry):
            coalescer = Coalescer.__new__(Coalescer)
            coalescer.config = CoalescerConfig(window_s=0.002)
            coalescer._adaptive = None
            assert coalescer.window_s(0.0) == pytest.approx(0.002)
            gauge = registry.gauge("serve.coalesce.window_ms")
            assert gauge.value == pytest.approx(2.0)

    def test_adaptive_window_publishes_the_gauge(self):
        with telemetry.telemetry_session() as (_, registry):
            coalescer = Coalescer.__new__(Coalescer)
            coalescer.config = CoalescerConfig(
                window_s=0.01, adaptive=True
            )
            coalescer._adaptive = AdaptiveWindow(
                cap_s=0.01, target_batch=8
            )
            last = _fed(coalescer._adaptive, gap=1e-4)
            assert coalescer.window_s(last) == pytest.approx(0.01)
            gauge = registry.gauge("serve.coalesce.window_ms")
            assert gauge.value == pytest.approx(10.0)
