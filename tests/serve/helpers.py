"""Shared async HTTP helpers for the serve tests (stdlib only)."""

import asyncio
import json


async def http_request(port, method, path, body=None, *,
                       host="127.0.0.1", keep_alive=False,
                       raw_body=None, headers=None):
    """One request on a fresh connection; returns (status, headers,
    parsed-or-bytes body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await request_on(
            reader, writer, method, path, body,
            keep_alive=keep_alive, raw_body=raw_body, headers=headers,
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def request_on(reader, writer, method, path, body=None, *,
                     keep_alive=True, raw_body=None, headers=None):
    """One request/response exchange on an existing connection."""
    if raw_body is not None:
        payload = raw_body
    elif body is not None:
        payload = json.dumps(body).encode()
    else:
        payload = b""
    lines = [
        f"{method} {path} HTTP/1.1",
        "Host: test",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
    await writer.drain()

    status_line = await reader.readline()
    status = int(status_line.split()[1])
    resp_headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        resp_headers[name.strip().lower()] = value.strip()
    length = int(resp_headers.get("content-length", 0))
    raw = await reader.readexactly(length) if length else b""
    if resp_headers.get("content-type", "").startswith("application/json"):
        return status, resp_headers, json.loads(raw) if raw else None
    return status, resp_headers, raw
