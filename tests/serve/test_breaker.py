"""Circuit breaker state machine, driven by a fake clock."""

import pytest

from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.util.errors import ConfigError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(clock, threshold=3, cooldown=10.0, probes=1, on_transition=None):
    return CircuitBreaker(
        failure_threshold=threshold,
        cooldown_s=cooldown,
        half_open_probes=probes,
        clock=clock,
        on_transition=on_transition,
    )


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker = make(FakeClock())
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = make(FakeClock(), threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_opens_after_consecutive_failures(self):
        breaker = make(FakeClock(), threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()


class TestHalfOpen:
    def test_half_opens_after_cooldown(self):
        clock = FakeClock()
        breaker = make(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(9.9)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = make(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = make(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_probe_budget_is_bounded(self):
        clock = FakeClock()
        breaker = make(clock, threshold=1, cooldown=10.0, probes=2)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # both probe slots taken

    def test_abandoned_probes_are_reclaimed(self):
        clock = FakeClock()
        breaker = make(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()      # probe whose outcome never arrives
        assert not breaker.allow()
        clock.advance(10.0)         # a full cooldown later...
        assert breaker.allow()      # ...the slot frees itself

    def test_full_cycle_transitions_recorded(self):
        clock = FakeClock()
        breaker = make(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.transitions == (
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        )


class TestPlumbing:
    def test_on_transition_gets_both_states(self):
        clock = FakeClock()
        seen = []
        breaker = make(
            clock, threshold=1,
            on_transition=lambda frm, to: seen.append((frm, to)),
        )
        breaker.record_failure()
        assert seen == [(BreakerState.CLOSED, BreakerState.OPEN)]

    def test_retry_after_tracks_remaining_cooldown(self):
        clock = FakeClock()
        breaker = make(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(4.0)
        assert breaker.retry_after_ms() == 6000

    def test_state_codes_for_the_gauge(self):
        assert BreakerState.CLOSED.code == 0
        assert BreakerState.HALF_OPEN.code == 1
        assert BreakerState.OPEN.code == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigError):
            CircuitBreaker(cooldown_s=0)
        with pytest.raises(ConfigError):
            CircuitBreaker(half_open_probes=0)
