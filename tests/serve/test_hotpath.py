"""Hot-path contract: cached responses are byte-identical, faults are
never cached, and a deadline that expires while parked costs nothing."""

import asyncio
import json

from repro.resilience.faults import FaultPlan, FaultRule
from repro.serve import PredictionServer, ServeConfig


def with_server(config, scenario):
    async def main():
        server = PredictionServer(config)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.drain()

    return asyncio.run(main())


def default_config(**overrides):
    base = dict(port=0, drain_timeout_s=2.0)
    base.update(overrides)
    return ServeConfig(**base)


async def raw_request(port, method, path, body=None):
    """The full response — status line, headers, body — as raw bytes.

    The test helpers parse JSON bodies; byte-identity needs the exact
    wire image, so this reads the close-delimited response whole.
    """
    payload = json.dumps(body).encode() if body is not None else b""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: test\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            + payload
        )
        await writer.drain()
        return await reader.read(-1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestByteIdentity:
    """A cached hit must be indistinguishable on the wire from the
    uncached render it replaced — headers included."""

    def _assert_identical(self, scenario_body, path, checks=()):
        async def scenario(server):
            first = await raw_request(
                server.port, "POST", path, scenario_body
            )
            second = await raw_request(
                server.port, "POST", path, scenario_body
            )
            return first, second, server.respcache.stats()

        first, second, stats = with_server(default_config(), scenario)
        assert first.startswith(b"HTTP/1.1 200 OK\r\n")
        assert first == second
        assert stats.hits == 1 and stats.stores == 1
        for needle in checks:
            assert needle in first
        return first

    def test_predict_cached_bytes_match_uncached(self):
        body = self._assert_identical(
            {"kernel": "TRIAD", "threads": 8, "precision": "fp32"},
            "/predict",
            checks=(b'"kernel":"TRIAD"', b'"attempts":1'),
        )
        assert b"Content-Length: " in body

    def test_sweep_cached_bytes_match_uncached(self):
        self._assert_identical(
            {
                "kernels": ["TRIAD", "DAXPY"],
                "threads": [1, 8],
                "placements": ["block", "cluster"],
                "precisions": ["fp64"],
            },
            "/sweep",
            checks=(b'"points"', b'"failures":[]'),
        )

    def test_explain_cached_bytes_match_uncached(self):
        self._assert_identical(
            {"kernel": "GEMM"},
            "/explain",
            checks=(b'"explanation"',),
        )


class TestPersistentTier:
    def test_restart_serves_identical_bytes_from_disk(self, tmp_path):
        """A fresh process (new server, same store) answers the first
        request from the persistent response tier, byte-identically."""
        config = dict(
            store_path=str(tmp_path / "store"), prewarm=False
        )
        request = {"kernel": "DOT", "threads": 16}

        async def warm(server):
            return await raw_request(
                server.port, "POST", "/predict", request
            )

        async def cold_start(server):
            raw = await raw_request(
                server.port, "POST", "/predict", request
            )
            return raw, server.respcache.stats()

        first = with_server(default_config(**config), warm)
        second, stats = with_server(
            default_config(**config), cold_start
        )
        assert first.startswith(b"HTTP/1.1 200 OK\r\n")
        assert second == first
        assert stats.disk_hits == 1 and stats.hits == 0


class TestFaultsAreNeverCached:
    def test_engine_faults_bypass_the_cache(self):
        plan = FaultPlan(seed=11, rules=(
            FaultRule(site="run", probability=1.0, kernels=("TRIAD",)),
        ))

        async def scenario(server):
            first = await raw_request(
                server.port, "POST", "/predict",
                {"kernel": "TRIAD", "deadline_ms": 10000},
            )
            second = await raw_request(
                server.port, "POST", "/predict",
                {"kernel": "TRIAD", "deadline_ms": 10000},
            )
            return first, second, len(server.respcache)

        first, second, entries = with_server(
            default_config(fault_plan=plan, retries=1), scenario
        )
        # Both requests hit the live engine and got live envelopes.
        assert first.startswith(b"HTTP/1.1 500 ")
        assert second.startswith(b"HTTP/1.1 500 ")
        assert b'"code":"engine_fault"' in first
        assert entries == 0

    def test_retried_runs_are_not_cached(self):
        """attempts > 1 embeds retry state an uncached request would
        not reproduce — those responses must stay out of the cache."""
        plan = FaultPlan(seed=7, rules=(
            FaultRule(site="run", probability=1.0,
                      kernels=("TRIAD",), max_failures=1),
        ))

        async def scenario(server):
            raw = await raw_request(
                server.port, "POST", "/predict",
                {"kernel": "TRIAD", "deadline_ms": 10000},
            )
            return raw, server.respcache.stats()

        raw, stats = with_server(
            default_config(fault_plan=plan, retries=2), scenario
        )
        assert raw.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b'"attempts":2' in raw
        assert stats.stores == 0

    def test_sweeps_with_failures_bypass_the_cache(self):
        plan = FaultPlan(seed=11, rules=(
            FaultRule(site="run", probability=1.0, kernels=("TRIAD",)),
        ))

        async def scenario(server):
            raw = await raw_request(
                server.port, "POST", "/sweep",
                {"kernels": ["TRIAD", "DAXPY"], "threads": [8],
                 "deadline_ms": 10000},
            )
            return raw, len(server.respcache)

        raw, entries = with_server(
            default_config(fault_plan=plan, retries=1), scenario
        )
        assert raw.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b'"error_type"' in raw  # the failure list is populated
        assert entries == 0


class TestParkedDeadlineCostsNothing:
    def test_504_while_parked_consumes_no_engine_slot(self):
        """A deadline that expires inside the batch window returns 504
        and the job is cancelled before it ever reaches the engine: no
        admission slot stays held, no batch is dispatched for it."""

        async def scenario(server):
            raw = await raw_request(
                server.port, "POST", "/predict",
                {"kernel": "TRIAD", "deadline_ms": 30},
            )
            # Give the (still-open) window a beat: the cancelled job
            # must not turn into a batch behind our back.
            await asyncio.sleep(0.1)
            reg_lines = (await raw_request(
                server.port, "GET", "/metrics"
            )).decode().splitlines()
            lines = dict(
                line.rsplit(" ", 1)
                for line in reg_lines if " " in line
            )
            return raw, lines, server.admission.idle()

        raw, lines, idle = with_server(
            default_config(
                batch_window_ms=5000.0, adaptive_window=False
            ),
            scenario,
        )
        assert raw.startswith(b"HTTP/1.1 504 ")
        assert b'"code":"deadline_exceeded"' in raw
        assert idle  # the leader released its slot on timeout
        assert int(lines["counter serve.deadline_exceeded"]) == 1
        assert "counter serve.batches" not in lines
