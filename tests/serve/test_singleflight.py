"""Singleflight: identical concurrent misses share one engine job."""

import asyncio

import pytest

from repro.serve import PredictionServer, ServeConfig
from repro.serve.coalescer import PredictJob
from repro.serve.errors import Shed, Unavailable
from repro.serve.singleflight import SingleFlight

from tests.serve.helpers import http_request


def _job(loop, deadline=None):
    # The singleflight layer only touches .future and .deadline.
    return PredictJob(
        kernel=None, cpu=None, config=None,
        future=loop.create_future(), deadline=deadline,
    )


def run(coro):
    return asyncio.run(coro)


class TestFlightLifecycle:
    def test_leader_result_fans_out_to_waiters(self):
        async def main():
            sf = SingleFlight()
            flight, leads = sf.join("k")
            assert leads
            waiter_flight, waiter_leads = sf.join("k")
            assert waiter_flight is flight and not waiter_leads
            assert flight.waiters == 1 and flight.members == 2

            job = _job(asyncio.get_running_loop())
            sf.launch(flight, job)
            job.resolve("the-run")
            results = await asyncio.gather(
                flight.future, asyncio.shield(flight.future)
            )
            assert results == ["the-run", "the-run"]
            # Completed flights leave the registry; the next request
            # starts fresh (results are shared via the response cache).
            assert len(sf) == 0
            new_flight, new_leads = sf.join("k")
            assert new_leads and new_flight is not flight

        run(main())

    def test_engine_fault_fans_out_to_waiters(self):
        async def main():
            sf = SingleFlight()
            flight, _ = sf.join("k")
            sf.join("k")
            job = _job(asyncio.get_running_loop())
            sf.launch(flight, job)
            job.fail(Unavailable("boom"))
            with pytest.raises(Unavailable):
                await asyncio.shield(flight.future)
            assert len(sf) == 0

        run(main())

    def test_leader_admission_failure_propagates(self):
        async def main():
            sf = SingleFlight()
            flight, _ = sf.join("k")
            sf.join("k")
            sf.abort(flight, Shed("over watermark"))
            with pytest.raises(Shed):
                await flight.future
            assert len(sf) == 0

        run(main())

    def test_waiter_extends_a_parked_jobs_deadline(self):
        async def main():
            loop = asyncio.get_running_loop()
            sf = SingleFlight()
            flight, _ = sf.join("k")
            job = _job(loop, deadline=loop.time() + 0.05)
            sf.launch(flight, job)
            sf.join("k")
            far = loop.time() + 5.0
            flight.extend_deadline(far)
            assert job.deadline == far
            # A shorter deadline never shrinks it back.
            flight.extend_deadline(loop.time() + 0.01)
            assert job.deadline == far
            job.resolve("r")
            await flight.future

        run(main())

    def test_deadline_extension_before_launch_is_applied(self):
        async def main():
            loop = asyncio.get_running_loop()
            sf = SingleFlight()
            flight, _ = sf.join("k")
            far = loop.time() + 5.0
            flight.extend_deadline(far)  # job does not exist yet
            job = _job(loop, deadline=loop.time() + 0.05)
            sf.launch(flight, job)
            assert job.deadline == far
            job.resolve("r")
            await flight.future

        run(main())

    def test_last_member_leaving_cancels_a_parked_job(self):
        async def main():
            loop = asyncio.get_running_loop()
            sf = SingleFlight()
            flight, _ = sf.join("k")
            job = _job(loop)
            sf.launch(flight, job)
            sf.join("k")
            sf.leave(flight)  # leader timed out: job must survive
            assert not job.future.cancelled()
            sf.leave(flight)  # last waiter timed out: nobody is left
            assert job.future.cancelled()
            await asyncio.sleep(0)  # let callbacks run

        run(main())


class TestEndToEnd:
    def _with_server(self, config, scenario):
        async def main():
            server = PredictionServer(config)
            await server.start()
            try:
                return await scenario(server)
            finally:
                await server.drain()

        return asyncio.run(main())

    def _config(self, **overrides):
        base = dict(port=0, drain_timeout_s=2.0)
        base.update(overrides)
        return ServeConfig(**base)

    def test_identical_burst_is_one_engine_job(self):
        """Five identical concurrent misses: one leader, four merged
        waiters, one engine batch, five identical bodies — through a
        1-slot admission controller, because waiters hold no slot."""

        async def scenario(server):
            results = await asyncio.gather(*[
                http_request(
                    server.port, "POST", "/predict",
                    {"kernel": "TRIAD", "threads": 8,
                     "deadline_ms": 5000},
                    raw_body=b'{"kernel":"TRIAD","threads":8,'
                             b'"deadline_ms":5000}',
                )
                for _ in range(5)
            ])
            metrics = await http_request(
                server.port, "GET", "/metrics"
            )
            return results, metrics[2].decode()

        results, text = self._with_server(
            self._config(max_inflight=1, respcache_entries=0,
                         batch_window_ms=50.0, adaptive_window=False),
            scenario,
        )
        assert [status for status, _, _ in results] == [200] * 5
        bodies = {str(body) for _, _, body in results}
        assert len(bodies) == 1
        lines = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines() if " " in line
        )
        assert int(lines["counter serve.singleflight.merged"]) == 4
        assert int(lines["counter serve.batches"]) == 1
        assert "counter serve.shed" not in lines

    def test_waiter_deadline_expires_independently(self):
        """A short-deadline waiter 504s while the long-deadline leader
        still gets its 200 from the same flight."""

        async def scenario(server):
            leader = asyncio.create_task(http_request(
                server.port, "POST", "/predict",
                {"kernel": "TRIAD", "deadline_ms": 5000},
            ))
            await asyncio.sleep(0.05)  # leader is parked in the window
            waiter = asyncio.create_task(http_request(
                server.port, "POST", "/predict",
                {"kernel": "TRIAD", "deadline_ms": 20},
            ))
            return await asyncio.gather(leader, waiter)

        leader, waiter = self._with_server(
            self._config(batch_window_ms=300.0, adaptive_window=False,
                         respcache_entries=0),
            scenario,
        )
        assert leader[0] == 200
        assert waiter[0] == 504
        assert waiter[2]["error"]["code"] == "deadline_exceeded"

    def test_waiter_outlives_an_expired_leader(self):
        """A waiter with a longer deadline extends the shared job's
        parked expiry: the leader 504s, the waiter still gets 200."""

        async def scenario(server):
            leader = asyncio.create_task(http_request(
                server.port, "POST", "/predict",
                {"kernel": "TRIAD", "deadline_ms": 40},
            ))
            await asyncio.sleep(0.01)
            waiter = asyncio.create_task(http_request(
                server.port, "POST", "/predict",
                {"kernel": "TRIAD", "deadline_ms": 10_000},
            ))
            return await asyncio.gather(leader, waiter)

        leader, waiter = self._with_server(
            self._config(batch_window_ms=150.0, adaptive_window=False,
                         respcache_entries=0),
            scenario,
        )
        assert leader[0] == 504
        assert waiter[0] == 200
