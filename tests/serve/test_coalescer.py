"""Coalescer: batching, grouping, dedupe, deadline drops, faults."""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import telemetry
from repro.kernels.registry import get_kernel
from repro.machine import catalog
from repro.resilience.retry import FailurePolicy
from repro.serve.breaker import CircuitBreaker
from repro.serve.coalescer import (
    Coalescer,
    CoalescerConfig,
    EngineState,
    PredictJob,
)
from repro.serve.errors import DeadlineExceeded, EngineFault
from repro.suite.config import RunConfig
from repro.suite.runner import run_suite


def predict_jobs(loop, names, threads=4):
    cpu = catalog.sg2042()
    config = RunConfig(threads=threads, runs=1, noise_sigma=0.0)
    return [
        PredictJob(
            kernel=get_kernel(name), cpu=cpu, config=config,
            future=loop.create_future(),
        )
        for name in names
    ]


def run_coalesced(names, *, config=None, deadline_past=(),
                  breaker=None):
    """Submit one batch of jobs and return their future outcomes."""

    async def main():
        loop = asyncio.get_running_loop()
        jobs = predict_jobs(loop, names)
        for index in deadline_past:
            jobs[index].deadline = loop.time() - 1.0
        with ThreadPoolExecutor(max_workers=1) as executor:
            coalescer = Coalescer(
                EngineState(), executor,
                config or CoalescerConfig(window_s=0.01),
                breaker=breaker,
            )
            coalescer.start()
            for job in jobs:
                await coalescer.submit(job)
            results = await asyncio.gather(
                *(job.future for job in jobs), return_exceptions=True
            )
            await coalescer.stop()
        return results

    return asyncio.run(main())


class TestCoalescing:
    def test_one_window_one_engine_batch(self):
        with telemetry.telemetry_session() as (_, registry):
            results = run_coalesced(["TRIAD", "DAXPY", "GEMM"])
        assert [r.kernel_name for r in results] == [
            "TRIAD", "DAXPY", "GEMM"
        ]
        snapshot = registry.snapshot()
        assert snapshot.counters["serve.batches"] == 1
        assert snapshot.counters["serve.coalesced"] == 2

    def test_duplicate_kernels_deduped_into_one_run(self):
        with telemetry.telemetry_session() as (_, registry):
            results = run_coalesced(["TRIAD", "TRIAD", "TRIAD"])
        assert len({id(r) for r in results}) <= 3
        assert all(r.kernel_name == "TRIAD" for r in results)
        # One engine batch, one kernel actually run.
        snapshot = registry.snapshot()
        assert snapshot.counters["suite.kernel_runs"] == 1

    def test_results_match_direct_run_suite(self):
        cpu = catalog.sg2042()
        config = RunConfig(threads=4, runs=1, noise_sigma=0.0)
        direct = run_suite(
            cpu, config, kernels=[get_kernel("TRIAD")]
        ).runs["TRIAD"]
        (served,) = run_coalesced(["TRIAD"])
        assert served.seconds == direct.seconds
        assert served.prediction.serving_level == (
            direct.prediction.serving_level
        )

    def test_different_configs_get_separate_groups(self):
        async def main():
            loop = asyncio.get_running_loop()
            cpu = catalog.sg2042()
            jobs = [
                PredictJob(
                    kernel=get_kernel("TRIAD"), cpu=cpu,
                    config=RunConfig(threads=t, runs=1, noise_sigma=0.0),
                    future=loop.create_future(),
                )
                for t in (1, 8)
            ]
            with ThreadPoolExecutor(max_workers=1) as executor:
                coalescer = Coalescer(
                    EngineState(), executor,
                    CoalescerConfig(window_s=0.01),
                )
                coalescer.start()
                for job in jobs:
                    await coalescer.submit(job)
                results = await asyncio.gather(
                    *(job.future for job in jobs)
                )
                await coalescer.stop()
            return results

        with telemetry.telemetry_session() as (_, registry):
            one, eight = asyncio.run(main())
        cpu = catalog.sg2042()
        for threads, served in ((1, one), (8, eight)):
            direct = run_suite(
                cpu, RunConfig(threads=threads, runs=1,
                               noise_sigma=0.0),
                kernels=[get_kernel("TRIAD")],
            ).runs["TRIAD"]
            assert served.seconds == direct.seconds
        assert registry.snapshot().counters["serve.batches"] == 2


class TestRobustness:
    def test_expired_jobs_never_reach_the_engine(self):
        with telemetry.telemetry_session() as (_, registry):
            results = run_coalesced(
                ["TRIAD", "DAXPY"], deadline_past=(1,)
            )
        assert results[0].kernel_name == "TRIAD"
        assert isinstance(results[1], DeadlineExceeded)
        snapshot = registry.snapshot()
        assert snapshot.counters["serve.deadline_exceeded"] == 1
        assert snapshot.counters["suite.kernel_runs"] == 1

    def test_repeat_traffic_hits_the_prediction_memo(self):
        async def main(state):
            loop = asyncio.get_running_loop()
            with ThreadPoolExecutor(max_workers=1) as executor:
                coalescer = Coalescer(
                    state, executor, CoalescerConfig(window_s=0.005)
                )
                coalescer.start()
                for _ in range(2):
                    jobs = predict_jobs(loop, ["TRIAD", "GEMM"])
                    for job in jobs:
                        await coalescer.submit(job)
                    await asyncio.gather(*(j.future for j in jobs))
                    await asyncio.sleep(0.02)  # separate windows
                await coalescer.stop()

        state = EngineState()
        asyncio.run(main(state))
        assert state.aggregate_hit_rate() == pytest.approx(0.5)

    def test_breaker_hears_every_success(self):
        breaker = CircuitBreaker(failure_threshold=2)
        run_coalesced(["TRIAD", "DAXPY"], breaker=breaker)
        breaker.record_failure()  # streak was reset by the successes
        assert breaker.state.value == "closed"

    def test_whole_group_failure_faults_every_job(self):
        class ExplodingCaches:
            def caches_for(self, cpu):
                raise RuntimeError("engine blew up")

            def aggregate_hit_rate(self):
                return None

        async def main():
            loop = asyncio.get_running_loop()
            jobs = predict_jobs(loop, ["TRIAD", "DAXPY"])
            with ThreadPoolExecutor(max_workers=1) as executor:
                coalescer = Coalescer(
                    ExplodingCaches(), executor,
                    CoalescerConfig(window_s=0.01),
                )
                coalescer.start()
                for job in jobs:
                    await coalescer.submit(job)
                results = await asyncio.gather(
                    *(job.future for job in jobs),
                    return_exceptions=True,
                )
                await coalescer.stop()
            return results

        breaker_results = asyncio.run(main())
        assert all(
            isinstance(r, EngineFault) for r in breaker_results
        )
        assert all(
            r.details["error_type"] == "RuntimeError"
            for r in breaker_results
        )

    def test_exhausted_kernel_comes_back_as_engine_fault(self):
        """A kernel whose retries exhaust comes back as EngineFault
        carrying the FailureRecord summary, not a traceback."""
        from repro.resilience import chaos
        from repro.resilience.faults import FaultPlan, FaultRule

        plan = FaultPlan(seed=7, rules=(
            FaultRule(site="run", probability=1.0,
                      kernels=("TRIAD",)),
        ))
        with chaos.inject_faults(plan):
            results = run_coalesced(
                ["TRIAD", "DAXPY"],
                config=CoalescerConfig(
                    window_s=0.01, policy=FailurePolicy.RETRY,
                ),
            )
        fault, ok = results
        assert isinstance(fault, EngineFault)
        assert fault.details["error_type"] == "TransientError"
        assert fault.details["attempts"] == 3
        assert fault.details["fault_site"] == "run"
        assert "TRIAD" in str(fault)
        assert ok.kernel_name == "DAXPY"


class TestLifecycle:
    def test_submit_after_stop_fails_fast(self):
        async def main():
            loop = asyncio.get_running_loop()
            with ThreadPoolExecutor(max_workers=1) as executor:
                coalescer = Coalescer(EngineState(), executor)
                coalescer.start()
                await coalescer.stop()
                (job,) = predict_jobs(loop, ["TRIAD"])
                await coalescer.submit(job)
                return job.future.exception()

        exc = asyncio.run(main())
        assert exc is not None
        assert exc.code == "unavailable"

    def test_double_start_rejected(self):
        async def main():
            with ThreadPoolExecutor(max_workers=1) as executor:
                coalescer = Coalescer(EngineState(), executor)
                coalescer.start()
                try:
                    with pytest.raises(RuntimeError):
                        coalescer.start()
                finally:
                    await coalescer.stop()

        asyncio.run(main())
