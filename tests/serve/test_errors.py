"""Error envelopes: codes, statuses, retryability, no leaked internals."""

import json


from repro.resilience.retry import FailureRecord
from repro.serve.errors import (
    STATUS_BY_CODE,
    BadRequest,
    DeadlineExceeded,
    EngineFault,
    NotFound,
    ServeError,
    Shed,
    Unavailable,
    internal_error,
)
from repro.util.errors import ReproError


ALL_ERRORS = [BadRequest, NotFound, Shed, Unavailable,
              DeadlineExceeded, EngineFault]


class TestEnvelope:
    def test_every_code_has_a_status(self):
        for cls in ALL_ERRORS:
            assert cls.code in STATUS_BY_CODE
            assert cls("x").status == STATUS_BY_CODE[cls.code]

    def test_statuses(self):
        assert BadRequest("x").status == 400
        assert NotFound("x").status == 404
        assert Shed("x").status == 429
        assert EngineFault("x").status == 500
        assert Unavailable("x").status == 503
        assert DeadlineExceeded("x").status == 504

    def test_envelope_shape(self):
        exc = Shed("over watermark", retry_after_ms=250,
                   details={"depth": 64})
        env = exc.envelope()
        assert env == {"error": {
            "code": "shed",
            "message": "over watermark",
            "retryable": True,
            "retry_after_ms": 250,
            "details": {"depth": 64},
        }}

    def test_minimal_envelope_omits_optional_fields(self):
        env = BadRequest("nope").envelope()
        assert set(env["error"]) == {"code", "message", "retryable"}

    def test_envelopes_are_json_serializable(self):
        for cls in ALL_ERRORS:
            json.dumps(cls("msg").envelope())

    def test_retryability_split(self):
        retryable = {Shed, Unavailable, DeadlineExceeded, EngineFault}
        for cls in ALL_ERRORS:
            assert cls.retryable is (cls in retryable)

    def test_serve_errors_are_repro_errors(self):
        for cls in ALL_ERRORS:
            assert issubclass(cls, ServeError)
            assert issubclass(cls, ReproError)


class TestEngineFault:
    def test_from_failure_carries_summary(self):
        record = FailureRecord(
            kernel="TRIAD", error_type="TransientError",
            message="flake", attempts=3, site="run",
        )
        exc = EngineFault.from_failure(record)
        assert "TRIAD" in str(exc)
        assert exc.details == {
            "error_type": "TransientError",
            "attempts": 3,
            "fault_site": "run",
        }

    def test_from_failure_without_site(self):
        record = FailureRecord(
            kernel="GEMM", error_type="SimulationError",
            message="boom", attempts=1,
        )
        assert "fault_site" not in EngineFault.from_failure(record).details

    def test_from_exception(self):
        exc = EngineFault.from_exception(ValueError("bad"))
        assert exc.details["error_type"] == "ValueError"
        assert "bad" in str(exc)

    def test_internal_error_leaks_nothing(self):
        exc = internal_error()
        env = exc.envelope()
        assert env["error"]["message"] == "internal error"
        assert env["error"]["details"] == {"error_type": "internal"}


class TestRetryAfter:
    def test_default_none(self):
        assert BadRequest("x").retry_after_ms is None

    def test_envelope_carries_int(self):
        exc = Unavailable("x", retry_after_ms=1500.0)
        assert exc.envelope()["error"]["retry_after_ms"] == 1500
        assert isinstance(
            exc.envelope()["error"]["retry_after_ms"], int
        )
