"""Response cache unit behaviour: keys, LRU, tiers, pre-serialization."""

import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.machine import catalog
from repro.serve import http
from repro.serve.respcache import (
    CachedResponse,
    RESPONSES_NAMESPACE,
    ResponseCache,
    config_digest,
    explain_key,
    predict_key,
    sweep_key,
)
from repro.store import ArtifactStore, StoreWarning, jsonable_parts
from repro.suite.config import Placement, Precision, RunConfig
from repro.util.errors import ConfigError

_SRC = str(Path(__file__).resolve().parents[2] / "src")

_KEY_SCRIPT = (
    "from repro.machine import catalog;"
    "from repro.serve.respcache import predict_key;"
    "from repro.suite.config import RunConfig;"
    "cfg = RunConfig(threads=8, precision='fp32', placement='cyclic',"
    "                runs=1, noise_sigma=0.0);"
    "print(predict_key(catalog.sg2042(), cfg, 'TRIAD'))"
)


def _serving_config(**overrides):
    base = dict(runs=1, noise_sigma=0.0)
    base.update(overrides)
    return RunConfig(**base)


class TestKeys:
    def test_config_digest_is_content_addressed(self):
        assert config_digest(_serving_config()) == config_digest(
            _serving_config()
        )
        assert config_digest(_serving_config()) != config_digest(
            _serving_config(threads=2)
        )
        assert config_digest(_serving_config()) != config_digest(
            _serving_config(flavor="vla")
        )
        assert config_digest(_serving_config()) != config_digest(
            _serving_config(rollback=True)
        )

    def test_predict_key_separates_endpoints_machines_kernels(self):
        sg = catalog.sg2042()
        cfg = _serving_config()
        key = predict_key(sg, cfg, "TRIAD")
        assert key != predict_key(sg, cfg, "DAXPY")
        assert key != explain_key(sg, "TRIAD")
        others = [
            cpu for name, cpu in catalog.all_cpus().items()
            if name != "sg2042"
        ]
        assert key != predict_key(others[0], cfg, "TRIAD")

    def test_sweep_key_preserves_request_order(self):
        # /sweep bodies list points in request order, so ordering is
        # part of the identity — two orderings are two entries.
        sg = catalog.sg2042()
        axes = ([1, 8], [Placement.BLOCK], [Precision.FP64])
        assert sweep_key(sg, ["TRIAD", "DAXPY"], *axes) != sweep_key(
            sg, ["DAXPY", "TRIAD"], *axes
        )
        assert sweep_key(sg, ["TRIAD"], [1, 8], [Placement.BLOCK],
                         [Precision.FP64]) != sweep_key(
            sg, ["TRIAD"], [8, 1], [Placement.BLOCK], [Precision.FP64]
        )

    def test_key_is_stable_across_processes_and_hash_seeds(self):
        cfg = _serving_config(
            threads=8, precision="fp32", placement="cyclic"
        )
        key = str(predict_key(catalog.sg2042(), cfg, "TRIAD"))
        for seed in ("0", "424242"):
            env = dict(
                os.environ, PYTHONPATH=_SRC, PYTHONHASHSEED=seed
            )
            proc = subprocess.run(
                [sys.executable, "-c", _KEY_SCRIPT],
                capture_output=True, text=True, env=env, check=True,
            )
            assert proc.stdout.strip() == key


class TestCachedResponse:
    def test_head_matches_write_response_exactly(self):
        """A cached hit must put the same bytes on the wire as the
        render path it replaces."""

        class _Collector:
            def __init__(self):
                self.data = b""

            def write(self, chunk):
                self.data += chunk

        body = http.json_body({"kernel": "TRIAD", "seconds": 0.125})
        cached = CachedResponse.for_body(body)
        for keep_alive in (True, False):
            writer = _Collector()
            # The fresh path emits the same ETag header, so the wire
            # bytes of a hit and a render stay identical.
            http.write_response(writer, 200, body,
                                keep_alive=keep_alive,
                                extra_headers={"ETag": cached.etag})
            assert cached.head(keep_alive) + cached.body == writer.data

    def test_content_length_is_precomputed(self):
        body = b'{"a":1}'
        cached = CachedResponse.for_body(body)
        assert f"Content-Length: {len(body)}".encode() in cached.head_keep
        assert len(cached) == len(body)


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ResponseCache()
        key = ("predict", "1", "d", ("TRIAD",))
        assert cache.get(key) is None
        cache.put(key, b'{"x":1}')
        hit = cache.get(key)
        assert hit is not None and hit.body == b'{"x":1}'
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_lru_evicts_oldest_entry_first(self):
        cache = ResponseCache(max_entries=2)
        cache.put(("a",), b"1")
        cache.put(("b",), b"2")
        assert cache.get(("a",)) is not None  # touch: a is now newest
        cache.put(("c",), b"3")  # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.get(("c",)) is not None
        assert cache.stats().evictions == 1

    def test_byte_budget_bounds_the_cache(self):
        cache = ResponseCache(max_entries=100, max_bytes=10)
        cache.put(("a",), b"x" * 6)
        cache.put(("b",), b"y" * 6)  # 12 bytes > 10: evicts a
        assert cache.get(("a",)) is None
        assert cache.get(("b",)) is not None
        assert cache.stats().bytes <= 10

    def test_oversized_body_is_never_cached(self):
        cache = ResponseCache(max_bytes=4)
        cache.put(("a",), b"x" * 5)
        assert len(cache) == 0

    def test_put_is_idempotent_per_key(self):
        cache = ResponseCache()
        cache.put(("a",), b"1")
        cache.put(("a",), b"1")
        assert cache.stats().stores == 1

    def test_zero_entries_disables_everything(self):
        cache = ResponseCache(max_entries=0)
        assert not cache.enabled
        cache.put(("a",), b"1")
        assert cache.get(("a",)) is None
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.stores) == (0, 0, 0)

    def test_invalid_caps_are_config_errors(self):
        with pytest.raises(ConfigError):
            ResponseCache(max_entries=-1)
        with pytest.raises(ConfigError):
            ResponseCache(max_bytes=0)


class TestDiskTier:
    def test_round_trips_through_the_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = predict_key(
            catalog.sg2042(), _serving_config(), "TRIAD"
        )
        writer = ResponseCache(store=store)
        body = http.json_body({"kernel": "TRIAD", "seconds": 0.25})
        writer.put(key, body)
        # A fresh cache (fresh process, conceptually) restores from
        # disk and promotes into memory.
        reader = ResponseCache(store=store)
        hit = reader.get(key)
        assert hit is not None
        assert hit.body == body
        assert reader.stats().disk_hits == 1
        assert reader.get(key) is not None
        assert reader.stats().hits == 1  # second read: memory tier

    def test_malformed_disk_payload_degrades_to_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = ("predict", "1", "d", ("TRIAD",))
        store.put(
            RESPONSES_NAMESPACE, tuple(jsonable_parts(key)),
            {"payload_version": 1, "status": 200, "body": 42,
             "content_type": "application/json"},
        )
        cache = ResponseCache(store=store)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert cache.get(key) is None
        assert any(
            issubclass(w.category, StoreWarning) for w in caught
        )

    def test_unknown_payload_version_degrades_to_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = ("predict", "1", "d", ("TRIAD",))
        store.put(
            RESPONSES_NAMESPACE, tuple(jsonable_parts(key)),
            {"payload_version": 999, "status": 200, "body": "{}",
             "content_type": "application/json"},
        )
        cache = ResponseCache(store=store)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert cache.get(key) is None
        assert any(
            issubclass(w.category, StoreWarning) for w in caught
        )
