"""Startup pre-warm: /readyz gates on it; answers stay identical."""

import asyncio
import threading

from repro.kernels.registry import get_kernel
from repro.machine import catalog
from repro.serve import PredictionServer, ServeConfig
from repro.store import ArtifactStore
from repro.store.warm import warm_store
from repro.suite.config import RunConfig
from repro.suite.runner import run_suite

from tests.serve.helpers import http_request


def with_server(config, scenario):
    async def main():
        server = PredictionServer(config)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.drain()

    return asyncio.run(main())


def store_config(tmp_path, **overrides):
    base = dict(
        port=0, drain_timeout_s=2.0,
        store_path=str(tmp_path / "store"),
    )
    base.update(overrides)
    return ServeConfig(**base)


async def _await_ready(server, attempts=200):
    for _ in range(attempts):
        status, _, body = await http_request(
            server.port, "GET", "/readyz"
        )
        if status == 200:
            return status, body
        await asyncio.sleep(0.02)
    return status, body  # pragma: no cover - timeout diagnostics


class TestReadyGating:
    def test_readyz_is_503_until_prewarm_completes(
        self, tmp_path, monkeypatch
    ):
        release = threading.Event()

        def blocked_warm(caches, cpu, kernels=None, config=None,
                         combos=None):
            assert release.wait(10)
            return 64

        # The worker imports warm_caches at call time, so patching the
        # module attribute intercepts it deterministically.
        monkeypatch.setattr(
            "repro.store.warm.warm_caches", blocked_warm
        )

        async def scenario(server):
            not_ready = await http_request(
                server.port, "GET", "/readyz"
            )
            health = await http_request(server.port, "GET", "/healthz")
            release.set()
            ready = await _await_ready(server)
            return not_ready, health, ready

        not_ready, health, ready = with_server(
            store_config(tmp_path), scenario
        )
        status, headers, body = not_ready
        assert status == 503
        assert body["error"]["code"] == "unavailable"
        assert "pre-warming" in body["error"]["message"]
        assert headers["retry-after"] == "1"
        # Liveness is independent of readiness: the process is up.
        assert health[0] == 200
        assert ready[0] == 200 and ready[1]["status"] == "ready"

    def test_no_store_is_ready_immediately(self):
        async def scenario(server):
            return await http_request(server.port, "GET", "/readyz")

        status, _, body = with_server(
            ServeConfig(port=0, drain_timeout_s=2.0), scenario
        )
        assert status == 200 and body["status"] == "ready"

    def test_prewarm_disabled_is_ready_immediately(self, tmp_path):
        async def scenario(server):
            return await http_request(server.port, "GET", "/readyz")

        status, _, body = with_server(
            store_config(tmp_path, prewarm=False), scenario
        )
        assert status == 200

    def test_unknown_prewarm_cpu_becomes_ready_anyway(self, tmp_path):
        # Pre-warm failure is never fatal: the server warns, counts the
        # error and serves cold rather than staying unready forever.
        async def scenario(server):
            return await _await_ready(server)

        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            status, body = with_server(
                store_config(tmp_path, prewarm_cpus=("nonesuch",)),
                scenario,
            )
        assert status == 200 and body["status"] == "ready"


class TestWarmAnswers:
    def test_prewarmed_server_matches_direct_engine_output(
        self, tmp_path
    ):
        store = ArtifactStore(tmp_path / "store")
        warm_store(store, catalog.sg2042())

        async def scenario(server):
            await _await_ready(server)
            response = await http_request(
                server.port, "POST", "/predict",
                {"kernel": "GEMM", "threads": 16,
                 "placement": "cluster", "precision": "fp32"},
            )
            metrics = await http_request(
                server.port, "GET", "/metrics"
            )
            return response, metrics

        response, metrics = with_server(
            store_config(tmp_path), scenario
        )
        status, _, body = response
        assert status == 200
        direct = run_suite(
            catalog.sg2042(),
            RunConfig(threads=16, placement="cluster",
                      precision="fp32", runs=1, noise_sigma=0.0),
            kernels=[get_kernel("GEMM")],
        ).runs["GEMM"]
        assert body["seconds"] == direct.seconds

        lines = dict(
            line.rsplit(" ", 1)
            for line in metrics[2].decode().splitlines() if " " in line
        )
        assert int(lines["counter serve.prewarm_kernels"]) >= 64
        assert lines["gauge serve.ready"] == "1"
