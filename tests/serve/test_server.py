"""End-to-end tests of the prediction service over real sockets."""

import asyncio

import pytest

from repro.kernels.registry import get_kernel
from repro.machine import catalog
from repro.resilience.faults import FaultPlan, FaultRule
from repro.serve import PredictionServer, ServeConfig
from repro.suite.config import RunConfig
from repro.suite.runner import run_suite

from tests.serve.helpers import http_request, request_on


def with_server(config, scenario):
    """Start a server on an ephemeral port, run ``scenario(server)``,
    always drain. Returns the scenario's result."""

    async def main():
        server = PredictionServer(config)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.drain()

    return asyncio.run(main())


def default_config(**overrides):
    base = dict(port=0, drain_timeout_s=2.0)
    base.update(overrides)
    return ServeConfig(**base)


class TestHealth:
    def test_healthz_and_readyz(self):
        async def scenario(server):
            health = await http_request(server.port, "GET", "/healthz")
            ready = await http_request(server.port, "GET", "/readyz")
            return health, ready

        health, ready = with_server(default_config(), scenario)
        assert health[0] == 200 and health[2] == {"status": "ok"}
        assert ready[0] == 200
        assert ready[2]["breaker"] == "closed"

    def test_unknown_route_404(self):
        async def scenario(server):
            return await http_request(server.port, "GET", "/nope")

        status, _, body = with_server(default_config(), scenario)
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_wrong_method_400(self):
        async def scenario(server):
            return await http_request(server.port, "GET", "/predict")

        status, _, body = with_server(default_config(), scenario)
        assert status == 400
        assert body["error"]["code"] == "bad_request"


class TestPredict:
    def test_matches_direct_engine_output(self):
        async def scenario(server):
            return await http_request(
                server.port, "POST", "/predict",
                {"kernel": "GEMM", "threads": 16,
                 "placement": "cluster", "precision": "fp32"},
            )

        status, _, body = with_server(default_config(), scenario)
        assert status == 200
        direct = run_suite(
            catalog.sg2042(),
            RunConfig(threads=16, placement="cluster",
                      precision="fp32", runs=1, noise_sigma=0.0),
            kernels=[get_kernel("GEMM")],
        ).runs["GEMM"]
        assert body["seconds"] == direct.seconds
        assert body["serving_level"] == direct.prediction.serving_level
        assert body["bound"] == direct.prediction.bound
        assert body["cpu"] == catalog.sg2042().name

    def test_concurrent_requests_coalesce(self):
        async def scenario(server):
            results = await asyncio.gather(*[
                http_request(server.port, "POST", "/predict",
                             {"kernel": name, "threads": 8})
                for name in ("TRIAD", "DAXPY", "GEMM", "DOT")
            ])
            metrics = await http_request(server.port, "GET", "/metrics")
            return results, metrics

        # A fixed window makes the batching deterministic; under the
        # (default) adaptive window a cold start dispatches eagerly.
        results, metrics = with_server(
            default_config(batch_window_ms=30.0, adaptive_window=False),
            scenario,
        )
        assert all(status == 200 for status, _, _ in results)
        text = metrics[2].decode()
        lines = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines() if " " in line
        )
        assert int(lines["counter serve.coalesced"]) >= 1
        assert int(lines["counter serve.batches"]) < 4

    def test_unknown_kernel_404(self):
        async def scenario(server):
            return await http_request(
                server.port, "POST", "/predict", {"kernel": "NOPE"}
            )

        status, _, body = with_server(default_config(), scenario)
        assert status == 404
        assert "NOPE" in body["error"]["message"]

    def test_invalid_config_400(self):
        async def scenario(server):
            return await http_request(
                server.port, "POST", "/predict",
                {"kernel": "TRIAD", "threads": -2},
            )

        status, _, body = with_server(default_config(), scenario)
        assert status == 400
        assert body["error"]["retryable"] is False

    def test_malformed_json_400(self):
        async def scenario(server):
            return await http_request(
                server.port, "POST", "/predict", raw_body=b"{nope",
            )

        status, _, body = with_server(default_config(), scenario)
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_microscopic_deadline_504(self):
        async def scenario(server):
            return await http_request(
                server.port, "POST", "/predict",
                {"kernel": "GEMM", "deadline_ms": 0.001},
            )

        status, _, body = with_server(
            default_config(batch_window_ms=20.0), scenario
        )
        assert status == 504
        assert body["error"]["code"] == "deadline_exceeded"
        assert body["error"]["retryable"] is True


class TestSweepAndExplain:
    def test_sweep_long_format(self):
        async def scenario(server):
            return await http_request(
                server.port, "POST", "/sweep",
                {"kernels": ["TRIAD", "DAXPY"], "threads": [1, 8],
                 "placements": ["cluster"], "precisions": ["fp32"],
                 "deadline_ms": 30000},
            )

        status, _, body = with_server(default_config(), scenario)
        assert status == 200
        assert len(body["points"]) == 4
        assert body["failures"] == []
        kernels = {p["kernel"] for p in body["points"]}
        assert kernels == {"TRIAD", "DAXPY"}

    def test_oversized_sweep_rejected(self):
        async def scenario(server):
            return await http_request(
                server.port, "POST", "/sweep",
                {"kernels": ["TRIAD"],
                 "threads": list(range(1, 600)),
                 "placements": ["cluster"], "precisions": ["fp32"]},
            )

        status, _, body = with_server(default_config(), scenario)
        assert status == 400
        assert "caps" in body["error"]["message"]

    def test_explain(self):
        async def scenario(server):
            return await http_request(
                server.port, "POST", "/explain",
                {"kernel": "TRIAD", "deadline_ms": 30000},
            )

        status, _, body = with_server(default_config(), scenario)
        assert status == 200
        assert body["kernel"] == "TRIAD"
        assert "TRIAD" in body["explanation"]


class TestBackpressure:
    def test_overload_sheds_with_retry_after(self):
        """With a 1-request watermark and a wide batch window, a burst
        must shed all but one request — with structured 429s.

        The kernels are distinct on purpose: identical concurrent
        requests would legitimately merge into one singleflight leader
        and never need a second admission slot (see
        ``tests/serve/test_singleflight.py``)."""

        async def scenario(server):
            return await asyncio.gather(*[
                http_request(server.port, "POST", "/predict",
                             {"kernel": name, "deadline_ms": 5000})
                for name in ("TRIAD", "DAXPY", "GEMM", "DOT", "COPY",
                             "ADD")
            ])

        results = with_server(
            default_config(max_inflight=1, batch_window_ms=100.0),
            scenario,
        )
        statuses = sorted(status for status, _, _ in results)
        assert statuses.count(200) >= 1
        assert statuses.count(429) >= 1
        assert set(statuses) <= {200, 429}
        for status, headers, body in results:
            if status == 429:
                assert body["error"]["code"] == "shed"
                assert body["error"]["retryable"] is True
                assert int(headers["retry-after"]) >= 1

    def test_keep_alive_connection_reuse(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                first = await request_on(
                    reader, writer, "GET", "/healthz"
                )
                second = await request_on(
                    reader, writer, "POST", "/predict",
                    {"kernel": "TRIAD"},
                )
            finally:
                writer.close()
                await writer.wait_closed()
            return first, second

        first, second = with_server(default_config(), scenario)
        assert first[0] == 200
        assert second[0] == 200
        assert second[2]["kernel"] == "TRIAD"


class TestChaosAndBreaker:
    def plan(self):
        """Every TRIAD run attempt fails, other kernels are clean."""
        return FaultPlan(seed=11, rules=(
            FaultRule(site="run", probability=1.0,
                      kernels=("TRIAD",)),
        ))

    def test_engine_fault_envelope_under_chaos(self):
        async def scenario(server):
            fault = await http_request(
                server.port, "POST", "/predict",
                {"kernel": "TRIAD", "deadline_ms": 10000},
            )
            clean = await http_request(
                server.port, "POST", "/predict",
                {"kernel": "DAXPY", "deadline_ms": 10000},
            )
            return fault, clean

        fault, clean = with_server(
            default_config(fault_plan=self.plan(), retries=1),
            scenario,
        )
        assert fault[0] == 500
        assert fault[2]["error"]["code"] == "engine_fault"
        assert fault[2]["error"]["details"]["fault_site"] == "run"
        assert "Traceback" not in str(fault[2])
        assert clean[0] == 200

    def test_breaker_opens_half_opens_and_closes(self):
        """The satellite scenario: consecutive injected faults open the
        breaker (503 + Retry-After), the cooldown half-opens it, and a
        clean probe closes it again."""

        async def scenario(server):
            # 2 faulting requests (sequential: distinct batches) trip
            # the threshold-2 breaker.
            for _ in range(2):
                status, _, body = await http_request(
                    server.port, "POST", "/predict",
                    {"kernel": "TRIAD", "deadline_ms": 10000},
                )
                assert status == 500, body
            # OPEN: requests are refused before touching the engine,
            # and readiness reports unavailable.
            rejected = await http_request(
                server.port, "POST", "/predict",
                {"kernel": "DAXPY", "deadline_ms": 10000},
            )
            not_ready = await http_request(
                server.port, "GET", "/readyz"
            )
            # Wait out the cooldown; the next clean request is the
            # half-open probe and closes the breaker.
            await asyncio.sleep(0.25)
            probe = await http_request(
                server.port, "POST", "/predict",
                {"kernel": "DAXPY", "deadline_ms": 10000},
            )
            ready = await http_request(server.port, "GET", "/readyz")
            return rejected, not_ready, probe, ready, server

        rejected, not_ready, probe, ready, server = with_server(
            default_config(
                fault_plan=self.plan(), retries=0,
                breaker_threshold=2, breaker_cooldown_s=0.2,
            ),
            scenario,
        )
        assert rejected[0] == 503
        assert rejected[1]["retry-after"] >= "1"
        assert rejected[2]["error"]["code"] == "unavailable"
        assert not_ready[0] == 503
        assert probe[0] == 200
        assert ready[0] == 200
        transitions = server.breaker.transitions
        assert ("closed", "open") in transitions
        assert ("open", "half_open") in transitions
        assert ("half_open", "closed") in transitions

    def test_no_unhandled_errors_under_chaos(self):
        async def scenario(server):
            await asyncio.gather(*[
                http_request(
                    server.port, "POST", "/predict",
                    {"kernel": kernel, "deadline_ms": 10000},
                )
                for kernel in ("TRIAD", "DAXPY", "GEMM") * 3
            ])
            return server

        server = with_server(
            default_config(fault_plan=self.plan(), retries=0,
                           breaker_threshold=50),
            scenario,
        )
        counters = server.final_summary.counters
        assert counters.get("serve.unhandled_errors", 0) == 0
        assert counters.get("serve.engine_faults", 0) >= 1


class TestMetricsAndDrain:
    def test_metrics_exposes_the_ops_surface(self):
        async def scenario(server):
            for _ in range(3):
                await http_request(
                    server.port, "POST", "/predict",
                    {"kernel": "TRIAD", "threads": 8},
                )
            status, _, raw = await http_request(
                server.port, "GET", "/metrics"
            )
            return status, raw.decode()

        status, text = with_server(default_config(), scenario)
        assert status == 200
        for metric in (
            "counter serve.requests",
            "counter serve.batches",
            "gauge serve.queue_depth",
            "gauge serve.breaker_state",
            "gauge serve.latency_p50_ms",
            "gauge serve.latency_p99_ms",
            "gauge serve.cache_hit_rate",
        ):
            assert metric in text, f"{metric} missing from:\n{text}"

    def test_repeat_traffic_reports_cache_hits(self):
        """With the response cache disabled, repeats still reach the
        engine and the prediction-memo hit rate is reported."""

        async def scenario(server):
            for _ in range(4):
                await http_request(
                    server.port, "POST", "/predict",
                    {"kernel": "TRIAD", "threads": 8},
                )
            _, _, raw = await http_request(
                server.port, "GET", "/metrics"
            )
            return raw.decode()

        text = with_server(
            default_config(respcache_entries=0), scenario
        )
        (rate_line,) = [
            line for line in text.splitlines()
            if "serve.cache_hit_rate" in line
        ]
        assert float(rate_line.rsplit(" ", 1)[1]) == pytest.approx(0.75)

    def test_repeat_traffic_hits_the_response_cache(self):
        """By default, repeats are served from the response cache: one
        miss, three pre-serialized hits."""

        async def scenario(server):
            for _ in range(4):
                await http_request(
                    server.port, "POST", "/predict",
                    {"kernel": "TRIAD", "threads": 8},
                )
            _, _, raw = await http_request(
                server.port, "GET", "/metrics"
            )
            return raw.decode(), server.respcache.stats()

        text, stats = with_server(default_config(), scenario)
        assert stats.hits == 3
        assert stats.misses == 1
        (rate_line,) = [
            line for line in text.splitlines()
            if "serve.respcache.hit_rate" in line
        ]
        assert float(rate_line.rsplit(" ", 1)[1]) == pytest.approx(0.75)

    def test_drain_rejects_new_work_and_captures_summary(self):
        async def main():
            server = PredictionServer(default_config())
            await server.start()
            port = server.port
            ok = await http_request(port, "POST", "/predict",
                                    {"kernel": "TRIAD"})
            await server.drain()
            # The socket is closed after drain: new connections fail.
            with pytest.raises(OSError):
                await http_request(port, "GET", "/healthz")
            return ok, server

        ok, server = asyncio.run(main())
        assert ok[0] == 200
        summary = server.final_summary
        assert summary is not None
        assert summary.counters.get("serve.requests") == 1
        assert summary.counters.get("serve.unhandled_errors", 0) == 0
        assert summary.gauges.get("serve.draining") == 1

    def test_drain_is_idempotent(self):
        async def main():
            server = PredictionServer(default_config())
            await server.start()
            await server.drain()
            await server.drain()

        asyncio.run(main())

    def test_server_restores_previous_telemetry(self):
        from repro import telemetry

        before = telemetry.recorder(), telemetry.metrics()

        async def main():
            server = PredictionServer(default_config())
            await server.start()
            assert telemetry.recorder() is not before[0]
            await server.drain()

        asyncio.run(main())
        assert telemetry.recorder() is before[0]
        assert telemetry.metrics() is before[1]
