"""The machine registry endpoints and HTTP conditional requests."""

import asyncio

from repro.machine.serialize import cpu_to_dict
from repro.registry import default_registry
from repro.serve import PredictionServer, ServeConfig
from repro.serve.respcache import etag_matches, response_etag
from repro.suite.memo import machine_digest

from tests.serve.helpers import http_request


def with_server(config, scenario):
    async def main():
        server = PredictionServer(config)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.drain()

    return asyncio.run(main())


def default_config(**overrides):
    base = dict(port=0, drain_timeout_s=2.0)
    base.update(overrides)
    return ServeConfig(**base)


def machine_envelope(name="custom_sg2042", clock=2.2e9):
    doc = cpu_to_dict(default_registry().machine("sg2042"))
    doc["name"] = "Custom SG2042"
    doc["core"] = dict(doc["core"], clock_hz=clock)
    return {"schema": "repro.machine/v1", "name": name, "doc": doc}


class TestMachinesList:
    def test_lists_registry_machines_with_digests(self):
        async def scenario(server):
            return await http_request(server.port, "GET", "/machines")

        status, headers, body = with_server(default_config(), scenario)
        assert status == 200
        names = {m["name"] for m in body["machines"]}
        assert {"sg2042", "sophon_sg2044", "sg2042_2s"} <= names
        by_name = {m["name"]: m for m in body["machines"]}
        expected = str(machine_digest(default_registry().machine("sg2042")))
        assert by_name["sg2042"]["digest"] == expected
        assert "etag" in headers

    def test_registry_machines_usable_in_predict(self):
        async def scenario(server):
            return await http_request(
                server.port, "POST", "/predict",
                {"kernel": "TRIAD", "cpu": "sg2042_2s", "threads": 128,
                 "precision": "fp32"},
            )

        status, _, body = with_server(default_config(), scenario)
        assert status == 200
        assert body["cpu"] == "Sophon SG2042 2S"

    def test_wrong_method_400(self):
        async def scenario(server):
            return await http_request(server.port, "PUT", "/machines")

        status, _, body = with_server(default_config(), scenario)
        assert status == 400


class TestRegistration:
    def test_register_validates_and_serves(self):
        async def scenario(server):
            created = await http_request(
                server.port, "POST", "/machines", machine_envelope()
            )
            predict = await http_request(
                server.port, "POST", "/predict",
                {"kernel": "TRIAD", "cpu": "custom_sg2042",
                 "threads": 8},
            )
            listed = await http_request(server.port, "GET", "/machines")
            return created, predict, listed

        created, predict, listed = with_server(default_config(), scenario)
        assert created[0] == 201
        assert created[2]["status"] == "registered"
        assert predict[0] == 200
        assert predict[2]["cpu"] == "Custom SG2042"
        assert "custom_sg2042" in {
            m["name"] for m in listed[2]["machines"]
        }

    def test_idempotent_reregistration(self):
        async def scenario(server):
            first = await http_request(
                server.port, "POST", "/machines", machine_envelope()
            )
            second = await http_request(
                server.port, "POST", "/machines", machine_envelope()
            )
            return first, second

        first, second = with_server(default_config(), scenario)
        assert first[0] == 201
        assert second[0] == 200
        assert second[2]["status"] == "unchanged"
        assert second[2]["digest"] == first[2]["digest"]

    def test_invalid_document_is_structured_400(self):
        envelope = machine_envelope()
        del envelope["doc"]["memory"]

        async def scenario(server):
            return await http_request(
                server.port, "POST", "/machines", envelope
            )

        status, _, body = with_server(default_config(), scenario)
        assert status == 400
        assert "missing field memory" in body["error"]["message"]

    def test_reregistration_invalidates_response_cache(self):
        async def scenario(server):
            await http_request(
                server.port, "POST", "/machines", machine_envelope()
            )
            req = {"kernel": "GEMM", "cpu": "custom_sg2042",
                   "threads": 4, "precision": "fp32"}
            cold = await http_request(server.port, "POST", "/predict",
                                      req)
            warm = await http_request(server.port, "POST", "/predict",
                                      req)
            # New document under the same name: different digest.
            await http_request(
                server.port, "POST", "/machines",
                machine_envelope(clock=2.4e9),
            )
            fresh = await http_request(server.port, "POST", "/predict",
                                       req)
            stats = server.respcache.stats()
            return cold, warm, fresh, stats

        cold, warm, fresh, stats = with_server(default_config(), scenario)
        assert cold[0] == warm[0] == fresh[0] == 200
        assert cold[2]["seconds"] == warm[2]["seconds"]
        # The faster clock must show through immediately.
        assert fresh[2]["seconds"] < cold[2]["seconds"]

    def test_invalidate_drops_memory_entries(self):
        async def scenario(server):
            req = {"kernel": "TRIAD", "threads": 4}
            await http_request(server.port, "POST", "/predict", req)
            digest = str(machine_digest(server._cpus["sg2042"]))
            dropped = server.respcache.invalidate(digest)
            return dropped, server.respcache.stats()

        dropped, stats = with_server(default_config(), scenario)
        assert dropped == 1
        assert stats.entries == 0


class TestConditionalRequests:
    def test_etag_on_fresh_and_cached_responses(self):
        async def scenario(server):
            req = {"kernel": "TRIAD", "threads": 4}
            fresh = await http_request(server.port, "POST", "/predict",
                                       req)
            cached = await http_request(server.port, "POST", "/predict",
                                        req)
            return fresh, cached

        fresh, cached = with_server(default_config(), scenario)
        assert fresh[1]["etag"] == cached[1]["etag"]
        assert fresh[1]["etag"].startswith('"')

    def test_if_none_match_returns_304(self):
        async def scenario(server):
            req = {"kernel": "TRIAD", "threads": 4}
            first = await http_request(server.port, "POST", "/predict",
                                       req)
            not_modified = await http_request(
                server.port, "POST", "/predict", req,
                headers={"If-None-Match": first[1]["etag"]},
            )
            from repro import telemetry

            counter = telemetry.metrics().counter(
                "serve.respcache.not_modified"
            ).value
            return first, not_modified, counter

        first, not_modified, counter = with_server(
            default_config(), scenario
        )
        assert not_modified[0] == 304
        assert not_modified[2] in (None, b"")
        assert not_modified[1]["etag"] == first[1]["etag"]
        assert counter == 1

    def test_stale_etag_gets_full_response(self):
        async def scenario(server):
            req = {"kernel": "TRIAD", "threads": 4}
            await http_request(server.port, "POST", "/predict", req)
            return await http_request(
                server.port, "POST", "/predict", req,
                headers={"If-None-Match": '"deadbeefdeadbeef"'},
            )

        status, headers, body = with_server(default_config(), scenario)
        assert status == 200
        assert body["kernel"] == "TRIAD"

    def test_if_none_match_star_matches(self):
        async def scenario(server):
            req = {"kernel": "TRIAD", "threads": 4}
            await http_request(server.port, "POST", "/predict", req)
            return await http_request(
                server.port, "POST", "/predict", req,
                headers={"If-None-Match": "*"},
            )

        status, _, _ = with_server(default_config(), scenario)
        assert status == 304


class TestEtagHelpers:
    def test_etag_is_content_addressed(self):
        assert response_etag(b"abc") == response_etag(b"abc")
        assert response_etag(b"abc") != response_etag(b"abd")

    def test_etag_matches_lists_and_star(self):
        etag = response_etag(b"abc")
        assert etag_matches(etag, etag)
        assert etag_matches(f'"other", {etag}', etag)
        assert etag_matches("*", etag)
        assert not etag_matches('"other"', etag)
        assert not etag_matches(None, etag)
        assert not etag_matches(etag, "")
