"""``repro warm`` core: idempotent, incremental store pre-population."""

import pytest

from repro.kernels.registry import all_kernels
from repro.store import ArtifactStore
from repro.store.warm import warm_caches, warm_store
from repro.suite.memo import SuiteCaches

KERNELS = tuple(all_kernels()[:4])


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestWarmStore:
    def test_first_warm_compiles_everything(self, store, sg2042):
        report = warm_store(store, sg2042, KERNELS)
        assert report.cpu == sg2042.name
        assert report.kernels == len(KERNELS)
        assert report.compiled == len(KERNELS)
        assert report.restored == 0
        assert report.failed == 0
        # Per-kernel artifacts + the suite composite, plus the SoA.
        assert store.artifact_count("compile") == len(KERNELS) + 1
        assert store.artifact_count("soa") == 1

    def test_rewarm_restores_instead_of_recompiling(self, store, sg2042):
        warm_store(store, sg2042, KERNELS)
        again = warm_store(store, sg2042, KERNELS)
        assert again.compiled == 0
        assert again.restored == len(KERNELS)

    def test_partial_warm_fills_only_the_gaps(self, store, sg2042):
        warm_store(store, sg2042, KERNELS[:2])
        report = warm_store(store, sg2042, KERNELS)
        # The two pre-warmed kernels restore individually; the full
        # suite composite did not exist yet, so the rest compile.
        assert report.compiled == len(KERNELS) - 2
        assert report.restored == 2

    def test_render_mentions_the_counts(self, store, sg2042):
        text = warm_store(store, sg2042, KERNELS).render()
        assert f"{len(KERNELS)} kernels" in text
        assert f"{len(KERNELS)} compiled" in text


class TestWarmCaches:
    def test_warms_the_memory_tier_from_disk(self, store, sg2042):
        warm_store(store, sg2042, KERNELS)
        caches = SuiteCaches.persistent(store)
        resolved = warm_caches(caches, sg2042, KERNELS)
        assert resolved == len(KERNELS)
        stats = caches.compile.stats
        assert stats.disk_hits == len(KERNELS)
        assert stats.misses == 0

    def test_cold_store_compiles(self, store, sg2042):
        caches = SuiteCaches.persistent(store)
        assert warm_caches(caches, sg2042, KERNELS) == len(KERNELS)
        assert caches.compile.stats.misses == len(KERNELS)
