"""PredictionMemo: persistent page tier + bounded in-memory tier."""

import pytest

from repro.perfmodel.execution import ExecutionResult
from repro.store import ArtifactStore, StoreWarning
from repro.suite.memo import MemoKeyPrefix, PredictionMemo

PREFIX = MemoKeyPrefix(12345, "block", "fp64", ("gcc", "8.4"))
OTHER_PREFIX = MemoKeyPrefix(12345, "cyclic", "fp64", ("gcc", "8.4"))


def _result(seconds):
    return ExecutionResult(seconds, seconds / 4, "L2", "memory", True)


def _key(name, size=1024, prefix=PREFIX):
    return (prefix, name, size)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestPersistentTier:
    def test_second_memo_restores_from_disk(self, store):
        first = PredictionMemo(store=store)
        first.put(_key("TRIAD"), _result(0.25))
        second = PredictionMemo(store=store)
        assert second.peek(_key("TRIAD")) == _result(0.25)
        assert second.disk_hits == 1
        assert second.hits == 0  # disk hits are counted separately
        # Now resident: the next peek is a memory hit, not a page read.
        assert second.peek(_key("TRIAD")) == _result(0.25)
        assert second.hits == 1 and second.disk_hits == 1

    def test_prefix_equality_is_by_content(self, store):
        PredictionMemo(store=store).put(_key("TRIAD"), _result(0.5))
        rebuilt = MemoKeyPrefix(12345, "block", "fp64", ("gcc", "8.4"))
        assert PredictionMemo(store=store).peek(
            (rebuilt, "TRIAD", 1024)
        ) == _result(0.5)

    def test_pages_partition_by_prefix(self, store):
        memo = PredictionMemo(store=store)
        memo.put(_key("TRIAD"), _result(0.25))
        memo.put(_key("TRIAD", prefix=OTHER_PREFIX), _result(0.75))
        assert store.artifact_count("predict") == 2
        fresh = PredictionMemo(store=store)
        assert fresh.peek(_key("TRIAD")) == _result(0.25)
        assert fresh.peek(
            _key("TRIAD", prefix=OTHER_PREFIX)
        ) == _result(0.75)

    def test_get_or_compute_prefers_disk_over_compute(self, store):
        PredictionMemo(store=store).put(_key("TRIAD"), _result(0.25))
        fresh = PredictionMemo(store=store)

        def compute():  # pragma: no cover - must not run
            raise AssertionError("recomputed a disk-resident entry")

        assert fresh.get_or_compute(
            _key("TRIAD"), compute
        ) == _result(0.25)

    def test_corrupt_page_degrades_to_recompute(self, store):
        PredictionMemo(store=store).put(_key("TRIAD"), _result(0.25))
        page = next((store.root / "predict").glob("*.json"))
        # Valid envelope, garbled payload: the codec layer must catch it.
        text = page.read_text().replace('"seconds":0.25', '"seconds":"x"')
        page.write_text(text)
        fresh = PredictionMemo(store=store)
        with pytest.warns(StoreWarning, match="prediction page"):
            assert fresh.peek(_key("TRIAD")) is None

    def test_clear_keeps_disk(self, store):
        memo = PredictionMemo(store=store)
        memo.put(_key("TRIAD"), _result(0.25))
        memo.clear()
        assert len(memo) == 0
        assert memo.peek(_key("TRIAD")) == _result(0.25)
        assert memo.disk_hits == 1


class TestBatchIO:
    def test_put_many_peek_many_round_trip(self, store):
        items = [
            (_key(name), _result(0.1 * (i + 1)))
            for i, name in enumerate(("TRIAD", "GEMM", "DAXPY"))
        ]
        memo = PredictionMemo(store=store)
        memo.put_many(items)
        assert memo.misses == 3
        fresh = PredictionMemo(store=store)
        keys = [key for key, _ in items] + [_key("STENCIL")]
        got = fresh.peek_many(keys)
        assert got == [result for _, result in items] + [None]
        assert fresh.disk_hits == 3

    def test_put_many_writes_one_page_per_prefix(self, store):
        memo = PredictionMemo(store=store)
        memo.put_many([
            (_key("TRIAD"), _result(0.1)),
            (_key("GEMM"), _result(0.2)),
            (_key("TRIAD", prefix=OTHER_PREFIX), _result(0.3)),
        ])
        stats = store.stats()["predict"]
        assert stats.puts == 2  # two prefixes touched, two page writes

    def test_peek_many_counters_match_sequential_peeks(self, store):
        items = [(_key(n), _result(0.5)) for n in ("TRIAD", "GEMM")]
        PredictionMemo(store=store).put_many(items)
        batched = PredictionMemo(store=store)
        batched.peek_many([k for k, _ in items])
        batched.peek_many([k for k, _ in items])
        sequential = PredictionMemo(store=store)
        for _ in range(2):
            for key, _ in items:
                sequential.peek(key)
        assert (batched.hits, batched.misses, batched.disk_hits) == (
            sequential.hits, sequential.misses, sequential.disk_hits
        )


class TestBoundedMemory:
    def test_lru_eviction_caps_entries(self):
        memo = PredictionMemo(max_entries=2)
        for i, name in enumerate(("A", "B", "C")):
            memo.put(_key(name), _result(1.0 + i))
        assert len(memo) == 2
        assert memo.evictions == 1
        assert memo.peek(_key("A")) is None  # oldest went first
        assert memo.peek(_key("C")) == _result(3.0)

    def test_hits_refresh_recency(self):
        memo = PredictionMemo(max_entries=2)
        memo.put(_key("A"), _result(1.0))
        memo.put(_key("B"), _result(2.0))
        memo.peek(_key("A"))  # A is now most recent; C must evict B
        memo.put(_key("C"), _result(3.0))
        assert memo.peek(_key("A")) == _result(1.0)
        assert memo.peek(_key("B")) is None

    def test_evicted_entries_survive_on_disk(self, store):
        memo = PredictionMemo(store=store, max_entries=1)
        memo.put(_key("A"), _result(1.0))
        memo.put(_key("B"), _result(2.0))
        assert memo.evictions == 1
        assert memo.peek(_key("A")) == _result(1.0)  # restored from page
        assert memo.disk_hits == 1

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            PredictionMemo(max_entries=0)
