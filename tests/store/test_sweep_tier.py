"""The whole-sweep artifact tier: one read restores a full grid.

The fastest warm tier: a failure-free sweep persists its complete
point list as one ``sweep`` artifact, and an identical later sweep
(same machine, kernels, axes, runs, noise, engine) restores it whole —
bit-identically, with ``restored=True`` provenance — instead of
recomputing. Anything that could perturb replay (checkpoints, chaos
plans, reference mode) bypasses the tier, and a damaged artifact
degrades to a warned recompute.
"""

import json
from dataclasses import replace

import pytest

from repro.kernels.registry import get_kernel
from repro.perfmodel import reference_mode
from repro.resilience import chaos
from repro.resilience.faults import FaultPlan
from repro.store import ArtifactStore, StoreWarning
from repro.store.warm import warm_store
from repro.suite.config import Placement, Precision
from repro.suite.memo import CacheCounters, SuiteCaches
from repro.suite.sweep import (
    SweepFailure,
    SweepResult,
    distributed_sweep,
    sweep,
)

KERNELS = (get_kernel("TRIAD"), get_kernel("GEMM"))
GRID = dict(
    threads=(1, 8),
    placements=(Placement.BLOCK, Placement.CYCLIC),
    precisions=(Precision.FP32,),
)


def _sweep(store, cpu, **overrides):
    kwargs = dict(GRID, caches=SuiteCaches.persistent(store))
    kwargs.update(overrides)
    return sweep(cpu, kernels=KERNELS, **kwargs)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture(scope="module")
def reference(sg2042):
    """The uncached scalar answer every warm path must reproduce."""
    return sweep(sg2042, kernels=KERNELS,
                 caches=SuiteCaches.disabled(), engine="scalar", **GRID)


def _artifact(store):
    files = list((store.root / "sweep").glob("*.json"))
    assert len(files) == 1
    return files[0]


class TestRestore:
    def test_priming_sweep_computes_and_persists(self, store, sg2042):
        result = _sweep(store, cpu=sg2042)
        assert not result.restored
        assert store.artifact_count("sweep") == 1

    def test_second_sweep_restores_bit_identically(
        self, store, sg2042, reference
    ):
        _sweep(store, cpu=sg2042)
        restored = _sweep(store, cpu=sg2042)
        assert restored.restored
        assert restored == reference  # points compare; provenance not
        assert [p.seconds for p in restored.points] == [
            p.seconds for p in reference.points
        ]

    def test_restored_counters_are_honest_zeros(self, store, sg2042):
        _sweep(store, cpu=sg2042)
        restored = _sweep(store, cpu=sg2042)
        # The caches were never consulted, and the counters say so.
        assert restored.cache_stats == CacheCounters()
        assert store.stats()["sweep"].hits == 1

    def test_restore_works_across_engines(self, store, sg2042, reference):
        _sweep(store, cpu=sg2042, engine="scalar")
        # Same grid, same engine: restored. The engine is part of the
        # key, so the batch request computes its own artifact instead
        # of trusting the scalar one's provenance.
        assert _sweep(store, cpu=sg2042, engine="scalar").restored
        batch = _sweep(store, cpu=sg2042, engine="batch")
        assert not batch.restored
        assert batch == reference

    def test_restored_flag_is_excluded_from_equality(
        self, store, sg2042
    ):
        result = _sweep(store, cpu=sg2042)
        assert replace(result, restored=True) == result

    def test_memory_only_caches_never_probe_the_tier(self, sg2042):
        result = sweep(sg2042, kernels=KERNELS, **GRID)
        assert not result.restored


class TestGridSensitivity:
    def test_subgrid_falls_back_to_the_page_tier(
        self, store, sg2042, reference
    ):
        warm_store(store, sg2042, KERNELS)
        _sweep(store, cpu=sg2042)
        sub = dict(GRID, threads=(8,))
        caches = SuiteCaches.persistent(store)
        result = sweep(sg2042, kernels=KERNELS, caches=caches, **sub)
        assert not result.restored  # different grid, different key
        assert result.points == tuple(
            p for p in reference.points if p.threads == 8
        )
        stats = caches.stats()
        assert stats.compile_misses == 0
        assert stats.predict_misses == 0
        assert stats.predict_disk_hits > 0

    def test_runs_and_noise_are_part_of_the_key(self, store, sg2042):
        _sweep(store, cpu=sg2042)
        noisy = _sweep(store, cpu=sg2042, runs=3, noise_sigma=0.05)
        assert not noisy.restored
        assert store.artifact_count("sweep") == 2


class TestDegradation:
    def test_torn_artifact_recomputes_bit_identically(
        self, store, sg2042, reference
    ):
        _sweep(store, cpu=sg2042)
        path = _artifact(store)
        path.write_text(path.read_text()[:40])
        with pytest.warns(StoreWarning, match="corrupt artifact"):
            result = _sweep(store, cpu=sg2042)
        assert not result.restored
        assert result == reference
        # The recompute re-persisted a good artifact; the tier heals.
        assert _sweep(store, cpu=sg2042).restored

    def test_wrong_point_count_recomputes_with_warning(
        self, store, sg2042, reference
    ):
        _sweep(store, cpu=sg2042)
        path = _artifact(store)
        record = json.loads(path.read_text())
        record["payload"]["points"].pop()
        path.write_text(json.dumps(record))
        with pytest.warns(StoreWarning, match="sweep result is unusable"):
            result = _sweep(store, cpu=sg2042)
        assert not result.restored
        assert result == reference

    def test_garbled_seconds_recomputes_with_warning(
        self, store, sg2042, reference
    ):
        _sweep(store, cpu=sg2042)
        path = _artifact(store)
        record = json.loads(path.read_text())
        record["payload"]["points"][0][4] = "fast"
        path.write_text(json.dumps(record))
        with pytest.warns(StoreWarning, match="unusable"):
            result = _sweep(store, cpu=sg2042)
        assert result == reference


class TestGuards:
    def test_checkpointed_sweeps_bypass_the_tier(
        self, store, sg2042, tmp_path
    ):
        ckpt = tmp_path / "sweep.ckpt"
        _sweep(store, cpu=sg2042, checkpoint=ckpt)
        # Replays must come from the checkpoint protocol, not the store.
        assert store.artifact_count("sweep") == 0
        resumed = _sweep(store, cpu=sg2042, checkpoint=ckpt)
        assert not resumed.restored

    def test_chaos_plans_bypass_the_tier(self, store, sg2042):
        _sweep(store, cpu=sg2042)  # primed
        with chaos.inject_faults(FaultPlan(seed=7)):
            result = _sweep(store, cpu=sg2042)
        assert not result.restored

    def test_reference_mode_bypasses_the_tier(self, store, sg2042):
        _sweep(store, cpu=sg2042)  # primed
        with reference_mode():
            result = _sweep(store, cpu=sg2042)
        assert not result.restored

    def test_failed_sweeps_are_never_persisted(self, store, sg2042):
        from repro.suite.sweep import _persist_sweep, _sweep_store_key

        key = _sweep_store_key(
            sg2042, KERNELS, (1,), (Placement.BLOCK,),
            (Precision.FP32,), 1, 0.0, "batch",
        )
        failed = SweepResult(
            points=(),
            failures=(SweepFailure(
                cpu="sg2042", threads=1, placement=Placement.BLOCK,
                precision=Precision.FP32, kernel="TRIAD",
                error_type="SimulationError", message="boom",
                attempts=1,
            ),),
        )
        _persist_sweep(store, key, failed)
        assert store.artifact_count("sweep") == 0


class TestDistributed:
    def test_distributed_probes_the_tier_before_sharding(
        self, store, sg2042, reference
    ):
        _sweep(store, cpu=sg2042)
        restored = distributed_sweep(
            sg2042, kernels=KERNELS, hosts=2,
            caches=SuiteCaches.persistent(store), **GRID,
        )
        assert restored.restored
        assert restored == reference

    def test_distributed_persists_like_single_host(self, store, sg2042):
        result = distributed_sweep(
            sg2042, kernels=KERNELS, hosts=2,
            caches=SuiteCaches.persistent(store), **GRID,
        )
        assert not result.restored
        assert store.artifact_count("sweep") == 1
        assert _sweep(store, cpu=sg2042).restored

    def test_counter_parity_over_identical_stores(self, tmp_path, sg2042):
        # Two stores prepared identically (warm + full-grid prime), then
        # a *sub-grid* request on each: the single-host and distributed
        # drivers must take the same page-tier path and finish with
        # identical cache counters — the acceptance-criteria contract.
        sub = dict(GRID, threads=(8,))
        stores = []
        for name in ("single", "dist"):
            s = ArtifactStore(tmp_path / name)
            warm_store(s, sg2042, KERNELS)
            _sweep(s, cpu=sg2042)
            stores.append(s)

        single_caches = SuiteCaches.persistent(stores[0])
        single = sweep(
            sg2042, kernels=KERNELS, caches=single_caches, **sub
        )
        dist_caches = SuiteCaches.persistent(stores[1])
        dist = distributed_sweep(
            sg2042, kernels=KERNELS, hosts=2, caches=dist_caches, **sub
        )
        assert dist == single
        assert not single.restored and not dist.restored
        assert dist_caches.stats() == single_caches.stats()
