"""ArtifactStore robustness: every failure mode degrades to recompute."""

import json
import threading

import pytest

from repro.store import (
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    StoreStats,
    StoreWarning,
    stable_digest,
)

KEY = ("unit", "sg2042", 64, ["a", "b"])
PAYLOAD = {"payload_version": 1, "value": 1.5}


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _artifact_path(store):
    files = list((store.root / "compile").glob("*.json"))
    assert len(files) == 1
    return files[0]


class TestRoundTrip:
    def test_put_then_get(self, store):
        assert store.put("compile", KEY, PAYLOAD)
        assert store.get("compile", KEY) == PAYLOAD

    def test_floats_round_trip_exactly(self, store):
        value = 0.1 + 0.2  # not representable exactly; repr round-trips
        store.put("compile", KEY, {"v": value})
        assert store.get("compile", KEY)["v"] == value

    def test_missing_key_is_a_silent_miss(self, store, recwarn):
        assert store.get("compile", KEY) is None
        assert not recwarn.list
        assert store.stats()["compile"] == StoreStats(misses=1)

    def test_distinct_keys_distinct_artifacts(self, store):
        store.put("compile", KEY, {"v": 1})
        store.put("compile", ("other",), {"v": 2})
        assert store.get("compile", KEY) == {"v": 1}
        assert store.get("compile", ("other",)) == {"v": 2}
        assert store.artifact_count("compile") == 2

    def test_namespaces_do_not_collide(self, store):
        store.put("compile", KEY, {"v": 1})
        assert store.get("predict", KEY) is None
        assert store.artifact_count() == 1

    def test_overwrite_wins(self, store):
        store.put("compile", KEY, {"v": 1})
        store.put("compile", KEY, {"v": 2})
        assert store.get("compile", KEY) == {"v": 2}
        assert store.artifact_count("compile") == 1


class TestCorruption:
    """Satellite (d): torn files, stale schema, collisions, tampering —
    all warn and miss, never raise."""

    def _corrupt(self, store, mutate):
        store.put("compile", KEY, PAYLOAD)
        path = _artifact_path(store)
        record = json.loads(path.read_text())
        path.write_text(mutate(path, record) or "")
        with pytest.warns(StoreWarning):
            assert store.get("compile", KEY) is None
        assert store.stats()["compile"].errors == 1

    def test_truncated_file(self, store):
        def truncate(path, _):
            text = path.read_text()
            return text[: len(text) // 2]

        self._corrupt(store, truncate)

    def test_empty_file(self, store):
        self._corrupt(store, lambda path, _: "")

    def test_binary_garbage(self, store):
        store.put("compile", KEY, PAYLOAD)
        _artifact_path(store).write_bytes(b"\xff\xfe\x00garbage")
        with pytest.warns(StoreWarning, match="corrupt artifact"):
            assert store.get("compile", KEY) is None

    def test_non_object_record(self, store):
        self._corrupt(store, lambda path, _: json.dumps([1, 2, 3]))

    def test_schema_version_mismatch(self, store):
        def bump(path, record):
            record["schema_version"] = STORE_SCHEMA_VERSION + 1
            return json.dumps(record)

        store.put("compile", KEY, PAYLOAD)
        path = _artifact_path(store)
        record = json.loads(path.read_text())
        path.write_text(bump(path, record))
        with pytest.warns(StoreWarning, match="schema_version"):
            assert store.get("compile", KEY) is None

    def test_key_echo_mismatch_is_a_miss(self, store):
        # A digest collision would serve another key's payload; the
        # stored key echo turns it into a warned miss instead.
        def swap_key(path, record):
            record["key"] = ["somebody", "else"]
            return json.dumps(record)

        self._corrupt(store, swap_key)

    def test_missing_payload(self, store):
        def drop(path, record):
            del record["payload"]
            return json.dumps(record)

        self._corrupt(store, drop)

    def test_corruption_does_not_poison_future_writes(self, store):
        store.put("compile", KEY, PAYLOAD)
        _artifact_path(store).write_text("torn")
        with pytest.warns(StoreWarning):
            assert store.get("compile", KEY) is None
        assert store.put("compile", KEY, PAYLOAD)
        assert store.get("compile", KEY) == PAYLOAD


class TestUnwritableStore:
    def test_put_degrades_and_warns_once(self, tmp_path, recwarn):
        # A *file* where the store root should be makes every mkdir and
        # write fail with OSError regardless of privileges (chmod-based
        # read-only dirs do not bind when the suite runs as root).
        root = tmp_path / "not-a-dir"
        root.write_text("occupied")
        store = ArtifactStore(root)
        with pytest.warns(StoreWarning, match="not writable"):
            assert store.put("compile", KEY, PAYLOAD) is False
        recwarn.clear()
        assert store.put("compile", KEY, ("x",)) is False
        assert not recwarn.list  # warned once per store, not per put
        assert store.stats()["compile"].errors == 2

    def test_reads_keep_working_after_write_failure(self, tmp_path):
        writable = ArtifactStore(tmp_path / "store")
        writable.put("compile", KEY, PAYLOAD)
        # Same directory, separate handle that has seen a write failure.
        reader = ArtifactStore(tmp_path / "store")
        reader._write_failed = True
        assert reader.get("compile", KEY) == PAYLOAD

    def test_no_temp_files_left_behind(self, store):
        store.put("compile", KEY, PAYLOAD)
        leftovers = [
            p for p in (store.root / "compile").iterdir()
            if p.suffix != ".json"
        ]
        assert leftovers == []


class TestConcurrency:
    def test_concurrent_writers_same_key(self, store):
        # Pure computations write identical bytes; os.replace is atomic,
        # so racing writers can only overwrite each other with the same
        # content — the final artifact must always read back whole.
        errors = []

        def write():
            try:
                for _ in range(25):
                    store.put("compile", KEY, PAYLOAD)
                    got = store.get("compile", KEY)
                    assert got == PAYLOAD, got
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [threading.Thread(target=write) for _ in range(8)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert errors == []
        assert store.get("compile", KEY) == PAYLOAD
        assert store.artifact_count("compile") == 1

    def test_stats_count_all_threads(self, store):
        store.put("compile", KEY, PAYLOAD)

        def read():
            for _ in range(50):
                store.get("compile", KEY)

        workers = [threading.Thread(target=read) for _ in range(4)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert store.stats()["compile"].hits == 200


class TestStableDigest:
    def test_equal_parts_equal_digest(self):
        assert stable_digest("a", [1, 2]) == stable_digest("a", [1, 2])

    def test_order_matters(self):
        assert stable_digest("a", "b") != stable_digest("b", "a")

    def test_field_separator_prevents_concatenation_collisions(self):
        assert stable_digest("ab", "c") != stable_digest("a", "bc")

    def test_dict_key_order_is_canonical(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest(
            {"b": 2, "a": 1}
        )
