"""Codec round-trips are bit-exact; malformed payloads raise CodecError."""

import enum
import json

import pytest

from repro.compiler.model import XUANTIE_GCC_8_4
from repro.compiler.vectorizer import analyze
from repro.kernels.registry import all_kernels, get_kernel
from repro.machine.vector import rvv_0_7_1
from repro.perfmodel.batch import lower_kernels
from repro.perfmodel.execution import ExecutionResult
from repro.store import CodecError, jsonable_parts
from repro.store.codecs import (
    decode_prediction_page,
    decode_report,
    decode_result,
    decode_soa,
    decode_sweep_points,
    encode_prediction_page,
    encode_report,
    encode_result,
    encode_soa,
    encode_sweep_points,
    page_slot,
)
from repro.suite.config import Placement, Precision
from repro.suite.sweep import SweepPoint


def _json_round_trip(payload):
    """What the store actually does to a payload between put and get."""
    return json.loads(json.dumps(payload))


RESULT = ExecutionResult(0.1 + 0.2, 3e-7, "L2", "memory", True)


class TestReportCodec:
    def test_round_trip_every_kernel(self):
        isa = rvv_0_7_1()
        for kernel in all_kernels():
            report = analyze(XUANTIE_GCC_8_4, kernel, isa)
            payload = _json_round_trip(encode_report(report))
            assert decode_report(payload) == report

    def test_version_mismatch_raises(self):
        report = analyze(XUANTIE_GCC_8_4, get_kernel("TRIAD"), rvv_0_7_1())
        payload = encode_report(report)
        payload["payload_version"] = 99
        with pytest.raises(CodecError, match="version"):
            decode_report(payload)

    def test_missing_field_raises(self):
        report = analyze(XUANTIE_GCC_8_4, get_kernel("TRIAD"), rvv_0_7_1())
        payload = encode_report(report)
        del payload["efficiency"]
        with pytest.raises(CodecError):
            decode_report(payload)


class TestResultCodec:
    def test_round_trip_is_bit_exact(self):
        assert decode_result(_json_round_trip(encode_result(RESULT))) \
            == RESULT

    def test_nonpositive_seconds_rejected(self):
        payload = encode_result(RESULT) | {"seconds": -1.0}
        with pytest.raises(CodecError):
            decode_result(payload)

    def test_nan_rejected(self):
        # json.loads accepts bare NaN, so a tampered page can deliver
        # one as a genuine float; the decoder must still refuse it.
        payload = json.loads(
            json.dumps(encode_result(RESULT)).replace("3e-07", "NaN")
        )
        with pytest.raises(CodecError):
            decode_result(payload)

    def test_missing_field_rejected(self):
        payload = encode_result(RESULT)
        del payload["bound"]
        with pytest.raises(CodecError):
            decode_result(payload)


class TestPageCodec:
    def test_round_trip(self):
        page = {
            page_slot("TRIAD", 1024): RESULT,
            page_slot("GEMM", 64): ExecutionResult(
                1.0, 0.5, "DRAM", "compute", False
            ),
        }
        payload = _json_round_trip(encode_prediction_page(page))
        assert decode_prediction_page(payload) == page

    def test_entries_must_be_an_object(self):
        with pytest.raises(CodecError, match="entries"):
            decode_prediction_page({"payload_version": 1, "entries": []})

    def test_one_bad_entry_poisons_the_page(self):
        payload = encode_prediction_page({page_slot("TRIAD", 8): RESULT})
        payload["entries"]["TRIAD|8"]["seconds"] = "soon"
        with pytest.raises(CodecError):
            decode_prediction_page(payload)


class TestSoaCodec:
    def test_round_trip_matches_fresh_lowering(self):
        from repro.store.codecs import SOA_ARRAY_FIELDS

        kernels = tuple(all_kernels()[:5])
        soa = lower_kernels(kernels)
        payload = _json_round_trip(encode_soa(soa))
        decoded = decode_soa(payload, kernels)
        assert decoded.kernels == soa.kernels
        for name in SOA_ARRAY_FIELDS:
            # NumPy equality is elementwise; exact (floats restore
            # bit-for-bit through repr), so plain == must hold per slot.
            assert (getattr(decoded, name) == getattr(soa, name)).all()

    def test_kernel_name_mismatch_raises(self):
        kernels = tuple(all_kernels()[:3])
        payload = encode_soa(lower_kernels(kernels))
        with pytest.raises(CodecError, match="kernel names"):
            decode_soa(payload, tuple(reversed(kernels)))

    def test_missized_array_raises(self):
        kernels = tuple(all_kernels()[:3])
        payload = encode_soa(lower_kernels(kernels))
        payload["arrays"]["reps"] = payload["arrays"]["reps"][:-1]
        with pytest.raises(CodecError, match="reps"):
            decode_soa(payload, kernels)


class TestSweepPointsCodec:
    def _points(self):
        return tuple(
            SweepPoint("sg2042", threads, placement, precision, kernel,
                       0.1 * threads + 0.01)
            for threads in (1, 64)
            for placement in (Placement.BLOCK, Placement.CYCLIC)
            for precision in (Precision.FP32,)
            for kernel in ("TRIAD", "GEMM")
        )

    def test_round_trip_is_bit_exact(self):
        points = self._points()
        payload = _json_round_trip(encode_sweep_points(points))
        assert decode_sweep_points(payload, "sg2042", len(points)) \
            == points

    def test_wrong_cpu_raises(self):
        points = self._points()
        payload = encode_sweep_points(points)
        with pytest.raises(CodecError, match="cpu"):
            decode_sweep_points(payload, "c910-dev", len(points))

    def test_wrong_point_count_raises(self):
        points = self._points()
        payload = encode_sweep_points(points)
        with pytest.raises(CodecError, match="needs"):
            decode_sweep_points(payload, "sg2042", len(points) + 8)

    def test_infinite_seconds_rejected(self):
        # type(seconds) is float alone would wave Infinity through —
        # json.loads produces it from bare "Infinity" tokens.
        points = self._points()
        payload = encode_sweep_points(points)
        payload["points"][0][4] = float("inf")
        with pytest.raises(CodecError, match="finite"):
            decode_sweep_points(payload, "sg2042", len(points))

    def test_unknown_placement_raises(self):
        points = self._points()
        payload = encode_sweep_points(points)
        payload["points"][0][1] = "diagonal"
        with pytest.raises(CodecError, match="malformed"):
            decode_sweep_points(payload, "sg2042", len(points))

    def test_short_row_raises(self):
        points = self._points()
        payload = encode_sweep_points(points)
        payload["points"][0] = payload["points"][0][:3]
        with pytest.raises(CodecError):
            decode_sweep_points(payload, "sg2042", len(points))


class TestJsonableParts:
    def test_enums_are_class_qualified(self):
        class A(enum.Enum):
            X = 1

        class B(enum.Enum):
            X = 1

        assert jsonable_parts((A.X,)) != jsonable_parts((B.X,))

    def test_nested_tuples_lower_to_lists(self):
        assert jsonable_parts((("a", (1, 2.5)), None, True)) == [
            ["a", [1, 2.5]], None, True
        ]

    def test_unstorable_part_raises(self):
        with pytest.raises(CodecError, match="not storable"):
            jsonable_parts((object(),))
