"""Store GC: age horizon, global size cap, dry-run, tmp cleanup."""

import os

import pytest

from repro.store import ArtifactStore, prune_store
from repro.store.prune import TMP_GRACE_S
from repro.util.errors import ConfigError

NOW = 1_000_000.0


def _store_with(tmp_path, artifacts):
    """Build a store whose artifacts have controlled mtimes.

    ``artifacts`` is ``[(namespace, key, payload, age_s), ...]``; each
    file's mtime is backdated ``age_s`` seconds before ``NOW``.
    """
    store = ArtifactStore(tmp_path / "store")
    for namespace, key, payload, age_s in artifacts:
        store.put(namespace, key, payload)
        path = store._path(namespace, key)
        os.utime(path, (NOW - age_s, NOW - age_s))
    return store


def _names(store, namespace):
    directory = store.root / namespace
    if not directory.is_dir():
        return set()
    return {p.name for p in directory.iterdir()}


class TestValidation:
    def test_no_caps_is_a_config_error(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ConfigError):
            prune_store(store)

    def test_negative_caps_are_config_errors(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ConfigError):
            prune_store(store, max_bytes=-1)
        with pytest.raises(ConfigError):
            prune_store(store, max_age_s=-1.0)

    def test_path_escaping_namespace_is_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for bad in ("..", ".", "", "a/b"):
            with pytest.raises(ConfigError):
                prune_store(
                    store, max_bytes=0, namespaces=(bad,)
                )


class TestAgeHorizon:
    def test_old_artifacts_drain_out(self, tmp_path):
        store = _store_with(tmp_path, [
            ("predict", ("old",), {"v": 1}, 7200.0),
            ("predict", ("new",), {"v": 2}, 60.0),
        ])
        report = prune_store(store, max_age_s=3600.0, now=NOW)
        assert report.deleted == 1 and report.scanned == 2
        assert len(_names(store, "predict")) == 1
        assert store.get("predict", ("new",)) is not None
        assert store.get("predict", ("old",)) is None

    def test_deletions_land_on_eviction_counters(self, tmp_path):
        store = _store_with(tmp_path, [
            ("predict", ("old",), {"v": 1}, 7200.0),
            ("sweep", ("old",), {"v": 2}, 7200.0),
        ])
        prune_store(store, max_age_s=3600.0, now=NOW)
        stats = store.stats()
        assert stats["predict"].evictions == 1
        assert stats["sweep"].evictions == 1


class TestSizeCap:
    def test_oldest_artifacts_go_first_across_namespaces(self, tmp_path):
        store = _store_with(tmp_path, [
            ("predict", ("a",), {"v": "x" * 64}, 300.0),  # oldest
            ("responses", ("b",), {"v": "x" * 64}, 200.0),
            ("compile", ("c",), {"v": "x" * 64}, 100.0),  # newest
        ])
        sizes = {
            ns: sum(
                p.stat().st_size
                for p in (store.root / ns).iterdir()
            )
            for ns in ("predict", "responses", "compile")
        }
        # Cap to exactly the newest two: the oldest (predict) goes.
        cap = sizes["responses"] + sizes["compile"]
        report = prune_store(store, max_bytes=cap, now=NOW)
        assert report.deleted == 1
        assert store.get("predict", ("a",)) is None
        assert store.get("responses", ("b",)) is not None
        assert store.get("compile", ("c",)) is not None
        assert report.bytes_after <= cap

    def test_zero_cap_empties_the_store(self, tmp_path):
        store = _store_with(tmp_path, [
            ("predict", ("a",), {"v": 1}, 10.0),
            ("predict", ("b",), {"v": 2}, 20.0),
        ])
        report = prune_store(store, max_bytes=0, now=NOW)
        assert report.deleted == 2
        assert report.bytes_after == 0
        assert _names(store, "predict") == set()

    def test_age_and_size_compose_in_one_pass(self, tmp_path):
        store = _store_with(tmp_path, [
            ("predict", ("stale",), {"v": 1}, 7200.0),
            ("predict", ("old",), {"v": 2}, 600.0),
            ("predict", ("new",), {"v": 3}, 10.0),
        ])
        # Age kills "stale"; the cap then squeezes out "old" as the
        # oldest survivor.
        new_size = store._path("predict", ("new",)).stat().st_size
        report = prune_store(
            store, max_age_s=3600.0, max_bytes=new_size, now=NOW
        )
        assert report.deleted == 2
        assert store.get("predict", ("new",)) is not None
        assert store.get("predict", ("old",)) is None


class TestDryRun:
    def test_dry_run_touches_nothing(self, tmp_path):
        store = _store_with(tmp_path, [
            ("predict", ("old",), {"v": 1}, 7200.0),
            ("predict", ("new",), {"v": 2}, 60.0),
        ])
        report = prune_store(
            store, max_age_s=3600.0, dry_run=True, now=NOW
        )
        assert report.deleted == 1 and report.dry_run
        assert len(_names(store, "predict")) == 2  # nothing removed
        assert store.stats()["predict"].evictions == 0
        assert "would delete 1/2" in report.render()

    def test_real_run_renders_deleted(self, tmp_path):
        store = _store_with(tmp_path, [
            ("predict", ("old",), {"v": 1}, 7200.0),
        ])
        report = prune_store(store, max_age_s=3600.0, now=NOW)
        assert "deleted 1/1" in report.render()
        assert "predict: deleted 1/1" in report.render()


class TestTmpCleanup:
    def test_orphaned_tmp_files_are_removed_after_grace(self, tmp_path):
        store = _store_with(tmp_path, [
            ("predict", ("keep",), {"v": 1}, 10.0),
        ])
        stale = store.root / "predict" / "dead-writer.json.tmp"
        stale.write_text("{")
        os.utime(stale, (NOW - TMP_GRACE_S - 1, NOW - TMP_GRACE_S - 1))
        fresh = store.root / "predict" / "live-writer.json.tmp"
        fresh.write_text("{")
        os.utime(fresh, (NOW - 1, NOW - 1))
        report = prune_store(store, max_age_s=86400.0, now=NOW)
        assert report.tmp_removed == 1
        assert not stale.exists()
        assert fresh.exists()  # might belong to a live writer
        assert store.get("predict", ("keep",)) is not None

    def test_dry_run_reports_tmp_without_removing(self, tmp_path):
        store = _store_with(tmp_path, [])
        ns_dir = store.root / "predict"
        ns_dir.mkdir(parents=True)
        stale = ns_dir / "dead.json.tmp"
        stale.write_text("{")
        os.utime(stale, (NOW - TMP_GRACE_S - 1, NOW - TMP_GRACE_S - 1))
        report = prune_store(
            store, max_bytes=0, dry_run=True, now=NOW
        )
        assert report.tmp_removed == 1
        assert stale.exists()


class TestNamespaceSelection:
    def test_unselected_namespaces_are_untouched(self, tmp_path):
        store = _store_with(tmp_path, [
            ("predict", ("a",), {"v": 1}, 7200.0),
            ("responses", ("b",), {"v": 2}, 7200.0),
        ])
        report = prune_store(
            store, max_age_s=3600.0, namespaces=("responses",),
            now=NOW,
        )
        assert report.deleted == 1
        assert store.get("predict", ("a",)) is not None
        assert store.get("responses", ("b",)) is None

    def test_unknown_namespace_directory_is_just_empty(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        report = prune_store(
            store, max_bytes=0, namespaces=("nonesuch",), now=NOW
        )
        assert report.scanned == 0 and report.deleted == 0
