"""CompileCache disk tier: cross-cache restores, suite composites."""

import json

import pytest

from repro.compiler.cache import CompileCache
from repro.compiler.model import XUANTIE_GCC_8_4
from repro.compiler.vectorizer import analyze
from repro.kernels.registry import all_kernels, get_kernel
from repro.machine.vector import rvv_0_7_1
from repro.store import ArtifactStore, StoreWarning

KERNELS = tuple(all_kernels()[:6])


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _suite_artifacts(store):
    """The composite suite artifacts among the compile namespace."""
    out = []
    for path in (store.root / "compile").glob("*.json"):
        record = json.loads(path.read_text())
        if "reports" in record["payload"]:
            out.append(path)
    return out


class TestDiskTier:
    def test_second_cache_restores_instead_of_compiling(self, store):
        kernel = get_kernel("TRIAD")
        isa = rvv_0_7_1()
        first = CompileCache(store=store)
        report = first.analyze(XUANTIE_GCC_8_4, kernel, isa)
        assert first.stats.misses == 1

        second = CompileCache(store=store)
        restored = second.analyze(XUANTIE_GCC_8_4, kernel, isa)
        assert restored == report == analyze(XUANTIE_GCC_8_4, kernel, isa)
        assert second.stats.misses == 0
        assert second.stats.disk_hits == 1
        assert second.stats.hits == 0

    def test_disk_hit_becomes_memory_entry(self, store):
        kernel = get_kernel("TRIAD")
        isa = rvv_0_7_1()
        CompileCache(store=store).analyze(XUANTIE_GCC_8_4, kernel, isa)
        cache = CompileCache(store=store)
        cache.analyze(XUANTIE_GCC_8_4, kernel, isa)
        cache.analyze(XUANTIE_GCC_8_4, kernel, isa)
        stats = cache.stats
        assert (stats.hits, stats.disk_hits, stats.misses) == (1, 1, 0)
        assert stats.calls == 2

    def test_no_store_means_no_disk_counters(self):
        cache = CompileCache()
        cache.analyze(XUANTIE_GCC_8_4, get_kernel("TRIAD"), rvv_0_7_1())
        assert cache.stats.disk_hits == 0

    def test_corrupt_report_recompiles_with_warning(self, store):
        kernel = get_kernel("TRIAD")
        isa = rvv_0_7_1()
        first = CompileCache(store=store)
        report = first.analyze(XUANTIE_GCC_8_4, kernel, isa)
        for path in (store.root / "compile").glob("*.json"):
            record = json.loads(path.read_text())
            record["payload"]["efficiency"] = "very"
            path.write_text(json.dumps(record))
        fresh = CompileCache(store=store)
        with pytest.warns(StoreWarning, match="unusable"):
            again = fresh.analyze(XUANTIE_GCC_8_4, kernel, isa)
        assert again == report
        assert fresh.stats.misses == 1


class TestSuiteComposite:
    def test_suite_restore_costs_one_read(self, store):
        isa = rvv_0_7_1()
        primer = CompileCache(store=store)
        reports = primer.analyze_suite(XUANTIE_GCC_8_4, KERNELS, isa)
        assert primer.stats.misses == len(KERNELS)
        assert len(_suite_artifacts(store)) == 1

        # Fresh cache over a *separate handle* so read counters start
        # clean: the whole suite must come back from one artifact.
        reader_store = ArtifactStore(store.root)
        fresh = CompileCache(store=reader_store)
        restored = fresh.analyze_suite(XUANTIE_GCC_8_4, KERNELS, isa)
        assert restored == reports
        assert fresh.stats.disk_hits == len(KERNELS)
        assert fresh.stats.misses == 0
        assert reader_store.stats()["compile"].hits == 1

    def test_suite_restore_populates_per_kernel_entries(self, store):
        isa = rvv_0_7_1()
        CompileCache(store=store).analyze_suite(
            XUANTIE_GCC_8_4, KERNELS, isa
        )
        fresh = CompileCache(store=store)
        fresh.analyze_suite(XUANTIE_GCC_8_4, KERNELS, isa)
        # Per-kernel analyze() calls now hit memory, not disk.
        fresh.analyze(XUANTIE_GCC_8_4, KERNELS[0], isa)
        assert fresh.stats.hits == 1

    def test_corrupt_composite_falls_back_to_per_kernel(self, store):
        isa = rvv_0_7_1()
        primer = CompileCache(store=store)
        reports = primer.analyze_suite(XUANTIE_GCC_8_4, KERNELS, isa)
        suite_path = _suite_artifacts(store)[0]
        record = json.loads(suite_path.read_text())
        record["payload"]["reports"] = record["payload"]["reports"][:-1]
        suite_path.write_text(json.dumps(record))

        fresh = CompileCache(store=store)
        with pytest.warns(StoreWarning, match="suite compile artifact"):
            restored = fresh.analyze_suite(XUANTIE_GCC_8_4, KERNELS, isa)
        assert restored == reports
        # The per-kernel artifacts are intact: nothing recompiled.
        assert fresh.stats.misses == 0
        assert fresh.stats.disk_hits == len(KERNELS)
