"""machine_digest must be content-addressed AND cross-process stable."""

import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

from repro.machine import catalog
from repro.suite.memo import machine_digest

_SRC = str(Path(__file__).resolve().parents[2] / "src")

_DIGEST_SCRIPT = (
    "from repro.machine import catalog;"
    "from repro.suite.memo import machine_digest;"
    "print(machine_digest(catalog.sg2042()))"
)


def _digest_in_subprocess(hash_seed):
    env = dict(os.environ, PYTHONPATH=_SRC, PYTHONHASHSEED=hash_seed)
    proc = subprocess.run(
        [sys.executable, "-c", _DIGEST_SCRIPT],
        capture_output=True, text=True, env=env, check=True,
    )
    return int(proc.stdout.strip())


class TestMachineDigest:
    def test_equal_machines_digest_equally(self, sg2042):
        assert machine_digest(sg2042) == machine_digest(catalog.sg2042())

    def test_any_parameter_change_changes_the_digest(self, sg2042):
        retuned = replace(
            sg2042,
            core=replace(sg2042.core, clock_hz=sg2042.core.clock_hz + 1),
        )
        assert machine_digest(retuned) != machine_digest(sg2042)

    def test_different_machines_differ(self, sg2042):
        digests = {
            machine_digest(cpu) for cpu in catalog.all_cpus().values()
        }
        assert len(digests) == len(catalog.all_cpus())

    def test_stable_across_processes_and_hash_seeds(self, sg2042):
        # The persistent tier shares pages between processes; with
        # hash randomization flipping between interpreters, a digest
        # derived from repr()/hash() would silently address nothing.
        digest = machine_digest(sg2042)
        assert _digest_in_subprocess("0") == digest
        assert _digest_in_subprocess("424242") == digest
