"""Measured-mode tests (host timing of the NumPy implementations)."""

import pytest

from repro.kernels.base import KernelClass
from repro.kernels.registry import get_kernel, kernels_in_class
from repro.machine.vector import DType
from repro.suite.measured import (
    MEASURED_REPS_CAP,
    Measurement,
    measure_kernel,
    measure_suite,
    render_measurements,
)
from repro.util.errors import ConfigError


class TestMeasureKernel:
    def test_returns_positive_time_and_rates(self):
        m = measure_kernel(get_kernel("TRIAD"), 10_000, DType.FP64,
                           reps=2, runs=2)
        assert m.seconds_per_rep > 0
        assert m.bandwidth_bytes > 0
        assert m.flops > 0
        assert m.kernel == "TRIAD"

    def test_checksum_matches_direct_execution(self):
        kernel = get_kernel("DOT")
        m = measure_kernel(kernel, 5_000, DType.FP64, reps=1, runs=1,
                           warmup=0)
        ws = kernel.prepare(5_000, DType.FP64)
        kernel.execute(ws)
        assert m.checksum == pytest.approx(kernel.checksum(ws))

    def test_fp32_supported(self):
        m = measure_kernel(get_kernel("DAXPY"), 5_000, DType.FP32,
                           reps=1, runs=1)
        assert m.seconds_per_rep > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            measure_kernel(get_kernel("TRIAD"), 0, DType.FP64)
        with pytest.raises(ConfigError):
            measure_kernel(get_kernel("TRIAD"), 10, DType.FP64, runs=0)

    def test_zero_flop_kernel_reports_zero_rate(self):
        m = measure_kernel(get_kernel("COPY"), 5_000, DType.FP64,
                           reps=1, runs=1)
        assert m.flops == 0.0
        assert m.bandwidth_bytes > 0


class TestDefaultReps:
    def test_default_reps_follows_kernel_capped(self, monkeypatch):
        # TRIAD's RAJAPerf reps is far above the cap; the default must
        # clamp. Observe the actual loop count through execute().
        kernel = get_kernel("TRIAD")
        assert kernel.reps > MEASURED_REPS_CAP
        executions = []
        original = type(kernel).execute
        monkeypatch.setattr(
            type(kernel), "execute",
            lambda self, ws: (executions.append(1), original(self, ws)),
        )
        measure_kernel(kernel, 1_000, DType.FP64, runs=1, warmup=0)
        assert len(executions) == MEASURED_REPS_CAP

    def test_default_reps_uses_kernel_reps_when_small(self, monkeypatch):
        # Find a kernel whose own reps sits under the cap.
        from repro.kernels.registry import all_kernels

        kernel = next(
            k for k in all_kernels() if k.reps < MEASURED_REPS_CAP
        )
        executions = []
        original = type(kernel).execute
        monkeypatch.setattr(
            type(kernel), "execute",
            lambda self, ws: (executions.append(1), original(self, ws)),
        )
        measure_kernel(kernel, 100, DType.FP64, runs=1, warmup=0)
        assert len(executions) == kernel.reps

    def test_explicit_reps_still_honoured(self):
        m = measure_kernel(get_kernel("TRIAD"), 1_000, DType.FP64,
                           reps=2, runs=1)
        assert m.seconds_per_rep > 0

    def test_workspace_released_after_measurement(self):
        # measure_kernel clears the workspace dict it prepared; verify
        # via a wrapper that keeps a reference to it.
        kernel = get_kernel("TRIAD")
        captured = {}
        original_prepare = kernel.prepare

        class Probe(type(kernel)):
            def prepare(self, n, dtype):
                ws = original_prepare(n, dtype)
                captured["ws"] = ws
                return ws

        measure_kernel(Probe(), 1_000, DType.FP64, reps=1, runs=1)
        assert captured["ws"] == {}


class TestMeasureSuite:
    def test_stream_class(self):
        ms = measure_suite(
            kernels_in_class(KernelClass.STREAM), n=5_000, reps=1, runs=1
        )
        assert {m.kernel for m in ms} == {
            "ADD", "COPY", "DOT", "MUL", "TRIAD"
        }

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            measure_suite([])

    def test_render(self):
        ms = measure_suite([get_kernel("TRIAD")], n=2_000, reps=1,
                           runs=1)
        text = render_measurements(ms)
        assert "GB/s" in text and "TRIAD" in text


class TestMeasurementValidation:
    def test_nonpositive_time_rejected(self):
        with pytest.raises(ConfigError):
            Measurement(
                kernel="X", n=1, seconds_per_rep=0.0,
                bandwidth_bytes=1.0, flops=1.0, checksum=0.0,
            )
