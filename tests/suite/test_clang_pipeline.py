"""Integration: the full Clang-on-C920 suite run (the Figure 3 path).

Exercises RunConfig -> compiler resolution -> per-kernel vectorization
with rollback -> performance model, across all 64 kernels.
"""

import pytest

from repro.suite.config import RunConfig
from repro.suite.runner import run_suite
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def clang_run(sg2042):
    return run_suite(
        sg2042,
        RunConfig(
            threads=1, precision="fp32", compiler="clang-16",
            rollback=True, runs=1, noise_sigma=0.0,
        ),
    )


@pytest.fixture(scope="module")
def gcc_run(sg2042):
    return run_suite(
        sg2042,
        RunConfig(threads=1, precision="fp32", runs=1, noise_sigma=0.0),
    )


class TestClangSuiteRun:
    def test_runs_all_64(self, clang_run):
        assert len(clang_run.runs) == 64

    def test_five_kernels_not_vectorized(self, clang_run):
        unvectorized = {
            name
            for name, run in clang_run.runs.items()
            if not run.report.vectorized
        }
        assert unvectorized == {
            "SORT", "SORTPAIRS", "SCAN", "GEN_LIN_RECUR", "TRIDIAG_ELIM"
        }

    def test_three_runtime_scalar(self, clang_run):
        scalar_at_runtime = {
            name
            for name, run in clang_run.runs.items()
            if run.report.vectorized and not run.report.vector_path_executed
        }
        assert scalar_at_runtime == {"2MM", "3MM", "GEMM"}

    def test_matmuls_slower_than_gcc(self, clang_run, gcc_run):
        for name in ("2MM", "3MM", "GEMM"):
            assert clang_run.time(name) > gcc_run.time(name), name

    def test_gcc_blocked_kernels_faster_with_clang(self, clang_run,
                                                   gcc_run):
        for name in ("FLOYD_WARSHALL", "HEAT_3D", "DIFF_PREDICT",
                     "PLANCKIAN"):
            assert clang_run.time(name) < gcc_run.time(name), name

    def test_without_rollback_rejected(self, sg2042):
        cfg = RunConfig(threads=1, compiler="clang-16")
        with pytest.raises(ConfigError, match="rollback"):
            run_suite(sg2042, cfg)

    def test_vla_slower_or_equal_everywhere(self, sg2042, clang_run):
        vla = run_suite(
            sg2042,
            RunConfig(
                threads=1, precision="fp32", compiler="clang-16",
                rollback=True, flavor="vla", runs=1, noise_sigma=0.0,
            ),
        )
        for name in vla.runs:
            assert vla.time(name) >= clang_run.time(name) * 0.999, name
