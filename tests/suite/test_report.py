"""Aggregation/report tests."""

import pytest

from repro.kernels.base import KernelClass
from repro.suite.config import RunConfig
from repro.suite.report import (
    class_speedups,
    class_summaries,
    kernel_relative,
    suite_average_relative,
)
from repro.suite.runner import run_suite
from repro.util.errors import ConfigError
from repro.util.stats import from_relative


@pytest.fixture(scope="module")
def base(sg2042):
    return run_suite(
        sg2042, RunConfig(threads=1, precision="fp32", noise_sigma=0.0,
                          runs=1)
    )


@pytest.fixture(scope="module")
def threaded(sg2042):
    return run_suite(
        sg2042,
        RunConfig(threads=8, precision="fp32", placement="cluster",
                  noise_sigma=0.0, runs=1),
    )


class TestKernelRelative:
    def test_self_comparison_is_zero(self, base):
        rel = kernel_relative(base, base)
        assert all(v == 0.0 for v in rel.values())

    def test_threaded_mostly_positive(self, base, threaded):
        rel = kernel_relative(base, threaded)
        positive = sum(1 for v in rel.values() if v > 0)
        assert positive > 50  # most kernels speed up at 8 threads

    def test_covers_all_kernels(self, base, threaded):
        assert len(kernel_relative(base, threaded)) == 64


class TestClassSummaries:
    def test_all_classes_present(self, base, threaded):
        summaries = class_summaries(base, threaded)
        assert set(summaries) == set(KernelClass)

    def test_whiskers_bracket_mean(self, base, threaded):
        for s in class_summaries(base, threaded).values():
            assert s.minimum <= s.mean <= s.maximum


class TestClassSpeedups:
    def test_rows_match_manual_computation(self, base, threaded):
        speedups = class_speedups(base, threaded)
        stream_s, stream_pe = speedups[KernelClass.STREAM]
        manual = [
            base.time(n) / threaded.time(n)
            for n in ("ADD", "COPY", "DOT", "MUL", "TRIAD")
        ]
        assert stream_s == pytest.approx(sum(manual) / 5)
        assert stream_pe == pytest.approx(stream_s / 8)

    def test_requires_single_thread_baseline(self, threaded):
        with pytest.raises(ConfigError):
            class_speedups(threaded, threaded)


class TestSuiteAverage:
    def test_self_is_zero(self, base):
        assert suite_average_relative(base, base) == 0.0

    def test_from_relative_roundtrip(self, base, threaded):
        avg = suite_average_relative(base, threaded)
        assert from_relative(avg) > 1.0  # threading helps on average
