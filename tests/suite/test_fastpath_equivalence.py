"""Golden equivalence: the fast path is bit-identical to the reference.

The prediction engine's fast path stacks three optimizations — placement
symmetry-class dedup, compile/prediction memoization, and parallel sweep
workers. None of them is allowed to change a single bit of any result.
These tests pin that contract against the naive reference
(:func:`reference_mode` + :meth:`SuiteCaches.disabled`), across all 64
kernels, the SG2042 and an x86 catalog machine, block/cyclic placements,
a resumed checkpoint and ``workers > 1``.
"""

import pytest

from repro.resilience import chaos
from repro.resilience.faults import transient_plan
from repro.kernels.registry import all_kernels
from repro.perfmodel.placement import reference_mode
from repro.suite.config import Placement, Precision, RunConfig
from repro.suite.memo import PredictionMemo, SuiteCaches
from repro.suite.runner import run_suite
from repro.suite.sweep import sweep

THREADS = (1, 5, 8, 64)
PLACEMENTS = (Placement.BLOCK, Placement.CYCLIC)
PRECISIONS = (Precision.FP32, Precision.FP64)


def reference_sweep(cpu, **kwargs):
    """The pre-optimization behaviour: per-core scans, no caches."""
    with reference_mode():
        return sweep(
            cpu,
            kernels=all_kernels(),
            threads=THREADS,
            placements=PLACEMENTS,
            precisions=PRECISIONS,
            caches=SuiteCaches.disabled(),
            **kwargs,
        )


def fast_sweep(cpu, **kwargs):
    return sweep(
        cpu,
        kernels=all_kernels(),
        threads=THREADS,
        placements=PLACEMENTS,
        precisions=PRECISIONS,
        **kwargs,
    )


@pytest.fixture(scope="module")
def sg_reference(sg2042):
    return reference_sweep(sg2042)


class TestSweepEquivalence:
    def test_serial_fast_sweep_bit_identical(self, sg2042, sg_reference):
        fast = fast_sweep(sg2042)
        # Dataclass equality compares every float of every point
        # exactly (cache_stats is excluded by field(compare=False)).
        assert fast == sg_reference

    def test_parallel_sweep_bit_identical(self, sg2042, sg_reference):
        fast = fast_sweep(sg2042, workers=4)
        assert fast == sg_reference

    def test_x86_machine_bit_identical(self, amd_rome):
        assert fast_sweep(amd_rome, workers=2) == reference_sweep(amd_rome)

    def test_resumed_checkpoint_bit_identical(
        self, sg2042, sg_reference, tmp_path
    ):
        ckpt = tmp_path / "sweep.jsonl"
        fast_sweep(sg2042, checkpoint=ckpt)
        # Simulate a mid-grid kill: drop the latter half of the record
        # lines, keeping the header, then resume with workers.
        lines = ckpt.read_text().splitlines()
        assert len(lines) > 3
        keep = 1 + (len(lines) - 1) // 2
        ckpt.write_text("\n".join(lines[:keep]) + "\n")
        resumed = fast_sweep(sg2042, checkpoint=ckpt, workers=4)
        assert resumed == sg_reference

    def test_compile_cache_compiles_each_kernel_exactly_once(self, sg2042):
        caches = SuiteCaches()
        result = fast_sweep(sg2042, caches=caches)
        stats = result.cache_stats
        configs = len(THREADS) * len(PLACEMENTS) * len(PRECISIONS)
        # One flavor/rollback per sweep: 64 unique compile keys, every
        # other (kernel, grid point) pair a hit.
        assert stats.compile_misses == 64
        assert stats.compile_entries == 64
        assert stats.compile_hits == 64 * (configs - 1)
        assert stats.predict_misses + stats.predict_hits == 64 * configs


class TestSuiteEquivalence:
    def test_run_suite_matches_reference(self, sg2042):
        config = RunConfig(threads=8, placement=Placement.BLOCK)
        with reference_mode():
            ref = run_suite(sg2042, config)
        fast = run_suite(sg2042, config, caches=SuiteCaches())
        assert fast.runs == ref.runs
        assert fast == ref

    def test_uncached_suite_has_no_cache_stats(self, sg2042):
        config = RunConfig(threads=2)
        result = run_suite(sg2042, config)
        assert result.cache_stats is None

    def test_noise_path_unchanged_by_short_circuit(self, sg2042):
        # sigma == 0 short-circuits the noise averaging; a nonzero
        # sigma must still consult the seeded RNG and perturb times.
        quiet = run_suite(sg2042, RunConfig(threads=2, noise_sigma=0.0))
        noisy = run_suite(
            sg2042, RunConfig(threads=2, noise_sigma=0.05, runs=3)
        )
        assert quiet.time("TRIAD") != noisy.time("TRIAD")


class TestChaosInteraction:
    def test_memo_bypassed_under_active_fault_plan(self, sg2042):
        caches = SuiteCaches()
        config = RunConfig(threads=2)
        # Probability zero: the plan injects nothing but stays active,
        # so the runner must refuse to consult the prediction memo.
        with chaos.inject_faults(transient_plan(seed=7, probability=0.0)):
            result = run_suite(sg2042, config, caches=caches)
        assert result.cache_stats.predict_hits == 0
        assert result.cache_stats.predict_misses == 0
        # The compile cache is still safe (compilation has no RUN-site
        # fault hook) and keeps working under the plan.
        assert result.cache_stats.compile_misses == 64

    def test_sweep_under_fault_plan_forces_serial_and_matches(self, sg2042):
        kernels = all_kernels()[:4]
        with chaos.inject_faults(transient_plan(seed=7, probability=0.0)):
            guarded = sweep(
                sg2042, kernels=kernels, threads=(1, 8), workers=8
            )
        plain = sweep(sg2042, kernels=kernels, threads=(1, 8))
        assert guarded == plain


class TestPredictionMemoUnit:
    def test_get_or_compute_counts_hits_and_misses(self):
        memo = PredictionMemo()
        calls = []

        def compute():
            calls.append(1)
            return "value"

        key = (1, "TRIAD", (0,), "fp64", None, 100)
        assert memo.get_or_compute(key, compute) == "value"
        assert memo.get_or_compute(key, compute) == "value"
        assert len(calls) == 1
        assert memo.hits == 1
        assert memo.misses == 1
        assert len(memo) == 1

    def test_clear_resets_entries_and_counters(self):
        memo = PredictionMemo()
        memo.get_or_compute((1,), lambda: "x")
        memo.clear()
        assert len(memo) == 0
        assert memo.hits == 0
        assert memo.misses == 0


class TestWorkerValidation:
    def test_workers_must_be_positive(self, sg2042):
        from repro.util.errors import ConfigError

        with pytest.raises(ConfigError):
            sweep(sg2042, kernels=all_kernels()[:1], workers=0)
