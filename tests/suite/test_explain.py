"""Unit tests for the per-kernel explain view."""

import pytest

from repro.suite.explain import explain_kernel
from repro.util.errors import ConfigError


class TestExplainKernel:
    def test_triad_sections(self, sg2042):
        text = explain_kernel("TRIAD", sg2042)
        for section in ("characterization:", "loop features",
                        "compilation on the C920", "roofline",
                        "predicted times"):
            assert section in text

    def test_reports_scalar_fp64_vector_fp32(self, sg2042):
        text = explain_kernel("TRIAD", sg2042)
        assert "fp64" in text and "scalar path" in text
        assert "fp32" in text and "vector path" in text

    def test_gemm_compute_bound(self, sg2042):
        text = explain_kernel("GEMM", sg2042)
        assert "compute-bound" in text

    def test_sort_not_vectorized(self, sg2042):
        text = explain_kernel("SORT", sg2042)
        assert "not vectorized: library_call" in text

    def test_halo_region_count_shown(self, sg2042):
        text = explain_kernel("HALOEXCHANGE", sg2042)
        assert "parallel regions/rep: 36" in text

    def test_unknown_kernel(self, sg2042):
        with pytest.raises(ConfigError):
            explain_kernel("NOPE", sg2042)


class TestExperimentDeterminism:
    def test_experiments_render_identically_across_runs(self):
        """The whole pipeline is deterministic: two invocations of an
        experiment must render byte-identical output."""
        from repro.experiments import EXPERIMENTS

        for name in ("figure2", "table4"):
            a = EXPERIMENTS[name](fast=True).render()
            b = EXPERIMENTS[name](fast=True).render()
            assert a == b, name

    def test_full_fidelity_matches_noise_seeding(self):
        """Even with noise enabled, seeding makes repeated full runs
        identical."""
        from repro.experiments import EXPERIMENTS

        assert (
            EXPERIMENTS["figure2"]().render()
            == EXPERIMENTS["figure2"]().render()
        )
