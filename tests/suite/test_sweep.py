"""Sweep utility tests."""

import pytest

from repro.kernels.registry import get_kernel
from repro.resilience.retry import FailurePolicy
from repro.suite import sweep as sweep_module
from repro.suite.config import Placement, Precision
from repro.suite.sweep import sweep
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def small_sweep(sg2042):
    return sweep(
        sg2042,
        kernels=[get_kernel("TRIAD"), get_kernel("GEMM")],
        threads=(1, 8, 32),
        placements=(Placement.CYCLIC, Placement.CLUSTER),
        precisions=(Precision.FP32,),
    )


class TestSweep:
    def test_grid_size(self, small_sweep):
        # 2 kernels x 3 thread counts x 2 placements x 1 precision.
        assert len(small_sweep.points) == 12

    def test_filtered(self, small_sweep):
        points = small_sweep.filtered(threads=8,
                                      placement=Placement.CYCLIC)
        assert len(points) == 2

    def test_best_for_kernel_is_min(self, small_sweep):
        best = small_sweep.best_for_kernel("TRIAD")
        all_triad = small_sweep.filtered(kernel="TRIAD")
        assert best.seconds == min(p.seconds for p in all_triad)

    def test_best_for_kernel_case_insensitive(self, small_sweep):
        assert small_sweep.best_for_kernel("triad").kernel == "TRIAD"

    def test_filtered_kernel_case_insensitive(self, small_sweep):
        # filtered() normalizes like best_for_kernel: the registry
        # stores names upper-case, so lower-case criteria must match.
        lower = small_sweep.filtered(kernel="triad")
        upper = small_sweep.filtered(kernel="TRIAD")
        assert lower == upper
        assert len(lower) == 6

    def test_filtered_kernel_normalization_composes(self, small_sweep):
        points = small_sweep.filtered(kernel="gemm", threads=8)
        assert [p.kernel for p in points] == ["GEMM", "GEMM"]

    def test_best_overall_shape(self, small_sweep):
        threads, placement, precision = small_sweep.best_overall()
        assert threads in (1, 8, 32)
        assert placement in (Placement.CYCLIC, Placement.CLUSTER)
        assert precision is Precision.FP32

    def test_threading_helps_gemm(self, small_sweep):
        best = small_sweep.best_for_kernel("GEMM")
        assert best.threads > 1

    def test_to_csv(self, small_sweep):
        csv = small_sweep.to_csv()
        lines = csv.splitlines()
        assert lines[0].startswith("cpu,threads")
        assert len(lines) == 13

    def test_unknown_kernel_rejected(self, small_sweep):
        with pytest.raises(ConfigError):
            small_sweep.best_for_kernel("NOPE")

    def test_empty_axes_rejected(self, sg2042):
        with pytest.raises(ConfigError):
            sweep(sg2042, kernels=[get_kernel("TRIAD")], threads=())

    def test_empty_kernels_rejected(self, sg2042):
        with pytest.raises(ConfigError):
            sweep(sg2042, kernels=[])

    def test_filtered_unknown_attribute_rejected(self, small_sweep):
        with pytest.raises(ConfigError, match="thread_count"):
            small_sweep.filtered(thread_count=8)

    def test_filtered_error_lists_known_attributes(self, small_sweep):
        with pytest.raises(ConfigError, match="threads"):
            small_sweep.filtered(bogus=1)

    def test_filtered_mixed_known_unknown_rejected(self, small_sweep):
        with pytest.raises(ConfigError):
            small_sweep.filtered(threads=8, bogus=1)


class TestBrokenProcessPool:
    """A worker process dying mid-sweep degrades gracefully: the crash
    becomes a FailureRecord and the remaining grid runs in-process."""

    class _DoomedPool:
        """Stand-in pool whose every future carries BrokenProcessPool,
        like a real pool after a worker is OOM-killed."""

        def __init__(self, max_workers):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def submit(self, fn, *args):
            from concurrent.futures import Future
            from concurrent.futures.process import BrokenProcessPool

            future = Future()
            future.set_exception(
                BrokenProcessPool("a child process terminated abruptly")
            )
            return future

    def _broken_sweep(self, sg2042, monkeypatch, **kwargs):
        monkeypatch.setattr(
            sweep_module, "ProcessPoolExecutor", self._DoomedPool
        )
        kernels = [get_kernel(n) for n in ("TRIAD", "GEMM")]
        return sweep(
            sg2042, kernels, threads=(1, 8),
            placements=(Placement.CLUSTER,),
            precisions=(Precision.FP32,),
            workers=2, workers_mode="process", **kwargs,
        )

    def test_crash_recorded_and_rest_runs_in_process(
        self, sg2042, monkeypatch
    ):
        result = self._broken_sweep(sg2042, monkeypatch)
        # The first grid point is the crash casualty...
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.kernel == "*"
        assert failure.error_type == "BrokenProcessPool"
        assert "in-process" in failure.message
        # ...and never a raw traceback: the message is one line.
        assert "Traceback" not in failure.message
        # The remaining grid point ran in-process: 1 point x 2 kernels.
        assert len(result.points) == 2
        assert {p.threads for p in result.points} == {8}

    def test_fallback_points_match_a_serial_sweep(
        self, sg2042, monkeypatch
    ):
        kernels = [get_kernel(n) for n in ("TRIAD", "GEMM")]
        serial = sweep(
            sg2042, kernels, threads=(1, 8),
            placements=(Placement.CLUSTER,),
            precisions=(Precision.FP32,),
        )
        broken = self._broken_sweep(sg2042, monkeypatch)
        by_key = {
            (p.kernel, p.threads): p.seconds for p in serial.points
        }
        for p in broken.points:
            assert p.seconds == by_key[(p.kernel, p.threads)]

    def test_abort_policy_still_converts_the_crash(
        self, sg2042, monkeypatch
    ):
        """Even under ABORT, a pool crash is an infrastructure failure,
        not a kernel failure: the sweep degrades instead of raising
        BrokenProcessPool at the caller."""
        result = self._broken_sweep(
            sg2042, monkeypatch, policy=FailurePolicy.ABORT
        )
        assert [f.error_type for f in result.failures] == [
            "BrokenProcessPool"
        ]
        assert len(result.points) == 2
