"""RunConfig tests."""

import pytest

from repro.compiler.model import (
    CLANG_16,
    GCC_8_3,
    GCC_11_2,
    VectorFlavor,
    XUANTIE_GCC_8_4,
)
from repro.machine.vector import DType
from repro.openmp.affinity import PlacementPolicy
from repro.suite.config import RunConfig
from repro.util.errors import ConfigError


class TestConstruction:
    def test_defaults(self):
        cfg = RunConfig()
        assert cfg.threads == 1
        assert cfg.precision is DType.FP64
        assert cfg.placement is PlacementPolicy.BLOCK
        assert cfg.runs == 5  # the paper's averaging

    def test_string_shorthands(self):
        cfg = RunConfig(precision="fp32", placement="cluster", flavor="vla")
        assert cfg.precision is DType.FP32
        assert cfg.placement is PlacementPolicy.CLUSTER
        assert cfg.flavor is VectorFlavor.VLA

    def test_int_precision_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig(precision="int32")

    def test_bad_threads_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig(threads=0)

    def test_bad_compiler_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            RunConfig(compiler="icc")

    def test_with_threads(self):
        cfg = RunConfig(threads=1).with_threads(8, PlacementPolicy.CYCLIC)
        assert cfg.threads == 8
        assert cfg.placement is PlacementPolicy.CYCLIC


class TestCompilerResolution:
    """Section 2.1/3.3 toolchain selection."""

    def test_sg2042_defaults_to_xuantie_gcc(self, sg2042):
        assert RunConfig().resolve_compiler(sg2042) is XUANTIE_GCC_8_4

    def test_rome_uses_gcc_11_2(self, amd_rome):
        """'We use GCC version 8.3 on all systems apart from ARCHER2,
        where GCC version 11.2 is used.'"""
        assert RunConfig().resolve_compiler(amd_rome) is GCC_11_2

    def test_other_x86_use_gcc_8_3(
        self, intel_broadwell, intel_icelake, intel_sandybridge
    ):
        for cpu in (intel_broadwell, intel_icelake, intel_sandybridge):
            assert RunConfig().resolve_compiler(cpu) is GCC_8_3

    def test_visionfive_uses_gcc_8_3(self, visionfive_v2):
        assert RunConfig().resolve_compiler(visionfive_v2) is GCC_8_3

    def test_clang_on_c920_requires_rollback(self, sg2042):
        cfg = RunConfig(compiler="clang-16")
        with pytest.raises(ConfigError, match="rollback"):
            cfg.resolve_compiler(sg2042)

    def test_clang_with_rollback_resolves(self, sg2042):
        cfg = RunConfig(compiler="clang-16", rollback=True)
        assert cfg.resolve_compiler(sg2042) is CLANG_16

    def test_explicit_compiler_wins(self, sg2042):
        cfg = RunConfig(compiler="gcc-8.3")
        assert cfg.resolve_compiler(sg2042) is GCC_8_3
