"""Suite runner tests."""

import pytest

from repro.kernels.base import KernelClass
from repro.kernels.registry import get_kernel, kernels_in_class
from repro.machine.vector import DType
from repro.resilience.retry import FailureRecord
from repro.suite.config import RunConfig
from repro.suite.runner import SuiteResult, run_suite, verify_kernel
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def sg_result(sg2042):
    return run_suite(sg2042, RunConfig(threads=1, precision="fp32"))


class TestRunSuite:
    def test_covers_all_64_kernels(self, sg_result):
        assert len(sg_result.runs) == 64

    def test_times_positive(self, sg_result):
        assert all(r.seconds > 0 for r in sg_result.runs.values())

    def test_deterministic(self, sg2042):
        cfg = RunConfig(threads=2, precision="fp32")
        a = run_suite(sg2042, cfg)
        b = run_suite(sg2042, cfg)
        for name in a.runs:
            assert a.time(name) == b.time(name)

    def test_noise_averaging_close_to_model(self, sg2042):
        noisy = run_suite(
            sg2042, RunConfig(threads=1, noise_sigma=0.02, runs=5)
        )
        exact = run_suite(
            sg2042, RunConfig(threads=1, noise_sigma=0.0, runs=1)
        )
        for name in noisy.runs:
            assert noisy.time(name) == pytest.approx(
                exact.time(name), rel=0.1
            )

    def test_kernel_subset(self, sg2042):
        stream = kernels_in_class(KernelClass.STREAM)
        result = run_suite(sg2042, RunConfig(), kernels=stream)
        assert set(result.runs) == {"ADD", "COPY", "DOT", "MUL", "TRIAD"}

    def test_empty_kernel_list_rejected(self, sg2042):
        with pytest.raises(ConfigError):
            run_suite(sg2042, RunConfig(), kernels=[])

    def test_time_lookup_unknown_kernel(self, sg_result):
        with pytest.raises(ConfigError):
            sg_result.time("NOPE")

    def test_class_means_cover_all_classes(self, sg_result):
        means = sg_result.class_means()
        assert set(means) == set(KernelClass)
        assert all(v > 0 for v in means.values())

    def test_vectorize_false_runs_scalar(self, sg2042):
        result = run_suite(
            sg2042, RunConfig(threads=1, vectorize=False)
        )
        assert not any(
            r.prediction.vector_executed for r in result.runs.values()
        )

    def test_size_scale_shrinks_footprints(self, sg2042):
        big = run_suite(sg2042, RunConfig(noise_sigma=0.0, runs=1))
        small = run_suite(
            sg2042,
            RunConfig(noise_sigma=0.0, runs=1, size_scale=0.1),
        )
        assert small.time("TRIAD") < big.time("TRIAD")

    def test_total_seconds(self, sg_result):
        assert sg_result.total_seconds() == pytest.approx(
            sum(r.seconds for r in sg_result.runs.values())
        )


class TestSuiteResultEdgeCases:
    def test_empty_result_rejected(self, sg_result):
        with pytest.raises(ConfigError, match="no kernels"):
            SuiteResult(
                cpu_name="x", config=RunConfig(), runs={}
            )

    def test_empty_runs_allowed_with_failures(self):
        record = FailureRecord(
            kernel="TRIAD", error_type="TransientError",
            message="flake", attempts=3,
        )
        result = SuiteResult(
            cpu_name="x", config=RunConfig(), runs={},
            failures=(record,),
        )
        assert result.total_seconds() == 0.0
        assert result.class_means() == {}
        assert result.total_attempts() == 3

    def test_time_is_case_insensitive(self, sg_result):
        assert sg_result.time("triad") == sg_result.time("TRIAD")
        assert sg_result.time("Triad") == sg_result.time("TRIAD")

    def test_unknown_kernel_message_names_kernel(self, sg_result):
        with pytest.raises(ConfigError, match="NOPE"):
            sg_result.time("NOPE")

    def test_failed_kernels_empty_on_clean_run(self, sg_result):
        assert sg_result.failed_kernels() == {}

    def test_attempts_default_to_one(self, sg_result):
        assert all(r.attempts == 1 for r in sg_result.runs.values())
        assert sg_result.total_attempts() == 64


class TestVerifyKernel:
    def test_returns_finite_checksum(self):
        value = verify_kernel(get_kernel("TRIAD"), 1000, DType.FP64)
        assert value == value  # not NaN

    def test_all_kernels_verify_both_precisions(self, kernels):
        for kernel in kernels:
            for precision in (DType.FP32, DType.FP64):
                verify_kernel(kernel, 512, precision, reps=2)

    def test_validation(self):
        with pytest.raises(ConfigError):
            verify_kernel(get_kernel("TRIAD"), 0, DType.FP64)
