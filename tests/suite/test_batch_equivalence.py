"""Golden equivalence: the batch engine is bit-identical to scalar.

The vectorized whole-suite engine (:mod:`repro.perfmodel.batch` +
``run_suite(engine="batch")``) replays the scalar model's float64
operations as NumPy array expressions; nothing it does is allowed to
change a single bit of any result, failure record or grid ordering.
These tests pin that contract: golden full grids on the SG2042 and AMD
Rome, a seeded randomized sweep over every catalog machine, failure-
policy equivalence (including the scalar-fallback path), cache-counter
parity, the chaos/reference-mode scalar degradation, and the process
worker pool.
"""

import random

import pytest

from repro.compiler.vectorizer import analyze
from repro.kernels.base import Kernel, KernelClass, KernelTraits
from repro.kernels.registry import all_kernels
from repro.machine.vector import DType
from repro.perfmodel.batch import (
    lower_kernels,
    predict_batch,
    predict_grid,
)
from repro.perfmodel.execution import simulate_kernel
from repro.perfmodel.placement import reference_mode
from repro.resilience import chaos
from repro.resilience.faults import transient_plan
from repro.suite.config import Placement, Precision, RunConfig
from repro.suite.memo import PredictionMemo, SuiteCaches
from repro.suite.runner import run_suite
from repro.suite.sweep import sweep
from repro.util.errors import ConfigError, ReproError

THREADS = (1, 5, 8, 64)
PLACEMENTS = (Placement.BLOCK, Placement.CYCLIC)
PRECISIONS = (Precision.FP32, Precision.FP64)


def grid_sweep(cpu, engine, **kwargs):
    threads = tuple(
        t for t in THREADS if t <= cpu.topology.num_cores
    )
    return sweep(
        cpu,
        kernels=all_kernels(),
        threads=threads,
        placements=PLACEMENTS,
        precisions=PRECISIONS,
        engine=engine,
        **kwargs,
    )


class TestGoldenGrids:
    def test_sg2042_batch_matches_scalar_uncached(self, sg2042):
        scalar = grid_sweep(
            sg2042, "scalar", caches=SuiteCaches.disabled()
        )
        batch = grid_sweep(sg2042, "batch")
        assert batch == scalar

    def test_amd_rome_batch_matches_scalar_uncached(self, amd_rome):
        scalar = grid_sweep(
            amd_rome, "scalar", caches=SuiteCaches.disabled()
        )
        batch = grid_sweep(amd_rome, "batch")
        assert batch == scalar

    def test_batch_matches_scalar_with_identical_cache_setup(self, sg2042):
        # Same caches on both sides: counters must agree too — the
        # batch peek/put protocol scores exactly the hits and misses
        # get_or_compute would have.
        scalar = grid_sweep(sg2042, "scalar", caches=SuiteCaches())
        batch = grid_sweep(sg2042, "batch", caches=SuiteCaches())
        assert batch == scalar
        assert batch.cache_stats == scalar.cache_stats
        configs = sum(
            1 for _ in THREADS
        ) * len(PLACEMENTS) * len(PRECISIONS)
        assert batch.cache_stats.compile_misses == 64
        assert batch.cache_stats.compile_hits == 64 * (configs - 1)
        assert (
            batch.cache_stats.predict_misses
            + batch.cache_stats.predict_hits
            == 64 * configs
        )

    def test_batch_with_caches_disabled(self, sg2042):
        plain = grid_sweep(sg2042, "batch")
        uncached = grid_sweep(
            sg2042, "batch", caches=SuiteCaches.disabled()
        )
        assert uncached == plain


class TestRandomizedEquivalence:
    def test_random_points_on_every_machine(self, all_cpus, kernels):
        """Property test: random kernel subsets, placements, thread
        counts and dtypes on all seven machines — batch equals scalar
        point for point."""
        rng = random.Random(20260806)
        for cpu in all_cpus.values():
            ncores = cpu.topology.num_cores
            compiler = RunConfig(threads=1).resolve_compiler(cpu)
            reports_all = {
                k.name: analyze(compiler, k, cpu.core.isa)
                for k in kernels
            }
            for _ in range(6):
                subset = rng.sample(kernels, rng.randint(1, 12))
                nthreads = rng.randint(1, ncores)
                cores = tuple(rng.sample(range(ncores), nthreads))
                precision = rng.choice((DType.FP32, DType.FP64))
                reports = [reports_all[k.name] for k in subset]
                batch = predict_batch(
                    cpu, subset, cores, precision, reports
                )
                for kernel, report, got in zip(subset, reports, batch):
                    want = simulate_kernel(
                        kernel, cpu, cores, precision, report
                    )
                    assert got == want, (
                        f"{cpu.name} {kernel.name} cores={cores} "
                        f"{precision.label}: {got} != {want}"
                    )

    def test_explicit_sizes_match_scalar(self, sg2042, kernels):
        compiler = RunConfig(threads=1).resolve_compiler(sg2042)
        subset = kernels[:6]
        reports = [analyze(compiler, k, sg2042.core.isa) for k in subset]
        sizes = [17, 1000, 54321, 1, 99999, 123456]
        cores = (0, 4, 17)
        batch = predict_batch(
            sg2042, subset, cores, DType.FP64, reports, sizes
        )
        for kernel, report, size, got in zip(
            subset, reports, sizes, batch
        ):
            assert got == simulate_kernel(
                kernel, sg2042, cores, DType.FP64, report, n=size
            )


class TestBatchValidation:
    def test_report_count_mismatch(self, sg2042, kernels):
        with pytest.raises(ReproError):
            predict_batch(sg2042, kernels[:3], (0,), DType.FP64, [])

    def test_size_count_mismatch(self, sg2042, kernels):
        compiler = RunConfig(threads=1).resolve_compiler(sg2042)
        reports = [analyze(compiler, kernels[0], sg2042.core.isa)]
        with pytest.raises(ReproError):
            predict_batch(
                sg2042, kernels[:1], (0,), DType.FP64, reports, [1, 2]
            )

    def test_duplicate_cores_rejected(self, sg2042, kernels):
        compiler = RunConfig(threads=1).resolve_compiler(sg2042)
        reports = [analyze(compiler, kernels[0], sg2042.core.isa)]
        with pytest.raises(ReproError):
            predict_batch(
                sg2042, kernels[:1], (0, 0), DType.FP64, reports
            )

    def test_empty_kernel_list_returns_empty(self, sg2042):
        assert predict_batch(sg2042, [], (0,), DType.FP64, []) == []

    def test_lowering_is_cached(self, kernels):
        soa_a = lower_kernels(tuple(kernels))
        soa_b = lower_kernels(tuple(kernels))
        assert soa_a is soa_b
        assert len(soa_a) == len(kernels)


class TestPredictGrid:
    """The 2-D whole-grid pass equals per-configuration predict_batch."""

    @staticmethod
    def _grid_axes(cpu):
        from repro.openmp.affinity import assign_cores

        placements, precisions = [], []
        for threads in THREADS:
            if threads > cpu.topology.num_cores:
                continue
            for placement in PLACEMENTS:
                for precision in PRECISIONS:
                    placements.append(
                        assign_cores(cpu.topology, threads, placement)
                    )
                    precisions.append(precision)
        return placements, precisions

    @pytest.mark.parametrize("machine", ["sg2042", "amd_rome"])
    def test_full_grid_matches_per_point_batch(
        self, machine, request, kernels
    ):
        cpu = request.getfixturevalue(machine)
        compiler = RunConfig(threads=1).resolve_compiler(cpu)
        reports = [analyze(compiler, k, cpu.core.isa) for k in kernels]
        placements, precisions = self._grid_axes(cpu)
        grid = predict_grid(cpu, kernels, placements, precisions, reports)
        assert len(grid) == len(placements)
        for cores, precision, got in zip(placements, precisions, grid):
            want = predict_batch(cpu, kernels, cores, precision, reports)
            assert got == want, f"{cpu.name} cores={cores} {precision}"

    def test_random_grids_on_every_machine(self, all_cpus, kernels):
        rng = random.Random(20260807)
        for cpu in all_cpus.values():
            ncores = cpu.topology.num_cores
            compiler = RunConfig(threads=1).resolve_compiler(cpu)
            subset = rng.sample(kernels, rng.randint(1, 10))
            reports = [
                analyze(compiler, k, cpu.core.isa) for k in subset
            ]
            placements = [
                tuple(rng.sample(range(ncores), rng.randint(1, ncores)))
                for _ in range(5)
            ]
            precisions = [
                rng.choice((DType.FP32, DType.FP64)) for _ in placements
            ]
            grid = predict_grid(
                cpu, subset, placements, precisions, reports
            )
            for cores, precision, got in zip(
                placements, precisions, grid
            ):
                want = predict_batch(
                    cpu, subset, cores, precision, reports
                )
                assert got == want, f"{cpu.name} cores={cores}"

    def test_explicit_sizes_and_abstentions(self, sg2042, kernels):
        # An exploding kernel abstains (None) identically in the 2-D
        # pass, in every configuration of the grid.
        subset = [kernels[0], _ExplodingKernel(), kernels[1]]
        compiler = RunConfig(threads=1).resolve_compiler(sg2042)
        reports = [analyze(compiler, k, sg2042.core.isa) for k in subset]
        sizes = [4096, _ExplodingKernel.default_size, 123457]
        placements = [(0,), (0, 8, 32, 40), tuple(range(64))]
        precisions = [DType.FP64, DType.FP32, DType.FP64]
        grid = predict_grid(
            sg2042, subset, placements, precisions, reports, sizes
        )
        # At 1 and 4 threads the exploder's per-thread chunk overflows
        # and both engines abstain; at 64 threads it stays finite.
        assert [got[1] is None for got in grid] == [True, True, False]
        for cores, precision, got in zip(placements, precisions, grid):
            assert got == predict_batch(
                sg2042, subset, cores, precision, reports, sizes
            )

    def test_axis_length_mismatch(self, sg2042, kernels):
        with pytest.raises(ReproError):
            predict_grid(
                sg2042, kernels[:1], [(0,)], [DType.FP64, DType.FP32], []
            )

    def test_duplicate_cores_in_any_placement(self, sg2042, kernels):
        compiler = RunConfig(threads=1).resolve_compiler(sg2042)
        reports = [analyze(compiler, kernels[0], sg2042.core.isa)]
        with pytest.raises(ReproError):
            predict_grid(
                sg2042, kernels[:1], [(0, 1), (2, 2)],
                [DType.FP64, DType.FP64], reports,
            )

    def test_empty_grid_and_empty_kernels(self, sg2042, kernels):
        assert predict_grid(sg2042, kernels[:2], [], [], [None, None]) \
            == []
        assert predict_grid(
            sg2042, [], [(0,), (1,)], [DType.FP64, DType.FP32], []
        ) == [[], []]


class _ExplodingKernel(Kernel):
    """Overflows the time prediction to +inf: the scalar engine raises
    ``SimulationError`` and the batch engine must abstain (return None)
    so the recorded failure is byte-identical."""

    name = "EXPLODER"
    klass = KernelClass.STREAM
    default_size = 100_000_000
    reps = 700
    traits = KernelTraits(
        flops_per_iter=1e308,
        reads_per_iter=2.0,
        writes_per_iter=1.0,
        footprint_elems=3.0,
    )

    def prepare(self, n, dtype):  # pragma: no cover - never executed
        return {}

    def execute(self, ws):  # pragma: no cover - never executed
        pass


class TestFailureEquivalence:
    def test_exploding_kernel_fails_identically_under_skip(self, sg2042):
        kernels = [all_kernels()[0], _ExplodingKernel(), all_kernels()[1]]
        config = RunConfig(threads=8)
        scalar = run_suite(
            sg2042, config, kernels=kernels, policy="skip",
            engine="scalar",
        )
        batch = run_suite(
            sg2042, config, kernels=kernels, policy="skip",
            engine="batch",
        )
        assert batch == scalar
        assert len(batch.failures) == 1
        assert batch.failures[0].kernel == "EXPLODER"
        assert batch.failures[0].attempts == 1
        assert "finite" in batch.failures[0].message

    def test_exploding_kernel_aborts_identically(self, sg2042):
        kernels = [_ExplodingKernel()]
        config = RunConfig(threads=8)
        with pytest.raises(ReproError) as scalar_exc:
            run_suite(sg2042, config, kernels=kernels, engine="scalar")
        with pytest.raises(ReproError) as batch_exc:
            run_suite(sg2042, config, kernels=kernels, engine="batch")
        assert str(batch_exc.value) == str(scalar_exc.value)
        assert type(batch_exc.value) is type(scalar_exc.value)

    def test_retry_attempt_counts_match(self, sg2042):
        kernels = [all_kernels()[0], _ExplodingKernel()]
        config = RunConfig(threads=2)
        scalar = run_suite(
            sg2042, config, kernels=kernels, policy="retry",
            engine="scalar",
        )
        batch = run_suite(
            sg2042, config, kernels=kernels, policy="retry",
            engine="batch",
        )
        assert batch == scalar
        assert batch.failures[0].attempts == scalar.failures[0].attempts


class TestRunSuiteEngine:
    def test_unknown_engine_rejected(self, sg2042):
        with pytest.raises(ConfigError):
            run_suite(sg2042, RunConfig(threads=1), engine="gpu")

    def test_noise_and_runs_match_scalar(self, sg2042):
        config = RunConfig(threads=8, noise_sigma=0.05, runs=3)
        scalar = run_suite(sg2042, config, engine="scalar")
        batch = run_suite(sg2042, config, engine="batch")
        assert batch == scalar

    def test_vectorize_disabled_matches_scalar(self, sg2042):
        config = RunConfig(threads=4, vectorize=False)
        scalar = run_suite(sg2042, config, engine="scalar")
        batch = run_suite(sg2042, config, engine="batch")
        assert batch == scalar

    def test_size_scale_matches_scalar(self, sg2042):
        config = RunConfig(threads=4, size_scale=0.37)
        scalar = run_suite(sg2042, config, engine="scalar")
        batch = run_suite(sg2042, config, engine="batch")
        assert batch == scalar


class TestForcedScalarDegradation:
    def test_chaos_plan_forces_scalar_and_memo_bypass(self, sg2042):
        caches = SuiteCaches()
        config = RunConfig(threads=2)
        with chaos.inject_faults(transient_plan(seed=7, probability=0.0)):
            result = run_suite(
                sg2042, config, caches=caches, engine="batch"
            )
        # The batch prefetch (which would have peeked/put) must not
        # have run: under an active plan the memo stays untouched.
        assert result.cache_stats.predict_hits == 0
        assert result.cache_stats.predict_misses == 0
        assert result.cache_stats.compile_misses == 64

    def test_reference_mode_forces_scalar(self, sg2042):
        config = RunConfig(threads=8)
        plain = run_suite(sg2042, config, engine="scalar")
        with reference_mode():
            referenced = run_suite(sg2042, config, engine="batch")
        assert referenced == plain

    def test_chaos_faults_fire_identically_under_batch(self, sg2042):
        kernels = all_kernels()[:6]
        plan = transient_plan(seed=11, probability=0.5)
        with chaos.inject_faults(plan):
            scalar = sweep(
                sg2042, kernels=kernels, threads=(1, 4),
                policy="skip", engine="scalar",
            )
        with chaos.inject_faults(plan):
            batch = sweep(
                sg2042, kernels=kernels, threads=(1, 4),
                policy="skip", engine="batch",
            )
        assert batch == scalar


class TestProcessWorkers:
    def test_process_pool_bit_identical(self, sg2042):
        kernels = all_kernels()[:10]
        grid = dict(
            threads=(1, 8), placements=PLACEMENTS,
        )
        serial = sweep(sg2042, kernels=kernels, **grid)
        proc = sweep(
            sg2042, kernels=kernels, workers=2,
            workers_mode="process", **grid,
        )
        assert proc == serial

    def test_unknown_workers_mode_rejected(self, sg2042):
        with pytest.raises(ConfigError):
            sweep(
                sg2042, kernels=all_kernels()[:1],
                workers_mode="fiber",
            )

    def test_unknown_sweep_engine_rejected(self, sg2042):
        with pytest.raises(ConfigError):
            sweep(sg2042, kernels=all_kernels()[:1], engine="gpu")

    def test_reference_mode_falls_back_to_threads(self, sg2042):
        # reference_mode() is process-local state: process workers must
        # not be used (they would silently run the fast path). The
        # result must still equal the reference.
        kernels = all_kernels()[:6]
        with reference_mode():
            ref = sweep(
                sg2042, kernels=kernels, threads=(1, 8),
                caches=SuiteCaches.disabled(), workers=2,
                workers_mode="process",
            )
        plain = sweep(sg2042, kernels=kernels, threads=(1, 8))
        assert ref == plain


class TestMemoPeekPut:
    def test_peek_counts_hit_only_when_present(self):
        memo = PredictionMemo()
        key = (1, "TRIAD", (0,), "fp64", None, 100)
        assert memo.peek(key) is None
        assert memo.hits == 0
        assert memo.misses == 0
        memo.put(key, "value")
        assert memo.misses == 1
        assert len(memo) == 1
        assert memo.peek(key) == "value"
        assert memo.hits == 1

    def test_put_then_get_or_compute_hits(self):
        memo = PredictionMemo()
        key = (2, "GEMM", (0, 1), "fp32", None, 50)
        memo.put(key, "batched")
        assert memo.get_or_compute(key, lambda: "scalar") == "batched"
        assert memo.hits == 1
        assert memo.misses == 1
