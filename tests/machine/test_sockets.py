"""The socket topology tier + interconnect model (the 2502.10320
multi-socket study's machinery)."""

import pytest

from repro.machine.cpu import SocketInterconnect
from repro.machine.topology import NumaTopology
from repro.registry import default_registry
from repro.util.errors import ConfigError


def _two_socket_topology():
    return NumaTopology(
        numa_nodes=((0, 1), (2, 3)),
        clusters=((0, 1), (2, 3)),
        sockets=((0, 1), (2, 3)),
    )


class TestSocketTopology:
    def test_single_socket_default(self):
        topo = NumaTopology(numa_nodes=((0, 1),), clusters=((0,), (1,)))
        assert topo.num_sockets == 1
        assert topo.socket_of(0) == 0
        assert topo.sockets_spanned((0, 1)) == 1

    def test_two_sockets(self):
        topo = _two_socket_topology()
        assert topo.num_sockets == 2
        assert topo.socket_of(0) == 0
        assert topo.socket_of(3) == 1
        assert topo.sockets_spanned((0, 1)) == 1
        assert topo.sockets_spanned((0, 2)) == 2

    def test_sockets_must_partition_cores(self):
        with pytest.raises(ConfigError):
            NumaTopology(
                numa_nodes=((0, 1), (2, 3)),
                clusters=((0, 1), (2, 3)),
                sockets=((0, 1),),  # cores 2, 3 unassigned
            )

    def test_numa_node_cannot_straddle_sockets(self):
        with pytest.raises(ConfigError):
            NumaTopology(
                numa_nodes=((0, 1, 2, 3),),
                clusters=((0, 1), (2, 3)),
                sockets=((0, 1), (2, 3)),
            )

    def test_socket_of_unknown_core(self):
        with pytest.raises(ConfigError):
            _two_socket_topology().socket_of(99)

    def test_lscpu_reports_sockets(self):
        assert "Socket(s):           2" in _two_socket_topology().lscpu()


class TestSocketInterconnect:
    def test_sustained_bandwidth(self):
        ic = SocketInterconnect(bandwidth_bytes=10e9, latency_ns=300.0,
                                efficiency=0.5)
        assert ic.sustained_bandwidth == pytest.approx(5e9)

    @pytest.mark.parametrize("kwargs", [
        dict(bandwidth_bytes=0, latency_ns=1.0),
        dict(bandwidth_bytes=1e9, latency_ns=-1.0),
        dict(bandwidth_bytes=1e9, latency_ns=1.0, efficiency=0.0),
        dict(bandwidth_bytes=1e9, latency_ns=1.0, efficiency=1.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            SocketInterconnect(**kwargs)

    def test_multi_socket_requires_interconnect(self):
        from dataclasses import replace

        cpu = default_registry().machine("sg2042_2s")
        with pytest.raises(ConfigError, match="interconnect"):
            replace(cpu, interconnect=None)

    def test_interconnect_requires_multi_socket(self):
        from dataclasses import replace

        one = default_registry().machine("sg2042")
        two = default_registry().machine("sg2042_2s")
        with pytest.raises(ConfigError):
            replace(one, interconnect=two.interconnect)


class TestSocketMemoryTerm:
    def test_single_socket_machines_bit_identical(self):
        """The socket term must not perturb any single-socket machine:
        the paper's digests are pinned."""
        digests = {
            "sg2042": 1150852492293290706,
            "visionfive_v2": 5458569019357195070,
            "visionfive_v1": 4394393844775355962,
            "amd_rome": 1776811749281377299,
            "intel_broadwell": 286117057579522846,
            "intel_icelake": 7260075294467758154,
            "intel_sandybridge": 5719493140223172425,
        }
        from repro.suite.memo import machine_digest

        for name, expected in digests.items():
            cpu = default_registry().machine(name)
            assert machine_digest(cpu) == expected, name

    def test_spanning_sockets_cuts_per_thread_bandwidth(self):
        from repro.perfmodel.memory import dram_bandwidth_per_thread

        cpu = default_registry().machine("sg2042_2s")
        one_socket = tuple(range(64))
        two_sockets = tuple(range(128))
        share_1s = dram_bandwidth_per_thread(cpu, 0, one_socket)
        share_2s = dram_bandwidth_per_thread(cpu, 0, two_sockets)
        # Per-thread DRAM bandwidth collapses across the socket link —
        # not merely the halving expected from doubled thread count.
        assert share_2s < share_1s / 2.0

    def test_one_socket_of_the_2s_matches_plain_sg2042_shape(self):
        """Threads pinned to socket 0 never pay the interconnect term."""
        from repro.perfmodel.memory import dram_bandwidth_per_thread

        two = default_registry().machine("sg2042_2s")
        cores = tuple(range(32))
        assert two.topology.sockets_spanned(cores) == 1
        # Identical to a run with the interconnect hypothetically
        # absent: the adjustment is gated on sockets spanned.
        from repro.perfmodel.memory import _socket_adjusted_share

        share = dram_bandwidth_per_thread(two, 0, cores)
        assert _socket_adjusted_share(two, share, cores) == share

    def test_batch_and_scalar_engines_agree_on_2s(self):
        """The socket term is placement-global, so the vectorized batch
        engine and the scalar engine stay bit-identical."""
        from repro.kernels.registry import get_kernel
        from repro.suite.config import RunConfig
        from repro.suite.runner import run_suite

        cpu = default_registry().machine("sg2042_2s")
        kernels = [get_kernel("TRIAD"), get_kernel("GEMM")]
        config = RunConfig(threads=128, precision="fp32", runs=1,
                           noise_sigma=0.0)
        scalar = run_suite(cpu, config, kernels, engine="scalar")
        batch = run_suite(cpu, config, kernels, engine="batch")
        for name in ("TRIAD", "GEMM"):
            assert scalar.runs[name].seconds == batch.runs[name].seconds


class TestSerializeSockets:
    def test_round_trip_preserves_sockets_and_interconnect(self):
        from repro.machine.serialize import cpu_from_dict, cpu_to_dict

        cpu = default_registry().machine("sg2042_2s")
        data = cpu_to_dict(cpu)
        assert data["topology"]["sockets"]
        assert data["interconnect"]["latency_ns"] == 350.0
        assert cpu_from_dict(data) == cpu

    def test_single_socket_omits_optional_keys(self):
        """Optional keys are omitted when default so every pre-socket
        document and digest stays byte-identical."""
        from repro.machine.serialize import cpu_to_dict

        data = cpu_to_dict(default_registry().machine("sg2042"))
        assert "sockets" not in data["topology"]
        assert "interconnect" not in data
