"""Core/memory/CPU model tests."""

import pytest

from repro.machine.cpu import CoreModel, MemorySystem
from repro.machine.vector import DType, rvv_0_7_1, scalar_only
from repro.util.errors import ConfigError
from repro.util.units import GHZ


def c920_like(**kw):
    defaults = dict(
        name="test-core",
        clock_hz=2.0 * GHZ,
        fp_ops_per_cycle=2.0,
        vector_pipes=1,
        isa=rvv_0_7_1(),
        scalar_efficiency=0.6,
        vector_efficiency=0.5,
    )
    defaults.update(kw)
    return CoreModel(**defaults)


class TestCoreModel:
    def test_scalar_rate(self):
        core = c920_like()
        assert core.scalar_flops_per_second(DType.FP64) == pytest.approx(
            2.0e9 * 2.0 * 0.6
        )

    def test_vector_fp32_rate(self):
        core = c920_like()
        # 1 pipe * 4 lanes * 2 (FMA) * 0.5 efficiency.
        assert core.vector_flops_per_second(DType.FP32) == pytest.approx(
            2.0e9 * 1 * 4 * 2 * 0.5
        )

    def test_vector_fp64_falls_back_to_scalar(self):
        """The C920-on-FP64 case: 'vector' FP64 executes at scalar rate."""
        core = c920_like()
        assert core.vector_flops_per_second(
            DType.FP64
        ) == core.scalar_flops_per_second(DType.FP64)

    def test_inorder_penalty_applies(self):
        ooo = c920_like()
        inorder = c920_like(out_of_order=False, inorder_penalty=0.5)
        assert inorder.scalar_flops_per_second(DType.FP64) == pytest.approx(
            0.5 * ooo.scalar_flops_per_second(DType.FP64)
        )

    def test_flops_dispatch(self):
        core = c920_like()
        assert core.flops_per_second(
            DType.FP32, vectorized=True
        ) > core.flops_per_second(DType.FP32, vectorized=False)

    def test_vector_pipes_without_isa_rejected(self):
        with pytest.raises(ConfigError):
            c920_like(isa=scalar_only())

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ConfigError):
            c920_like(scalar_efficiency=1.5)

    def test_bad_clock_rejected(self):
        with pytest.raises(ConfigError):
            c920_like(clock_hz=0)


class TestMemorySystem:
    def _mem(self, **kw):
        defaults = dict(
            controllers=4,
            channel_bandwidth_bytes=25.6e9,
            efficiency=0.25,
            numa_local=True,
        )
        defaults.update(kw)
        return MemorySystem(**defaults)

    def test_package_bandwidth(self):
        assert self._mem().package_bandwidth == pytest.approx(
            4 * 25.6e9 * 0.25
        )

    def test_bandwidth_per_numa(self):
        assert self._mem().bandwidth_per_numa(4) == pytest.approx(
            25.6e9 * 0.25
        )

    def test_uneven_controllers_rejected(self):
        with pytest.raises(ConfigError):
            self._mem(controllers=3).bandwidth_per_numa(4)

    def test_thrash_penalty(self):
        mem = self._mem(thrash_threshold=8, thrash_exponent=2.0)
        full = mem.effective_region_bandwidth(4, 8)
        thrashed = mem.effective_region_bandwidth(4, 16)
        assert thrashed == pytest.approx(full * 0.25)

    def test_no_thrash_below_threshold(self):
        mem = self._mem(thrash_threshold=8)
        assert mem.effective_region_bandwidth(
            4, 4
        ) == mem.bandwidth_per_numa(4)

    def test_no_thrash_when_disabled(self):
        mem = self._mem(thrash_threshold=None)
        assert mem.effective_region_bandwidth(
            4, 64
        ) == mem.bandwidth_per_numa(4)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ConfigError):
            self._mem(efficiency=0.0)
