"""Vector ISA tests — the FP64 asymmetry is the paper's core finding."""

import pytest

from repro.machine.vector import (
    DType,
    VectorISA,
    avx,
    avx2,
    avx512,
    rvv_0_7_1,
    rvv_1_0,
    scalar_only,
)
from repro.util.errors import ConfigError


class TestDType:
    def test_bits_and_bytes(self):
        assert DType.FP64.bits == 64
        assert DType.FP64.bytes == 8
        assert DType.FP32.bytes == 4

    def test_from_label(self):
        assert DType.from_label("fp32") is DType.FP32
        assert DType.from_label("int64") is DType.INT64

    def test_from_label_unknown(self):
        with pytest.raises(ConfigError):
            DType.from_label("fp128")

    def test_float_flags(self):
        assert DType.FP32.is_float
        assert not DType.INT32.is_float


class TestRvv071:
    """The C920's vector unit: the paper's measurements say no FP64."""

    def test_no_fp64_vectorization(self):
        isa = rvv_0_7_1()
        assert not isa.supports(DType.FP64)
        assert isa.lanes(DType.FP64) == 1

    def test_fp32_four_lanes(self):
        assert rvv_0_7_1().lanes(DType.FP32) == 4

    def test_fp16_eight_lanes(self):
        assert rvv_0_7_1().lanes(DType.FP16) == 8

    def test_integers_vectorize(self):
        # INT64 vectorizes even though FP64 does not — drives the one
        # positive FP64 whisker in Figure 2 (REDUCE3_INT).
        isa = rvv_0_7_1()
        assert isa.supports(DType.INT64)
        assert isa.lanes(DType.INT64) == 2

    def test_is_vla(self):
        assert rvv_0_7_1().vla

    def test_version(self):
        assert rvv_0_7_1().version == "0.7.1"


class TestRvv10:
    def test_fp64_supported(self):
        assert rvv_1_0().supports(DType.FP64)
        assert rvv_1_0().lanes(DType.FP64) == 2

    def test_version_differs_from_071(self):
        assert rvv_1_0().version != rvv_0_7_1().version


class TestX86:
    def test_avx2_fp64_four_lanes(self):
        assert avx2().lanes(DType.FP64) == 4

    def test_avx512_fp64_eight_lanes(self):
        assert avx512().lanes(DType.FP64) == 8

    def test_avx_follows_paper_width(self):
        # The paper treats Sandybridge AVX as 128-bit, same as the C920.
        assert avx().width_bits == 128
        assert avx().lanes(DType.FP64) == 2

    def test_avx_no_integer_vectorization(self):
        assert not avx().supports(DType.INT32)

    def test_x86_is_not_vla(self):
        assert not avx2().vla


class TestScalarOnly:
    def test_u74_has_no_vectors(self):
        isa = scalar_only()
        assert isa.is_scalar_only
        for dtype in DType:
            assert isa.lanes(dtype) == 1
            assert not isa.supports(dtype)


class TestValidation:
    def test_bad_width_rejected(self):
        with pytest.raises(ConfigError):
            VectorISA(name="bad", width_bits=100)

    def test_zero_width_allowed(self):
        assert VectorISA(name="none", width_bits=0).is_scalar_only
