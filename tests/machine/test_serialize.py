"""Machine serialization round-trip tests."""

import json

import pytest

from repro.machine import catalog
from repro.machine.serialize import (
    cpu_from_dict,
    cpu_to_dict,
    isa_from_dict,
    isa_to_dict,
    load_cpu,
    save_cpu,
)
from repro.machine.vector import avx2, rvv_0_7_1
from repro.util.errors import ConfigError


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(catalog.all_cpus()))
    def test_all_catalog_machines(self, name):
        cpu = catalog.all_cpus()[name]
        assert cpu_from_dict(cpu_to_dict(cpu)) == cpu

    def test_dict_is_json_compatible(self, sg2042):
        text = json.dumps(cpu_to_dict(sg2042))
        assert cpu_from_dict(json.loads(text)) == sg2042

    @pytest.mark.parametrize("isa", [rvv_0_7_1(), avx2()])
    def test_isa_roundtrip(self, isa):
        assert isa_from_dict(isa_to_dict(isa)) == isa


class TestFiles:
    def test_save_load(self, sg2042, tmp_path):
        path = tmp_path / "sg2042.json"
        save_cpu(sg2042, path)
        assert load_cpu(path) == sg2042

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            load_cpu(tmp_path / "nope.json")

    def test_loaded_machine_usable_end_to_end(self, sg2042, tmp_path):
        from repro.suite.config import RunConfig
        from repro.suite.runner import run_suite

        path = tmp_path / "machine.json"
        save_cpu(sg2042, path)
        loaded = load_cpu(path)
        result = run_suite(
            loaded, RunConfig(threads=1, runs=1, noise_sigma=0.0)
        )
        reference = run_suite(
            sg2042, RunConfig(threads=1, runs=1, noise_sigma=0.0)
        )
        for name in reference.runs:
            assert result.time(name) == reference.time(name)

    def test_custom_machine_edit(self, sg2042, tmp_path):
        """The what-if workflow: edit the JSON, load, get a new model."""
        data = cpu_to_dict(sg2042)
        data["name"] = "SG2042-overclock"
        data["core"]["clock_hz"] = 3.0e9
        fast = cpu_from_dict(data)
        assert fast.core.clock_hz == 3.0e9
        assert fast != sg2042


class TestValidation:
    def test_missing_field_rejected(self, sg2042):
        data = cpu_to_dict(sg2042)
        del data["core"]
        with pytest.raises(ConfigError, match="missing field"):
            cpu_from_dict(data)

    def test_malformed_core_rejected(self, sg2042):
        data = cpu_to_dict(sg2042)
        data["core"]["bogus_field"] = 1
        with pytest.raises(ConfigError, match="malformed"):
            cpu_from_dict(data)

    def test_invalid_values_caught_by_constructors(self, sg2042):
        data = cpu_to_dict(sg2042)
        data["core"]["clock_hz"] = -1
        with pytest.raises(ConfigError):
            cpu_from_dict(data)
