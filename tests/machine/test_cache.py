"""Cache hierarchy description tests."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.cache import CacheHierarchy, CacheLevel, Sharing
from repro.util.errors import ConfigError
from repro.util.units import KIB, MIB


def l1(**kw):
    defaults = dict(
        name="L1D", capacity_bytes=32 * KIB, sharing=Sharing.CORE,
        associativity=8, latency_cycles=4,
    )
    defaults.update(kw)
    return CacheLevel(**defaults)


class TestCacheLevel:
    def test_num_sets(self):
        assert l1().num_sets == 32 * KIB // 64 // 8

    def test_describe(self):
        text = l1().describe()
        assert "32.0KiB" in text and "8-way" in text

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            l1(capacity_bytes=0)

    def test_nonpow2_line_rejected(self):
        with pytest.raises(ConfigError):
            l1(line_bytes=48)

    def test_capacity_not_multiple_of_line_rejected(self):
        with pytest.raises(ConfigError):
            l1(capacity_bytes=100)

    def test_lines_not_divisible_by_assoc_rejected(self):
        with pytest.raises(ConfigError):
            l1(capacity_bytes=64 * 10, associativity=3)

    def test_contention_threshold_validation(self):
        with pytest.raises(ConfigError):
            l1(contention_threshold=0)


class TestEffectiveAggregateBandwidth:
    def test_unbounded_when_none(self):
        assert l1().effective_aggregate_bandwidth(16) is None

    def test_no_penalty_below_threshold(self):
        lvl = l1(
            aggregate_bandwidth_bytes_per_cycle=16.0,
            contention_threshold=8,
            contention_exponent=3.0,
        )
        assert lvl.effective_aggregate_bandwidth(8) == 16.0

    def test_penalty_above_threshold(self):
        lvl = l1(
            aggregate_bandwidth_bytes_per_cycle=16.0,
            contention_threshold=8,
            contention_exponent=3.0,
        )
        # (8/16)^3 = 1/8.
        assert lvl.effective_aggregate_bandwidth(16) == pytest.approx(2.0)

    def test_zero_sharers_rejected(self):
        with pytest.raises(ConfigError):
            l1().effective_aggregate_bandwidth(0)

    @given(st.integers(1, 128))
    def test_monotone_nonincreasing_in_sharers(self, sharers):
        lvl = l1(
            aggregate_bandwidth_bytes_per_cycle=32.0,
            contention_threshold=4,
            contention_exponent=2.0,
        )
        a = lvl.effective_aggregate_bandwidth(sharers)
        b = lvl.effective_aggregate_bandwidth(sharers + 1)
        assert b <= a


class TestCacheHierarchy:
    def _hierarchy(self):
        return CacheHierarchy(
            levels=(
                l1(),
                CacheLevel("L2", 1 * MIB, Sharing.CLUSTER,
                           associativity=16, latency_cycles=14),
            )
        )

    def test_iteration_order_innermost_first(self):
        names = [lvl.name for lvl in self._hierarchy()]
        assert names == ["L1D", "L2"]

    def test_level_lookup(self):
        assert self._hierarchy().level("L2").name == "L2"
        with pytest.raises(ConfigError):
            self._hierarchy().level("L9")

    def test_latency_monotonicity_enforced(self):
        with pytest.raises(ConfigError):
            CacheHierarchy(
                levels=(
                    l1(latency_cycles=10),
                    CacheLevel("L2", 1 * MIB, Sharing.CLUSTER,
                               associativity=16, latency_cycles=5),
                )
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            CacheHierarchy(levels=(l1(), l1(latency_cycles=10)))

    def test_mixed_line_sizes_rejected(self):
        with pytest.raises(ConfigError):
            CacheHierarchy(
                levels=(
                    l1(),
                    CacheLevel("L2", 1 * MIB, Sharing.CLUSTER,
                               line_bytes=128, associativity=16,
                               latency_cycles=14),
                )
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            CacheHierarchy(levels=())

    def test_capacity_available_splits_among_sharers(self):
        h = self._hierarchy()
        lvl = h.level("L2")
        assert h.capacity_available(lvl, 4) == lvl.capacity_bytes / 4

    def test_capacity_available_validates(self):
        h = self._hierarchy()
        with pytest.raises(ConfigError):
            h.capacity_available(h.level("L2"), 0)
