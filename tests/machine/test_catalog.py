"""Catalog tests: every published spec the paper states must be encoded
exactly."""

import pytest

from repro.machine import catalog
from repro.machine.cache import Sharing
from repro.machine.vector import DType
from repro.util.units import GHZ, KIB, MIB


class TestSg2042:
    def test_core_count_and_clock(self, sg2042):
        assert sg2042.num_cores == 64
        assert sg2042.core.clock_hz == 2.0 * GHZ

    def test_vector_is_rvv071_128bit(self, sg2042):
        assert sg2042.core.isa.version == "0.7.1"
        assert sg2042.core.isa.width_bits == 128

    def test_no_fp64_vectors(self, sg2042):
        assert not sg2042.core.isa.supports(DType.FP64)

    def test_l1_64k(self, sg2042):
        assert sg2042.caches.level("L1D").capacity_bytes == 64 * KIB

    def test_l2_1mib_per_cluster(self, sg2042):
        l2 = sg2042.caches.level("L2")
        assert l2.capacity_bytes == 1 * MIB
        assert l2.sharing is Sharing.CLUSTER

    def test_l3_totals_64mib(self, sg2042):
        l3 = sg2042.caches.level("L3")
        instances = sg2042.topology.num_numa_nodes
        assert l3.capacity_bytes * instances == 64 * MIB

    def test_four_ddr4_3200_controllers(self, sg2042):
        assert sg2042.memory.controllers == 4
        assert sg2042.memory.channel_bandwidth_bytes == pytest.approx(
            25.6e9
        )

    def test_one_controller_per_numa_region(self, sg2042):
        assert sg2042.memory.numa_local
        assert sg2042.topology.num_numa_nodes == 4

    def test_smt_disabled(self, sg2042):
        assert sg2042.smt == 1


class TestVisionFive:
    def test_v2_four_u74_cores(self, visionfive_v2):
        assert visionfive_v2.num_cores == 4
        assert visionfive_v2.core.name == "SiFive U74"
        assert visionfive_v2.core.clock_hz == 1.5 * GHZ

    def test_v1_two_cores(self, visionfive_v1):
        assert visionfive_v1.num_cores == 2

    def test_u74_has_no_vector_extension(self, visionfive_v2):
        assert visionfive_v2.core.isa.is_scalar_only

    def test_2mib_shared_l2(self, visionfive_v2):
        l2 = visionfive_v2.caches.level("L2")
        assert l2.capacity_bytes == 2 * MIB
        assert l2.sharing is Sharing.PACKAGE

    def test_v1_memory_slower_than_v2(self, visionfive_v1, visionfive_v2):
        """The modelled explanation for the paper's unexplained V1/V2
        gap: a drastically slower DRAM path."""
        assert (
            visionfive_v1.memory.per_core_bandwidth_bytes
            < visionfive_v2.memory.per_core_bandwidth_bytes / 3
        )


class TestX86Table4:
    """Table 4 of the paper, row by row."""

    def test_rome(self, amd_rome):
        assert amd_rome.part == "EPYC 7742"
        assert amd_rome.core.clock_hz == 2.25 * GHZ
        assert amd_rome.num_cores == 64
        assert amd_rome.core.isa.name == "AVX2"

    def test_rome_numa(self, amd_rome):
        assert amd_rome.topology.num_numa_nodes == 4
        assert amd_rome.memory.controllers == 8

    def test_broadwell(self, intel_broadwell):
        assert intel_broadwell.part == "Xeon E5-2695"
        assert intel_broadwell.core.clock_hz == 2.1 * GHZ
        assert intel_broadwell.num_cores == 18
        assert intel_broadwell.core.isa.name == "AVX2"
        assert intel_broadwell.topology.num_numa_nodes == 1

    def test_icelake(self, intel_icelake):
        assert intel_icelake.part == "Xeon 6330"
        assert intel_icelake.core.clock_hz == 2.0 * GHZ
        assert intel_icelake.num_cores == 28
        assert intel_icelake.core.isa.name == "AVX512"
        assert intel_icelake.caches.level("L2").capacity_bytes == 1 * MIB

    def test_sandybridge(self, intel_sandybridge):
        assert intel_sandybridge.part == "Xeon E5-2609"
        assert intel_sandybridge.core.clock_hz == 2.4 * GHZ
        assert intel_sandybridge.num_cores == 4
        assert intel_sandybridge.core.isa.name == "AVX"
        # The paper's 128-bit equal-width claim.
        assert intel_sandybridge.core.isa.width_bits == 128

    def test_all_x86_vectorize_fp64(self, all_cpus):
        for name, cpu in all_cpus.items():
            if name.startswith(("amd", "intel")):
                assert cpu.core.isa.supports(DType.FP64), name


class TestCatalogApi:
    def test_all_cpus_has_seven(self, all_cpus):
        assert len(all_cpus) == 7

    def test_factories_return_fresh_equal_instances(self):
        assert catalog.sg2042() == catalog.sg2042()
        assert catalog.sg2042() is not catalog.sg2042()

    def test_describe_runs_for_all(self, all_cpus):
        for cpu in all_cpus.values():
            text = cpu.describe()
            assert cpu.name in text
