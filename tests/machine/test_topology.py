"""NUMA topology tests, including the SG2042's exact interleaved map."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.topology import (
    NumaTopology,
    contiguous_topology,
    sg2042_topology,
)
from repro.util.errors import ConfigError


class TestSg2042Map:
    """Section 3.2: the non-contiguous core-id map found via lscpu."""

    def test_node0(self):
        topo = sg2042_topology()
        assert set(topo.numa_nodes[0]) == set(range(0, 8)) | set(
            range(16, 24)
        )

    def test_node1(self):
        topo = sg2042_topology()
        assert set(topo.numa_nodes[1]) == set(range(8, 16)) | set(
            range(24, 32)
        )

    def test_node2(self):
        topo = sg2042_topology()
        assert set(topo.numa_nodes[2]) == set(range(32, 40)) | set(
            range(48, 56)
        )

    def test_node3(self):
        topo = sg2042_topology()
        assert set(topo.numa_nodes[3]) == set(range(40, 48)) | set(
            range(56, 64)
        )

    def test_sixteen_clusters_of_four(self):
        topo = sg2042_topology()
        assert topo.num_clusters == 16
        assert all(len(cl) == 4 for cl in topo.clusters)

    def test_cluster_of_consecutive_ids(self):
        topo = sg2042_topology()
        assert topo.cluster_of(0) == topo.cluster_of(3)
        assert topo.cluster_of(3) != topo.cluster_of(4)

    def test_lscpu_rendering(self):
        text = sg2042_topology().lscpu()
        assert "NUMA node0 CPU(s):   0-7,16-23" in text
        assert "NUMA node3 CPU(s):   40-47,56-63" in text
        assert "CPU(s):              64" in text


class TestQueries:
    def test_numa_of(self):
        topo = sg2042_topology()
        assert topo.numa_of(0) == 0
        assert topo.numa_of(8) == 1
        assert topo.numa_of(16) == 0
        assert topo.numa_of(63) == 3

    def test_numa_of_unknown_core(self):
        with pytest.raises(ConfigError):
            sg2042_topology().numa_of(64)

    def test_clusters_in_numa(self):
        topo = sg2042_topology()
        cluster_ids = topo.clusters_in_numa(0)
        cores = {c for cid in cluster_ids for c in topo.clusters[cid]}
        assert cores == set(topo.numa_nodes[0])

    def test_active_per_numa(self):
        topo = sg2042_topology()
        counts = topo.active_per_numa((0, 1, 8, 32, 40, 41))
        assert counts == {0: 2, 1: 1, 2: 1, 3: 2}

    def test_active_per_cluster(self):
        topo = sg2042_topology()
        counts = topo.active_per_cluster((0, 1, 2, 3, 4))
        assert counts[topo.cluster_of(0)] == 4
        assert counts[topo.cluster_of(4)] == 1


class TestContiguousTopology:
    def test_single_numa(self):
        topo = contiguous_topology(18)
        assert topo.num_numa_nodes == 1
        assert topo.num_cores == 18

    def test_rome_shape(self):
        topo = contiguous_topology(64, num_numa=4, cluster_size=4)
        assert topo.cores_per_numa() == (16, 16, 16, 16)
        assert topo.num_clusters == 16
        assert topo.numa_of(15) == 0
        assert topo.numa_of(16) == 1

    def test_uneven_split_rejected(self):
        with pytest.raises(ConfigError):
            contiguous_topology(10, num_numa=3)

    def test_uneven_clusters_rejected(self):
        with pytest.raises(ConfigError):
            contiguous_topology(8, num_numa=1, cluster_size=3)


class TestValidation:
    def test_duplicate_core_rejected(self):
        with pytest.raises(ConfigError):
            NumaTopology(numa_nodes=((0, 1), (1, 2)),
                         clusters=((0,), (1,), (2,)))

    def test_gap_in_ids_rejected(self):
        with pytest.raises(ConfigError):
            NumaTopology(numa_nodes=((0, 2),), clusters=((0,), (2,)))

    def test_cluster_numa_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            NumaTopology(
                numa_nodes=((0, 1), (2, 3)),
                clusters=((0, 2), (1, 3)),  # straddles regions
            )

    def test_cluster_core_set_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            NumaTopology(numa_nodes=((0, 1),), clusters=((0,),))


@given(
    num_numa=st.sampled_from([1, 2, 4]),
    per_node=st.sampled_from([2, 4, 8]),
)
def test_contiguous_partition_property(num_numa, per_node):
    """Every core belongs to exactly one region and one cluster."""
    topo = contiguous_topology(
        num_numa * per_node, num_numa=num_numa, cluster_size=2
    )
    for core in range(topo.num_cores):
        region = topo.numa_of(core)
        assert core in topo.numa_nodes[region]
        cluster = topo.cluster_of(core)
        assert core in topo.clusters[cluster]
