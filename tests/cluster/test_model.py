"""Cluster cost-model tests: network, MPI collectives, scaling shapes."""

import pytest

from repro.cluster.machine import ClusterModel
from repro.cluster.mpi import (
    allreduce_time,
    barrier_time,
    broadcast_time,
    halo_exchange_time,
    point_to_point_time,
)
from repro.cluster.network import (
    NetworkModel,
    ethernet_25g,
    ethernet_100g,
    slingshot,
)
from repro.machine import catalog
from repro.machine.vector import DType
from repro.util.errors import ConfigError


class TestNetworkModel:
    def test_message_time_components(self):
        net = NetworkModel("t", latency_s=1e-6, bandwidth_bytes=1e9,
                           per_message_overhead_s=1e-6)
        assert net.message_time(0) == pytest.approx(2e-6)
        assert net.message_time(1e6) == pytest.approx(2e-6 + 1e-3)

    def test_presets_ordered_by_speed(self):
        nbytes = 1_000_000
        t25 = ethernet_25g().message_time(nbytes)
        t100 = ethernet_100g().message_time(nbytes)
        tss = slingshot().message_time(nbytes)
        assert tss < t100 < t25

    def test_validation(self):
        with pytest.raises(ConfigError):
            NetworkModel("bad", latency_s=-1, bandwidth_bytes=1e9)
        with pytest.raises(ConfigError):
            ethernet_25g().message_time(-1)


class TestMpiCosts:
    def test_p2p_equals_message_time(self):
        net = ethernet_25g()
        assert point_to_point_time(net, 4096) == net.message_time(4096)

    def test_allreduce_single_rank_free(self):
        assert allreduce_time(ethernet_25g(), 8, 1) == 0.0

    def test_allreduce_grows_logarithmically_small(self):
        net = ethernet_25g()
        t2 = allreduce_time(net, 8, 2)
        t16 = allreduce_time(net, 8, 16)
        assert t16 == pytest.approx(4 * t2)

    def test_allreduce_large_uses_ring(self):
        net = ethernet_25g()
        nbytes = 64 * 1024 * 1024
        # Ring time is ~2x the payload wire time, independent of p for
        # large p; far less than log2(p) full-payload rounds.
        tree_estimate = 5 * net.message_time(nbytes)
        assert allreduce_time(net, nbytes, 32) < tree_estimate

    def test_halo_overlap_bounds(self):
        net = ethernet_25g()
        serial = halo_exchange_time(net, 8192, 4, overlap=0.0)
        parallel = halo_exchange_time(net, 8192, 4, overlap=1.0)
        mid = halo_exchange_time(net, 8192, 4, overlap=0.5)
        assert parallel < mid < serial
        assert serial == pytest.approx(4 * parallel)

    def test_zero_neighbours_free(self):
        assert halo_exchange_time(ethernet_25g(), 8192, 0) == 0.0

    def test_barrier_and_broadcast(self):
        net = ethernet_25g()
        assert barrier_time(net, 1) == 0.0
        assert barrier_time(net, 8) == pytest.approx(
            3 * net.message_time(0)
        )
        assert broadcast_time(net, 1024, 8) == pytest.approx(
            3 * net.message_time(1024)
        )


class TestClusterModel:
    @pytest.fixture(scope="class")
    def sg_cluster(self):
        return ClusterModel(
            node=catalog.sg2042(), num_nodes=4, network=ethernet_25g(),
            threads_per_node=32,
        )

    def test_describe(self, sg_cluster):
        text = sg_cluster.describe()
        assert "4 x Sophon SG2042" in text and "25GbE" in text

    def test_triad_scales_embarrassingly(self, sg_cluster):
        times = sg_cluster.strong_scaling(
            "triad", 4_000_000, [1, 2, 4]
        )
        assert times[4] < times[2] < times[1]
        # No communication: near-perfect halving.
        assert times[1] / times[4] > 3.0

    def test_jacobi_strong_scaling_saturates(self):
        """Communication eventually dominates: efficiency decays."""
        cluster = ClusterModel(
            node=catalog.sg2042(), num_nodes=1,
            network=ethernet_25g(), threads_per_node=32,
        )
        times = cluster.strong_scaling(
            "jacobi2d", 1_000_000, [1, 2, 4, 8, 16]
        )
        eff_2 = times[1] / (2 * times[2])
        eff_16 = times[1] / (16 * times[16])
        assert eff_16 < eff_2

    def test_better_network_helps_jacobi(self):
        size = 250_000
        slow = ClusterModel(
            node=catalog.sg2042(), num_nodes=8,
            network=ethernet_25g(), threads_per_node=32,
        )
        fast = ClusterModel(
            node=catalog.sg2042(), num_nodes=8,
            network=slingshot(), threads_per_node=32,
        )
        assert fast.jacobi2d_step_time(size) < slow.jacobi2d_step_time(
            size
        )

    def test_dot_includes_allreduce(self, sg_cluster):
        t = sg_cluster.dot_time(4_000_000)
        compute_only = sg_cluster.stream_triad_time(4_000_000)
        assert t > 0 and compute_only > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterModel(node=catalog.sg2042(), num_nodes=0,
                         network=ethernet_25g())
        cluster = ClusterModel(
            node=catalog.sg2042(), num_nodes=4, network=ethernet_25g()
        )
        with pytest.raises(ConfigError):
            cluster.jacobi2d_step_time(2)  # fewer points than nodes
        with pytest.raises(ConfigError):
            cluster.strong_scaling("fft", 1000, [1])

    def test_fp32_faster_than_fp64(self, sg_cluster):
        t32 = sg_cluster.jacobi2d_step_time(1_000_000, DType.FP32)
        t64 = sg_cluster.jacobi2d_step_time(1_000_000, DType.FP64)
        assert t32 < t64


class TestWeakScaling:
    def test_triad_flat(self):
        cluster = ClusterModel(
            node=catalog.sg2042(), num_nodes=1,
            network=ethernet_25g(), threads_per_node=32,
        )
        times = cluster.weak_scaling("triad", 1_000_000, [1, 4, 16])
        assert times[16] == pytest.approx(times[1], rel=0.05)

    def test_jacobi_efficiency_decays_gently(self):
        cluster = ClusterModel(
            node=catalog.sg2042(), num_nodes=1,
            network=ethernet_25g(), threads_per_node=32,
        )
        times = cluster.weak_scaling("jacobi2d", 500_000, [1, 4, 16])
        # Communication adds on top of constant local work.
        assert times[16] >= times[1]

    def test_validation(self):
        cluster = ClusterModel(
            node=catalog.sg2042(), num_nodes=1, network=ethernet_25g()
        )
        with pytest.raises(ConfigError):
            cluster.weak_scaling("jacobi2d", 0, [1])
        with pytest.raises(ConfigError):
            cluster.weak_scaling("fft", 1000, [1])
