"""Distributed proto-app correctness: parallel == sequential."""

import numpy as np
import pytest

from repro.cluster.apps import (
    dot_distributed,
    jacobi2d_distributed,
    jacobi2d_reference,
)
from repro.util.errors import ConfigError


class TestJacobi2dDistributed:
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_matches_reference(self, ranks):
        parallel = jacobi2d_distributed(ranks, ny=16, nx=12, steps=5)
        reference = jacobi2d_reference(16, 12, 5)
        np.testing.assert_allclose(parallel, reference, rtol=1e-12)

    def test_many_steps_still_match(self):
        parallel = jacobi2d_distributed(4, ny=8, nx=8, steps=25)
        reference = jacobi2d_reference(8, 8, 25)
        np.testing.assert_allclose(parallel, reference, rtol=1e-12)

    def test_uneven_rows_rejected(self):
        with pytest.raises(ConfigError):
            jacobi2d_distributed(3, ny=16, nx=8, steps=1)

    def test_smoothing_contracts_range(self):
        out = jacobi2d_distributed(2, ny=16, nx=16, steps=30)
        start = jacobi2d_reference(16, 16, 0)
        assert np.ptp(out[4:-4, 4:-4]) < np.ptp(start[4:-4, 4:-4])


class TestDotDistributed:
    @pytest.mark.parametrize("ranks", [1, 2, 5])
    def test_matches_numpy(self, ranks):
        n = 10_000
        result = dot_distributed(ranks, n)
        rng = np.random.default_rng(0)
        a = rng.random(n)
        b = rng.random(n)
        assert result == pytest.approx(float(np.dot(a, b)), rel=1e-12)

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigError):
            dot_distributed(3, 1000)
