"""SPMD runtime tests: real message passing in threads."""

import math

import numpy as np
import pytest

from repro.cluster.runtime import SpmdRuntime
from repro.util.errors import ConfigError


class TestBasics:
    def test_single_rank(self):
        assert SpmdRuntime(1).run(lambda c: c.rank) == [0]

    def test_rank_and_size(self):
        results = SpmdRuntime(4).run(lambda c: (c.rank, c.size))
        assert results == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_invalid_rank_count(self):
        with pytest.raises(ConfigError):
            SpmdRuntime(0)

    def test_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(ValueError, match="boom"):
            SpmdRuntime(2).run(fn)


class TestPointToPoint:
    def test_ring_pass(self):
        def fn(comm):
            dest = (comm.rank + 1) % comm.size
            source = (comm.rank - 1) % comm.size
            return comm.sendrecv(dest, comm.rank, source)

        results = SpmdRuntime(4).run(fn)
        assert results == [3, 0, 1, 2]

    def test_numpy_payload_copied_on_send(self):
        def fn(comm):
            if comm.rank == 0:
                arr = np.arange(4.0)
                comm.send(1, arr)
                arr[:] = -1  # mutating after send must not corrupt
                return None
            return comm.recv(0).tolist()

        results = SpmdRuntime(2).run(fn)
        assert results[1] == [0.0, 1.0, 2.0, 3.0]

    def test_tags_separate_channels(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(1, "tag5", tag=5)
                comm.send(1, "tag3", tag=3)
                return None
            # Receive in the opposite order of sending.
            first = comm.recv(0, tag=3)
            second = comm.recv(0, tag=5)
            return (first, second)

        results = SpmdRuntime(2).run(fn)
        assert results[1] == ("tag3", "tag5")

    def test_send_to_self_rejected(self):
        def fn(comm):
            comm.send(comm.rank, 1)

        with pytest.raises(ConfigError, match="self"):
            SpmdRuntime(2).run(fn)

    def test_recv_timeout_is_diagnosed(self):
        def fn(comm):
            if comm.rank == 1:
                return comm.recv(0, timeout=0.1)
            return None

        with pytest.raises(ConfigError, match="timed out"):
            SpmdRuntime(2).run(fn)


class TestCollectives:
    def test_allreduce_sum(self):
        results = SpmdRuntime(4).run(
            lambda c: c.allreduce(c.rank + 1, op="sum")
        )
        assert results == [10, 10, 10, 10]

    def test_allreduce_min_max(self):
        rt_results = SpmdRuntime(3).run(
            lambda c: (c.allreduce(c.rank, "min"),
                       c.allreduce(c.rank, "max"))
        )
        assert all(r == (0, 2) for r in rt_results)

    def test_allreduce_arrays(self):
        def fn(comm):
            return comm.allreduce(np.full(3, float(comm.rank)), "sum")

        results = SpmdRuntime(3).run(fn)
        for r in results:
            np.testing.assert_array_equal(r, [3.0, 3.0, 3.0])

    def test_allreduce_unknown_op(self):
        with pytest.raises(ConfigError):
            SpmdRuntime(2).run(lambda c: c.allreduce(1, op="xor"))

    def test_sequential_collectives_do_not_collide(self):
        def fn(comm):
            a = comm.allreduce(1, "sum")
            b = comm.allreduce(comm.rank, "max")
            c = comm.allreduce(2, "sum")
            return (a, b, c)

        results = SpmdRuntime(4).run(fn)
        assert all(r == (4, 3, 8) for r in results)

    def test_broadcast(self):
        def fn(comm):
            value = "hello" if comm.rank == 2 else None
            return comm.broadcast(value, root=2)

        assert SpmdRuntime(4).run(fn) == ["hello"] * 4

    def test_gather(self):
        def fn(comm):
            return comm.gather(comm.rank * 10, root=0)

        results = SpmdRuntime(3).run(fn)
        assert results[0] == [0, 10, 20]
        assert results[1] is None

    def test_barrier_runs(self):
        def fn(comm):
            comm.barrier()
            comm.barrier()
            return True

        assert SpmdRuntime(4).run(fn) == [True] * 4


class TestPiExample:
    def test_pi_by_quadrature(self):
        from repro.cluster.apps import pi_distributed

        assert pi_distributed(4, 100_000) == pytest.approx(
            math.pi, abs=1e-6
        )
