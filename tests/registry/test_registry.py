"""Registry behaviour: envelopes, layering, validators, lint."""

import json

import pytest

from repro.registry import (
    KIND_SCHEMAS,
    KINDS,
    Registry,
    decide_compiler,
    default_registry,
    load_file,
    parse_document,
    registry_with_paths,
    validate_document,
)
from repro.util.errors import ConfigError


def _machine_envelope(name="tweaked_sg2042", clock=2.2e9):
    from repro.machine.serialize import cpu_to_dict

    doc = cpu_to_dict(default_registry().machine("sg2042"))
    doc["name"] = "Tweaked SG2042"
    doc["core"] = dict(doc["core"], clock_hz=clock)
    return {"schema": "repro.machine/v1", "name": name, "doc": doc}


def _write(root, kind, envelope):
    folder = root / kind
    folder.mkdir(parents=True, exist_ok=True)
    path = folder / f"{envelope['name']}.json"
    path.write_text(json.dumps(envelope, indent=2) + "\n",
                    encoding="utf-8")
    return path


class TestEnvelope:
    def test_kind_schemas_cover_all_kinds(self):
        assert set(KIND_SCHEMAS) == set(KINDS)

    def test_parse_roundtrip(self):
        rdoc = parse_document(_machine_envelope(), source="test")
        assert rdoc.kind == "machines"
        assert rdoc.name == "tweaked_sg2042"

    @pytest.mark.parametrize("mutation", [
        lambda e: e.pop("schema"),
        lambda e: e.pop("name"),
        lambda e: e.pop("doc"),
        lambda e: e.update(extra=1),
        lambda e: e.update(schema="repro.unknown/v1"),
        lambda e: e.update(schema="repro.machine/v2"),
        lambda e: e.update(name="Bad Name!"),
        lambda e: e.update(doc=[]),
    ])
    def test_malformed_envelopes_rejected(self, mutation):
        envelope = _machine_envelope()
        mutation(envelope)
        with pytest.raises(ConfigError):
            parse_document(envelope, source="test")

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="kernels"):
            parse_document(_machine_envelope(), source="test",
                           kind="kernels")


class TestLayering:
    def test_user_root_overrides_shipped_name(self, tmp_path):
        _write(tmp_path, "machines", _machine_envelope(name="sg2042"))
        registry = Registry([tmp_path])
        assert registry.machine("sg2042").name == "Tweaked SG2042"
        # The shipped registry is untouched.
        assert default_registry().machine("sg2042").name != \
            "Tweaked SG2042"

    def test_user_root_adds_new_name(self, tmp_path):
        _write(tmp_path, "machines", _machine_envelope())
        registry = Registry([tmp_path])
        assert "tweaked_sg2042" in registry.machine_names()
        assert registry.validate_all() > default_registry().validate_all()

    def test_registry_with_paths_caches_instances(self, tmp_path):
        _write(tmp_path, "machines", _machine_envelope())
        assert registry_with_paths([tmp_path]) is registry_with_paths(
            [str(tmp_path)]
        )

    def test_missing_root_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="not a directory"):
            Registry([tmp_path / "nope"])

    def test_duplicate_names_in_one_root_rejected(self, tmp_path):
        _write(tmp_path, "machines", _machine_envelope(name="twin"))
        # Same declared name under a different filename.
        envelope = _machine_envelope(name="twin")
        (tmp_path / "machines" / "other.json").write_text(
            json.dumps(envelope), encoding="utf-8"
        )
        with pytest.raises(ConfigError, match="duplicate"):
            Registry([tmp_path]).machine_names()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown registry kind"):
            default_registry().documents("gadgets")

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigError, match="known:"):
            default_registry().machine("sg9999")


class TestValidators:
    def test_invalid_machine_doc_names_field(self, tmp_path):
        envelope = _machine_envelope()
        del envelope["doc"]["memory"]
        path = _write(tmp_path, "machines", envelope)
        rdoc = load_file(path, kind="machines")
        with pytest.raises(ConfigError, match="missing field memory"):
            validate_document(rdoc)

    def test_unknown_field_is_structured_error(self, tmp_path):
        envelope = _machine_envelope()
        envelope["doc"]["turbo"] = True
        path = _write(tmp_path, "machines", envelope)
        with pytest.raises(ConfigError,
                           match="malformed .*unknown field turbo"):
            validate_document(load_file(path, kind="machines"))

    def test_kernel_doc_cross_checked_against_catalog(self, tmp_path):
        rdoc = default_registry().document("kernels", "add")
        envelope = {"schema": rdoc.schema, "name": "add",
                    "doc": json.loads(json.dumps(rdoc.doc))}
        envelope["doc"]["traits"]["flops_per_iter"] += 1
        path = _write(tmp_path, "kernels", envelope)
        with pytest.raises(ConfigError, match="flops_per_iter"):
            validate_document(load_file(path, kind="kernels"))

    def test_compiler_table_decides_per_machine(self):
        from repro.compiler.model import (
            CLANG_16,
            GCC_8_3,
            GCC_11_2,
            XUANTIE_GCC_8_4,
        )

        registry = default_registry()
        table = validate_document(
            registry.document("compilers", "paper_defaults")
        )
        cases = {
            "sg2042": XUANTIE_GCC_8_4,
            "sophon_sg2044": CLANG_16,
            "amd_rome": GCC_11_2,
            "intel_icelake": GCC_8_3,
        }
        from repro.compiler.model import compiler_by_name

        for name, expected in cases.items():
            decided = decide_compiler(table, registry.machine(name))
            assert compiler_by_name(decided) is expected, name

    def test_fault_plan_materializes(self):
        plan = validate_document(
            default_registry().document("faults", "transient_compile")
        )
        assert plan.seed == 2042
        assert plan.rules

    def test_placement_name_must_match_policy(self, tmp_path):
        envelope = {
            "schema": "repro.placement/v1",
            "name": "block",
            "doc": {"policy": "cyclic", "description": "x"},
        }
        path = _write(tmp_path, "placements", envelope)
        with pytest.raises(ConfigError):
            validate_document(load_file(path, kind="placements"))


class TestRegistryLint:
    def test_clean_shipped_data(self):
        from repro.analyze.driver import run_lint
        from repro.analyze.report import Severity

        report = run_lint(kernels=False, asm=False, registry=True)
        assert report.documents_checked >= 20
        errors = [f for f in report.findings
                  if f.severity is Severity.ERROR]
        assert errors == []
        assert report.exit_code == 0

    def test_invalid_document_is_error_exit_3(self, tmp_path):
        from repro.analyze.driver import run_lint

        envelope = _machine_envelope(name="broken")
        del envelope["doc"]["core"]
        _write(tmp_path, "machines", envelope)
        report = run_lint(
            kernels=False, asm=False, registry=True,
            registry_paths=(str(tmp_path),),
        )
        assert report.exit_code == 3
        assert any("missing field core" in f.message
                   for f in report.findings)

    def test_inconsistent_compiler_table_is_error(self, tmp_path):
        from repro.analyze.driver import run_lint

        envelope = {
            "schema": "repro.compiler/v1",
            "name": "paper_defaults",
            "doc": {"default": "clang-16", "rules": []},
        }
        _write(tmp_path, "compilers", envelope)
        report = run_lint(
            kernels=False, asm=False, registry=True,
            registry_paths=(str(tmp_path),),
        )
        assert report.exit_code == 3
        assert any(f.category == "compiler-table"
                   for f in report.findings)
