"""Every shipped registry document must load, validate, and — for
machines — round-trip byte-identically with a digest that is stable
across a process boundary."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.machine import catalog
from repro.machine._reference import REFERENCE_FACTORIES
from repro.machine.serialize import cpu_to_dict
from repro.registry import (
    DATA_ROOT,
    KINDS,
    default_registry,
    load_file,
    validate_document,
)
from repro.suite.memo import machine_digest

_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Machines the sequels add as data only — never Python constructors.
DATA_ONLY_MACHINES = ("sophon_sg2044", "sg2042_2s")


def _all_data_files():
    return sorted(DATA_ROOT.rglob("*.json"))


class TestShippedDocuments:
    def test_data_root_is_populated(self):
        assert len(_all_data_files()) >= 20

    @pytest.mark.parametrize(
        "path", _all_data_files(), ids=lambda p: f"{p.parent.name}/{p.name}"
    )
    def test_every_document_loads_and_validates(self, path):
        rdoc = load_file(path, kind=path.parent.name)
        assert rdoc.name == path.stem
        validate_document(rdoc)

    def test_validate_all_counts_every_kind(self):
        registry = default_registry()
        checked = registry.validate_all()
        assert checked == len(_all_data_files())
        for kind in KINDS:
            assert registry.names(kind), kind


class TestMachineRoundTrips:
    @pytest.mark.parametrize(
        "name", sorted(default_registry().machine_names())
    )
    def test_byte_identical_reserialization(self, name):
        """doc -> CPUModel -> cpu_to_dict must reproduce the shipped
        JSON exactly (the registry's bit-exact round-trip contract)."""
        path = DATA_ROOT / "machines" / f"{name}.json"
        shipped = json.loads(path.read_text(encoding="utf-8"))
        cpu = default_registry().machine(name)
        assert cpu_to_dict(cpu) == shipped["doc"]
        # Byte-level: re-dumping with the generator's formatting
        # reproduces the file exactly.
        redumped = json.dumps(
            {"schema": shipped["schema"], "name": name,
             "doc": cpu_to_dict(cpu)},
            indent=2,
        ) + "\n"
        assert redumped == path.read_text(encoding="utf-8")

    @pytest.mark.parametrize("name", sorted(REFERENCE_FACTORIES))
    def test_registry_equals_reference_constructor(self, name):
        """A registry-loaded paper CPU is the reference constructor's
        equal twin — same value, same machine digest, same store keys."""
        from_registry = default_registry().machine(name)
        from_reference = REFERENCE_FACTORIES[name]()
        assert from_registry == from_reference
        assert machine_digest(from_registry) == machine_digest(
            from_reference
        )

    @pytest.mark.parametrize("name", sorted(REFERENCE_FACTORIES))
    def test_catalog_is_registry_backed(self, name):
        factory = getattr(catalog, name)
        assert factory() == default_registry().machine(name)

    def test_digest_stable_across_processes(self):
        """The digest a fresh interpreter computes from the data files
        must equal this process's — registry machines share store
        artifacts across process boundaries."""
        names = ("sg2042", *DATA_ONLY_MACHINES)
        script = (
            "from repro.registry import default_registry;"
            "from repro.suite.memo import machine_digest;"
            f"names = {names!r};"
            "print(','.join(str(machine_digest("
            "default_registry().machine(n))) for n in names))"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        expected = ",".join(
            str(machine_digest(default_registry().machine(n)))
            for n in names
        )
        assert proc.stdout.strip() == expected

    def test_prediction_identical_catalog_vs_registry(self):
        """Same machine, same prediction bytes, whichever door it
        entered through."""
        import json as _json

        from repro.kernels.registry import get_kernel
        from repro.suite.config import RunConfig
        from repro.suite.runner import run_suite

        config = RunConfig(threads=4, precision="fp32", runs=1,
                           noise_sigma=0.0)
        kernel = get_kernel("TRIAD")
        results = []
        for cpu in (catalog.sg2042(),
                    default_registry().machine("sg2042"),
                    REFERENCE_FACTORIES["sg2042"]()):
            result = run_suite(cpu, config, kernels=[kernel])
            run = result.runs[kernel.name]
            results.append(_json.dumps(
                {"seconds": run.seconds,
                 "level": run.prediction.serving_level}
            ))
        assert results[0] == results[1] == results[2]


class TestDataOnlyMachines:
    @pytest.mark.parametrize("name", DATA_ONLY_MACHINES)
    def test_exists_only_as_data(self, name):
        assert name in default_registry().machine_names()
        assert name not in catalog.all_cpus()
        assert not hasattr(catalog, name.removeprefix("sophon_"))
        assert name not in REFERENCE_FACTORIES

    def test_sg2044_is_native_rvv_1_0(self):
        cpu = default_registry().machine("sophon_sg2044")
        assert cpu.core.isa.version == "1.0"
        assert cpu.core.isa.width_bits == 256
        assert cpu.interconnect is None

    def test_sg2042_2s_has_socket_tier(self):
        cpu = default_registry().machine("sg2042_2s")
        topo = cpu.topology
        assert topo.num_sockets == 2
        assert topo.num_cores == 128
        assert cpu.interconnect is not None
        assert topo.sockets_spanned(tuple(range(64))) == 1
        assert topo.sockets_spanned(tuple(range(128))) == 2

    def test_sg2044_defaults_to_clang_no_rollback(self):
        from repro.compiler.model import CLANG_16
        from repro.suite.config import RunConfig

        cpu = default_registry().machine("sophon_sg2044")
        assert RunConfig().resolve_compiler(cpu) is CLANG_16
