"""Sensitivity analysis tests."""

import pytest

from repro.analysis.sensitivity import (
    KNOBS,
    render_sensitivities,
    sensitivities,
)
from repro.suite.config import RunConfig
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def results_1t(sg2042):
    return sensitivities(
        sg2042, RunConfig(threads=1, precision="fp32", runs=1,
                          noise_sigma=0.0)
    )


@pytest.fixture(scope="module")
def results_64t(sg2042):
    return sensitivities(
        sg2042,
        RunConfig(threads=64, precision="fp32", placement="cluster",
                  runs=1, noise_sigma=0.0),
    )


def by_knob(results):
    return {s.knob: s for s in results}


class TestSensitivities:
    def test_all_knobs_reported(self, results_1t):
        assert {s.knob for s in results_1t} == set(KNOBS)

    def test_clock_helps(self, results_1t):
        """Faster clock -> less time (negative elasticity)."""
        assert by_knob(results_1t)["core clock"].elasticity < -0.2

    def test_fork_join_irrelevant_single_thread(self, results_1t):
        assert by_knob(results_1t)[
            "fork-join cost"
        ].elasticity == pytest.approx(0.0, abs=1e-9)

    def test_fork_join_costs_at_scale(self, results_64t):
        assert by_knob(results_64t)["fork-join cost"].elasticity > 0.0

    def test_cache_bandwidth_matters_more_at_scale(
        self, results_1t, results_64t
    ):
        """At 64 threads the contended L3 slices dominate; at 1 thread
        most kernels are pipeline-bound."""
        one = by_knob(results_1t)["cache bandwidth"].elasticity
        many = by_knob(results_64t)["cache bandwidth"].elasticity
        assert many < one  # more negative = more impactful

    def test_no_knob_slows_when_improved(self, results_1t, results_64t):
        for s in list(results_1t) + list(results_64t):
            if s.knob == "fork-join cost":
                continue  # a cost knob: bumping it hurts by design
            assert s.elasticity <= 1e-9, s.knob

    def test_bump_validation(self, sg2042):
        with pytest.raises(ConfigError):
            sensitivities(sg2042, RunConfig(), bump=0)


class TestRender:
    def test_table(self, sg2042):
        text = render_sensitivities(
            sg2042,
            RunConfig(threads=32, precision="fp32", placement="cluster",
                      runs=1, noise_sigma=0.0),
        )
        assert "parameter sensitivity" in text
        assert "core clock" in text
