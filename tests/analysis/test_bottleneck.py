"""Bottleneck attribution tests."""

import pytest

from repro.analysis.bottleneck import (
    attribute_bottlenecks,
    render_bottleneck_report,
)
from repro.kernels.registry import get_kernel
from repro.suite.config import RunConfig
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def config32():
    return RunConfig(threads=32, precision="fp32", placement="cluster")


class TestAttribution:
    def test_all_kernels_attributed(self, sg2042, config32, kernels):
        reports = attribute_bottlenecks(sg2042, config32, kernels)
        assert len(reports) == 64
        for r in reports:
            assert 0 <= r.parallel_share <= 1
            assert r.balance > 0

    def test_gemm_pipeline_bound(self, sg2042, config32):
        (report,) = attribute_bottlenecks(
            sg2042, config32, [get_kernel("GEMM")]
        )
        assert report.bound == "pipeline"
        assert report.balance > 1

    def test_triad_cache_bound_at_one_thread(self, sg2042):
        cfg = RunConfig(threads=1, precision="fp32")
        (report,) = attribute_bottlenecks(
            sg2042, cfg, [get_kernel("TRIAD")]
        )
        assert report.bound in ("L2", "L3", "DRAM")
        assert report.balance < 1

    def test_sort_serial_bound_at_scale(self, sg2042):
        cfg = RunConfig(threads=64, precision="fp32")
        (report,) = attribute_bottlenecks(
            sg2042, cfg, [get_kernel("SORT")]
        )
        assert report.bound == "serial"
        assert report.serial_share > 0.5

    def test_haloexchange_overhead_bound_at_scale(self, sg2042):
        cfg = RunConfig(threads=64, precision="fp32")
        (report,) = attribute_bottlenecks(
            sg2042, cfg, [get_kernel("HALOEXCHANGE")]
        )
        assert report.overhead_share > 0.2

    def test_single_thread_has_no_overhead(self, sg2042):
        cfg = RunConfig(threads=1, precision="fp64")
        (report,) = attribute_bottlenecks(
            sg2042, cfg, [get_kernel("DAXPY")]
        )
        assert report.overhead_share == 0.0

    def test_empty_kernels_rejected(self, sg2042, config32):
        with pytest.raises(ConfigError):
            attribute_bottlenecks(sg2042, config32, [])


class TestReport:
    def test_render(self, sg2042, config32):
        text = render_bottleneck_report(
            sg2042, config32,
            [get_kernel("TRIAD"), get_kernel("GEMM"),
             get_kernel("SORT")],
        )
        assert "bottleneck attribution" in text
        assert "GEMM" in text
