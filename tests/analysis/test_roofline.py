"""Roofline model tests, cross-checked against the execution model."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.roofline import (
    build_roofline,
    classify_kernels,
    render_roofline_report,
)
from repro.kernels.registry import get_kernel
from repro.machine import catalog
from repro.machine.vector import DType
from repro.util.errors import ConfigError


class TestRooflineConstruction:
    def test_ceilings_positive(self, sg2042):
        r = build_roofline(sg2042, DType.FP64)
        assert r.peak_flops > 0 and r.peak_bandwidth > 0

    def test_fp64_peak_equals_scalar_on_c920(self, sg2042):
        """No FP64 vectors: the vector ceiling IS the scalar ceiling."""
        r = build_roofline(sg2042, DType.FP64)
        assert r.peak_flops == pytest.approx(r.scalar_flops)

    def test_fp32_peak_above_scalar_on_c920(self, sg2042):
        r = build_roofline(sg2042, DType.FP32)
        assert r.peak_flops > 2 * r.scalar_flops

    def test_threads_scale_compute(self, sg2042):
        one = build_roofline(sg2042, DType.FP32, threads=1)
        many = build_roofline(sg2042, DType.FP32, threads=32)
        assert many.peak_flops == pytest.approx(32 * one.peak_flops)

    def test_bandwidth_saturates_with_threads(self, sg2042):
        few = build_roofline(sg2042, DType.FP32, threads=2)
        many = build_roofline(sg2042, DType.FP32, threads=64)
        assert many.peak_bandwidth <= sg2042.memory.package_bandwidth
        assert many.peak_bandwidth < 32 * few.peak_bandwidth

    def test_ridge_point(self, amd_rome):
        r = build_roofline(amd_rome, DType.FP64)
        assert r.attainable(r.ridge_intensity) == pytest.approx(
            r.peak_flops
        )
        assert r.bound_of(r.ridge_intensity / 2) == "memory"
        assert r.bound_of(r.ridge_intensity * 2) == "compute"

    def test_attainable_monotone(self, sg2042):
        r = build_roofline(sg2042, DType.FP32)
        values = [r.attainable(x) for x in (0.01, 0.1, 1.0, 10.0, 100.0)]
        assert values == sorted(values)

    def test_invalid_threads_rejected(self, sg2042):
        with pytest.raises(ConfigError):
            build_roofline(sg2042, DType.FP64, threads=65)

    @given(intensity=st.floats(0.001, 1000))
    def test_attainable_never_exceeds_either_ceiling(self, intensity):
        r = build_roofline(catalog.intel_icelake(), DType.FP64)
        a = r.attainable(intensity)
        assert a <= r.peak_flops * (1 + 1e-12)
        assert a <= intensity * r.peak_bandwidth * (1 + 1e-12)


class TestKernelClassification:
    def test_all_kernels_classified(self, sg2042, kernels):
        points = classify_kernels(sg2042, kernels)
        assert len(points) == 64

    def test_stream_kernels_memory_bound(self, sg2042):
        points = classify_kernels(
            sg2042, [get_kernel(n) for n in ("TRIAD", "COPY", "ADD")]
        )
        assert all(p.bound == "memory" for p in points)

    def test_gemm_compute_bound(self, sg2042):
        (point,) = classify_kernels(sg2042, [get_kernel("GEMM")])
        assert point.bound == "compute"
        assert point.intensity > 10

    def test_memset_pinned_left(self, sg2042):
        (point,) = classify_kernels(sg2042, [get_kernel("MEMSET")])
        assert point.bound == "memory"

    def test_fp32_halves_bytes_doubles_intensity(self, sg2042):
        (p64,) = classify_kernels(
            sg2042, [get_kernel("TRIAD")], dtype=DType.FP64
        )
        (p32,) = classify_kernels(
            sg2042, [get_kernel("TRIAD")], dtype=DType.FP32
        )
        assert p32.intensity == pytest.approx(2 * p64.intensity)

    def test_integer_kernel_uses_integer_dtype(self, sg2042):
        (p64,) = classify_kernels(
            sg2042, [get_kernel("REDUCE3_INT")], dtype=DType.FP64
        )
        # INT64 at FP64 config: same byte width, sane intensity.
        assert p64.intensity == pytest.approx(3 / 8)

    def test_empty_kernel_list_rejected(self, sg2042):
        with pytest.raises(ConfigError):
            classify_kernels(sg2042, [])


class TestReport:
    def test_render(self, sg2042):
        text = render_roofline_report(
            sg2042, [get_kernel("TRIAD"), get_kernel("GEMM")]
        )
        assert "ridge" in text
        assert "TRIAD" in text and "GEMM" in text
