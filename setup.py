"""Setuptools shim.

All metadata lives in pyproject.toml. This file exists so the package can
be installed on machines without the ``wheel`` package (where PEP 660
editable installs are unavailable): ``python setup.py develop``.
"""

from setuptools import setup

setup()
