"""End-to-end kernel time prediction.

``simulate_kernel`` is the single entry point the suite harness calls:
given a kernel, a machine, a thread placement, the element type and the
compilation outcome, it returns the predicted wall time of one full
kernel execution (all RAJAPerf repetitions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compiler.vectorizer import VectorizationReport
from repro.kernels.base import Kernel
from repro.machine.cpu import CPUModel
from repro.machine.vector import DType
from repro.perfmodel.memory import memory_time_per_iter
from repro.perfmodel.pipeline import pipeline_time_per_iter
from repro.perfmodel.placement import placement_profile, reference_active
from repro.perfmodel.threading import barrier_seconds, compose_parallel_time
from repro.resilience import chaos
from repro.resilience.faults import FaultSite
from repro.util.errors import SimulationError


@dataclass(frozen=True)
class ExecutionResult:
    """Prediction for one (kernel, machine, configuration) point.

    Attributes:
        seconds: Total predicted wall time (all repetitions).
        seconds_per_rep: One repetition.
        serving_level: Cache level (or DRAM) serving the slowest thread.
        bound: ``"compute"`` or ``"memory"`` for the slowest thread.
        vector_executed: Whether vector code actually ran.
    """

    seconds: float
    seconds_per_rep: float
    serving_level: str
    bound: str
    vector_executed: bool

    def __post_init__(self) -> None:
        # Explicit finiteness check: NaN compares False against 0, so a
        # garbled prediction would sail through a pure sign test.
        if not math.isfinite(self.seconds) or not math.isfinite(
            self.seconds_per_rep
        ):
            raise SimulationError("predicted time must be finite")
        if self.seconds <= 0 or self.seconds_per_rep <= 0:
            raise SimulationError("predicted time must be positive")


def execution_dtype(kernel: Kernel, precision: DType) -> DType:
    """Element type the kernel's datapath actually uses.

    Integer kernels (REDUCE3_INT) map FP32 configs to INT32 and FP64
    configs to INT64 — and therefore *do* vectorize on the C920 at the
    FP64 configuration, the one positive FP64 whisker in Figure 2.
    """
    if not kernel.traits.integer_kernel:
        return precision
    return DType.INT32 if precision == DType.FP32 else DType.INT64


def simulate_kernel(
    kernel: Kernel,
    cpu: CPUModel,
    cores: tuple[int, ...],
    precision: DType,
    report: VectorizationReport,
    n: int | None = None,
    reps: int | None = None,
) -> ExecutionResult:
    """Predict the wall time of one kernel execution.

    Args:
        kernel: The RAJAPerf kernel.
        cpu: Machine model.
        cores: Thread placement — one core id per OpenMP thread.
        precision: FP32 or FP64 run configuration.
        report: Compilation outcome from the vectorizer.
        n: Problem size; defaults to the kernel's RAJAPerf size.
        reps: Repetition count; defaults to the kernel's RAJAPerf reps.
    """
    chaos.raise_if_fault(FaultSite.SIMULATE, kernel.name, kernel.klass)
    if not cores:
        raise SimulationError("placement must contain at least one core")
    if len(set(cores)) != len(cores):
        raise SimulationError(f"duplicate cores in placement {cores}")
    size = kernel.default_size if n is None else n
    repetitions = kernel.reps if reps is None else reps
    if size < 1 or repetitions < 1:
        raise SimulationError("size and reps must be >= 1")

    dtype = execution_dtype(kernel, precision)
    vectorized = report.effective and cpu.core.isa.supports(dtype)
    nthreads = len(cores)
    traits = kernel.traits

    pipe_secs = pipeline_time_per_iter(
        cpu.core, traits, dtype, vectorized,
        report.efficiency if vectorized else 1.0,
    )

    # Parallel part: static schedule, slowest thread decides. Cores that
    # see the same (cluster sharers, NUMA sharers) pair are equivalent,
    # so the scan visits each symmetry class once — typically <= 4
    # classes instead of 64 cores on the SG2042. Class order and the
    # ``>=`` comparison reproduce the per-core scan's last-wins
    # tie-break bit-for-bit (pinned by tests/suite golden tests against
    # the reference path below).
    par_iters_total = traits.parallel_fraction * size
    chunk = par_iters_total / nthreads
    slowest = 0.0
    slow_level = "?"
    slow_bound = "?"
    if reference_active():
        scan_cores: tuple[int, ...] = cores
        profile = None
    else:
        profile = placement_profile(cpu.topology, cores)
        scan_cores = tuple(cc.representative for cc in profile.classes)
    for core_id in scan_cores:
        mem = memory_time_per_iter(
            cpu, kernel, size, dtype, core_id, cores, profile
        )
        per_iter = max(pipe_secs, mem.seconds_per_iter)
        t = chunk * per_iter
        if t >= slowest:
            slowest = t
            slow_level = mem.serving_level
            slow_bound = (
                "compute" if pipe_secs >= mem.seconds_per_iter else "memory"
            )

    # Serial part runs on the master thread with the full machine idle.
    serial_iters = (1.0 - traits.parallel_fraction) * size
    if serial_iters > 0:
        master = cores[0]
        mem1 = memory_time_per_iter(
            cpu, kernel, size, dtype, master, (master,)
        )
        serial_time = serial_iters * max(pipe_secs, mem1.seconds_per_iter)
    else:
        serial_time = 0.0

    rep_time = compose_parallel_time(
        serial_time,
        slowest,
        barrier_seconds(cpu, nthreads) * traits.regions_per_rep,
    )
    if rep_time <= 0:
        raise SimulationError("non-positive repetition time")
    rep_time = chaos.corrupt_value(
        FaultSite.PREDICTION, kernel.name, rep_time, kernel.klass
    )

    return ExecutionResult(
        seconds=rep_time * repetitions,
        seconds_per_rep=rep_time,
        serving_level=slow_level,
        bound=slow_bound,
        vector_executed=vectorized,
    )
