"""Cache/NUMA memory-path model.

Decides, per thread, which level of the hierarchy serves a kernel's
working set and at what per-thread bandwidth, accounting for:

* capacity sharing — threads co-resident in a cluster split its L2, all
  package threads split the L3 (this is why cluster-aware placement wins
  in Table 3);
* port vs aggregate cache bandwidth with a contention penalty when too
  many sharers hammer one instance;
* NUMA-controller bandwidth split among the threads placed in each
  region, with the oversubscription thrash penalty (Tables 1-2's
  block-vs-cyclic gap and the 64-thread collapse);
* a gather/scatter derating for indirection kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.base import Kernel, LoopFeature
from repro.machine.cache import CacheLevel, Sharing
from repro.machine.cpu import CPUModel
from repro.machine.vector import DType
from repro.perfmodel.placement import (
    PlacementProfile,
    placement_profile,
    reference_active,
)
from repro.util.errors import SimulationError

#: Bandwidth efficiency of gather/scatter relative to unit-stride when
#: data is served beyond the L1 (one element per cache line touched).
GATHER_EFFICIENCY = 0.5

#: Usable fraction of a cache's capacity for a thread's partitioned
#: working-set slice. With one or two sharers, streaming slices settle
#: into a shared cache with ~10% conflict loss; with three or more
#: sharers, inter-thread conflict misses escalate and only about half
#: the capacity is effectively retained (validated against the
#: set-associative simulator in tests/perfmodel/test_cachesim.py).
FIT_HEADROOM_FEW = 0.90
FIT_HEADROOM_MANY = 0.40
FEW_SHARERS = 2


def fit_headroom(sharers: int) -> float:
    """Capacity fraction usable when ``sharers`` threads share a cache."""
    if sharers < 1:
        raise SimulationError("sharers must be >= 1")
    return FIT_HEADROOM_FEW if sharers <= FEW_SHARERS else FIT_HEADROOM_MANY


@dataclass(frozen=True)
class MemoryTimes:
    """Per-iteration memory-path outcome for one thread."""

    seconds_per_iter: float
    serving_level: str  # cache level name, or "DRAM"
    per_thread_bandwidth: float  # bytes/s actually available


def _sharers_of_level(
    cpu: CPUModel,
    level: CacheLevel,
    core: int,
    cores: tuple[int, ...],
    profile: PlacementProfile | None = None,
) -> int:
    """How many active threads share the instance of ``level`` that
    ``core`` uses. ``profile`` (see :mod:`repro.perfmodel.placement`)
    answers the cluster/NUMA cases in O(1); without it the active maps
    are rebuilt from the topology each call."""
    if level.sharing is Sharing.CORE:
        return 1
    if level.sharing is Sharing.PACKAGE:
        return len(cores)
    if profile is not None:
        if level.sharing is Sharing.CLUSTER:
            return profile.cluster_sharers(core)
        if level.sharing is Sharing.NUMA:
            return profile.numa_sharers(core)
        raise SimulationError(f"unknown sharing {level.sharing}")
    topo = cpu.topology
    if level.sharing is Sharing.CLUSTER:
        return topo.active_per_cluster(cores).get(topo.cluster_of(core), 1)
    if level.sharing is Sharing.NUMA:
        return topo.active_per_numa(cores).get(topo.numa_of(core), 1)
    raise SimulationError(f"unknown sharing {level.sharing}")


def level_bandwidth_per_thread(
    cpu: CPUModel, level: CacheLevel, sharers: int
) -> float:
    """Bytes/s one thread can draw from ``level``.

    Public because the batch engine (:mod:`repro.perfmodel.batch`)
    computes the same per-(level, class) scalars — sharing the function
    is the bit-identity argument.
    """
    port = level.bandwidth_bytes_per_cycle * cpu.core.clock_hz
    agg = level.effective_aggregate_bandwidth(sharers)
    if agg is None:
        return port
    return min(port, agg * cpu.core.clock_hz / sharers)


def dram_bandwidth_per_thread(
    cpu: CPUModel,
    core: int,
    cores: tuple[int, ...],
    profile: PlacementProfile | None = None,
) -> float:
    """Bytes/s one thread can draw from DRAM given the placement.

    Shared with the batch engine; see :func:`level_bandwidth_per_thread`.
    """
    topo = cpu.topology
    mem = cpu.memory
    if mem.numa_local and topo.num_numa_nodes > 1:
        if profile is not None:
            active = profile.numa_sharers(core)
        else:
            region = topo.numa_of(core)
            active = topo.active_per_numa(cores).get(region, 1)
        regional = mem.effective_region_bandwidth(
            topo.num_numa_nodes, active
        )
        share = regional / active
    else:
        active = len(cores)
        total = mem.package_bandwidth
        if mem.thrash_threshold is not None and active > mem.thrash_threshold:
            total *= (mem.thrash_threshold / active) ** mem.thrash_exponent
        share = total / active
    if cpu.interconnect is not None and topo.num_sockets > 1:
        share = _socket_adjusted_share(cpu, share, cores)
    return min(share, mem.per_core_bandwidth_bytes)


def _socket_adjusted_share(
    cpu: CPUModel, local_share: float, cores: tuple[int, ...]
) -> float:
    """Per-thread DRAM share after the cross-socket interconnect term.

    When a placement spans sockets, first-touch page interleaving over
    the active sockets makes ``(spanned - 1) / spanned`` of each
    thread's traffic remote: it crosses the socket link, competes for
    its sustained bandwidth with every other remote-going thread, and
    pays the link latency on top of DRAM latency (arxiv 2502.10320
    measures exactly this collapse on the 2-socket SG2042). The remote
    and local fractions compose harmonically — time-weighted, like
    serial bandwidth stages.

    Deliberately *placement-global*: the result depends only on how many
    sockets the whole placement spans and the thread count, never on
    which socket ``core`` sits in. That keeps the term identical for
    every core of a symmetry class, which is what lets the batch engine
    reuse the scalar engine's per-class calls bit-for-bit.
    """
    topo = cpu.topology
    spanned = topo.sockets_spanned(cores)
    if spanned <= 1:
        return local_share
    ic = cpu.interconnect
    assert ic is not None  # caller gated
    remote_fraction = (spanned - 1) / spanned
    remote_threads = len(cores) * remote_fraction
    link_share = ic.sustained_bandwidth / remote_threads
    lat = cpu.memory.latency_ns
    remote_share = (
        min(local_share, link_share) * lat / (lat + ic.latency_ns)
    )
    return 1.0 / (
        (1.0 - remote_fraction) / local_share
        + remote_fraction / remote_share
    )


def serving_level(
    cpu: CPUModel,
    kernel: Kernel,
    n: int,
    dtype: DType,
    core: int,
    cores: tuple[int, ...],
    profile: PlacementProfile | None = None,
) -> CacheLevel | None:
    """Innermost cache level whose (shared) capacity holds the working
    set, or ``None`` when the kernel streams from DRAM.

    Each thread works on ``footprint / nthreads`` bytes; a level fits if
    the combined slices of all threads sharing the instance fit its
    capacity (with a 10% headroom for conflict misses, matching what the
    set-associative simulator shows for streaming patterns).
    """
    nthreads = len(cores)
    slice_bytes = kernel.footprint_bytes(n, dtype) / nthreads
    for level in cpu.caches:
        sharers = _sharers_of_level(cpu, level, core, cores, profile)
        headroom = fit_headroom(sharers)
        if slice_bytes * sharers <= headroom * level.capacity_bytes:
            return level
    return None


def memory_time_per_iter(
    cpu: CPUModel,
    kernel: Kernel,
    n: int,
    dtype: DType,
    core: int,
    cores: tuple[int, ...],
    profile: PlacementProfile | None = None,
) -> MemoryTimes:
    """Seconds of memory-path time per main-loop iteration for the
    thread pinned to ``core``.

    ``profile`` is the placement's cached symmetry profile; when omitted
    it is looked up (cheaply, via the profile cache) so stand-alone
    callers get the O(1) sharer lookups too.
    """
    if n < 1:
        raise SimulationError(f"problem size must be >= 1, got {n}")
    if core not in cores:
        raise SimulationError(f"core {core} not in placement {cores}")
    if profile is None and not reference_active():
        profile = placement_profile(cpu.topology, cores)

    traits = kernel.traits
    bytes_per_iter = traits.bytes_per_iter(dtype)

    level = serving_level(cpu, kernel, n, dtype, core, cores, profile)
    if level is not None:
        sharers = _sharers_of_level(cpu, level, core, cores, profile)
        bandwidth = level_bandwidth_per_thread(cpu, level, sharers)
        name = level.name
        # Blocked kernels (traffic_scale < 1) also shrink outer-level
        # traffic; inner levels see the full stream.
        if level is not cpu.caches.levels[0]:
            bytes_per_iter *= traits.traffic_scale
    else:
        bandwidth = dram_bandwidth_per_thread(cpu, core, cores, profile)
        name = "DRAM"
        bytes_per_iter *= traits.traffic_scale

    if LoopFeature.INDIRECTION in traits.features and name != "L1D":
        bandwidth *= GATHER_EFFICIENCY

    if bandwidth <= 0:
        raise SimulationError("non-positive memory bandwidth")
    return MemoryTimes(
        seconds_per_iter=bytes_per_iter / bandwidth,
        serving_level=name,
        per_thread_bandwidth=bandwidth,
    )
