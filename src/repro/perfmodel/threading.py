"""Threading composition: Amdahl's law plus fork-join overhead.

One RAJAPerf repetition decomposes into a serial fraction (executed by
the master thread at single-thread speed), a parallel fraction (split by
the static scheduler, finishing when the slowest thread does), and the
OpenMP fork-join/barrier cost paid once per repetition.

The barrier cost grows with thread count; on the SG2042 it is large
enough that short kernels (halo exchanges, stream passes at high rep
counts) lose their threading gains — the mechanism behind the apps
class's 2-thread *slowdown* and much of the 64-thread collapse in
Tables 1-3.
"""

from __future__ import annotations

from functools import lru_cache

from repro.machine.cpu import CPUModel
from repro.util.errors import SimulationError

#: Barrier growth: cost = fork_join_ns * (1 + LINEAR * (p - 1)) — a
#: centralized-barrier model; log-tree barriers would grow slower but the
#: GOMP default on these platforms is centralized.
BARRIER_LINEAR_FACTOR = 0.15


@lru_cache(maxsize=4096)
def _barrier_seconds_cached(fork_join_ns: float, nthreads: int) -> float:
    if nthreads == 1:
        # No parallel region is forked for a single thread.
        return 0.0
    return (
        fork_join_ns
        * (1.0 + BARRIER_LINEAR_FACTOR * (nthreads - 1))
        * 1e-9
    )


def barrier_seconds(cpu: CPUModel, nthreads: int) -> float:
    """Fork-join plus barrier cost of one parallel region.

    Depends only on (fork_join_ns, nthreads), so the value is memoized
    on that pair — the suite pays one multiply chain per configuration
    instead of one per kernel."""
    if nthreads < 1:
        raise SimulationError(f"nthreads must be >= 1, got {nthreads}")
    return _barrier_seconds_cached(cpu.fork_join_ns, nthreads)


def static_chunks(total_iters: int, nthreads: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, end)`` iteration blocks of the OpenMP static
    schedule (what GOMP does with no ``schedule`` clause).

    This is the partition :mod:`repro.perfmodel.execution` times (chunk =
    iterations / threads, slowest thread decides) and the one the static
    race detector (:mod:`repro.analyze.races`) proves safety against: two
    iterations can run concurrently iff they land in different blocks.
    """
    if total_iters < 0:
        raise SimulationError(f"total_iters must be >= 0, got {total_iters}")
    if nthreads < 1:
        raise SimulationError(f"nthreads must be >= 1, got {nthreads}")
    base, extra = divmod(total_iters, nthreads)
    chunks: list[tuple[int, int]] = []
    start = 0
    for tid in range(nthreads):
        size = base + (1 if tid < extra else 0)
        chunks.append((start, start + size))
        start += size
    return chunks


def compose_parallel_time(
    serial_fraction_time: float,
    slowest_chunk_time: float,
    barrier_time: float,
) -> float:
    """Total time of one repetition."""
    for name, value in (
        ("serial_fraction_time", serial_fraction_time),
        ("slowest_chunk_time", slowest_chunk_time),
        ("barrier_time", barrier_time),
    ):
        if value < 0:
            raise SimulationError(f"{name} must be >= 0, got {value}")
    return serial_fraction_time + slowest_chunk_time + barrier_time
