"""Set-associative LRU cache simulator.

A concrete, trace-driven cache used to validate the analytic capacity
model: tests drive it with streaming and blocked access patterns and
check that the analytic "fits / does not fit" decisions in
:mod:`repro.perfmodel.memory` agree with simulated hit rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.cache import CacheLevel
from repro.util.errors import ConfigError


@dataclass
class CacheStats:
    """Access counters for one simulated cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            raise ConfigError("no accesses recorded")
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate


class SetAssociativeCache:
    """A single-level set-associative cache with true-LRU replacement.

    Addresses are byte addresses; each access touches one line (accesses
    straddling a line must be split by the caller — the kernels here are
    element-aligned, so this never happens in practice).
    """

    def __init__(self, level: CacheLevel) -> None:
        self.level = level
        self.num_sets = level.num_sets
        self.assoc = level.associativity
        self.line = level.line_bytes
        # tags[set][way] = line tag, -1 for invalid; lru[set][way] = age.
        self._tags = np.full((self.num_sets, self.assoc), -1, dtype=np.int64)
        self._age = np.zeros((self.num_sets, self.assoc), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    def reset(self) -> None:
        """Invalidate everything and clear the counters."""
        self._tags.fill(-1)
        self._age.fill(0)
        self._clock = 0
        self.stats = CacheStats()

    def _locate(self, address: int) -> tuple[int, int]:
        if address < 0:
            raise ConfigError(f"negative address {address}")
        line_addr = address // self.line
        return line_addr % self.num_sets, line_addr

    def access(self, address: int) -> bool:
        """Touch one byte address. Returns True on hit."""
        set_idx, tag = self._locate(address)
        self._clock += 1
        self.stats.accesses += 1
        tags = self._tags[set_idx]
        ways = np.nonzero(tags == tag)[0]
        if ways.size:
            self.stats.hits += 1
            self._age[set_idx, ways[0]] = self._clock
            return True
        self.stats.misses += 1
        empty = np.nonzero(tags == -1)[0]
        if empty.size:
            way = int(empty[0])
        else:
            way = int(np.argmin(self._age[set_idx]))
            self.stats.evictions += 1
        tags[way] = tag
        self._age[set_idx, way] = self._clock
        return False

    def access_array(self, addresses: np.ndarray) -> int:
        """Touch a sequence of byte addresses; returns the hit count."""
        hits = 0
        for addr in addresses:
            hits += self.access(int(addr))
        return hits

    def warm_streaming(self, start: int, nbytes: int) -> None:
        """Stream a contiguous range through the cache (no stats reset)."""
        if nbytes < 0:
            raise ConfigError("nbytes must be >= 0")
        for addr in range(start, start + nbytes, self.line):
            self.access(addr)


def streaming_miss_rate(level: CacheLevel, footprint_bytes: int,
                        passes: int = 2) -> float:
    """Simulated steady-state miss rate of repeatedly streaming a
    ``footprint_bytes`` buffer through ``level``.

    Used by tests to validate the analytic rule: footprints within
    capacity converge to ~0 misses after the first pass; larger
    footprints miss on (almost) every line under LRU.
    """
    if passes < 1:
        raise ConfigError("need at least one pass")
    cache = SetAssociativeCache(level)
    # Warm-up pass fills the cache.
    cache.warm_streaming(0, footprint_bytes)
    cache.stats = CacheStats()
    for _ in range(passes):
        cache.warm_streaming(0, footprint_bytes)
    return cache.stats.miss_rate
