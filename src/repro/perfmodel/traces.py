"""Address-trace generation and multi-level cache simulation.

Bridges the gap between the analytic capacity model and real access
behaviour: trace generators produce the address streams the RAJAPerf
kernel archetypes emit (streaming, strided, blocked, gather), and
:class:`HierarchySimulator` replays them through a chain of
set-associative caches. The tests use this to validate the analytic
"which level serves the working set" rule and the gather derating.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.cache import CacheHierarchy
from repro.perfmodel.cachesim import SetAssociativeCache
from repro.util.errors import ConfigError


def streaming_trace(nbytes: int, elem_bytes: int = 8,
                    base: int = 0) -> np.ndarray:
    """Unit-stride sweep over a buffer (stream/daxpy archetype)."""
    if nbytes < elem_bytes:
        raise ConfigError("buffer smaller than one element")
    return np.arange(base, base + nbytes, elem_bytes, dtype=np.int64)


def strided_trace(nbytes: int, stride_bytes: int,
                  elem_bytes: int = 8, base: int = 0) -> np.ndarray:
    """Strided sweep (DIFF_PREDICT/INT_PREDICT archetype)."""
    if stride_bytes < elem_bytes:
        raise ConfigError("stride smaller than element")
    return np.arange(base, base + nbytes, stride_bytes, dtype=np.int64)


def blocked_trace(nbytes: int, block_bytes: int, passes: int,
                  elem_bytes: int = 8) -> np.ndarray:
    """Tiled access: sweep each block ``passes`` times before moving on
    (blocked matmul archetype — the reuse behind ``traffic_scale``)."""
    if block_bytes > nbytes:
        raise ConfigError("block larger than buffer")
    if passes < 1:
        raise ConfigError("passes must be >= 1")
    chunks = []
    for start in range(0, nbytes, block_bytes):
        end = min(start + block_bytes, nbytes)
        block = np.arange(start, end, elem_bytes, dtype=np.int64)
        chunks.extend([block] * passes)
    return np.concatenate(chunks)


def gather_trace(nbytes: int, count: int, elem_bytes: int = 8,
                 seed: int = 0) -> np.ndarray:
    """Random-gather accesses over a buffer (HALOEXCHANGE/indirection
    archetype)."""
    if count < 1:
        raise ConfigError("count must be >= 1")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, max(1, nbytes // elem_bytes), size=count)
    return (idx * elem_bytes).astype(np.int64)


@dataclass
class LevelStats:
    """Per-level outcome of a trace replay."""

    name: str
    accesses: int
    hits: int

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            raise ConfigError(f"{self.name}: no accesses")
        return self.hits / self.accesses


class HierarchySimulator:
    """Replay a byte-address trace through an inclusive multi-level
    cache hierarchy: misses at level *i* are looked up at level *i+1*;
    a miss at the last level counts as DRAM traffic."""

    def __init__(self, hierarchy: CacheHierarchy) -> None:
        self.levels = [SetAssociativeCache(lvl) for lvl in hierarchy]
        self.dram_accesses = 0

    def reset(self) -> None:
        for cache in self.levels:
            cache.reset()
        self.dram_accesses = 0

    def access(self, address: int) -> str:
        """Touch one address; returns the name of the serving level
        (or ``"DRAM"``)."""
        for cache in self.levels:
            if cache.access(address):
                return cache.level.name
        self.dram_accesses += 1
        return "DRAM"

    def replay(self, trace: np.ndarray) -> list[LevelStats]:
        """Replay a whole trace; returns per-level statistics."""
        if trace.size == 0:
            raise ConfigError("empty trace")
        for addr in trace:
            self.access(int(addr))
        return self.stats()

    def stats(self) -> list[LevelStats]:
        return [
            LevelStats(
                name=c.level.name,
                accesses=c.stats.accesses,
                hits=c.stats.hits,
            )
            for c in self.levels
        ]

    def serving_level_steady_state(
        self, trace: np.ndarray, warm_passes: int = 1
    ) -> str:
        """Which level supplies the majority of *line fills* once warm —
        the simulated counterpart of the analytic
        :func:`repro.perfmodel.memory.serving_level` decision.

        Per-element L1 hits from spatial locality within a cache line do
        not count: the question is where the data streams *from*. A
        fully resident working set (no L1 misses at all) is served by
        the innermost level.
        """
        if warm_passes < 1:
            raise ConfigError("warm_passes must be >= 1")
        for _ in range(warm_passes):
            self.replay(trace)
        # Measure one more pass with fresh counters.
        for cache in self.levels:
            cache.stats = type(cache.stats)()
        self.dram_accesses = 0
        fills: dict[str, int] = {}
        innermost = self.levels[0].level.name
        for addr in trace:
            server = self.access(int(addr))
            if server != innermost:
                fills[server] = fills.get(server, 0) + 1
        if not fills:
            return innermost
        return max(fills, key=fills.get)
