"""Placement symmetry classes: evaluate each distinct core once.

The memory-path model is per-thread, but a thread's outcome depends on
its core id only through two integers: how many active threads share its
L2 cluster and how many share its NUMA region (plus, degenerately, the
package-wide count, which is the same for every thread). On real
placements almost every core is therefore *equivalent* to most others —
all 64 cores of a full-machine block placement on the SG2042 collapse
into a single class — yet the naive model walked every core and rebuilt
the active-per-cluster/active-per-NUMA maps from scratch each time.

:func:`placement_profile` computes those maps once per (topology,
placement) pair, groups the cores into their ``(cluster sharers, NUMA
sharers)`` equivalence classes and caches the result, so the hot loops
in :mod:`repro.perfmodel.execution` and :mod:`repro.perfmodel.memory`
touch each *class* once instead of each core.

Class order is chosen so the slowest-thread scan stays bit-identical to
the per-core reference: the reference scan keeps the **last** core (in
placement order) among ties for the maximum, so classes are ordered by
the position of their last member and compared with ``>=``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache

from repro.machine.topology import NumaTopology
from repro.util.errors import SimulationError

#: When True, the execution and memory models ignore placement profiles
#: and walk every core with the original O(cores) map rebuilds. Flip
#: only through :func:`reference_mode`; the golden equivalence tests and
#: ``benchmarks/bench_sweep.py`` use it to pin the fast path against the
#: pre-optimization reference bit-for-bit.
_REFERENCE_MODE = False


@contextmanager
def reference_mode():
    """Run the performance model on the naive per-core reference path."""
    global _REFERENCE_MODE
    previous = _REFERENCE_MODE
    _REFERENCE_MODE = True
    try:
        yield
    finally:
        _REFERENCE_MODE = previous


def reference_active() -> bool:
    """Whether :func:`reference_mode` is currently installed."""
    return _REFERENCE_MODE


@dataclass(frozen=True)
class CoreClass:
    """One equivalence class of cores within a placement.

    Attributes:
        representative: The class's last core in placement order (the
            one the reference scan would have kept on a tie).
        count: Number of placed cores in the class.
        cluster_sharers: Active threads sharing the representative's L2
            cluster (identical for every member by construction).
        numa_sharers: Active threads sharing the representative's NUMA
            region (identical for every member).
    """

    representative: int
    count: int
    cluster_sharers: int
    numa_sharers: int


class PlacementProfile:
    """Derived views of one (topology, placement) pair.

    Exposes O(1) lookups the memory model needs per thread and the
    deduplicated :attr:`classes` the execution model scans. Instances
    are built by :func:`placement_profile` and shared via its cache; do
    not mutate them.
    """

    __slots__ = (
        "topology",
        "cores",
        "classes",
        "active_per_cluster",
        "active_per_numa",
        "_numa_of",
        "_cluster_of",
        "_sharers_of",
    )

    def __init__(self, topology: NumaTopology, cores: tuple[int, ...]):
        if not cores:
            raise SimulationError(
                "placement must contain at least one core"
            )
        if len(set(cores)) != len(cores):
            raise SimulationError(f"duplicate cores in placement {cores}")
        self.topology = topology
        self.cores = cores
        numa_of = {c: topology.numa_of(c) for c in cores}
        cluster_of = {c: topology.cluster_of(c) for c in cores}
        per_numa: dict[int, int] = {}
        per_cluster: dict[int, int] = {}
        for core in cores:
            node, cl = numa_of[core], cluster_of[core]
            per_numa[node] = per_numa.get(node, 0) + 1
            per_cluster[cl] = per_cluster.get(cl, 0) + 1
        self.active_per_numa = per_numa
        self.active_per_cluster = per_cluster
        self._numa_of = numa_of
        self._cluster_of = cluster_of
        sharers = {
            c: (per_cluster[cluster_of[c]], per_numa[numa_of[c]])
            for c in cores
        }
        self._sharers_of = sharers
        # Group in placement order; keep the *last* member as the
        # representative so tie-breaking matches the per-core scan.
        groups: dict[tuple[int, int], list[int]] = {}
        for core in cores:
            groups.setdefault(sharers[core], []).append(core)
        ordered = sorted(groups.items(), key=lambda kv: cores.index(kv[1][-1]))
        self.classes: tuple[CoreClass, ...] = tuple(
            CoreClass(
                representative=members[-1],
                count=len(members),
                cluster_sharers=key[0],
                numa_sharers=key[1],
            )
            for key, members in ordered
        )

    # -- per-thread lookups (what the memory model asks) ------------------

    def numa_of(self, core: int) -> int:
        node = self._numa_of.get(core)
        if node is None:
            raise SimulationError(
                f"core {core} not in placement {self.cores}"
            )
        return node

    def cluster_sharers(self, core: int) -> int:
        pair = self._sharers_of.get(core)
        if pair is None:
            raise SimulationError(
                f"core {core} not in placement {self.cores}"
            )
        return pair[0]

    def numa_sharers(self, core: int) -> int:
        pair = self._sharers_of.get(core)
        if pair is None:
            raise SimulationError(
                f"core {core} not in placement {self.cores}"
            )
        return pair[1]

    @property
    def nthreads(self) -> int:
        return len(self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlacementProfile(cores={len(self.cores)}, "
            f"classes={len(self.classes)})"
        )


@lru_cache(maxsize=4096)
def placement_profile(
    topology: NumaTopology, cores: tuple[int, ...]
) -> PlacementProfile:
    """The (cached) profile of ``cores`` placed on ``topology``.

    The cache key is the topology's *value* (frozen dataclass equality),
    so equal machines share entries and a sweep computes each of its
    handful of placements exactly once.
    """
    return PlacementProfile(topology, cores)
