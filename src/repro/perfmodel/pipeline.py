"""Per-iteration pipeline cost: FP throughput vs load/store issue rate.

A superscalar core overlaps arithmetic with address generation, so the
per-iteration cycle cost is the *maximum* of the FP-pipe time and the
load/store-pipe time, not their sum. Vectorization divides both: a vector
op retires ``lanes`` elements of arithmetic, and a unit-stride vector
load/store moves ``lanes`` elements per instruction — which is why
enabling RVV helps the C920 even on cache-resident, bandwidth-flavoured
kernels (Figure 2's stream class).
"""

from __future__ import annotations

from repro.kernels.base import KernelTraits
from repro.machine.cpu import CoreModel
from repro.machine.vector import DType
from repro.util.errors import SimulationError


def _mode_efficiency(core: CoreModel, vectorized: bool) -> float:
    eff = core.vector_efficiency if vectorized else core.scalar_efficiency
    if not core.out_of_order:
        eff *= core.inorder_penalty
    return eff


def pipeline_time_per_iter(
    core: CoreModel,
    traits: KernelTraits,
    dtype: DType,
    vectorized: bool,
    vector_efficiency: float = 1.0,
) -> float:
    """Seconds of core-pipeline time per main-loop iteration.

    ``vectorized`` means vector code *executes* (compiler emitted it and
    the runtime path is the vector one). ``vector_efficiency`` is the
    compiler/kernel quality multiplier from the vectorization report.

    When the ISA cannot vectorize ``dtype`` (FP64 on the C920's RVV
    v0.7.1), lane count collapses to 1 and the arithmetic falls back to
    the scalar pipes — executing "vector" FP64 code is then no faster
    than scalar, reproducing Figure 2.
    """
    if not 0 < vector_efficiency <= 1:
        raise SimulationError(
            f"vector_efficiency must be in (0, 1], got {vector_efficiency}"
        )

    lanes = core.isa.lanes(dtype) if vectorized else 1
    vec_active = vectorized and lanes > 1

    if vec_active:
        ops_factor = 2.0 if core.fma else 1.0
        flops_per_cycle = (
            core.vector_pipes * lanes * ops_factor
            * _mode_efficiency(core, True)
            * vector_efficiency
        )
        mem_lanes = lanes * vector_efficiency
        ls_eff = _mode_efficiency(core, True)
    else:
        flops_per_cycle = (
            core.fp_ops_per_cycle * _mode_efficiency(core, False)
        )
        mem_lanes = 1.0
        ls_eff = _mode_efficiency(core, False)

    if flops_per_cycle <= 0 or ls_eff <= 0:
        raise SimulationError("non-positive pipeline throughput")

    flop_cycles = traits.flops_per_iter / flops_per_cycle
    mem_ops = (traits.reads_per_iter + traits.writes_per_iter) / mem_lanes
    mem_cycles = mem_ops / (core.ls_ops_per_cycle * ls_eff)

    cycles = max(flop_cycles, mem_cycles)
    if cycles < 0:
        raise SimulationError(f"negative cycle count {cycles}")
    return cycles / core.clock_hz
