"""The analytic performance model.

``simulate_kernel`` predicts the execution time of one RAJAPerf kernel on
one modelled CPU for a given thread placement, precision and compilation
outcome. The prediction composes four sub-models:

* **pipeline** (:mod:`repro.perfmodel.pipeline`): per-iteration cycles
  from FP throughput and load/store issue rates, scalar or vector;
* **cache/memory** (:mod:`repro.perfmodel.memory`): which level of the
  hierarchy serves the working set given capacity sharing, and the
  per-thread bandwidth after NUMA-controller and cache-port contention;
* **threading** (:mod:`repro.perfmodel.threading`): Amdahl composition
  plus the fork-join/barrier overhead model;
* **cachesim** (:mod:`repro.perfmodel.cachesim`): a concrete
  set-associative LRU cache simulator used to validate the analytic
  capacity model against address traces.
"""

from repro.perfmodel.cachesim import CacheStats, SetAssociativeCache
from repro.perfmodel.execution import ExecutionResult, simulate_kernel
from repro.perfmodel.memory import MemoryTimes, memory_time_per_iter
from repro.perfmodel.pipeline import pipeline_time_per_iter
from repro.perfmodel.placement import (
    CoreClass,
    PlacementProfile,
    placement_profile,
    reference_mode,
)
from repro.perfmodel.threading import barrier_seconds, compose_parallel_time

__all__ = [
    "SetAssociativeCache",
    "CacheStats",
    "simulate_kernel",
    "ExecutionResult",
    "memory_time_per_iter",
    "MemoryTimes",
    "pipeline_time_per_iter",
    "barrier_seconds",
    "compose_parallel_time",
    "CoreClass",
    "PlacementProfile",
    "placement_profile",
    "reference_mode",
]
