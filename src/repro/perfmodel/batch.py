"""Vectorized whole-suite prediction: the batch engine.

``simulate_kernel`` walks one (kernel, machine, configuration) point at
Python speed: a handful of function calls, a per-class scan, a dozen
float operations. A sweep multiplies that by thousands of points, so a
*cold* grid (empty caches) is rate-limited by the interpreter, not by
the model's arithmetic.

:func:`predict_batch` evaluates one whole configuration — every kernel
of a suite at once — by *lowering* the kernel list into
structure-of-arrays NumPy inputs (:func:`lower_kernels`) and replaying
the scalar model as array expressions over the kernel axis:

* per-iteration pipeline times come from the (memoized) scalar
  :func:`~repro.perfmodel.pipeline.pipeline_time_per_iter`, one float
  per kernel — they depend on the kernel, not the placement;
* the serving-level decision becomes a masked first-fit select over the
  cache levels, with sharers/bandwidths taken per *placement symmetry
  class* (:mod:`repro.perfmodel.placement`) as Python scalars from the
  same helpers the scalar model uses;
* the slowest-thread scan becomes a ``>=``-masked running maximum over
  the classes, preserving the scalar scan's last-wins tie-break;
* Amdahl composition, fork-join overhead and repetition scaling are
  elementwise array arithmetic.

**Bit-identity.** Every array expression performs the *same IEEE-754
double operations in the same order* as the scalar model does per
point — NumPy elementwise float64 arithmetic rounds identically to
Python float arithmetic — and every placement- or level-dependent
scalar (bandwidths, headrooms, barrier costs) is computed by the very
helper the scalar path calls. The golden and randomized tests in
``tests/suite/test_batch_equivalence.py`` pin the equality point for
point across machines, placements and dtypes.

**Fallback contract.** The batch path never raises per-kernel model
errors: a kernel whose batch evaluation cannot produce a valid
(finite, positive) prediction gets ``None`` in the returned list, and
the caller re-runs it through the scalar engine so failure semantics
(error types, messages, retry accounting) stay byte-identical. Chaos
fault plans and :func:`~repro.perfmodel.placement.reference_mode` are
handled one layer up (:mod:`repro.suite.runner` forces the scalar
engine) because injected faults are per-call state a batched evaluation
cannot replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro import telemetry
from repro.compiler.vectorizer import VectorizationReport
from repro.kernels.base import Kernel, LoopFeature
from repro.machine.cache import Sharing
from repro.machine.cpu import CoreModel, CPUModel
from repro.machine.vector import DType
from repro.perfmodel.execution import ExecutionResult, execution_dtype
from repro.perfmodel.memory import (
    GATHER_EFFICIENCY,
    dram_bandwidth_per_thread,
    fit_headroom,
    level_bandwidth_per_thread,
)
from repro.perfmodel.pipeline import pipeline_time_per_iter
from repro.perfmodel.placement import placement_profile
from repro.perfmodel.threading import barrier_seconds
from repro.util.errors import ReproError, SimulationError

#: Serving-level code for DRAM in the batched select (cache levels use
#: their index in ``cpu.caches.levels``).
_DRAM_CODE = -1


@dataclass(frozen=True)
class KernelSoA:
    """Structure-of-arrays lowering of a kernel list.

    One float64 (or bool) entry per kernel for every trait the analytic
    model reads per iteration. Arrays are read-only views shared through
    the :func:`lower_kernels` cache; do not mutate them.
    """

    kernels: tuple[Kernel, ...]
    flops_per_iter: np.ndarray
    reads_per_iter: np.ndarray
    writes_per_iter: np.ndarray
    footprint_elems: np.ndarray
    traffic_scale: np.ndarray
    parallel_fraction: np.ndarray
    regions_per_rep: np.ndarray
    reps: np.ndarray
    gather: np.ndarray  # bool: INDIRECTION in features
    default_sizes: np.ndarray

    def __len__(self) -> int:
        return len(self.kernels)


def _frozen(values, dtype=np.float64) -> np.ndarray:
    arr = np.array(values, dtype=dtype)
    arr.setflags(write=False)
    return arr


@lru_cache(maxsize=256)
def lower_kernels(kernels: tuple[Kernel, ...]) -> KernelSoA:
    """Lower ``kernels`` into the SoA form the batch engine consumes.

    Cached on the kernel tuple (registry kernels are singletons), so a
    sweep lowers its suite once, not once per grid point. When a
    process-wide default :class:`~repro.store.ArtifactStore` is
    installed, lowerings additionally persist under the ``soa``
    namespace so fresh processes skip the trait walk; the on-disk key
    is the *content* of the lowering inputs (per-kernel trait scalars),
    so any re-tuned trait self-invalidates.
    """
    from repro.store import default_store

    store = default_store()
    if store is None:
        return _lower_kernels_impl(kernels)

    import warnings

    from repro.store.artifact import StoreWarning
    from repro.store.codecs import CodecError, decode_soa, encode_soa

    key = _soa_key_parts(kernels)
    payload = store.get("soa", key)
    if payload is not None:
        try:
            return decode_soa(payload, kernels)
        except CodecError as exc:
            warnings.warn(
                f"stored SoA lowering is unusable ({exc}); relowering",
                StoreWarning, stacklevel=2,
            )
    soa = _lower_kernels_impl(kernels)
    store.put("soa", key, encode_soa(soa))
    return soa


def _soa_key_parts(kernels: tuple[Kernel, ...]) -> list:
    """Content key of a lowering: every scalar the SoA is built from.

    Deliberately *not* ``repr(traits)`` — trait feature sets render in
    hash order, which is not stable across processes.
    """
    rows = []
    for k in kernels:
        t = k.traits
        rows.append([
            k.name,
            float(t.flops_per_iter), float(t.reads_per_iter),
            float(t.writes_per_iter), float(t.footprint_elems),
            float(t.traffic_scale), float(t.parallel_fraction),
            float(t.regions_per_rep), float(k.reps),
            bool(LoopFeature.INDIRECTION in t.features),
            float(k.default_size),
        ])
    return ["kernels", rows]


def persist_lowering(kernels: tuple[Kernel, ...], store) -> None:
    """Write ``kernels``' SoA lowering to ``store`` unconditionally.

    ``repro warm`` uses this: :func:`lower_kernels` only writes through
    on an in-process cache miss, but warming must persist the artifact
    even when this process already lowered the tuple.
    """
    from repro.store.codecs import encode_soa

    store.put(
        "soa", _soa_key_parts(kernels),
        encode_soa(_lower_kernels_impl(kernels)),
    )


def _lower_kernels_impl(kernels: tuple[Kernel, ...]) -> KernelSoA:
    traits = [k.traits for k in kernels]
    return KernelSoA(
        kernels=kernels,
        flops_per_iter=_frozen([t.flops_per_iter for t in traits]),
        reads_per_iter=_frozen([t.reads_per_iter for t in traits]),
        writes_per_iter=_frozen([t.writes_per_iter for t in traits]),
        footprint_elems=_frozen([t.footprint_elems for t in traits]),
        traffic_scale=_frozen([t.traffic_scale for t in traits]),
        parallel_fraction=_frozen([t.parallel_fraction for t in traits]),
        regions_per_rep=_frozen([t.regions_per_rep for t in traits]),
        reps=_frozen([k.reps for k in kernels]),
        gather=_frozen(
            [LoopFeature.INDIRECTION in t.features for t in traits],
            dtype=bool,
        ),
        default_sizes=_frozen([k.default_size for k in kernels]),
    )


@lru_cache(maxsize=128)
def _level_names(cpu: CPUModel) -> tuple[str, ...]:
    """Serving-level display names, decoded from the batched select."""
    return tuple(level.name for level in cpu.caches.levels)


@lru_cache(maxsize=8192)
def _pipe_seconds(
    core: CoreModel,
    traits,
    dtype: DType,
    vectorized: bool,
    efficiency: float,
) -> float:
    """Memoized scalar pipeline time — placement-independent, so one
    entry serves every grid point of a (kernel, dtype, report) triple."""
    return pipeline_time_per_iter(core, traits, dtype, vectorized,
                                  efficiency)


@dataclass(frozen=True)
class _Prelude:
    """Configuration-independent slice of a batched prediction.

    Everything here depends only on (machine, kernels, precision,
    reports, sizes) — not on the placement — so one instance serves
    every grid point of a sweep that shares those inputs. That includes
    the whole *serial* (master-thread) part: a single-core placement has
    every sharer count at 1 and a DRAM share that is independent of
    which core hosts the master (``active == 1`` in both branches of
    :func:`dram_bandwidth_per_thread`), so its value is the same for
    every placement in the grid.
    """

    soa: KernelSoA
    size: np.ndarray
    dtype_bytes: np.ndarray
    pipe: np.ndarray
    vectorized: tuple[bool, ...]
    footprint_bytes: np.ndarray
    bytes_per_iter: np.ndarray
    par_iters_total: np.ndarray
    serial_time: np.ndarray
    base_invalid: np.ndarray  # pipeline failures and negative serial part


@lru_cache(maxsize=512)
def _prelude(
    cpu: CPUModel,
    kernels: tuple[Kernel, ...],
    precision: DType,
    reports: tuple[VectorizationReport, ...],
    sizes: tuple[int, ...] | None,
) -> _Prelude:
    """Build (and cache) the placement-independent arrays of a batch.

    A full sweep grid re-keys this only when the precision flips, so the
    per-kernel Python loop below runs twice per grid, not once per
    point.
    """
    soa = lower_kernels(kernels)
    size = soa.default_sizes if sizes is None else _frozen(sizes)
    isa = cpu.core.isa

    # Per-kernel scalars: executed dtype, whether vector code runs,
    # pipeline seconds per iteration.
    dtype_bytes = np.empty(len(kernels))
    pipe = np.empty(len(kernels))
    failed = np.zeros(len(kernels), dtype=bool)
    vectorized_flags: list[bool] = []
    for i, (kernel, report) in enumerate(zip(kernels, reports)):
        dtype = execution_dtype(kernel, precision)
        vectorized = report.effective and isa.supports(dtype)
        vectorized_flags.append(vectorized)
        dtype_bytes[i] = dtype.bytes
        try:
            pipe[i] = _pipe_seconds(
                cpu.core, kernel.traits, dtype, vectorized,
                report.efficiency if vectorized else 1.0,
            )
        except ReproError:
            # The scalar fallback re-raises the authoritative error for
            # this kernel; the rest of the batch proceeds.
            pipe[i] = np.nan
            failed[i] = True

    with np.errstate(all="ignore"):
        # Working-set and nominal traffic, in the scalar model's
        # association order: (elems * n) * bytes.
        footprint_bytes = (soa.footprint_elems * size) * dtype_bytes
        bytes_per_iter = (
            soa.reads_per_iter + soa.writes_per_iter
        ) * dtype_bytes
        par_iters_total = soa.parallel_fraction * size

        # Serial part: the master thread with the whole machine idle —
        # a degenerate single-core placement where every sharer count
        # is 1 and the slice is the full footprint. Master-independent
        # (see class docstring), so any valid core represents it.
        master = cpu.topology.numa_nodes[0][0]
        serial_iters = (1.0 - soa.parallel_fraction) * size
        mem1, _ = _class_memory_seconds(
            cpu, footprint_bytes / 1, bytes_per_iter, soa.traffic_scale,
            soa.gather, 1, 1, 1,
            dram_bandwidth_per_thread(
                cpu, master, (master,),
                placement_profile(cpu.topology, (master,)),
            ),
        )
        serial_time = np.where(
            serial_iters > 0, serial_iters * np.maximum(pipe, mem1), 0.0
        )
        base_invalid = failed | (serial_time < 0)

    for arr in (dtype_bytes, pipe, footprint_bytes, bytes_per_iter,
                par_iters_total, serial_time, base_invalid):
        arr.setflags(write=False)
    return _Prelude(
        soa=soa,
        size=size,
        dtype_bytes=dtype_bytes,
        pipe=pipe,
        vectorized=tuple(vectorized_flags),
        footprint_bytes=footprint_bytes,
        bytes_per_iter=bytes_per_iter,
        par_iters_total=par_iters_total,
        serial_time=serial_time,
        base_invalid=base_invalid,
    )


def _class_memory_seconds(
    cpu: CPUModel,
    slice_bytes: np.ndarray,
    bytes_per_iter: np.ndarray,
    traffic_scale: np.ndarray,
    gather: np.ndarray,
    nthreads: int,
    cluster_sharers: int,
    numa_sharers: int,
    dram_bandwidth: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-kernel memory seconds/iteration for one symmetry class.

    Mirrors :func:`repro.perfmodel.memory.memory_time_per_iter` as a
    masked first-fit over the cache levels: sharers, headrooms and
    bandwidths are the same Python scalars the scalar model computes
    (one per level per class, kernel-independent), and only the
    fit/select and the final divide are arrays.

    Returns ``(seconds_per_iter, level_code)`` where ``level_code`` is
    the serving level's index in ``cpu.caches.levels`` or ``-1`` (DRAM).
    """
    m = len(slice_bytes)
    seconds = np.zeros(m)
    level_code = np.full(m, _DRAM_CODE, dtype=np.int64)
    remaining = np.ones(m, dtype=bool)
    for idx, level in enumerate(cpu.caches.levels):
        if level.sharing is Sharing.CORE:
            sharers = 1
        elif level.sharing is Sharing.CLUSTER:
            sharers = cluster_sharers
        elif level.sharing is Sharing.NUMA:
            sharers = numa_sharers
        elif level.sharing is Sharing.PACKAGE:
            sharers = nthreads
        else:  # pragma: no cover - exhaustive enum
            raise SimulationError(f"unknown sharing {level.sharing}")
        cap = fit_headroom(sharers) * level.capacity_bytes
        fits = remaining & (slice_bytes * sharers <= cap)
        if fits.any():
            bandwidth = level_bandwidth_per_thread(cpu, level, sharers)
            if bandwidth <= 0:
                # Scalar path raises here; poison so the caller falls
                # back and the scalar error is the one observed.
                seconds = np.where(fits, np.nan, seconds)
                remaining &= ~fits
                continue
            # Inner level (index 0) sees the full stream; outer levels
            # (and DRAM below) see the reuse-scaled traffic.
            traffic = (
                bytes_per_iter if idx == 0
                else bytes_per_iter * traffic_scale
            )
            if level.name != "L1D":
                per_thread = np.where(
                    gather, bandwidth * GATHER_EFFICIENCY, bandwidth
                )
            else:
                per_thread = bandwidth
            seconds = np.where(fits, traffic / per_thread, seconds)
            level_code = np.where(fits, idx, level_code)
            remaining &= ~fits
    if remaining.any():
        if dram_bandwidth <= 0:
            seconds = np.where(remaining, np.nan, seconds)
        else:
            per_thread = np.where(
                gather, dram_bandwidth * GATHER_EFFICIENCY, dram_bandwidth
            )
            dram_secs = (bytes_per_iter * traffic_scale) / per_thread
            seconds = np.where(remaining, dram_secs, seconds)
    return seconds, level_code


def _class_memory_rows(
    cpu: CPUModel,
    slice_rk: np.ndarray,
    bytes_per_iter: np.ndarray,
    traffic_scale: np.ndarray,
    gather: np.ndarray,
    rows: list[tuple[int, int, int, float]],
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`_class_memory_seconds` lifted over many symmetry classes.

    ``rows`` holds one ``(nthreads, cluster_sharers, numa_sharers,
    dram_bandwidth)`` tuple per class — classes of *different grid
    points* stack freely — and ``slice_rk`` the matching per-row slice
    bytes, shape ``(len(rows), kernels)``. Same first-fit select, same
    scalar helpers per (level, row), only evaluated for every row at
    once; returns ``(seconds_per_iter, level_code)`` of that shape.
    """
    shape = slice_rk.shape
    seconds = np.zeros(shape)
    level_code = np.full(shape, _DRAM_CODE, dtype=np.int64)
    remaining = np.ones(shape, dtype=bool)
    for idx, level in enumerate(cpu.caches.levels):
        if level.sharing is Sharing.CORE:
            sharers = [1] * len(rows)
        elif level.sharing is Sharing.CLUSTER:
            sharers = [row[1] for row in rows]
        elif level.sharing is Sharing.NUMA:
            sharers = [row[2] for row in rows]
        elif level.sharing is Sharing.PACKAGE:
            sharers = [row[0] for row in rows]
        else:  # pragma: no cover - exhaustive enum
            raise SimulationError(f"unknown sharing {level.sharing}")
        cap = np.array(
            [fit_headroom(s) * level.capacity_bytes for s in sharers]
        ).reshape(-1, 1)
        sharers_col = np.array(sharers, dtype=np.float64).reshape(-1, 1)
        fits = remaining & (slice_rk * sharers_col <= cap)
        if fits.any():
            bandwidth = np.array([
                level_bandwidth_per_thread(cpu, level, s) for s in sharers
            ]).reshape(-1, 1)
            # Scalar path raises on non-positive bandwidth; poison those
            # rows so the caller falls back and the scalar error is the
            # one observed. Their level_code is left un-selected, as in
            # the 1-D select's early ``continue``.
            bad = bandwidth <= 0
            traffic = (
                bytes_per_iter if idx == 0
                else bytes_per_iter * traffic_scale
            )
            if level.name != "L1D":
                per_thread = np.where(
                    gather, bandwidth * GATHER_EFFICIENCY, bandwidth
                )
            else:
                per_thread = bandwidth
            values = np.where(bad, np.nan, traffic / per_thread)
            seconds = np.where(fits, values, seconds)
            level_code = np.where(fits & ~bad, idx, level_code)
            remaining &= ~fits
    if remaining.any():
        dram = np.array([row[3] for row in rows]).reshape(-1, 1)
        bad = dram <= 0
        per_thread = np.where(gather, dram * GATHER_EFFICIENCY, dram)
        dram_secs = np.where(
            bad, np.nan, (bytes_per_iter * traffic_scale) / per_thread
        )
        seconds = np.where(remaining, dram_secs, seconds)
    return seconds, level_code


def predict_batch(
    cpu: CPUModel,
    kernels: Sequence[Kernel],
    cores: tuple[int, ...],
    precision: DType,
    reports: Sequence[VectorizationReport],
    sizes: Sequence[int] | None = None,
) -> list[ExecutionResult | None]:
    """Predict every kernel of one configuration in one vectorized pass.

    Telemetry-instrumented front of :func:`_predict_batch_impl` (which
    holds the model documentation): under an active session each call
    records a ``predict.batch`` span and the
    ``engine.batch.predictions`` / ``engine.batch.abstentions``
    counters; when telemetry is off it delegates directly.
    """
    rec = telemetry.recorder()
    if not rec.active:
        return _predict_batch_impl(
            cpu, kernels, cores, precision, reports, sizes
        )
    with rec.span(
        "predict.batch", kernels=len(kernels), threads=len(cores),
    ) as sp:
        out = _predict_batch_impl(
            cpu, kernels, cores, precision, reports, sizes
        )
        predicted = sum(1 for r in out if r is not None)
        sp.set(predicted=predicted, abstained=len(out) - predicted)
    reg = telemetry.metrics()
    reg.counter("engine.batch.predictions").inc(predicted)
    if len(out) > predicted:
        reg.counter("engine.batch.abstentions").inc(len(out) - predicted)
    return out


def _predict_batch_impl(
    cpu: CPUModel,
    kernels: Sequence[Kernel],
    cores: tuple[int, ...],
    precision: DType,
    reports: Sequence[VectorizationReport],
    sizes: Sequence[int] | None = None,
) -> list[ExecutionResult | None]:
    """Body of :func:`predict_batch`.

    The batched equivalent of calling
    :func:`~repro.perfmodel.execution.simulate_kernel` once per kernel
    with this (machine, placement, precision): same inputs, bit-identical
    outputs. Entries are ``None`` where the batched evaluation could not
    produce a valid prediction (non-finite or non-positive time) — the
    caller must re-run those kernels through the scalar engine, which
    raises the authoritative :class:`SimulationError`.

    Args:
        cpu: Machine model.
        kernels: Kernels to predict, one result per entry.
        cores: Thread placement — one core id per OpenMP thread.
        precision: FP32 or FP64 run configuration.
        reports: One compilation outcome per kernel (align with
            ``kernels``).
        sizes: Per-kernel problem sizes; defaults to each kernel's
            RAJAPerf size.
    """
    if len(reports) != len(kernels):
        raise SimulationError(
            f"{len(kernels)} kernels but {len(reports)} reports"
        )
    if not cores:
        raise SimulationError("placement must contain at least one core")
    if len(set(cores)) != len(cores):
        raise SimulationError(f"duplicate cores in placement {cores}")
    if not kernels:
        return []

    sizes_key: tuple[int, ...] | None = None
    if sizes is not None:
        if len(sizes) != len(kernels):
            raise SimulationError(
                f"{len(kernels)} kernels but {len(sizes)} sizes"
            )
        if min(sizes) < 1:
            raise SimulationError("size and reps must be >= 1")
        sizes_key = tuple(sizes)

    pre = _prelude(cpu, tuple(kernels), precision, tuple(reports),
                   sizes_key)
    soa = pre.soa
    pipe = pre.pipe
    nthreads = len(cores)
    profile = placement_profile(cpu.topology, cores)

    with np.errstate(all="ignore"):
        # Per-thread working-set slice and chunk, in the scalar model's
        # association order: the prelude's products, then / nthreads.
        slice_bytes = pre.footprint_bytes / nthreads
        chunk = pre.par_iters_total / nthreads

        # Parallel part: static schedule, slowest symmetry class decides.
        # Class order and the ``>=`` update reproduce the scalar scan's
        # last-wins tie-break.
        slowest = np.zeros(len(kernels))
        slow_compute = np.zeros(len(kernels), dtype=bool)
        slow_level = np.full(len(kernels), _DRAM_CODE - 1, dtype=np.int64)
        for cc in profile.classes:
            mem_secs, level_code = _class_memory_seconds(
                cpu, slice_bytes, pre.bytes_per_iter, soa.traffic_scale,
                soa.gather, nthreads, cc.cluster_sharers, cc.numa_sharers,
                dram_bandwidth_per_thread(
                    cpu, cc.representative, cores, profile
                ),
            )
            t = chunk * np.maximum(pipe, mem_secs)
            mask = t >= slowest
            slowest = np.where(mask, t, slowest)
            slow_compute = np.where(mask, pipe >= mem_secs, slow_compute)
            slow_level = np.where(mask, level_code, slow_level)

        barrier = barrier_seconds(cpu, nthreads)
        rep_time = (
            (pre.serial_time + slowest) + barrier * soa.regions_per_rep
        )
        seconds = rep_time * soa.reps

        # A point is invalid wherever the scalar engine would raise:
        # non-finite or non-positive totals, negative components (the
        # compose-time validation), or a per-kernel prelude failure.
        # ``seconds = rep_time * reps`` with ``reps >= 1`` (enforced at
        # kernel definition), so the finite/positive checks on
        # ``seconds`` subsume the same checks on ``rep_time``.
        invalid = (
            pre.base_invalid
            | ~np.isfinite(seconds) | (seconds <= 0)
            | (slowest < 0)
        )

    level_names = _level_names(cpu)
    # Bulk-extract to Python scalars once (C-speed) instead of paying a
    # NumPy scalar round-trip per field per kernel in the loop below.
    results: list[ExecutionResult | None] = []
    append = results.append
    new = object.__new__
    for bad, secs, rep, code, compute, vec in zip(
        invalid.tolist(), seconds.tolist(), rep_time.tolist(),
        slow_level.tolist(), slow_compute.tolist(), pre.vectorized,
    ):
        if bad:
            append(None)
            continue
        # Mask-passing entries provably satisfy ``__post_init__`` —
        # finite, positive times — so skip ``__init__`` and write the
        # fields directly (~2x cheaper, same equality/repr/asdict).
        result = new(ExecutionResult)
        result.__dict__.update(
            seconds=secs,
            seconds_per_rep=rep,
            serving_level=(
                "DRAM" if code == _DRAM_CODE else level_names[code]
            ),
            bound="compute" if compute else "memory",
            vector_executed=vec,
        )
        append(result)
    return results


def predict_grid(
    cpu: CPUModel,
    kernels: Sequence[Kernel],
    placements: Sequence[tuple[int, ...]],
    precisions: Sequence[DType],
    reports: Sequence[VectorizationReport],
    sizes: Sequence[int] | None = None,
) -> list[list[ExecutionResult | None]]:
    """Predict a whole sweep grid — many configurations — in one pass.

    Telemetry-instrumented front of :func:`_predict_grid_impl` (which
    holds the model documentation): under an active session each call
    records a ``predict.grid`` span and folds its per-kernel outcomes
    into the ``engine.batch.predictions`` /
    ``engine.batch.abstentions`` counters; when telemetry is off it
    delegates directly.
    """
    rec = telemetry.recorder()
    if not rec.active:
        return _predict_grid_impl(
            cpu, kernels, placements, precisions, reports, sizes
        )
    with rec.span(
        "predict.grid", kernels=len(kernels),
        configurations=len(placements),
    ) as sp:
        out = _predict_grid_impl(
            cpu, kernels, placements, precisions, reports, sizes
        )
        total = sum(len(batch) for batch in out)
        predicted = sum(
            1 for batch in out for r in batch if r is not None
        )
        sp.set(predicted=predicted, abstained=total - predicted)
    reg = telemetry.metrics()
    reg.counter("engine.batch.predictions").inc(predicted)
    if total > predicted:
        reg.counter("engine.batch.abstentions").inc(total - predicted)
    return out


def _predict_grid_impl(
    cpu: CPUModel,
    kernels: Sequence[Kernel],
    placements: Sequence[tuple[int, ...]],
    precisions: Sequence[DType],
    reports: Sequence[VectorizationReport],
    sizes: Sequence[int] | None = None,
) -> list[list[ExecutionResult | None]]:
    """Body of :func:`predict_grid`.

    The grid axis is ``zip(placements, precisions)``: one (thread
    placement, precision) configuration per entry, all sharing the same
    ``kernels``/``reports``/``sizes``. Equivalent to calling
    :func:`predict_batch` once per configuration — bit-identical
    results, including abstentions — but the per-class memory select,
    the slowest-class scan and the Amdahl composition run as 2-D array
    expressions over (configuration, kernel), so a cold sweep pays the
    NumPy dispatch overhead once per *grid*, not once per grid point.

    Returns one ``predict_batch``-shaped list per configuration, in
    grid order.
    """
    if len(placements) != len(precisions):
        raise SimulationError(
            f"{len(placements)} placements but {len(precisions)} "
            f"precisions"
        )
    for cores in placements:
        if not cores:
            raise SimulationError(
                "placement must contain at least one core"
            )
        if len(set(cores)) != len(cores):
            raise SimulationError(
                f"duplicate cores in placement {cores}"
            )
    if len(reports) != len(kernels):
        raise SimulationError(
            f"{len(kernels)} kernels but {len(reports)} reports"
        )
    if not placements or not kernels:
        return [[] for _ in placements]

    sizes_key: tuple[int, ...] | None = None
    if sizes is not None:
        if len(sizes) != len(kernels):
            raise SimulationError(
                f"{len(kernels)} kernels but {len(sizes)} sizes"
            )
        if min(sizes) < 1:
            raise SimulationError("size and reps must be >= 1")
        sizes_key = tuple(sizes)

    kernels_key = tuple(kernels)
    reports_key = tuple(reports)
    # One prelude serves every configuration of a precision; evaluate
    # each precision's configurations as one 2-D group.
    groups: dict[DType, list[int]] = {}
    for i, precision in enumerate(precisions):
        groups.setdefault(precision, []).append(i)

    results: list[list[ExecutionResult | None]] = [None] * len(placements)
    for precision, idxs in groups.items():
        pre = _prelude(cpu, kernels_key, precision, reports_key, sizes_key)
        group = _predict_group(cpu, pre, [placements[i] for i in idxs])
        for i, res in zip(idxs, group):
            results[i] = res
    return results


def _predict_group(
    cpu: CPUModel,
    pre: _Prelude,
    placements: list[tuple[int, ...]],
) -> list[list[ExecutionResult | None]]:
    """Evaluate one precision's configurations as a 2-D batch."""
    soa = pre.soa
    pipe = pre.pipe
    num_points = len(placements)
    num_kernels = len(soa)

    with np.errstate(all="ignore"):
        nthreads_col = np.array(
            [len(cores) for cores in placements], dtype=np.float64
        ).reshape(-1, 1)
        # (configuration, kernel) slice and chunk — the same
        # "prelude product / nthreads" association as the scalar model.
        slice_pk = pre.footprint_bytes / nthreads_col
        chunk_pk = pre.par_iters_total / nthreads_col

        # Flatten every configuration's symmetry classes into rows.
        profiles = [
            placement_profile(cpu.topology, cores) for cores in placements
        ]
        row_point: list[int] = []
        rows: list[tuple[int, int, int, float]] = []
        for p, (cores, profile) in enumerate(zip(placements, profiles)):
            for cc in profile.classes:
                row_point.append(p)
                rows.append((
                    len(cores), cc.cluster_sharers, cc.numa_sharers,
                    dram_bandwidth_per_thread(
                        cpu, cc.representative, cores, profile
                    ),
                ))
        point_of_row = np.array(row_point)
        mem_rk, level_rk = _class_memory_rows(
            cpu, slice_pk[point_of_row], pre.bytes_per_iter,
            soa.traffic_scale, soa.gather, rows,
        )
        t_rk = chunk_pk[point_of_row] * np.maximum(pipe, mem_rk)
        compute_rk = pipe >= mem_rk

        # Slowest-class scan, batched by class *position*: every
        # configuration's j-th class updates together, preserving each
        # configuration's class order and the scalar scan's last-wins
        # ``>=`` tie-break.
        slowest = np.zeros((num_points, num_kernels))
        slow_compute = np.zeros((num_points, num_kernels), dtype=bool)
        slow_level = np.full(
            (num_points, num_kernels), _DRAM_CODE - 1, dtype=np.int64
        )
        offsets: list[int] = []
        total = 0
        for profile in profiles:
            offsets.append(total)
            total += len(profile.classes)
        max_classes = max(len(pr.classes) for pr in profiles)
        for j in range(max_classes):
            pts = [
                p for p, pr in enumerate(profiles)
                if len(pr.classes) > j
            ]
            sel = [offsets[p] + j for p in pts]
            t = t_rk[sel]
            prev = slowest[pts]
            mask = t >= prev
            slowest[pts] = np.where(mask, t, prev)
            slow_compute[pts] = np.where(
                mask, compute_rk[sel], slow_compute[pts]
            )
            slow_level[pts] = np.where(
                mask, level_rk[sel], slow_level[pts]
            )

        barrier_col = np.array([
            [barrier_seconds(cpu, len(cores))] for cores in placements
        ])
        rep_time = (
            (pre.serial_time + slowest) + barrier_col * soa.regions_per_rep
        )
        seconds = rep_time * soa.reps
        # Same fused validity mask as ``predict_batch`` (``reps >= 1``
        # lets the ``seconds`` checks cover ``rep_time`` too).
        invalid = (
            pre.base_invalid
            | ~np.isfinite(seconds) | (seconds <= 0)
            | (slowest < 0)
        )

    level_names = _level_names(cpu)
    vectorized = pre.vectorized
    new = object.__new__
    out: list[list[ExecutionResult | None]] = []
    for bad_row, secs_row, rep_row, code_row, compute_row in zip(
        invalid.tolist(), seconds.tolist(), rep_time.tolist(),
        slow_level.tolist(), slow_compute.tolist(),
    ):
        results: list[ExecutionResult | None] = []
        append = results.append
        for bad, secs, rep, code, compute, vec in zip(
            bad_row, secs_row, rep_row, code_row, compute_row, vectorized,
        ):
            if bad:
                append(None)
                continue
            result = new(ExecutionResult)
            result.__dict__.update(
                seconds=secs,
                seconds_per_rep=rep,
                serving_level=(
                    "DRAM" if code == _DRAM_CODE else level_names[code]
                ),
                bound="compute" if compute else "memory",
                vector_executed=vec,
            )
            append(result)
        out.append(results)
    return out
