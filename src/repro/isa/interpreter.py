"""An executable interpreter for the RVV loop subset.

Executes the assembly produced by :mod:`repro.isa.codegen` — in either
dialect, before or after rollback — against real buffers, so tests can
prove *semantic* equivalence: the rolled-back v0.7.1 loop computes the
same values as the original v1.0 loop and as the NumPy reference.

The supported subset is exactly what the generated loops use: ``li``,
``vsetvli``, unit-stride vector loads/stores (both the v1.0
width-encoded and the v0.7.1 SEW-implicit mnemonics), elementwise vector
arithmetic, pointer bookkeeping (``add``/``sub``/``slli``), ``bnez`` and
``ret``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.isa.encoding import Instruction, parse_assembly
from repro.isa.rvv import sew_bits
from repro.util.errors import IsaError

_WIDTH_MEM_RE = re.compile(r"^v[ls]e(?P<eew>8|16|32|64)\.v$")

#: Architectural vector register width (the C920's 128 bits).
DEFAULT_VLEN_BITS = 128

_SEW_DTYPES = {16: np.float16, 32: np.float32, 64: np.float64}

#: Guard against runaway loops (mis-generated tail handling).
MAX_STEPS = 5_000_000


@dataclass
class MachineState:
    """Registers + byte-addressable memory."""

    vlen_bits: int = DEFAULT_VLEN_BITS
    memory_bytes: int = 1 << 20
    scalars: dict = field(default_factory=dict)
    vectors: dict = field(default_factory=dict)
    memory: bytearray = field(default_factory=bytearray)
    sew: int = 32
    vl: int = 0
    #: Set by the first ``vsetvli``: vector instructions executed before
    #: it would run with whatever SEW/vl the state happened to hold.
    configured: bool = False

    def __post_init__(self) -> None:
        if not self.memory:
            self.memory = bytearray(self.memory_bytes)

    # -- scalar registers --------------------------------------------------

    def get_s(self, reg: str) -> int:
        if reg == "x0" or reg == "zero":
            return 0
        return int(self.scalars.get(reg, 0))

    def set_s(self, reg: str, value: int) -> None:
        if reg in ("x0", "zero"):
            return
        self.scalars[reg] = int(value)

    # -- memory ------------------------------------------------------------

    def write_array(self, address: int, data: np.ndarray) -> None:
        raw = data.tobytes()
        if address < 0 or address + len(raw) > len(self.memory):
            raise IsaError(f"store out of bounds at {address}")
        self.memory[address : address + len(raw)] = raw

    def read_array(self, address: int, count: int, sew: int) -> np.ndarray:
        dtype = _SEW_DTYPES[sew]
        nbytes = count * (sew // 8)
        if address < 0 or address + nbytes > len(self.memory):
            raise IsaError(f"load out of bounds at {address}")
        return np.frombuffer(
            self.memory, dtype=dtype, count=count, offset=address
        ).copy()


def _parse_mem_operand(op: str) -> str:
    text = op.strip()
    if not (text.startswith("(") and text.endswith(")")):
        raise IsaError(f"expected (reg) memory operand, got {op!r}")
    return text[1:-1]


_VECTOR_BINOPS = {
    "vfadd.vv": np.add,
    "vfsub.vv": np.subtract,
    "vfmul.vv": np.multiply,
    "vfdiv.vv": np.divide,
    "vfmin.vv": np.minimum,
    "vfmax.vv": np.maximum,
    "vadd.vv": np.add,
    "vsub.vv": np.subtract,
    "vmul.vv": np.multiply,
}


class RvvInterpreter:
    """Execute parsed instructions against a :class:`MachineState`."""

    def __init__(self, state: MachineState | None = None) -> None:
        self.state = state or MachineState()

    # -- single-instruction execution ---------------------------------------

    def _vsetvli(self, inst: Instruction) -> None:
        state = self.state
        ops = [o.strip() for o in inst.operands]
        rd, avl_reg, sew_token = ops[0], ops[1], ops[2]
        state.sew = sew_bits(sew_token)
        vlmax = state.vlen_bits // state.sew
        avl = state.get_s(avl_reg)
        state.vl = min(vlmax, max(0, avl))
        state.configured = True
        state.set_s(rd, state.vl)

    def _require_configured(self, mnemonic: str) -> None:
        if not self.state.configured:
            raise IsaError(
                f"{mnemonic!r} executed before any vsetvli: SEW/vl are "
                "undefined"
            )

    def _check_eew(self, mnemonic: str) -> None:
        """Width-encoded v1.0 memory ops must match the active SEW — a
        mismatch would silently move the wrong element width (the same
        rule the rollback tool enforces)."""
        m = _WIDTH_MEM_RE.match(mnemonic)
        if m is not None and int(m.group("eew")) != self.state.sew:
            raise IsaError(
                f"{mnemonic!r} EEW {m.group('eew')} does not match the "
                f"active SEW {self.state.sew}"
            )

    def _vector_load(self, inst: Instruction) -> None:
        state = self.state
        self._require_configured(inst.mnemonic)
        self._check_eew(inst.mnemonic)
        vd = inst.operands[0].strip()
        address = state.get_s(_parse_mem_operand(inst.operands[1]))
        state.vectors[vd] = state.read_array(address, state.vl, state.sew)

    def _vector_store(self, inst: Instruction) -> None:
        state = self.state
        self._require_configured(inst.mnemonic)
        self._check_eew(inst.mnemonic)
        vs = inst.operands[0].strip()
        address = state.get_s(_parse_mem_operand(inst.operands[1]))
        data = self._vreg(vs)
        state.write_array(address, data[: state.vl])

    def _vreg(self, name: str) -> np.ndarray:
        state = self.state
        if name not in state.vectors:
            dtype = _SEW_DTYPES[state.sew]
            state.vectors[name] = np.zeros(state.vl, dtype=dtype)
        vec = state.vectors[name]
        if vec.size < state.vl:
            grown = np.zeros(state.vl, dtype=vec.dtype)
            grown[: vec.size] = vec
            state.vectors[name] = grown
        return state.vectors[name]

    def _vector_arith(self, inst: Instruction) -> None:
        state = self.state
        m = inst.mnemonic
        self._require_configured(m)
        if m == "vmv.v.i":
            vd = inst.operands[0].strip()
            imm = int(inst.operands[1].strip(), 0)
            out = self._vreg(vd)
            out[: state.vl] = imm
            return
        vd, vs1, vs2 = (o.strip() for o in inst.operands[:3])
        a = self._vreg(vs1)[: state.vl]
        b = self._vreg(vs2)[: state.vl]
        if m == "vfmacc.vv":
            acc = self._vreg(vd)
            acc[: state.vl] = acc[: state.vl] + a * b
            return
        if m in _VECTOR_BINOPS:
            out = self._vreg(vd)
            out[: state.vl] = _VECTOR_BINOPS[m](a, b)
            return
        raise IsaError(f"unsupported vector arithmetic {m!r}")

    def _scalar(self, inst: Instruction) -> None:
        state = self.state
        m = inst.mnemonic
        ops = [o.strip() for o in inst.operands]
        if m == "li":
            state.set_s(ops[0], int(ops[1], 0))
        elif m == "add":
            state.set_s(
                ops[0], state.get_s(ops[1]) + state.get_s(ops[2])
            )
        elif m == "sub":
            state.set_s(
                ops[0], state.get_s(ops[1]) - state.get_s(ops[2])
            )
        elif m == "slli":
            state.set_s(ops[0], state.get_s(ops[1]) << int(ops[2], 0))
        elif m == "mv":
            state.set_s(ops[0], state.get_s(ops[1]))
        else:
            raise IsaError(f"unsupported scalar instruction {m!r}")

    # -- program execution ---------------------------------------------------

    def run(self, text: str) -> int:
        """Execute assembly text until ``ret``; returns executed
        instruction count."""
        program = [
            inst for inst in parse_assembly(text)
            if inst.is_code or inst.label
        ]
        labels: dict[str, int] = {}
        for idx, inst in enumerate(program):
            if inst.label:
                labels[inst.label] = idx

        pc = 0
        steps = 0
        while pc < len(program):
            inst = program[pc]
            if not inst.is_code:
                pc += 1
                continue
            steps += 1
            if steps > MAX_STEPS:
                raise IsaError("instruction budget exceeded (runaway loop)")
            m = inst.mnemonic
            if m == "ret":
                return steps
            if m == "vsetvli":
                self._vsetvli(inst)
            elif m.startswith("vle") or m == "vle.v":
                self._vector_load(inst)
            elif m.startswith("vse") or m == "vse.v":
                self._vector_store(inst)
            elif m.startswith("v"):
                self._vector_arith(inst)
            elif m == "bnez":
                if self.state.get_s(inst.operands[0].strip()) != 0:
                    target = inst.operands[1].strip()
                    if target not in labels:
                        raise IsaError(f"unknown label {target!r}")
                    pc = labels[target]
                    continue
            else:
                self._scalar(inst)
            pc += 1
        raise IsaError("program fell off the end without ret")


def run_triad_loop(
    text: str,
    b: np.ndarray,
    c: np.ndarray,
    vlen_bits: int = DEFAULT_VLEN_BITS,
) -> np.ndarray:
    """Execute a generated two-input/one-output loop on real data.

    Lays ``b`` and ``c`` out in memory, points the ABI registers at them
    (a0 = element count, a1/a2 = inputs, a3 = output), runs the loop and
    returns the output array — the harness used by the semantic
    equivalence tests.
    """
    if b.shape != c.shape or b.dtype != c.dtype:
        raise IsaError("inputs must have matching shape and dtype")
    n = b.size
    elem = b.dtype.itemsize
    state = MachineState(vlen_bits=vlen_bits,
                         memory_bytes=max(1 << 20, 4 * n * elem + 4096))
    base_b, base_c, base_out = 0, n * elem, 2 * n * elem
    state.write_array(base_b, b)
    state.write_array(base_c, c)
    state.set_s("a0", n)
    state.set_s("a1", base_b)
    state.set_s("a2", base_c)
    state.set_s("a3", base_out)
    RvvInterpreter(state).run(text)
    sew = elem * 8
    return state.read_array(base_out, n, sew)
