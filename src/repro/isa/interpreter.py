"""An executable interpreter for the RVV loop subset.

Executes the assembly produced by :mod:`repro.isa.codegen` — in either
dialect, before or after rollback — against real buffers, so tests can
prove *semantic* equivalence: the rolled-back v0.7.1 loop computes the
same values as the original v1.0 loop and as the NumPy reference.

The module is split in two layers so the translation validator can
reuse the machine:

* :class:`ProgramRunner` — the dialect-independent fetch/decode/branch
  loop plus the concrete scalar unit (``li``, ``add``, ``sub``,
  ``addi``, ``slli``, ``srli``, ``mul``, ``mv``) and the full branch
  set (``bnez``/``beqz``/``bge``/``bgeu``/``blt``/``bltu``/``j``).
  Vector semantics are abstract hooks.  Scalars are *always* concrete
  — trip counts and pointers drive control flow — which is what lets
  :mod:`repro.analyze.transval` run the same machine with a symbolic
  element domain (concolic execution: concrete control, symbolic data).
* :class:`RvvInterpreter` — the concrete element domain: NumPy arrays
  in byte-addressable memory.

The supported subset is exactly what the generated loops use,
including the strip-mine remainder path (``bgeu``-terminated main loop
plus remainder loop) and the reduction microkernels
(``vfmacc``/``vfnmsac`` accumulation, ``vfredusum``/``vfredsum``/
``vfredosum`` folds).
"""

from __future__ import annotations

import abc
import re
from dataclasses import dataclass, field

import numpy as np

from repro.isa.encoding import Instruction, parse_assembly
from repro.isa.rvv import sew_bits
from repro.util.errors import IsaError

_WIDTH_MEM_RE = re.compile(r"^v[ls]e(?P<eew>8|16|32|64)\.v$")

#: Architectural vector register width (the C920's 128 bits).
DEFAULT_VLEN_BITS = 128

_SEW_DTYPES = {16: np.float16, 32: np.float32, 64: np.float64}

#: Guard against runaway loops (mis-generated tail handling).
MAX_STEPS = 5_000_000

#: Unconditional and conditional branch mnemonics the runner handles.
_BRANCH_2OP = frozenset({"bnez", "beqz"})
_BRANCH_3OP = frozenset({"bge", "bgeu", "blt", "bltu", "bne", "beq"})


class ProgramRunner(abc.ABC):
    """Shared fetch/decode/branch loop over parsed instructions.

    Subclasses provide the scalar register file (:meth:`get_s` /
    :meth:`set_s`) and the vector semantics (the ``_vsetvli`` /
    ``_vector_*`` hooks); the runner owns program order, labels,
    branches, the scalar ALU and the step budget.
    """

    # -- scalar register file (subclass storage) ----------------------------

    @abc.abstractmethod
    def get_s(self, reg: str) -> int:
        """Read a scalar register (x0/zero reads as 0)."""

    @abc.abstractmethod
    def set_s(self, reg: str, value: int) -> None:
        """Write a scalar register (writes to x0/zero are dropped)."""

    # -- vector hooks --------------------------------------------------------

    @abc.abstractmethod
    def _vsetvli(self, inst: Instruction) -> None:
        ...

    @abc.abstractmethod
    def _vsetivli(self, inst: Instruction) -> None:
        ...

    @abc.abstractmethod
    def _vector_load(self, inst: Instruction) -> None:
        ...

    @abc.abstractmethod
    def _vector_store(self, inst: Instruction) -> None:
        ...

    @abc.abstractmethod
    def _vector_arith(self, inst: Instruction) -> None:
        ...

    # -- scalar unit ---------------------------------------------------------

    def _scalar(self, inst: Instruction) -> None:
        m = inst.mnemonic
        ops = [o.strip() for o in inst.operands]
        if m == "li":
            self.set_s(ops[0], int(ops[1], 0))
        elif m == "add":
            self.set_s(ops[0], self.get_s(ops[1]) + self.get_s(ops[2]))
        elif m == "sub":
            self.set_s(ops[0], self.get_s(ops[1]) - self.get_s(ops[2]))
        elif m == "addi":
            self.set_s(ops[0], self.get_s(ops[1]) + int(ops[2], 0))
        elif m == "slli":
            self.set_s(ops[0], self.get_s(ops[1]) << int(ops[2], 0))
        elif m == "srli":
            self.set_s(ops[0], self.get_s(ops[1]) >> int(ops[2], 0))
        elif m == "mul":
            self.set_s(ops[0], self.get_s(ops[1]) * self.get_s(ops[2]))
        elif m == "mv":
            self.set_s(ops[0], self.get_s(ops[1]))
        else:
            raise IsaError(f"unsupported scalar instruction {m!r}")

    def _branch_taken(self, inst: Instruction) -> bool:
        m = inst.mnemonic
        ops = [o.strip() for o in inst.operands]
        if m in _BRANCH_2OP:
            value = self.get_s(ops[0])
            return value != 0 if m == "bnez" else value == 0
        a, b = self.get_s(ops[0]), self.get_s(ops[1])
        if m in ("bge", "bgeu"):
            return a >= b
        if m in ("blt", "bltu"):
            return a < b
        if m == "bne":
            return a != b
        if m == "beq":
            return a == b
        raise IsaError(f"unsupported branch {m!r}")

    # -- program execution ---------------------------------------------------

    def run(self, text: str) -> int:
        """Execute assembly text until ``ret``; returns executed
        instruction count."""
        program = [
            inst for inst in parse_assembly(text)
            if inst.is_code or inst.label
        ]
        labels: dict[str, int] = {}
        for idx, inst in enumerate(program):
            if inst.label:
                labels[inst.label] = idx

        pc = 0
        steps = 0
        while pc < len(program):
            inst = program[pc]
            if not inst.is_code:
                pc += 1
                continue
            steps += 1
            if steps > MAX_STEPS:
                raise IsaError("instruction budget exceeded (runaway loop)")
            m = inst.mnemonic
            if m == "ret":
                return steps
            if m == "vsetvli":
                self._vsetvli(inst)
            elif m == "vsetivli":
                self._vsetivli(inst)
            elif m.startswith("vle") or m == "vle.v":
                self._vector_load(inst)
            elif m.startswith("vse") or m == "vse.v":
                self._vector_store(inst)
            elif m.startswith("v"):
                self._vector_arith(inst)
            elif m == "j":
                pc = self._label_target(labels, inst.operands[0].strip())
                continue
            elif m in _BRANCH_2OP or m in _BRANCH_3OP:
                if self._branch_taken(inst):
                    pc = self._label_target(
                        labels, inst.operands[-1].strip()
                    )
                    continue
            else:
                self._scalar(inst)
            pc += 1
        raise IsaError("program fell off the end without ret")

    @staticmethod
    def _label_target(labels: dict[str, int], target: str) -> int:
        if target not in labels:
            raise IsaError(f"unknown label {target!r}")
        return labels[target]


@dataclass
class MachineState:
    """Registers + byte-addressable memory."""

    vlen_bits: int = DEFAULT_VLEN_BITS
    memory_bytes: int = 1 << 20
    scalars: dict = field(default_factory=dict)
    vectors: dict = field(default_factory=dict)
    memory: bytearray = field(default_factory=bytearray)
    sew: int = 32
    vl: int = 0
    #: Set by the first ``vsetvli``: vector instructions executed before
    #: it would run with whatever SEW/vl the state happened to hold.
    configured: bool = False

    def __post_init__(self) -> None:
        if not self.memory:
            self.memory = bytearray(self.memory_bytes)

    # -- scalar registers --------------------------------------------------

    def get_s(self, reg: str) -> int:
        if reg == "x0" or reg == "zero":
            return 0
        return int(self.scalars.get(reg, 0))

    def set_s(self, reg: str, value: int) -> None:
        if reg in ("x0", "zero"):
            return
        self.scalars[reg] = int(value)

    # -- memory ------------------------------------------------------------

    def write_array(self, address: int, data: np.ndarray) -> None:
        raw = data.tobytes()
        if address < 0 or address + len(raw) > len(self.memory):
            raise IsaError(f"store out of bounds at {address}")
        self.memory[address : address + len(raw)] = raw

    def read_array(self, address: int, count: int, sew: int) -> np.ndarray:
        dtype = _SEW_DTYPES[sew]
        nbytes = count * (sew // 8)
        if address < 0 or address + nbytes > len(self.memory):
            raise IsaError(f"load out of bounds at {address}")
        return np.frombuffer(
            self.memory, dtype=dtype, count=count, offset=address
        ).copy()


def _parse_mem_operand(op: str) -> str:
    text = op.strip()
    if not (text.startswith("(") and text.endswith(")")):
        raise IsaError(f"expected (reg) memory operand, got {op!r}")
    return text[1:-1]


_VECTOR_BINOPS = {
    "vfadd.vv": np.add,
    "vfsub.vv": np.subtract,
    "vfmul.vv": np.multiply,
    "vfdiv.vv": np.divide,
    "vfmin.vv": np.minimum,
    "vfmax.vv": np.maximum,
    "vadd.vv": np.add,
    "vsub.vv": np.subtract,
    "vmul.vv": np.multiply,
}

#: Reduction mnemonics: ``vd[0] = fold(vs2[0:vl]) op vs1[0]`` — the
#: v1.0 name, the v0.7.1 rename, and the ordered variant all compute
#: the same concrete sum here (NumPy sums are our "unordered" order).
_REDUCTIONS = frozenset(
    {"vfredusum.vs", "vfredsum.vs", "vfredosum.vs", "vredsum.vs"}
)


class RvvInterpreter(ProgramRunner):
    """Execute parsed instructions against a :class:`MachineState`.

    The concrete machine is tail-undisturbed (like the C920): elements
    past ``vl`` keep their previous contents, which is what the
    reduction microkernels rely on across strips.
    """

    def __init__(self, state: MachineState | None = None) -> None:
        self.state = state or MachineState()

    # -- scalar register file ------------------------------------------------

    def get_s(self, reg: str) -> int:
        return self.state.get_s(reg)

    def set_s(self, reg: str, value: int) -> None:
        self.state.set_s(reg, value)

    # -- single-instruction execution ---------------------------------------

    def _configure(self, rd: str, avl: int, sew_token: str) -> None:
        state = self.state
        state.sew = sew_bits(sew_token)
        vlmax = state.vlen_bits // state.sew
        state.vl = min(vlmax, max(0, avl))
        state.configured = True
        state.set_s(rd, state.vl)

    def _vsetvli(self, inst: Instruction) -> None:
        ops = [o.strip() for o in inst.operands]
        self._configure(ops[0], self.state.get_s(ops[1]), ops[2])

    def _vsetivli(self, inst: Instruction) -> None:
        ops = [o.strip() for o in inst.operands]
        self._configure(ops[0], int(ops[1], 0), ops[2])

    def _require_configured(self, mnemonic: str) -> None:
        if not self.state.configured:
            raise IsaError(
                f"{mnemonic!r} executed before any vsetvli: SEW/vl are "
                "undefined"
            )

    def _check_eew(self, mnemonic: str) -> None:
        """Width-encoded v1.0 memory ops must match the active SEW — a
        mismatch would silently move the wrong element width (the same
        rule the rollback tool enforces)."""
        m = _WIDTH_MEM_RE.match(mnemonic)
        if m is not None and int(m.group("eew")) != self.state.sew:
            raise IsaError(
                f"{mnemonic!r} EEW {m.group('eew')} does not match the "
                f"active SEW {self.state.sew}"
            )

    def _vector_load(self, inst: Instruction) -> None:
        state = self.state
        self._require_configured(inst.mnemonic)
        self._check_eew(inst.mnemonic)
        vd = inst.operands[0].strip()
        address = state.get_s(_parse_mem_operand(inst.operands[1]))
        loaded = state.read_array(address, state.vl, state.sew)
        out = self._vreg(vd)
        out[: state.vl] = loaded

    def _vector_store(self, inst: Instruction) -> None:
        state = self.state
        self._require_configured(inst.mnemonic)
        self._check_eew(inst.mnemonic)
        vs = inst.operands[0].strip()
        address = state.get_s(_parse_mem_operand(inst.operands[1]))
        data = self._vreg(vs)
        state.write_array(address, data[: state.vl])

    def _vreg(self, name: str) -> np.ndarray:
        """The backing array for one vector register, sized to VLMAX so
        tail elements survive strips with smaller ``vl``."""
        state = self.state
        vlmax = max(state.vl, state.vlen_bits // state.sew)
        if name not in state.vectors:
            dtype = _SEW_DTYPES[state.sew]
            state.vectors[name] = np.zeros(vlmax, dtype=dtype)
        vec = state.vectors[name]
        if vec.size < vlmax:
            grown = np.zeros(vlmax, dtype=vec.dtype)
            grown[: vec.size] = vec
            state.vectors[name] = grown
        return state.vectors[name]

    def _vector_arith(self, inst: Instruction) -> None:
        state = self.state
        m = inst.mnemonic
        self._require_configured(m)
        if m == "vmv.v.i":
            vd = inst.operands[0].strip()
            imm = int(inst.operands[1].strip(), 0)
            out = self._vreg(vd)
            out[: state.vl] = imm
            return
        if m == "vmv.v.v":
            vd, vs = (o.strip() for o in inst.operands[:2])
            src = self._vreg(vs)
            out = self._vreg(vd)
            out[: state.vl] = src[: state.vl]
            return
        vd, vs1, vs2 = (o.strip() for o in inst.operands[:3])
        if m in _REDUCTIONS:
            # vd[0] = sum(vs1[0:vl]) + vs2[0] (vfredusum.vs vd, vs2, vs1
            # in spec operand order: vd, vector source, scalar init).
            vec = self._vreg(vs1)[: state.vl]
            init = self._vreg(vs2)[0]
            out = self._vreg(vd)
            out[0] = init + vec.sum(dtype=vec.dtype)
            return
        a = self._vreg(vs1)[: state.vl]
        b = self._vreg(vs2)[: state.vl]
        if m == "vfmacc.vv":
            acc = self._vreg(vd)
            acc[: state.vl] = acc[: state.vl] + a * b
            return
        if m == "vfnmsac.vv":
            acc = self._vreg(vd)
            acc[: state.vl] = acc[: state.vl] - a * b
            return
        if m in _VECTOR_BINOPS:
            out = self._vreg(vd)
            out[: state.vl] = _VECTOR_BINOPS[m](a, b)
            return
        raise IsaError(f"unsupported vector arithmetic {m!r}")


def run_triad_loop(
    text: str,
    b: np.ndarray,
    c: np.ndarray,
    vlen_bits: int = DEFAULT_VLEN_BITS,
) -> np.ndarray:
    """Execute a generated two-input/one-output loop on real data.

    Lays ``b`` and ``c`` out in memory, points the ABI registers at them
    (a0 = element count, a1/a2 = inputs, a3 = output), runs the loop and
    returns the output array — the harness used by the semantic
    equivalence tests.
    """
    if b.shape != c.shape or b.dtype != c.dtype:
        raise IsaError("inputs must have matching shape and dtype")
    n = b.size
    elem = b.dtype.itemsize
    state = MachineState(vlen_bits=vlen_bits,
                         memory_bytes=max(1 << 20, 4 * n * elem + 4096))
    base_b, base_c, base_out = 0, n * elem, 2 * n * elem
    state.write_array(base_b, b)
    state.write_array(base_c, c)
    state.set_s("a0", n)
    state.set_s("a1", base_b)
    state.set_s("a2", base_c)
    state.set_s("a3", base_out)
    RvvInterpreter(state).run(text)
    sew = elem * 8
    return state.read_array(base_out, n, sew)


def run_dot_loop(
    text: str,
    a: np.ndarray,
    b: np.ndarray,
    vlen_bits: int = DEFAULT_VLEN_BITS,
) -> float:
    """Execute a generated dot-product microkernel on real data.

    Same ABI as :func:`run_triad_loop`; the kernel stores one reduced
    element at ``a3``, which is returned as a float.
    """
    if a.shape != b.shape or a.dtype != b.dtype:
        raise IsaError("inputs must have matching shape and dtype")
    n = a.size
    elem = a.dtype.itemsize
    state = MachineState(vlen_bits=vlen_bits,
                         memory_bytes=max(1 << 20, 4 * n * elem + 4096))
    base_a, base_b, base_out = 0, n * elem, 2 * n * elem
    state.write_array(base_a, a)
    state.write_array(base_b, b)
    state.set_s("a0", n)
    state.set_s("a1", base_a)
    state.set_s("a2", base_b)
    state.set_s("a3", base_out)
    RvvInterpreter(state).run(text)
    sew = elem * 8
    return float(state.read_array(base_out, 1, sew)[0])
