"""RVV dialect tables: v0.7.1 (XuanTie C920) and v1.0 (ratified).

Only the instruction surface the RAJAPerf kernels and the rollback tool
need is modelled, but the differences that matter between the dialects
are encoded faithfully:

* v1.0 ``vsetvli`` takes tail/mask agnosticism flags (``ta, ma``) and
  fractional LMUL (``mf2``...); v0.7.1 has neither.
* v1.0 unit-stride memory ops encode the element width in the mnemonic
  (``vle32.v``); v0.7.1 uses SEW-implicit ``vle.v``/width-specific
  ``vlw.v`` forms.
* Several mask/reduction mnemonics were renamed for v1.0
  (``vcpop.m`` was ``vpopc.m``, ``vfredusum`` was ``vfredsum``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import IsaError

#: Scalar RISC-V mnemonics that may appear around vector code in our
#: generated loops (not exhaustive — enough for validation).
SCALAR_MNEMONICS = frozenset(
    {
        "add", "addi", "sub", "mul", "li", "lui", "mv", "slli", "srli",
        "beq", "bne", "bge", "bgeu", "blt", "bltu", "bnez", "beqz",
        "j", "jal", "jalr",
        "ret", "ld", "sd", "lw", "sw", "fld", "fsd", "flw", "fsw",
        "fadd.d", "fmul.d", "fmadd.d", "fadd.s", "fmul.s", "fmadd.s",
        "min", "max", "neg", "sext.w",
    }
)

_COMMON_VECTOR = frozenset(
    {
        "vadd.vv", "vadd.vx", "vsub.vv", "vsub.vx", "vrsub.vx",
        "vmul.vv", "vmul.vx", "vdiv.vv",
        "vfadd.vv", "vfadd.vf", "vfsub.vv", "vfsub.vf",
        "vfmul.vv", "vfmul.vf", "vfdiv.vv",
        "vfmacc.vv", "vfmacc.vf", "vfmadd.vv", "vfmadd.vf",
        "vfnmsac.vv", "vfsqrt.v",
        "vmin.vv", "vmax.vv", "vfmin.vv", "vfmax.vv",
        "vmv.v.v", "vmv.v.x", "vmv.v.i", "vfmv.v.f",
        "vmv.x.s", "vfmv.f.s", "vmv.s.x", "vfmv.s.f",
        "vmseq.vv", "vmslt.vv", "vmsle.vv", "vmflt.vv", "vmfle.vv",
        "vmand.mm", "vmor.mm", "vmxor.mm", "vmnand.mm", "vmnor.mm",
        "vmxnor.mm",
        "vredsum.vs", "vredmin.vs", "vredmax.vs",
        "vfredosum.vs", "vfredmin.vs", "vfredmax.vs",
        "vslideup.vx", "vslidedown.vx", "vslide1up.vx", "vslide1down.vx",
        "vrgather.vv", "vid.v",
        "vsetvli", "vsetvl",
    }
)

#: Mnemonics only valid in v0.7.1.
V071_ONLY = frozenset(
    {
        "vle.v", "vse.v",            # SEW-implicit unit-stride
        "vlw.v", "vsw.v", "vlh.v", "vsh.v", "vlb.v", "vsb.v",
        "vlse.v", "vsse.v",          # strided
        "vlxe.v", "vsxe.v", "vsuxe.v",  # indexed
        "vmandnot.mm", "vmornot.mm",
        "vpopc.m", "vmfirst.m",
        "vfredsum.vs",
    }
)

#: Mnemonics only valid in v1.0 (element width in mnemonic, renames,
#: new instructions).
V10_ONLY = frozenset(
    {
        "vle8.v", "vle16.v", "vle32.v", "vle64.v",
        "vse8.v", "vse16.v", "vse32.v", "vse64.v",
        "vlse8.v", "vlse16.v", "vlse32.v", "vlse64.v",
        "vsse8.v", "vsse16.v", "vsse32.v", "vsse64.v",
        "vluxei8.v", "vluxei16.v", "vluxei32.v", "vluxei64.v",
        "vloxei8.v", "vloxei16.v", "vloxei32.v", "vloxei64.v",
        "vsuxei8.v", "vsuxei16.v", "vsuxei32.v", "vsuxei64.v",
        "vsoxei8.v", "vsoxei16.v", "vsoxei32.v", "vsoxei64.v",
        "vmandn.mm", "vmorn.mm",
        "vcpop.m", "vfirst.m",
        "vfredusum.vs",
        "vsetivli",
        "vzext.vf2", "vzext.vf4", "vsext.vf2", "vsext.vf4",
        "vmv1r.v", "vmv2r.v", "vmv4r.v", "vmv8r.v",
    }
)

#: Valid SEW settings per dialect (v0.7.1 on the C920 supports up to
#: e64 for integer; both accept e8..e64 syntactically).
VALID_SEW = frozenset({"e8", "e16", "e32", "e64"})

#: LMUL: v0.7.1 has integer multipliers only; v1.0 adds fractional.
V071_LMUL = frozenset({"m1", "m2", "m4", "m8"})
V10_LMUL = V071_LMUL | frozenset({"mf2", "mf4", "mf8"})


@dataclass(frozen=True)
class RvvDialect:
    """One RVV specification version as a validation surface."""

    name: str
    version: str
    vector_mnemonics: frozenset[str]
    lmuls: frozenset[str]
    has_tail_policy: bool

    def is_vector(self, mnemonic: str) -> bool:
        return mnemonic in self.vector_mnemonics

    def validate_mnemonic(self, mnemonic: str) -> None:
        """Raise :class:`IsaError` for a vector mnemonic that does not
        exist in this dialect. Scalar and unknown non-vector mnemonics
        pass through (we do not model the whole scalar ISA)."""
        if mnemonic.startswith("v") and not self.is_vector(mnemonic):
            if mnemonic in (V071_ONLY | V10_ONLY | _COMMON_VECTOR):
                raise IsaError(
                    f"{mnemonic!r} is not part of RVV {self.version}"
                )
            raise IsaError(f"unknown vector mnemonic {mnemonic!r}")

    def validate_vsetvli(self, operands: tuple[str, ...]) -> None:
        """Check a ``vsetvli`` operand list against this dialect."""
        if len(operands) < 3:
            raise IsaError(f"vsetvli needs >= 3 operands, got {operands}")
        config = [op.strip() for op in operands[2:]]
        sew = config[0]
        if sew not in VALID_SEW:
            raise IsaError(f"invalid SEW {sew!r}")
        rest = config[1:]
        lmul = rest[0] if rest else "m1"
        if lmul in ("ta", "tu", "ma", "mu"):
            lmul, rest = "m1", config[1:]
        else:
            rest = rest[1:]
        if lmul not in self.lmuls:
            raise IsaError(
                f"LMUL {lmul!r} not supported by RVV {self.version}"
            )
        if rest and not self.has_tail_policy:
            raise IsaError(
                f"tail/mask policy flags {rest} are v1.0-only syntax"
            )
        for flag in rest:
            if flag not in ("ta", "tu", "ma", "mu"):
                raise IsaError(f"invalid vsetvli flag {flag!r}")


RVV_0_7_1 = RvvDialect(
    name="RVV v0.7.1 (XuanTie C920)",
    version="0.7.1",
    vector_mnemonics=_COMMON_VECTOR | V071_ONLY,
    lmuls=V071_LMUL,
    has_tail_policy=False,
)

RVV_1_0 = RvvDialect(
    name="RVV v1.0",
    version="1.0",
    vector_mnemonics=_COMMON_VECTOR | V10_ONLY,
    lmuls=V10_LMUL,
    has_tail_policy=True,
)


def sew_bits(sew: str) -> int:
    """Numeric element width of an ``eNN`` SEW token."""
    if sew not in VALID_SEW:
        raise IsaError(f"invalid SEW {sew!r}")
    return int(sew[1:])
