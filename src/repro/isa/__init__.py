"""RISC-V Vector (RVV) assembly model.

The C920 implements RVV v0.7.1 while Clang emits only RVV v1.0 — the two
are incompatible at the assembly level. The paper works around this with
the RVV-rollback tool [11], which rewrites v1.0 assembly into v0.7.1.
This subpackage reimplements that pipeline:

* :mod:`repro.isa.encoding` — instruction dataclasses and an assembly
  text parser;
* :mod:`repro.isa.rvv` — the v0.7.1 and v1.0 mnemonic/operand tables
  needed by the benchmark kernels;
* :mod:`repro.isa.rollback` — the v1.0 -> v0.7.1 rewriter;
* :mod:`repro.isa.codegen` — a kernel-body code generator producing VLS
  or VLA vector loops, used by the Figure 3 experiment.
"""

from repro.isa.encoding import Instruction, parse_assembly, render_assembly
from repro.isa.rollback import RollbackError, rollback
from repro.isa.rvv import RVV_0_7_1, RVV_1_0, RvvDialect
from repro.isa.codegen import generate_loop

__all__ = [
    "Instruction",
    "parse_assembly",
    "render_assembly",
    "rollback",
    "RollbackError",
    "RvvDialect",
    "RVV_0_7_1",
    "RVV_1_0",
    "generate_loop",
]
