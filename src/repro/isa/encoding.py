"""Assembly-level instruction representation and text parsing.

The rollback tool operates on textual assembly (like the real
RVV-rollback, which rewrites compiler ``.s`` output), so the core
representation is deliberately simple: mnemonic + operand strings +
optional label/comment, round-trippable through text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.util.errors import IsaError

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_DIRECTIVE_RE = re.compile(r"^\.[A-Za-z_]")


@dataclass(frozen=True)
class Instruction:
    """One line of assembly.

    Attributes:
        mnemonic: Lower-case mnemonic (``"vsetvli"``), empty for pure
            label or directive lines.
        operands: Operand strings with whitespace normalized.
        label: Label defined on this line, if any.
        directive: Raw assembler directive text, if the line is one.
        comment: Trailing comment without the ``#``.
    """

    mnemonic: str = ""
    operands: tuple[str, ...] = ()
    label: str | None = None
    directive: str | None = None
    comment: str | None = None

    @property
    def is_code(self) -> bool:
        return bool(self.mnemonic)

    def with_mnemonic(self, mnemonic: str) -> "Instruction":
        return Instruction(
            mnemonic=mnemonic,
            operands=self.operands,
            label=self.label,
            directive=self.directive,
            comment=self.comment,
        )

    def with_operands(self, operands: tuple[str, ...]) -> "Instruction":
        return Instruction(
            mnemonic=self.mnemonic,
            operands=operands,
            label=self.label,
            directive=self.directive,
            comment=self.comment,
        )

    def render(self) -> str:
        """Render back to one assembly line."""
        if self.label is not None and not self.mnemonic:
            text = f"{self.label}:"
        elif self.directive is not None:
            text = f"    {self.directive}"
        else:
            ops = ", ".join(self.operands)
            text = f"    {self.mnemonic} {ops}".rstrip()
            if self.label is not None:
                text = f"{self.label}: {text.strip()}"
        if self.comment is not None:
            text = f"{text}  # {self.comment}"
        return text


def parse_line(line: str) -> Instruction | None:
    """Parse one line of assembly; ``None`` for blank lines."""
    comment = None
    if "#" in line:
        line, _, comment_text = line.partition("#")
        comment = comment_text.strip()
    text = line.strip()
    if not text:
        return None if comment is None else Instruction(comment=comment)

    label = None
    m = _LABEL_RE.match(text)
    if m:
        return Instruction(label=m.group(1), comment=comment)
    if ":" in text.split()[0] and text.split()[0].endswith(":"):
        label = text.split()[0][:-1]
        text = text[len(label) + 1 :].strip()
        if not text:
            return Instruction(label=label, comment=comment)

    if _DIRECTIVE_RE.match(text):
        return Instruction(directive=text, label=label, comment=comment)

    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    operands: tuple[str, ...] = ()
    if len(parts) > 1:
        operands = tuple(op.strip() for op in parts[1].split(","))
        if any(not op for op in operands):
            raise IsaError(f"malformed operand list in {line!r}")
    return Instruction(
        mnemonic=mnemonic, operands=operands, label=label, comment=comment
    )


def parse_assembly(text: str) -> list[Instruction]:
    """Parse multi-line assembly text into instructions (blank lines
    dropped)."""
    out: list[Instruction] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        try:
            inst = parse_line(line)
        except IsaError as exc:
            raise IsaError(f"line {lineno}: {exc}") from exc
        if inst is not None:
            out.append(inst)
    return out


def render_assembly(instructions: list[Instruction]) -> str:
    """Render instructions back to assembly text."""
    return "\n".join(inst.render() for inst in instructions)
