"""Vector loop code generation: VLS and VLA flavours.

Generates the assembly a compiler would emit for a simple elementwise
kernel body — enough to drive the rollback tool end-to-end the way the
paper does (Clang emits v1.0 VLA or VLS, rollback rewrites it, the C920
"executes" it) and to let tests reason about instruction counts.

VLS (Vector Length Specific) hard-codes the 128-bit vector width: the
trip count is pre-divided and no per-iteration ``vsetvli`` re-negotiation
happens inside the hot loop. VLA (Vector Length Agnostic) re-issues
``vsetvli`` with the remaining length each iteration — the strip-mining
overhead that makes VLA slightly slower on the C920 (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.model import VectorFlavor
from repro.isa.encoding import Instruction
from repro.machine.vector import DType
from repro.util.errors import IsaError


@dataclass(frozen=True)
class LoopSpec:
    """A minimal elementwise loop: ``dst[i] = a[i] OP b[i]`` repeated.

    Attributes:
        dtype: Element type (selects SEW and load/store width).
        num_inputs: Input streams (1 or 2).
        ops: Arithmetic vector instructions per iteration (e.g.
            ``("vfmul.vv", "vfadd.vv")`` for a triad).
        has_store: Whether the loop writes a stream.
    """

    dtype: DType
    num_inputs: int
    ops: tuple[str, ...]
    has_store: bool = True

    def __post_init__(self) -> None:
        if self.num_inputs not in (1, 2):
            raise IsaError("loops model 1 or 2 input streams")
        if not self.ops and not self.has_store:
            raise IsaError("loop must compute or store something")


def _sew(dtype: DType) -> str:
    return f"e{dtype.bits}"


def generate_loop(
    spec: LoopSpec,
    flavor: VectorFlavor,
    rvv_version: str = "1.0",
    vector_bits: int = 128,
) -> list[Instruction]:
    """Emit the vector loop for ``spec`` in the requested flavour.

    ``rvv_version`` selects the dialect of the emitted assembly:
    ``"1.0"`` (what Clang produces) uses width-encoded memory mnemonics
    and tail/mask policy flags; ``"0.7.1"`` (XuanTie GCC) uses the
    SEW-implicit forms.
    """
    if rvv_version not in ("0.7.1", "1.0"):
        raise IsaError(f"unknown RVV version {rvv_version!r}")
    v10 = rvv_version == "1.0"
    sew = _sew(spec.dtype)
    lanes = vector_bits // spec.dtype.bits

    if v10:
        load = f"vle{spec.dtype.bits}.v"
        store = f"vse{spec.dtype.bits}.v"
        vset_ops = ("t0", "a0", sew, "m1", "ta", "ma")
    else:
        load = "vle.v"
        store = "vse.v"
        vset_ops = ("t0", "a0", sew, "m1")

    body: list[Instruction] = []

    def emit(mnemonic: str, *operands: str, label: str | None = None,
             comment: str | None = None) -> None:
        body.append(
            Instruction(
                mnemonic=mnemonic, operands=tuple(operands), label=label,
                comment=comment,
            )
        )

    if flavor is VectorFlavor.VLS:
        # One vsetvli ahead of the loop; the loop advances by the fixed
        # lane count.
        emit("li", "t1", str(lanes), comment="VLS: fixed vector length")
        emit("vsetvli", *(("t0", "t1") + vset_ops[2:]))
        loop_label = "vls_loop"
    else:
        loop_label = "vla_loop"

    label: str | None = loop_label
    if flavor is VectorFlavor.VLA:
        # Strip-mining: negotiate the next chunk every iteration.
        emit("vsetvli", *vset_ops, label=label, comment="VLA strip-mine")
        label = None
    emit(load, "v1", "(a1)", label=label)
    if spec.num_inputs == 2:
        emit(load, "v2", "(a2)")
    if any(op.startswith(("vfmacc", "vfnmsac", "vfmadd")) for op in
           spec.ops):
        # Accumulating ops read their destination: zero it each strip
        # (the compiler materializes the accumulator per vector chunk).
        emit("vmv.v.i", "v0", "0")
    for op in spec.ops:
        emit(op, "v0", "v1", "v2" if spec.num_inputs == 2 else "v1")
    if spec.has_store:
        emit(store, "v0", "(a3)")
    # Pointer/trip-count bookkeeping.
    step = "t0" if flavor is VectorFlavor.VLA else "t1"
    emit("sub", "a0", "a0", step)
    emit("slli", "t2", step, str(spec.dtype.bytes.bit_length() - 1))
    emit("add", "a1", "a1", "t2")
    if spec.num_inputs == 2:
        emit("add", "a2", "a2", "t2")
    if spec.has_store:
        emit("add", "a3", "a3", "t2")
    emit("bnez", "a0", loop_label)
    emit("ret")
    return body


def count_dynamic_instructions(
    spec: LoopSpec,
    flavor: VectorFlavor,
    n: int,
    vector_bits: int = 128,
) -> int:
    """Estimate dynamically executed instructions for ``n`` elements —
    exposes the VLA strip-mining overhead quantitatively."""
    if n < 0:
        raise IsaError("n must be >= 0")
    lanes = max(1, vector_bits // spec.dtype.bits)
    iters = (n + lanes - 1) // lanes
    per_iter = (
        spec.num_inputs  # loads
        + len(spec.ops)
        + (1 if spec.has_store else 0)
        + 3  # bookkeeping adds/sub
        + (1 if spec.num_inputs == 2 else 0)
        + (1 if spec.has_store else 0)
        + 1  # branch
    )
    if flavor is VectorFlavor.VLA:
        per_iter += 1  # vsetvli every strip
        return iters * per_iter + 1  # + ret
    return iters * per_iter + 2 + 1  # + li/vsetvli preamble + ret
