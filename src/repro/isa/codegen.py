"""Vector loop code generation: VLS and VLA flavours.

Generates the assembly a compiler would emit for a simple elementwise
kernel body — enough to drive the rollback tool end-to-end the way the
paper does (Clang emits v1.0 VLA or VLS, rollback rewrites it, the C920
"executes" it) and to let tests reason about instruction counts.

VLS (Vector Length Specific) hard-codes the 128-bit vector width: the
trip count is pre-divided and no per-iteration ``vsetvli`` re-negotiation
happens inside the hot loop. VLA (Vector Length Agnostic) re-issues
``vsetvli`` with the remaining length each iteration — the strip-mining
overhead that makes VLA slightly slower on the C920 (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.model import VectorFlavor
from repro.isa.encoding import Instruction
from repro.machine.vector import DType
from repro.util.errors import IsaError


@dataclass(frozen=True)
class LoopSpec:
    """A minimal elementwise loop: ``dst[i] = a[i] OP b[i]`` repeated.

    Attributes:
        dtype: Element type (selects SEW and load/store width).
        num_inputs: Input streams (1 or 2).
        ops: Arithmetic vector instructions per iteration (e.g.
            ``("vfmul.vv", "vfadd.vv")`` for a triad).
        has_store: Whether the loop writes a stream.
        load_dest: Load the destination stream before the arithmetic
            (the TRSM/SYRK-style load-modify-store update pattern:
            ``dst[i] -= a[i]*b[i]``) instead of zero-initializing the
            accumulator.
    """

    dtype: DType
    num_inputs: int
    ops: tuple[str, ...]
    has_store: bool = True
    load_dest: bool = False

    def __post_init__(self) -> None:
        if self.num_inputs not in (1, 2):
            raise IsaError("loops model 1 or 2 input streams")
        if not self.ops and not self.has_store:
            raise IsaError("loop must compute or store something")
        if self.load_dest and not self.has_store:
            raise IsaError("load_dest loops must store the destination")


def _sew(dtype: DType) -> str:
    return f"e{dtype.bits}"


def generate_loop(
    spec: LoopSpec,
    flavor: VectorFlavor,
    rvv_version: str = "1.0",
    vector_bits: int = 128,
) -> list[Instruction]:
    """Emit the vector loop for ``spec`` in the requested flavour.

    ``rvv_version`` selects the dialect of the emitted assembly:
    ``"1.0"`` (what Clang produces) uses width-encoded memory mnemonics
    and tail/mask policy flags; ``"0.7.1"`` (XuanTie GCC) uses the
    SEW-implicit forms.
    """
    if rvv_version not in ("0.7.1", "1.0"):
        raise IsaError(f"unknown RVV version {rvv_version!r}")
    v10 = rvv_version == "1.0"
    sew = _sew(spec.dtype)
    lanes = vector_bits // spec.dtype.bits

    if v10:
        load = f"vle{spec.dtype.bits}.v"
        store = f"vse{spec.dtype.bits}.v"
        vset_ops = ("t0", "a0", sew, "m1", "ta", "ma")
    else:
        load = "vle.v"
        store = "vse.v"
        vset_ops = ("t0", "a0", sew, "m1")

    body: list[Instruction] = []

    def emit(mnemonic: str, *operands: str, label: str | None = None,
             comment: str | None = None) -> None:
        body.append(
            Instruction(
                mnemonic=mnemonic, operands=tuple(operands), label=label,
                comment=comment,
            )
        )

    if flavor is VectorFlavor.VLS:
        # One vsetvli ahead of the loop; the loop advances by the fixed
        # lane count.
        emit("li", "t1", str(lanes), comment="VLS: fixed vector length")
        emit("vsetvli", *(("t0", "t1") + vset_ops[2:]))
        loop_label = "vls_loop"
    else:
        loop_label = "vla_loop"

    label: str | None = loop_label
    if flavor is VectorFlavor.VLA:
        # Strip-mining: negotiate the next chunk every iteration.
        emit("vsetvli", *vset_ops, label=label, comment="VLA strip-mine")
        label = None
    emit(load, "v1", "(a1)", label=label)
    if spec.num_inputs == 2:
        emit(load, "v2", "(a2)")
    if spec.load_dest:
        # Update pattern: the destination stream is a live input
        # (dst[i] op= a[i]*b[i]) — load it instead of zeroing.
        emit(load, "v0", "(a3)")
    elif any(op.startswith(("vfmacc", "vfnmsac", "vfmadd")) for op in
             spec.ops):
        # Accumulating ops read their destination: zero it each strip
        # (the compiler materializes the accumulator per vector chunk).
        emit("vmv.v.i", "v0", "0")
    for op in spec.ops:
        emit(op, "v0", "v1", "v2" if spec.num_inputs == 2 else "v1")
    if spec.has_store:
        emit(store, "v0", "(a3)")
    # Pointer/trip-count bookkeeping.
    step = "t0" if flavor is VectorFlavor.VLA else "t1"
    emit("sub", "a0", "a0", step)
    emit("slli", "t2", step, str(spec.dtype.bytes.bit_length() - 1))
    emit("add", "a1", "a1", "t2")
    if spec.num_inputs == 2:
        emit("add", "a2", "a2", "t2")
    if spec.has_store:
        emit("add", "a3", "a3", "t2")
    emit("bnez", "a0", loop_label)
    emit("ret")
    return body


def generate_dot_loop(
    dtype: DType,
    flavor: VectorFlavor,
    rvv_version: str = "1.0",
    vector_bits: int = 128,
) -> list[Instruction]:
    """Emit a dot-product microkernel: ``out[0] = sum(a[i] * b[i])``.

    This is the BLAS inner-product building block (the GEMM/GEMV
    micro-tile): a vector accumulator gathers partial products across
    strips and a single ``vfredusum`` folds it at the end. The
    accumulator is the reason the loop *must* run tail-undisturbed
    (``tu``): the remainder strip executes with ``vl < VLMAX``, leaving
    earlier partial sums in the tail lanes, and the final fold reads
    all of them back. A tail-agnostic execution clobbers those lanes —
    the OpenBLAS-under-0.7.1 miscompile class the translation validator
    exists to catch.

    The VLS flavour uses the strip-mine remainder idiom real compilers
    emit: a ``bgeu``-terminated full-width main loop followed by a
    ``bnez``-terminated VLA remainder loop. The VLA flavour strip-mines
    every iteration.
    """
    if rvv_version not in ("0.7.1", "1.0"):
        raise IsaError(f"unknown RVV version {rvv_version!r}")
    v10 = rvv_version == "1.0"
    sew = _sew(dtype)
    lanes = vector_bits // dtype.bits
    shift = str(dtype.bytes.bit_length() - 1)

    if v10:
        load = f"vle{dtype.bits}.v"
        store = f"vse{dtype.bits}.v"
        # tu, not ta: partial sums live in the tail lanes across strips.
        flags = ("tu", "ma")
    else:
        load = "vle.v"
        store = "vse.v"
        flags = ()

    body: list[Instruction] = []

    def emit(mnemonic: str, *operands: str, label: str | None = None,
             comment: str | None = None) -> None:
        body.append(
            Instruction(
                mnemonic=mnemonic, operands=tuple(operands), label=label,
                comment=comment,
            )
        )

    def vset(rd: str, avl: str, comment: str | None = None,
             label: str | None = None) -> None:
        emit("vsetvli", rd, avl, sew, "m1", *flags, label=label,
             comment=comment)

    emit("li", "t1", str(lanes), comment="full vector length")
    vset("t0", "t1", comment="tail-undisturbed: accumulator in tails")
    emit("vmv.v.i", "v0", "0", comment="partial-sum accumulator")

    def strip_body(step: str, label: str | None) -> None:
        emit(load, "v1", "(a1)", label=label)
        emit(load, "v2", "(a2)")
        emit("vfmacc.vv", "v0", "v1", "v2")
        emit("sub", "a0", "a0", step)
        emit("slli", "t2", step, shift)
        emit("add", "a1", "a1", "t2")
        emit("add", "a2", "a2", "t2")

    if flavor is VectorFlavor.VLS:
        emit("bltu", "a0", "t1", "dot_rem",
             comment="short trip: straight to remainder")
        strip_body("t1", "dot_main")
        emit("bgeu", "a0", "t1", "dot_main",
             comment="main loop while a full strip remains")
        emit("beqz", "a0", "dot_fold", label="dot_rem")
        vset("t0", "a0", comment="remainder strip")
        strip_body("t0", None)
        emit("bnez", "a0", "dot_rem")
    else:
        vset("t0", "a0", label="dot_loop", comment="VLA strip-mine")
        strip_body("t0", None)
        emit("bnez", "a0", "dot_loop")

    vset("t0", "t1", label="dot_fold",
         comment="fold over every lane, tails included")
    emit("vmv.v.i", "v3", "0")
    fold = "vfredusum.vs" if v10 else "vfredsum.vs"
    emit(fold, "v3", "v0", "v3")
    if v10:
        emit("vsetivli", "t0", "1", sew, "m1", *flags)
    else:
        emit("li", "t3", "1")
        vset("t0", "t3")
    emit(store, "v3", "(a3)")
    emit("ret")
    return body


def count_dynamic_instructions(
    spec: LoopSpec,
    flavor: VectorFlavor,
    n: int,
    vector_bits: int = 128,
) -> int:
    """Estimate dynamically executed instructions for ``n`` elements —
    exposes the VLA strip-mining overhead quantitatively."""
    if n < 0:
        raise IsaError("n must be >= 0")
    lanes = max(1, vector_bits // spec.dtype.bits)
    iters = (n + lanes - 1) // lanes
    per_iter = (
        spec.num_inputs  # loads
        + len(spec.ops)
        + (1 if spec.has_store else 0)
        + 3  # bookkeeping adds/sub
        + (1 if spec.num_inputs == 2 else 0)
        + (1 if spec.has_store else 0)
        + 1  # branch
    )
    if flavor is VectorFlavor.VLA:
        per_iter += 1  # vsetvli every strip
        return iters * per_iter + 1  # + ret
    return iters * per_iter + 2 + 1  # + li/vsetvli preamble + ret
