"""RVV v1.0 -> v0.7.1 assembly rewriter (the RVV-rollback tool, [11]).

Clang can only emit RVV v1.0 assembly, which the C920 (RVV v0.7.1)
cannot execute. The paper uses Lee et al.'s RVV-rollback tool to backport
the assembly; this module reimplements its rewrite rules:

1. ``vsetvli``/``vsetivli``: strip the v1.0 tail/mask-agnostic flags
   (v0.7.1 hardware is always tail-undisturbed); expand ``vsetivli``'s
   immediate AVL through a scratch register; reject fractional LMUL,
   which has no v0.7.1 encoding.
2. Unit-stride/strided/indexed loads and stores: rewrite the
   width-encoded v1.0 mnemonics (``vle32.v``) to the SEW-implicit
   v0.7.1 forms (``vle.v``), checking the encoded EEW against the
   active SEW — a mismatch would silently load the wrong width, so it
   is an error (the real tool inserts vtype toggles for the common
   cases; we support the matching-width cases the compilers emit).
3. Renamed mask/reduction ops: ``vcpop.m``->``vpopc.m``,
   ``vfirst.m``->``vmfirst.m``, ``vmandn.mm``->``vmandnot.mm``,
   ``vmorn.mm``->``vmornot.mm``, ``vfredusum.vs``->``vfredsum.vs``.
4. Whole-register moves (``vmv1r.v``) become ``vmv.v.v``; larger
   register-group moves need LMUL context and are rejected.
5. ``vzext``/``vsext`` have no v0.7.1 equivalent -> error.
"""

from __future__ import annotations

import re

from repro.isa.encoding import Instruction, parse_assembly, render_assembly
from repro.isa.rvv import RVV_0_7_1, V10_LMUL, sew_bits
from repro.util.errors import IsaError


class RollbackError(IsaError):
    """A v1.0 construct with no v0.7.1 equivalent was encountered."""


_MEM_RE = re.compile(
    r"^(?P<op>vl|vs)(?P<kind>e|se|uxei|oxei)(?P<eew>8|16|32|64)\.v$"
)

_RENAMES = {
    "vmandn.mm": "vmandnot.mm",
    "vmorn.mm": "vmornot.mm",
    "vcpop.m": "vpopc.m",
    "vfirst.m": "vmfirst.m",
    "vfredusum.vs": "vfredsum.vs",
}

#: v0.7.1 mnemonic for each (load/store, addressing-kind) pair.
_MEM_MAP = {
    ("vl", "e"): "vle.v",
    ("vs", "e"): "vse.v",
    ("vl", "se"): "vlse.v",
    ("vs", "se"): "vsse.v",
    ("vl", "uxei"): "vlxe.v",
    ("vl", "oxei"): "vlxe.v",
    ("vs", "uxei"): "vsuxe.v",
    ("vs", "oxei"): "vsxe.v",
}

_NO_EQUIVALENT_PREFIXES = ("vzext.", "vsext.")
_WHOLE_REG_MOVES = {"vmv2r.v", "vmv4r.v", "vmv8r.v"}


def _rollback_vsetvli(inst: Instruction) -> tuple[Instruction, int | None]:
    """Strip v1.0 policy flags; return (rewritten, active SEW bits)."""
    ops = [op.strip() for op in inst.operands]
    if len(ops) < 3:
        raise RollbackError(f"malformed vsetvli: {inst.render().strip()}")
    rd, avl, sew = ops[0], ops[1], ops[2]
    sew_val = sew_bits(sew)
    kept = [rd, avl, sew]
    for token in ops[3:]:
        if token in ("ta", "tu", "ma", "mu"):
            continue  # v0.7.1 has no policy flags
        if token in V10_LMUL:
            if token.startswith("mf"):
                raise RollbackError(
                    f"fractional LMUL {token!r} has no RVV v0.7.1 encoding"
                )
            kept.append(token)
            continue
        raise RollbackError(f"unknown vsetvli token {token!r}")
    return inst.with_operands(tuple(kept)), sew_val


def _rollback_vsetivli(
    inst: Instruction,
) -> tuple[list[Instruction], int | None]:
    """v0.7.1 has no immediate-AVL form: materialize the AVL in t6."""
    ops = [op.strip() for op in inst.operands]
    if len(ops) < 3:
        raise RollbackError(f"malformed vsetivli: {inst.render().strip()}")
    rd, imm, rest = ops[0], ops[1], ops[2:]
    try:
        avl = int(imm, 0)
    except ValueError:
        raise RollbackError(
            f"vsetivli AVL {imm!r} is not an integer immediate"
        ) from None
    if not 0 <= avl <= 31:
        # The v1.0 uimm field is 5 bits; anything outside it was never
        # a legal vsetivli, so refuse rather than silently materialize.
        raise RollbackError(
            f"vsetivli AVL {avl} outside the 5-bit immediate range 0..31"
        )
    li = Instruction(mnemonic="li", operands=("t6", imm), label=inst.label)
    vset = Instruction(
        mnemonic="vsetvli",
        operands=tuple([rd, "t6"] + rest),
        comment=inst.comment,
    )
    rewritten, sew_val = _rollback_vsetvli(vset)
    return [li, rewritten], sew_val


def rollback_instruction(
    inst: Instruction, active_sew: int | None
) -> tuple[list[Instruction], int | None]:
    """Rewrite one instruction; returns (replacement list, new SEW)."""
    if not inst.is_code:
        return [inst], active_sew

    m = inst.mnemonic

    if m == "vsetvli":
        new, sew = _rollback_vsetvli(inst)
        return [new], sew
    if m == "vsetivli":
        return _rollback_vsetivli(inst)

    if m in _RENAMES:
        return [inst.with_mnemonic(_RENAMES[m])], active_sew

    if m == "vmv1r.v":
        return [inst.with_mnemonic("vmv.v.v")], active_sew
    if m in _WHOLE_REG_MOVES:
        raise RollbackError(
            f"{m} moves a register group; no v0.7.1 equivalent"
        )

    if m.startswith(_NO_EQUIVALENT_PREFIXES):
        raise RollbackError(f"{m} has no RVV v0.7.1 equivalent")

    mem = _MEM_RE.match(m)
    if mem:
        eew = int(mem.group("eew"))
        if active_sew is None:
            raise RollbackError(
                f"{m} before any vsetvli: cannot check EEW against SEW"
            )
        if eew != active_sew:
            raise RollbackError(
                f"{m} has EEW {eew} but active SEW is {active_sew}; "
                "v0.7.1 memory ops are SEW-implicit"
            )
        target = _MEM_MAP[(mem.group("op"), mem.group("kind"))]
        return [inst.with_mnemonic(target)], active_sew

    # Everything else is dialect-common or scalar; validate and pass.
    RVV_0_7_1.validate_mnemonic(m)
    return [inst], active_sew


def rollback(text: str) -> str:
    """Rewrite RVV v1.0 assembly text into RVV v0.7.1.

    Raises :class:`RollbackError` for constructs without an equivalent —
    the situations where the real tool refuses as well.
    """
    instructions = parse_assembly(text)
    out: list[Instruction] = []
    active_sew: int | None = None
    for inst in instructions:
        replacement, active_sew = rollback_instruction(inst, active_sew)
        out.extend(replacement)
    return render_assembly(out)
