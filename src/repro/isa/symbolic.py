"""Symbolic element domain for translation validation.

The concrete interpreter (:mod:`repro.isa.interpreter`) executes vector
programs on real NumPy buffers; the translation validator
(:mod:`repro.analyze.transval`) executes them over *this* domain
instead: every element is a term in a tiny expression language whose
leaves are "the initial memory contents at byte address A, read at
width W".  Two programs are observationally equivalent when every store
they perform writes structurally equal terms to the same addresses —
the element terms capture exactly the things the RVV v1.0 -> v0.7.1
rollback can get wrong:

* a width-encoded v1.0 load (``vle32.v``) rewritten to a SEW-implicit
  form under the wrong ``vsetvli`` reinterprets the same bytes at a
  different width — the ``Mem``/``Reinterpret`` leaves make that a
  visible structural difference;
* tail elements clobbered under a tail-agnostic model become ``Undef``
  terms — harmless until something *observes* one, which is precisely
  the reduction-accumulator pattern BLAS microkernels rely on;
* renamed mnemonics (``vfredusum.vs`` -> ``vfredsum.vs``) map to the
  same canonical operator, so a correct rename compares equal.

Terms are frozen, hashable, and compared structurally.  Floating-point
algebra is deliberately *not* applied: ``a+b`` and ``b+a`` are distinct
terms, because the validator must prove the rollback preserves the
exact operation order, not merely a mathematically equal result.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

#: Canonical semantic operator for each supported vector mnemonic.
#: Dialect renames map to the SAME canonical op — that is the whole
#: point: ``vfredusum.vs`` (v1.0) and ``vfredsum.vs`` (v0.7.1) must
#: compare equal after a correct rollback.
CANONICAL_OPS = {
    "vfadd.vv": "fadd",
    "vfsub.vv": "fsub",
    "vfmul.vv": "fmul",
    "vfdiv.vv": "fdiv",
    "vfmin.vv": "fmin",
    "vfmax.vv": "fmax",
    "vadd.vv": "add",
    "vsub.vv": "sub",
    "vmul.vv": "mul",
    "vfmacc.vv": "fmacc",
    "vfnmsac.vv": "fnmsac",
    "vfredusum.vs": "fredsum",
    "vfredsum.vs": "fredsum",
    "vfredosum.vs": "fredosum",
    "vredsum.vs": "redsum",
}


class Sym:
    """Base class for symbolic element terms."""

    __slots__ = ()


@dataclass(frozen=True)
class Mem(Sym):
    """The initial contents of memory at ``addr``, read at ``width``
    bits — the symbolic input leaves."""

    addr: int
    width: int

    def __repr__(self) -> str:
        return f"mem[{self.addr:#x}]:{self.width}"


@dataclass(frozen=True)
class Lit(Sym):
    """A compile-time immediate (``vmv.v.i``)."""

    value: int

    def __repr__(self) -> str:
        return f"lit({self.value})"


@dataclass(frozen=True)
class Undef(Sym):
    """A tail-agnostic (or otherwise unspecified) element.

    Each instance is *fresh*: two Undefs never compare equal to each
    other by serial, modelling "the hardware may put anything here".
    The validator treats Undef-vs-Undef as compatible (both sides are
    unspecified) but Undef-vs-defined as a divergence.
    """

    origin: str
    serial: int

    def __repr__(self) -> str:
        return f"undef<{self.origin}#{self.serial}>"


@dataclass(frozen=True)
class Bin(Sym):
    """An elementwise binary operation."""

    op: str
    lhs: Sym
    rhs: Sym

    def __repr__(self) -> str:
        return f"{self.op}({self.lhs!r}, {self.rhs!r})"


@dataclass(frozen=True)
class Fma(Sym):
    """A fused multiply-accumulate (``acc +/- a*b`` in one rounding)."""

    acc: Sym
    a: Sym
    b: Sym
    negate: bool = False

    def __repr__(self) -> str:
        sign = "-" if self.negate else "+"
        return f"fma({self.acc!r} {sign} {self.a!r}*{self.b!r})"


@dataclass(frozen=True)
class Fold(Sym):
    """A vector reduction folded into element 0."""

    op: str
    init: Sym
    elems: tuple[Sym, ...]

    def __repr__(self) -> str:
        return f"{self.op}(init={self.init!r}, n={len(self.elems)})"


@dataclass(frozen=True)
class Reinterpret(Sym):
    """Bytes stored at one width, loaded back at another.

    ``parts`` lists the overlapping stored ``(addr, width, value)``
    triples; ``width`` is the width of the offending load.  Any term
    containing one of these witnesses a width-encoded-load
    reinterpretation hazard.
    """

    addr: int
    width: int
    parts: tuple[tuple[int, int, Sym], ...]

    def __repr__(self) -> str:
        return f"reinterp[{self.addr:#x}]:{self.width}"


_UNDEF_COUNTER = itertools.count()


def fresh_undef(origin: str) -> Undef:
    """A fresh unspecified element (tail-agnostic clobber)."""
    return Undef(origin=origin, serial=next(_UNDEF_COUNTER))


def canonical_op(mnemonic: str) -> str | None:
    """The dialect-independent operator for a vector mnemonic, or
    ``None`` when the mnemonic is not a modelled arithmetic op."""
    return CANONICAL_OPS.get(mnemonic)


def contains_undef(term: Sym) -> bool:
    """Whether any leaf of ``term`` is an :class:`Undef`."""
    if isinstance(term, Undef):
        return True
    if isinstance(term, Bin):
        return contains_undef(term.lhs) or contains_undef(term.rhs)
    if isinstance(term, Fma):
        return (
            contains_undef(term.acc)
            or contains_undef(term.a)
            or contains_undef(term.b)
        )
    if isinstance(term, Fold):
        return contains_undef(term.init) or any(
            contains_undef(e) for e in term.elems
        )
    if isinstance(term, Reinterpret):
        return any(contains_undef(v) for _a, _w, v in term.parts)
    return False


def load_widths(term: Sym) -> frozenset[int]:
    """All memory-read widths appearing in the leaves of ``term``."""
    out: set[int] = set()
    _collect_widths(term, out)
    return frozenset(out)


def _collect_widths(term: Sym, out: set[int]) -> None:
    if isinstance(term, Mem):
        out.add(term.width)
    elif isinstance(term, Reinterpret):
        out.add(term.width)
        for _addr, width, value in term.parts:
            out.add(width)
            _collect_widths(value, out)
    elif isinstance(term, Bin):
        _collect_widths(term.lhs, out)
        _collect_widths(term.rhs, out)
    elif isinstance(term, Fma):
        _collect_widths(term.acc, out)
        _collect_widths(term.a, out)
        _collect_widths(term.b, out)
    elif isinstance(term, Fold):
        _collect_widths(term.init, out)
        for elem in term.elems:
            _collect_widths(elem, out)


def contains_reinterpret(term: Sym) -> bool:
    """Whether ``term`` contains a width-reinterpretation witness."""
    if isinstance(term, Reinterpret):
        return True
    if isinstance(term, Bin):
        return contains_reinterpret(term.lhs) or contains_reinterpret(term.rhs)
    if isinstance(term, Fma):
        return (
            contains_reinterpret(term.acc)
            or contains_reinterpret(term.a)
            or contains_reinterpret(term.b)
        )
    if isinstance(term, Fold):
        return contains_reinterpret(term.init) or any(
            contains_reinterpret(e) for e in term.elems
        )
    return False


def mem_leaves(term: Sym) -> frozenset[Mem]:
    """Every initial-memory leaf read by ``term`` — the term's input
    footprint, used to show which bytes a divergent value depends on."""
    out: set[Mem] = set()
    _collect_mem(term, out)
    return frozenset(out)


def _collect_mem(term: Sym, out: set[Mem]) -> None:
    if isinstance(term, Mem):
        out.add(term)
    elif isinstance(term, Bin):
        _collect_mem(term.lhs, out)
        _collect_mem(term.rhs, out)
    elif isinstance(term, Fma):
        _collect_mem(term.acc, out)
        _collect_mem(term.a, out)
        _collect_mem(term.b, out)
    elif isinstance(term, Fold):
        _collect_mem(term.init, out)
        for elem in term.elems:
            _collect_mem(elem, out)
    elif isinstance(term, Reinterpret):
        for _addr, _width, value in term.parts:
            _collect_mem(value, out)


@dataclass(frozen=True)
class Mismatch:
    """Why two terms are not equivalent."""

    reason: str
    detail: str = ""


def compare_terms(src: Sym, tgt: Sym) -> Mismatch | None:
    """Structural equivalence of two element terms.

    Returns ``None`` when equivalent.  ``Undef`` on both sides is
    compatible (both unspecified); ``Undef`` on exactly one side is the
    tail-policy hazard; differing load widths are the reinterpretation
    hazard; anything else is a plain value divergence.
    """
    if src == tgt:
        return None
    src_undef = contains_undef(src)
    tgt_undef = contains_undef(tgt)
    if isinstance(src, Undef) and isinstance(tgt, Undef):
        return None
    if src_undef != tgt_undef:
        side = "source" if src_undef else "rolled-back"
        return Mismatch(
            reason="tail-policy",
            detail=f"the {side} value is tail-agnostic (unspecified) "
            "while the other side carries a defined value",
        )
    if src_undef and tgt_undef:
        # Both contain undef mixed into arithmetic: unspecified either
        # way, but through different computations — still a hazard.
        return Mismatch(
            reason="tail-policy",
            detail="both sides mix tail-agnostic values into arithmetic "
            "through different expressions",
        )
    if contains_reinterpret(src) or contains_reinterpret(tgt):
        return Mismatch(
            reason="width-load",
            detail="a load reinterprets bytes stored at a different "
            "element width",
        )
    if load_widths(src) != load_widths(tgt):
        return Mismatch(
            reason="width-load",
            detail=f"source reads memory at widths "
            f"{sorted(load_widths(src))}, rolled-back at "
            f"{sorted(load_widths(tgt))}",
        )
    return Mismatch(
        reason="value",
        detail=f"source computes {src!r}, rolled-back computes {tgt!r}",
    )


@dataclass
class SymbolicMemory:
    """Element-granular symbolic memory.

    Reads of never-written addresses produce :class:`Mem` leaves (the
    symbolic initial image, shared by both machines of a validation
    pair); reads that overlap prior stores return the stored term when
    the (address, width) matches exactly and a :class:`Reinterpret`
    witness otherwise.
    """

    cells: dict[int, tuple[int, Sym]] = field(default_factory=dict)

    def store(self, addr: int, width: int, value: Sym) -> None:
        self.cells[addr] = (width, value)

    def load(self, addr: int, width: int) -> Sym:
        hit = self.cells.get(addr)
        if hit is not None and hit[0] == width:
            return hit[1]
        overlaps = self._overlapping(addr, width)
        if not overlaps:
            return Mem(addr=addr, width=width)
        return Reinterpret(addr=addr, width=width, parts=tuple(overlaps))

    def _overlapping(
        self, addr: int, width: int
    ) -> list[tuple[int, int, Sym]]:
        lo, hi = addr, addr + width // 8
        out = []
        for cell_addr, (cell_width, value) in sorted(self.cells.items()):
            if cell_addr < hi and lo < cell_addr + cell_width // 8:
                out.append((cell_addr, cell_width, value))
        return out

    def snapshot(self) -> dict[int, tuple[int, Sym]]:
        return dict(self.cells)
