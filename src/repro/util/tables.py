"""Plain-text table rendering for experiment reports.

The experiment modules print tables shaped exactly like the paper's
(Tables 1-4) and textual renderings of the figures' bar+whisker data, so
the harness output can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

from repro.util.errors import ConfigError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width ASCII table.

    Every row must have the same arity as ``headers``; cells are converted
    with ``str`` and right-padded. Floats should be pre-formatted by the
    caller so each experiment controls its own precision.
    """
    ncols = len(headers)
    if ncols == 0:
        raise ConfigError("table needs at least one column")
    str_rows = []
    for row in rows:
        if len(row) != ncols:
            raise ConfigError(
                f"row {row!r} has {len(row)} cells, expected {ncols}"
            )
        str_rows.append([str(cell) for cell in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_bar_chart(
    labels: Sequence[str],
    means: Sequence[float],
    mins: Sequence[float],
    maxs: Sequence[float],
    title: str | None = None,
    width: int = 40,
) -> str:
    """Render a horizontal bar chart with whiskers as ASCII art.

    Used by the figure experiments: each label gets a bar proportional to
    its mean plus a ``[min, max]`` annotation — the textual analogue of the
    paper's bar+whisker plots.
    """
    n = len(labels)
    if not (n == len(means) == len(mins) == len(maxs)):
        raise ConfigError("labels/means/mins/maxs must have equal length")
    if n == 0:
        raise ConfigError("bar chart needs at least one bar")
    label_w = max(len(lbl) for lbl in labels)
    span = max(abs(v) for seq in (means, mins, maxs) for v in seq)
    span = max(span, 1e-12)
    scale = width / span
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for lbl, mean, lo, hi in zip(labels, means, mins, maxs):
        bar_len = int(round(abs(mean) * scale))
        bar = ("+" if mean >= 0 else "-") * bar_len
        lines.append(
            f"{lbl.ljust(label_w)} | {mean:+8.2f} {bar:<{width}} "
            f"[{lo:+.2f}, {hi:+.2f}]"
        )
    return "\n".join(lines)


def render_csv(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render rows as simple CSV (no quoting: experiment cells never
    contain commas)."""
    ncols = len(headers)
    out = [",".join(headers)]
    for row in rows:
        if len(row) != ncols:
            raise ConfigError(
                f"row {row!r} has {len(row)} cells, expected {ncols}"
            )
        cells = [str(c) for c in row]
        if any("," in c for c in cells):
            raise ConfigError(f"cell containing comma in row {row!r}")
        out.append(",".join(cells))
    return "\n".join(out)
