"""Deterministic randomness for run-to-run noise.

The paper averages every measurement over five runs. Our simulator is
deterministic, so we inject small multiplicative lognormal noise — seeded
from the (kernel, machine, config) identity — and average exactly like the
paper does. Everything is reproducible: the same experiment always returns
the same numbers.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.util.errors import ConfigError

#: Standard deviation (in log space) of simulated run-to-run noise. Real
#: measurements on the SG2042 host show low single-digit-percent jitter.
DEFAULT_NOISE_SIGMA = 0.02


def derive_seed(*parts: object) -> int:
    """Derive a stable 63-bit seed from arbitrary hashable parts.

    Uses BLAKE2 over the ``repr`` of each part, so seeds are stable across
    processes and Python versions (unlike ``hash``).
    """
    if not parts:
        raise ConfigError("derive_seed requires at least one part")
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "little") & (2**63 - 1)


def noise_factors(
    seed: int, count: int, sigma: float = DEFAULT_NOISE_SIGMA
) -> np.ndarray:
    """Return ``count`` multiplicative noise factors with geometric mean 1.

    Lognormal with median 1: ``exp(N(0, sigma))``. ``sigma=0`` returns
    exactly ones, which the tests use for noise-free model checks.
    """
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    if sigma < 0:
        raise ConfigError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return np.ones(count)
    rng = np.random.default_rng(seed)
    return np.exp(rng.normal(loc=0.0, scale=sigma, size=count))
