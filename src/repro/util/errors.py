"""Exception hierarchy for the repro package.

Every error raised intentionally by this package derives from
:class:`ReproError` so callers can catch package failures without also
swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid run configuration, machine description or experiment
    parameter was supplied (e.g. more threads than cores, a precision the
    kernel does not support, an unknown placement policy)."""


class SimulationError(ReproError):
    """The performance model reached an inconsistent state (e.g. negative
    predicted time, empty thread chunking). Indicates a bug or a machine
    description violating model invariants."""


class TransientError(ReproError):
    """A failure expected to clear on retry (flaky early-silicon run,
    injected chaos fault at the ``run`` site). The resilient runner's
    retry policy exists for exactly this class of error."""


class CheckpointError(ConfigError):
    """A sweep checkpoint file does not match the sweep being resumed
    (wrong grid hash, unreadable header, incompatible version)."""


class IsaError(ReproError):
    """Assembly could not be parsed or translated (unknown mnemonic,
    malformed operands, unsupported RVV construct)."""


class CompilationError(ReproError):
    """The compiler model was asked something it cannot answer (unknown
    kernel IR construct, incompatible target/ISA combination)."""
