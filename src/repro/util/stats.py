"""Statistics helpers used throughout the suite and experiments.

The paper reports three derived quantities, reproduced here with the same
conventions:

* **speedup** (Tables 1-3): time on one thread divided by time on *n*.
* **parallel efficiency** (Tables 1-3): speedup divided by thread count.
* **times faster/slower** (Figures 1-7): a signed ratio where ``0`` means
  equal performance, ``+x`` means ``(x+1)`` times faster than the baseline
  and ``-x`` means ``(x+1)`` times slower. This is the quantity plotted on
  every figure's vertical axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.util.errors import ConfigError


def speedup(t_base: float, t_new: float) -> float:
    """Classic speedup: execution time of the baseline divided by the new
    configuration's time. ``>1`` means the new configuration is faster."""
    if t_base <= 0 or t_new <= 0:
        raise ConfigError(f"times must be positive, got {t_base} and {t_new}")
    return t_base / t_new


def parallel_efficiency(speedup_value: float, threads: int) -> float:
    """Parallel efficiency, the paper's footnote 3: speedup over thread
    count. 1 is ideal; superlinear speedups can exceed 1 (the paper reports
    e.g. 1.40 for Stream at 8 threads with cluster placement)."""
    if threads < 1:
        raise ConfigError(f"thread count must be >= 1, got {threads}")
    if speedup_value < 0:
        raise ConfigError(f"speedup must be non-negative, got {speedup_value}")
    return speedup_value / threads


def relative_to_baseline(t_baseline: float, t_other: float) -> float:
    """The figures' signed "number of times faster/slower" convention.

    ``0``  -> same performance.
    ``+1`` -> twice as fast as the baseline.
    ``-1`` -> twice as slow as the baseline.

    The mapping is ``ratio - 1`` for speedups and ``1 - 1/ratio`` inverted
    (``-(t_other/t_baseline - 1)``) for slowdowns, matching the symmetric
    axis in the paper's figures.
    """
    ratio = speedup(t_baseline, t_other)
    if ratio >= 1.0:
        return ratio - 1.0
    return -(1.0 / ratio - 1.0)


def from_relative(rel: float) -> float:
    """Invert :func:`relative_to_baseline`, returning the plain time ratio
    ``t_baseline / t_other``."""
    if rel >= 0:
        return rel + 1.0
    return 1.0 / (1.0 - rel)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the right average for ratios. Raises on empty input
    or non-positive entries (a silent 0 would poison downstream means)."""
    vals = list(values)
    if not vals:
        raise ConfigError("geometric mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ConfigError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain mean, raising on empty input."""
    vals = list(values)
    if not vals:
        raise ConfigError("mean of empty sequence")
    return sum(vals) / len(vals)


@dataclass(frozen=True)
class Summary:
    """Mean plus min/max whiskers — one bar of a paper figure."""

    mean: float
    minimum: float
    maximum: float
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigError("summary requires at least one sample")
        if not (self.minimum <= self.mean <= self.maximum):
            raise ConfigError(
                f"inconsistent summary: min={self.minimum} mean={self.mean} "
                f"max={self.maximum}"
            )


def summarize(values: Sequence[float]) -> Summary:
    """Collapse per-kernel values to a class-level bar + whiskers, matching
    the aggregation used by all the paper figures (arithmetic mean of the
    signed relative values, whiskers at min/max)."""
    vals = list(values)
    if not vals:
        raise ConfigError("cannot summarize empty sequence")
    lo, hi = min(vals), max(vals)
    # Clamp: summing then dividing can round the mean a ULP outside the
    # sample range for denormal-scale values.
    mean = min(max(arithmetic_mean(vals), lo), hi)
    return Summary(mean=mean, minimum=lo, maximum=hi, count=len(vals))
