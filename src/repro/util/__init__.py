"""Shared utilities: units, statistics, table rendering, deterministic RNG."""

from repro.util.errors import ConfigError, ReproError, SimulationError
from repro.util.rng import derive_seed, noise_factors
from repro.util.stats import (
    geometric_mean,
    parallel_efficiency,
    relative_to_baseline,
    speedup,
    summarize,
    Summary,
)
from repro.util.units import (
    GB,
    GHZ,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    format_bytes,
    format_seconds,
    parse_size,
)

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "derive_seed",
    "noise_factors",
    "speedup",
    "parallel_efficiency",
    "relative_to_baseline",
    "geometric_mean",
    "summarize",
    "Summary",
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "GHZ",
    "format_bytes",
    "format_seconds",
    "parse_size",
]
