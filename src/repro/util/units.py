"""Unit constants and human-friendly formatting helpers.

Hardware datasheets mix decimal (DDR bandwidth, clock) and binary (cache
capacity) units; we keep both explicit to avoid the classic KB/KiB 2.4%
errors compounding through the cache model.
"""

from __future__ import annotations

import re

from repro.util.errors import ConfigError

#: Decimal byte units (used for DRAM bandwidth).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

#: Binary byte units (used for cache and memory capacities).
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

#: Frequency unit (Hz).
MHZ = 1_000_000
GHZ = 1_000_000_000

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMGT]i?B|B)?\s*$", re.IGNORECASE
)

_UNIT_FACTORS = {
    None: 1,
    "B": 1,
    "KB": KB,
    "MB": MB,
    "GB": GB,
    "TB": 1_000_000_000_000,
    "KIB": KIB,
    "MIB": MIB,
    "GIB": GIB,
    "TIB": 1024**4,
}


def parse_size(text: str) -> int:
    """Parse a human size string (``"64KiB"``, ``"1MB"``, ``"512 B"``) into
    bytes.

    Raises :class:`ConfigError` for malformed strings so that bad machine
    descriptions fail loudly at construction time.
    """
    match = _SIZE_RE.match(text)
    if match is None:
        raise ConfigError(f"cannot parse size {text!r}")
    unit = match.group("unit")
    factor = _UNIT_FACTORS[unit.upper() if unit else None]
    value = float(match.group("num")) * factor
    if value != int(value):
        raise ConfigError(f"size {text!r} is not a whole number of bytes")
    return int(value)


def format_bytes(n: int | float) -> str:
    """Render a byte count with the largest binary unit that keeps the
    mantissa >= 1 (``65536`` -> ``"64.0KiB"``)."""
    if n < 0:
        raise ConfigError(f"byte count must be non-negative, got {n}")
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{value:.0f}B"
        value /= 1024
    raise AssertionError("unreachable")


def format_seconds(t: float) -> str:
    """Render a duration with an adaptive unit (s / ms / us / ns)."""
    if t < 0:
        raise ConfigError(f"duration must be non-negative, got {t}")
    if t >= 1.0:
        return f"{t:.3f}s"
    if t >= 1e-3:
        return f"{t * 1e3:.3f}ms"
    if t >= 1e-6:
        return f"{t * 1e6:.3f}us"
    return f"{t * 1e9:.3f}ns"
