"""Translation validation of the RVV v1.0 -> v0.7.1 rollback.

:mod:`repro.isa.rollback` rewrites v1.0 assembly into v0.7.1 and
:mod:`repro.analyze.asmcheck` proves the result is *legal* — but
legality is not correctness, and a miscompiling rollback is exactly the
OpenBLAS-under-0.7.1 bug class the paper diagnoses.  This module proves
(or refutes) *semantics preservation*: it executes the v1.0 program and
its rolled-back counterpart over the shared abstract machine of
:mod:`repro.isa.interpreter`, instantiated with the symbolic element
domain of :mod:`repro.isa.symbolic` (concolic execution: scalars,
pointers and control flow are concrete; every vector element is a term
over the initial memory image), and compares:

* the **vsetvli product automaton** — the sequence of architectural
  ``(SEW, vl)`` configurations each side passes through.  Drift across
  the strip-mine back-edge means the two programs partition the
  iteration space differently (``vl-drift`` / ``vtype-drift``);
* the **observable behaviour** — every store event (address, width,
  element terms) and the final symbolic memory.  A divergent store is a
  proven miscompile, classified by *why* the terms differ:

  - ``tail-policy`` — one side observes a tail-agnostic (unspecified)
    lane the other side has defined.  This is the BLAS killer: a dot
    microkernel keeps partial sums in tail lanes across the remainder
    strip (which is why v1.0 emits ``tu``) and folds them at full
    width; tail-agnostic execution clobbers the partial sums.
  - ``width-load`` — bytes are read back at a different element width
    than the source program used (the width-encoded-load
    reinterpretation hazard of the rollback's ``vle32.v`` rewrite).
  - ``value`` — structurally different computation.

Verdicts feed :mod:`repro.analyze.driver` as the third lint sweep
(``repro lint --transval``) and :mod:`repro.apps.hpl` as the
correctness gate on BLAS library kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyze.report import Finding, Severity
from repro.isa.encoding import Instruction
from repro.isa.interpreter import ProgramRunner
from repro.isa.rvv import sew_bits
from repro.isa.symbolic import (
    Bin,
    Fma,
    Fold,
    Lit,
    Sym,
    SymbolicMemory,
    canonical_op,
    compare_terms,
    fresh_undef,
)
from repro.util.errors import IsaError

#: Tail models a machine can run under.  ``policy`` honours the active
#: vsetvli ta/tu flag (RVV v1.0 semantics); ``undisturbed`` is the real
#: C920 (v0.7.1 has no agnostic mode); ``agnostic`` models hypothetical
#: tail-agnostic hardware — the assumption a buggy rollback would bake
#: in, used to *demonstrate* a detectable miscompile.
TAIL_MODELS = ("policy", "undisturbed", "agnostic")

_WIDTH_PREFIXES = ("vle", "vse")


@dataclass(frozen=True)
class VtypeEvent:
    """One architectural (SEW, vl) configuration."""

    sew: int
    vl: int


@dataclass(frozen=True)
class StoreEvent:
    """One observable vector store: where, at what width, which terms."""

    addr: int
    width: int
    elems: tuple[Sym, ...]


class SymbolicMachine(ProgramRunner):
    """The interpreter's abstract machine over symbolic elements.

    Scalars are concrete integers (trip counts and pointers must drive
    control flow); vector elements are :class:`~repro.isa.symbolic.Sym`
    terms.  Records a :class:`VtypeEvent` per vset and a
    :class:`StoreEvent` per vector store — the traces the validator
    compares.
    """

    def __init__(
        self,
        vlen_bits: int = 128,
        tail_model: str = "policy",
    ) -> None:
        if tail_model not in TAIL_MODELS:
            raise IsaError(f"unknown tail model {tail_model!r}")
        self.vlen_bits = vlen_bits
        self.tail_model = tail_model
        self.scalars: dict[str, int] = {}
        self.vectors: dict[str, list[Sym]] = {}
        self.memory = SymbolicMemory()
        self.sew = 32
        self.vl = 0
        self.configured = False
        #: Active tail policy from the last vset ("agnostic"/"undisturbed").
        self.tail_policy = "undisturbed"
        self.vtype_trace: list[VtypeEvent] = []
        self.store_trace: list[StoreEvent] = []

    # -- scalar register file ------------------------------------------------

    def get_s(self, reg: str) -> int:
        if reg in ("x0", "zero"):
            return 0
        return int(self.scalars.get(reg, 0))

    def set_s(self, reg: str, value: int) -> None:
        if reg in ("x0", "zero"):
            return
        self.scalars[reg] = int(value)

    # -- vector configuration ------------------------------------------------

    @property
    def vlmax(self) -> int:
        return self.vlen_bits // self.sew

    def _configure(self, rd: str, avl: int, config: list[str]) -> None:
        self.sew = sew_bits(config[0])
        flags = [tok for tok in config[1:] if tok in ("ta", "tu")]
        if self.tail_model == "policy":
            self.tail_policy = "agnostic" if "ta" in flags else "undisturbed"
        else:
            self.tail_policy = self.tail_model
        self.vl = min(self.vlmax, max(0, avl))
        self.configured = True
        self.set_s(rd, self.vl)
        self.vtype_trace.append(VtypeEvent(sew=self.sew, vl=self.vl))

    def _vsetvli(self, inst: Instruction) -> None:
        ops = [o.strip() for o in inst.operands]
        self._configure(ops[0], self.get_s(ops[1]), ops[2:])

    def _vsetivli(self, inst: Instruction) -> None:
        ops = [o.strip() for o in inst.operands]
        self._configure(ops[0], int(ops[1], 0), ops[2:])

    # -- vector register file ------------------------------------------------

    def _vreg(self, name: str) -> list[Sym]:
        size = max(self.vl, self.vlmax)
        if name not in self.vectors:
            self.vectors[name] = [
                fresh_undef(f"uninit:{name}") for _ in range(size)
            ]
        vec = self.vectors[name]
        while len(vec) < size:
            vec.append(fresh_undef(f"uninit:{name}"))
        return vec

    def _clobber_tail(self, vec: list[Sym], origin: str) -> None:
        """Apply the active tail policy to lanes [vl:VLMAX]."""
        if self.tail_policy != "agnostic":
            return
        for i in range(self.vl, len(vec)):
            vec[i] = fresh_undef(origin)

    # -- memory semantics ----------------------------------------------------

    def _mem_width(self, mnemonic: str) -> int:
        """Element width of a memory op: the encoded EEW for v1.0
        width-encoded forms, the active SEW for SEW-implicit forms.
        This asymmetry is what surfaces the reinterpretation hazard."""
        for prefix in _WIDTH_PREFIXES:
            rest = mnemonic.removeprefix(prefix)
            if rest != mnemonic and rest.removesuffix(".v").isdigit():
                return int(rest.removesuffix(".v"))
        return self.sew

    def _require_configured(self, mnemonic: str) -> None:
        if not self.configured:
            raise IsaError(
                f"{mnemonic!r} executed before any vsetvli: SEW/vl are "
                "undefined"
            )

    def _vector_load(self, inst: Instruction) -> None:
        self._require_configured(inst.mnemonic)
        width = self._mem_width(inst.mnemonic)
        vd = inst.operands[0].strip()
        base = self.get_s(_mem_base(inst.operands[1]))
        vec = self._vreg(vd)
        step = width // 8
        for i in range(self.vl):
            vec[i] = self.memory.load(base + i * step, width)
        self._clobber_tail(vec, f"tail:{inst.mnemonic}")

    def _vector_store(self, inst: Instruction) -> None:
        self._require_configured(inst.mnemonic)
        width = self._mem_width(inst.mnemonic)
        vs = inst.operands[0].strip()
        base = self.get_s(_mem_base(inst.operands[1]))
        vec = self._vreg(vs)
        step = width // 8
        elems = tuple(vec[: self.vl])
        for i, term in enumerate(elems):
            self.memory.store(base + i * step, width, term)
        self.store_trace.append(
            StoreEvent(addr=base, width=width, elems=elems)
        )

    # -- arithmetic semantics ------------------------------------------------

    def _vector_arith(self, inst: Instruction) -> None:
        m = inst.mnemonic
        self._require_configured(m)
        ops = [o.strip() for o in inst.operands]
        if m == "vmv.v.i":
            vec = self._vreg(ops[0])
            lit = Lit(int(ops[1], 0))
            for i in range(self.vl):
                vec[i] = lit
            self._clobber_tail(vec, f"tail:{m}")
            return
        if m == "vmv.v.v":
            src = self._vreg(ops[1])
            dst = self._vreg(ops[0])
            dst[: self.vl] = src[: self.vl]
            self._clobber_tail(dst, f"tail:{m}")
            return
        op = canonical_op(m)
        if op is None:
            raise IsaError(f"unsupported vector arithmetic {m!r}")
        if m.endswith(".vs"):
            # Reduction: vd[0] = fold(vs2[0:vl]) with vs1[0] as init
            # (operand order vd, vs2, vs1).
            vd, vs2, vs1 = ops[0], ops[1], ops[2]
            elems = tuple(self._vreg(vs2)[: self.vl])
            init = self._vreg(vs1)[0]
            dst = self._vreg(vd)
            dst[0] = Fold(op=op, init=init, elems=elems)
            # Lanes 1..VLMAX of a reduction destination are tail lanes.
            saved_vl, self.vl = self.vl, 1
            self._clobber_tail(dst, f"tail:{m}")
            self.vl = saved_vl
            return
        vd, vs1, vs2 = ops[0], ops[1], ops[2]
        a = self._vreg(vs1)
        b = self._vreg(vs2)
        dst = self._vreg(vd)
        if op in ("fmacc", "fnmsac"):
            for i in range(self.vl):
                dst[i] = Fma(acc=dst[i], a=a[i], b=b[i], negate=op == "fnmsac")
        else:
            for i in range(self.vl):
                dst[i] = Bin(op=op, lhs=a[i], rhs=b[i])
        self._clobber_tail(dst, f"tail:{m}")


def _mem_base(operand: str) -> str:
    text = operand.strip()
    if not (text.startswith("(") and text.endswith(")")):
        raise IsaError(f"expected (reg) memory operand, got {operand!r}")
    return text[1:-1]


@dataclass
class PairVerdict:
    """Outcome of validating one (v1.0, rolled-back) pair."""

    pair_id: str
    findings: list[Finding] = field(default_factory=list)
    vtype_events: int = 0
    store_events: int = 0

    @property
    def equivalent(self) -> bool:
        return not any(f.severity is Severity.ERROR for f in self.findings)


#: Default ABI layout for validation runs: disjoint input/input/output
#: regions, far enough apart that no loop walks into the next region.
INPUT_A = 0x1000
INPUT_B = 0x2000
OUTPUT = 0x3000


def _run(
    text: str,
    n: int,
    vlen_bits: int,
    tail_model: str,
) -> SymbolicMachine:
    machine = SymbolicMachine(vlen_bits=vlen_bits, tail_model=tail_model)
    machine.set_s("a0", n)
    machine.set_s("a1", INPUT_A)
    machine.set_s("a2", INPUT_B)
    machine.set_s("a3", OUTPUT)
    machine.run(text)
    return machine


def validate_pair(
    source_text: str,
    target_text: str,
    pair_id: str,
    *,
    n: int,
    vlen_bits: int = 128,
    target_tail_model: str = "undisturbed",
) -> PairVerdict:
    """Prove (or refute) that the rolled-back ``target_text`` preserves
    the semantics of the v1.0 ``source_text`` for an ``n``-element run.

    The source machine honours v1.0 tail policies; the target runs
    under ``target_tail_model`` (``"undisturbed"`` = the real C920,
    ``"agnostic"`` = the hypothetical hardware a tail-agnostic rollback
    assumes — the demo-miscompile mode).
    """
    verdict = PairVerdict(pair_id=pair_id)

    def report(
        severity: Severity,
        category: str,
        site: str,
        message: str,
        hint: str = "",
    ) -> None:
        verdict.findings.append(
            Finding(
                severity=severity,
                analyzer="transval",
                site=f"{pair_id}:{site}",
                message=message,
                hint=hint,
                category=category,
            )
        )

    try:
        src = _run(source_text, n, vlen_bits, "policy")
    except IsaError as exc:
        report(
            Severity.ERROR,
            "exec-error",
            "source",
            f"v1.0 program failed to execute symbolically: {exc}",
        )
        return verdict
    try:
        tgt = _run(target_text, n, vlen_bits, target_tail_model)
    except IsaError as exc:
        report(
            Severity.ERROR,
            "exec-error",
            "target",
            f"rolled-back program failed to execute symbolically: {exc}",
        )
        return verdict

    verdict.vtype_events = len(src.vtype_trace)
    verdict.store_events = len(src.store_trace)

    stores_diverge = _compare_stores(src, tgt, report)
    _compare_vtype(src, tgt, stores_diverge, report)
    if not stores_diverge:
        _compare_memory(src, tgt, report)
    return verdict


def _compare_vtype(
    src: SymbolicMachine,
    tgt: SymbolicMachine,
    observable: bool,
    report,
) -> None:
    """The product automaton: both sides must step through the same
    (SEW, vl) configurations.  SEW drift is always an error (every
    subsequent element is the wrong width); pure vl drift is an error
    only when a store diverges too, a warning otherwise (the iteration
    space was re-partitioned but the observable behaviour survived)."""
    a, b = src.vtype_trace, tgt.vtype_trace
    if len(a) != len(b):
        report(
            Severity.ERROR,
            "vtype-drift",
            "vtype",
            f"v1.0 program configures vtype {len(a)} times, rolled-back "
            f"{len(b)} times: the strip-mine structures differ",
            hint="the rollback must preserve one vset per strip "
            "(vsetivli expands to li+vsetvli, still one event)",
        )
        return
    for idx, (ea, eb) in enumerate(zip(a, b)):
        if ea.sew != eb.sew:
            report(
                Severity.ERROR,
                "vtype-drift",
                f"vtype[{idx}]",
                f"SEW diverges at vset {idx}: v1.0 configures e{ea.sew},"
                f" rolled-back e{eb.sew}",
                hint="a wrong SEW reinterprets every subsequent element",
            )
            return
        if ea.vl != eb.vl:
            severity = Severity.ERROR if observable else Severity.WARNING
            report(
                severity,
                "vl-drift",
                f"vtype[{idx}]",
                f"vl diverges at vset {idx}: v1.0 runs the strip at "
                f"vl={ea.vl}, rolled-back at vl={eb.vl}",
                hint="vl drift across the back-edge re-partitions the "
                "iteration space; remaining strips will not line up",
            )
            return


def _compare_stores(
    src: SymbolicMachine, tgt: SymbolicMachine, report
) -> bool:
    """Compare observable store events; returns whether any diverged."""
    a, b = src.store_trace, tgt.store_trace
    diverged = False
    if len(a) != len(b):
        report(
            Severity.ERROR,
            "value",
            "stores",
            f"v1.0 program performs {len(a)} vector stores, rolled-back "
            f"performs {len(b)}",
        )
        return True
    for idx, (ea, eb) in enumerate(zip(a, b)):
        site = f"store[{idx}]"
        if ea.addr != eb.addr:
            report(
                Severity.ERROR,
                "value",
                site,
                f"store {idx} targets {ea.addr:#x} in v1.0 but "
                f"{eb.addr:#x} after rollback",
            )
            diverged = True
            continue
        if ea.width != eb.width:
            report(
                Severity.ERROR,
                "width-load",
                site,
                f"store {idx} writes {ea.width}-bit elements in v1.0 "
                f"but {eb.width}-bit after rollback",
                hint="the SEW-implicit v0.7.1 store inherits a vtype "
                "width different from the encoded v1.0 width",
            )
            diverged = True
            continue
        if len(ea.elems) != len(eb.elems):
            report(
                Severity.ERROR,
                "vl-drift",
                site,
                f"store {idx} writes {len(ea.elems)} elements in v1.0 "
                f"but {len(eb.elems)} after rollback",
            )
            diverged = True
            continue
        for lane, (ta, tb) in enumerate(zip(ea.elems, eb.elems)):
            mismatch = compare_terms(ta, tb)
            if mismatch is None:
                continue
            report(
                Severity.ERROR,
                mismatch.reason,
                f"{site}.elem[{lane}]",
                f"store {idx} lane {lane} diverges "
                f"({mismatch.reason}): {mismatch.detail}",
                hint=_HINTS.get(mismatch.reason, ""),
            )
            diverged = True
            break
    return diverged


_HINTS = {
    "tail-policy": (
        "v0.7.1 hardware is tail-undisturbed; a rollback that assumes "
        "tail-agnostic semantics clobbers cross-strip accumulator lanes "
        "— the OpenBLAS dot/GEMM miscompile class"
    ),
    "width-load": (
        "insert a vtype toggle or refuse the rewrite: v0.7.1 memory "
        "ops inherit SEW, so the load width must match the store width"
    ),
    "value": "the rolled-back program computes a different expression",
}


def _compare_memory(
    src: SymbolicMachine, tgt: SymbolicMachine, report
) -> None:
    """Final-state check: every byte range either side wrote must hold
    an equivalent term on the other side (catches stores the event
    comparison paired up differently)."""
    a = src.memory.snapshot()
    b = tgt.memory.snapshot()
    for addr in sorted(set(a) | set(b)):
        if addr not in a or addr not in b:
            side = "v1.0" if addr in a else "rolled-back"
            report(
                Severity.ERROR,
                "value",
                f"mem[{addr:#x}]",
                f"only the {side} program wrote memory at {addr:#x}",
            )
            return
        (wa, va), (wb, vb) = a[addr], b[addr]
        if wa != wb:
            report(
                Severity.ERROR,
                "width-load",
                f"mem[{addr:#x}]",
                f"final memory at {addr:#x} written at {wa}-bit width "
                f"by v1.0 but {wb}-bit after rollback",
            )
            return
        mismatch = compare_terms(va, vb)
        if mismatch is not None:
            report(
                Severity.ERROR,
                mismatch.reason,
                f"mem[{addr:#x}]",
                f"final memory at {addr:#x} diverges "
                f"({mismatch.reason}): {mismatch.detail}",
                hint=_HINTS.get(mismatch.reason, ""),
            )
            return
