"""Lint driver: run every analyzer over every artifact.

Three sweeps feed one :class:`~repro.analyze.report.LintReport`:

* **kernels** — for each of the 64 registered kernels, load its loop-nest
  IR, run the race detector's traits cross-check
  (:func:`repro.analyze.races.crosscheck_traits`) and the feature-drift
  check (:func:`repro.compiler.analysis.features_diff`; decisive drift is
  an error, informational drift a warning).
* **assembly** — for each spec shape x dtype x flavour, generate the loop
  in both dialects, roll the v1.0 output back, and run the abstract
  interpreter (:mod:`repro.analyze.asmcheck`) over all three against the
  dialect they claim to target.
* **transval** (opt-in: ``repro lint --transval``) — for every
  (shape x dtype x flavour) rollback pair plus every BLAS-family
  microkernel, prove the rolled-back v0.7.1 program preserves the v1.0
  semantics via :mod:`repro.analyze.transval`'s symbolic lockstep
  execution; BLAS kernels additionally get the kernel cross-checks.

``repro lint`` renders the report and returns its exit code (0 clean,
3 on any ERROR finding); the CI ``lint-models`` job gates on that.
"""

from __future__ import annotations

from repro.analyze.asmcheck import check_assembly
from repro.analyze.races import crosscheck_traits
from repro.analyze.report import Finding, LintReport, Severity
from repro.analyze.transval import validate_pair
from repro.compiler.analysis import (
    derive_features,
    derive_informational_features,
    features_diff,
)
from repro.compiler.model import VectorFlavor
from repro.isa.codegen import LoopSpec, generate_loop
from repro.isa.encoding import render_assembly
from repro.isa.rollback import RollbackError, rollback
from repro.isa.rvv import RVV_0_7_1, RVV_1_0, RvvDialect
from repro.kernels.ir_defs import ir_for
from repro.kernels.registry import all_kernels, get_kernel
from repro.machine.vector import DType
from repro.util.errors import ReproError


def lint_kernel(kernel) -> list[Finding]:
    """All findings for one kernel: race/traits cross-check plus feature
    drift."""
    nest = ir_for(kernel.name)
    _report, findings = crosscheck_traits(kernel.name, nest, kernel.traits)

    drift = features_diff(
        kernel.traits.features,
        derive_features(nest),
        derive_informational_features(nest),
    )
    for feature in sorted(drift.decisive_undeclared, key=lambda f: f.value):
        findings.append(
            Finding(
                severity=Severity.ERROR,
                analyzer="features",
                site=f"{kernel.name}:traits.features",
                message=f"IR derives decisive feature {feature.value} "
                "but traits do not declare it",
                hint="decisive drift changes vectorization decisions; "
                "update the declared features or fix the IR",
            )
        )
    for feature in sorted(drift.decisive_stale, key=lambda f: f.value):
        findings.append(
            Finding(
                severity=Severity.ERROR,
                analyzer="features",
                site=f"{kernel.name}:traits.features",
                message=f"traits declare decisive feature {feature.value} "
                "but the IR does not support it",
                hint="decisive drift changes vectorization decisions; "
                "update the declared features or fix the IR",
            )
        )
    for line in drift.warnings():
        findings.append(
            Finding(
                severity=Severity.WARNING,
                analyzer="features",
                site=f"{kernel.name}:traits.features",
                message=line,
                hint="informational tags feed the performance model; "
                "keep them in sync with the IR",
            )
        )
    return findings


def lint_kernels(
    names: list[str] | None = None,
) -> tuple[list[Finding], int]:
    """Cross-check every (or the named) kernels; returns (findings,
    kernels checked)."""
    kernels = (
        [get_kernel(n) for n in names] if names else all_kernels()
    )
    findings: list[Finding] = []
    for kernel in kernels:
        findings.extend(lint_kernel(kernel))
    return findings, len(kernels)


#: The loop shapes the assembly sweep generates: a STREAM-style triad
#: (mul + add over two inputs) and a DAXPY-style accumulating loop
#: (exercises the vmv.v.i destination-initialization path).
ASM_SPEC_SHAPES: tuple[tuple[str, int, tuple[str, ...]], ...] = (
    ("triad", 2, ("vfmul.vv", "vfadd.vv")),
    ("axpy", 2, ("vfmacc.vv",)),
)

#: Element types the vector codegen supports.
ASM_DTYPES: tuple[DType, ...] = (DType.FP16, DType.FP32, DType.FP64)


def iter_asm_programs():
    """Yield ``(program_id, assembly_text, dialect)`` for every codegen
    output: both spec shapes x dtypes x flavours, each as native v1.0,
    native v0.7.1, and v1.0 rolled back to v0.7.1."""
    for shape_name, num_inputs, ops in ASM_SPEC_SHAPES:
        for dtype in ASM_DTYPES:
            spec = LoopSpec(dtype=dtype, num_inputs=num_inputs, ops=ops)
            for flavor in (VectorFlavor.VLS, VectorFlavor.VLA):
                base = f"{shape_name}/{dtype.label}/{flavor.value}"
                v10 = render_assembly(
                    generate_loop(spec, flavor, rvv_version="1.0")
                )
                v071 = render_assembly(
                    generate_loop(spec, flavor, rvv_version="0.7.1")
                )
                yield f"{base}/v1.0", v10, RVV_1_0
                yield f"{base}/v0.7.1", v071, RVV_0_7_1
                yield f"{base}/rollback", rollback(v10), RVV_0_7_1


def lint_assembly() -> tuple[list[Finding], int]:
    """Verify every generated assembly program; returns (findings,
    programs checked)."""
    findings: list[Finding] = []
    count = 0
    for program_id, text, dialect in iter_asm_programs():
        count += 1
        try:
            findings.extend(check_assembly(text, dialect, program_id))
        except (RollbackError, ReproError) as exc:
            findings.append(
                Finding(
                    severity=Severity.ERROR,
                    analyzer="asm",
                    site=f"{program_id}:parse",
                    message=f"program could not be analyzed: {exc}",
                )
            )
    return findings, count


def lint_assembly_file(
    path: str, dialect: RvvDialect
) -> tuple[list[Finding], int]:
    """Verify one on-disk assembly file against a dialect (the
    ``repro lint --asm-file`` path)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return check_assembly(text, dialect, program_id=path), 1


def _pair_trip_count(
    dtype: DType, flavor: VectorFlavor, strip_mines: bool,
    vector_bits: int,
) -> int:
    """Validation trip count for one pair.

    Loops that can handle a partial strip (VLA strip-mining, the dot
    microkernel's remainder path) get two full strips plus a remainder
    — exercising the back-edge *and* the tail lanes.  Plain VLS loops
    advance by the full lane count unconditionally (the lane-multiple
    convention asmcheck notes), so they get an exact multiple.
    """
    lanes = max(1, vector_bits // dtype.bits)
    if strip_mines:
        return 2 * lanes + max(1, lanes - 1)
    return 3 * lanes


def iter_transval_pairs(vector_bits: int = 128):
    """Yield ``(pair_id, v1.0 text, rolled-back text, trip count)`` for
    every rollback pair the validator must prove: each spec shape x
    dtype x flavour, plus each BLAS-family kernel's microkernel x
    flavour."""
    from repro.kernels.blas import all_blas_kernels, microkernel_loop

    for shape_name, num_inputs, ops in ASM_SPEC_SHAPES:
        for dtype in ASM_DTYPES:
            spec = LoopSpec(dtype=dtype, num_inputs=num_inputs, ops=ops)
            for flavor in (VectorFlavor.VLS, VectorFlavor.VLA):
                pair_id = f"{shape_name}/{dtype.label}/{flavor.value}"
                v10 = render_assembly(
                    generate_loop(
                        spec, flavor, rvv_version="1.0",
                        vector_bits=vector_bits,
                    )
                )
                n = _pair_trip_count(
                    dtype, flavor, flavor is VectorFlavor.VLA,
                    vector_bits,
                )
                yield pair_id, v10, rollback(v10), n
    for kernel in all_blas_kernels():
        for flavor in (VectorFlavor.VLS, VectorFlavor.VLA):
            pair_id = (
                f"blas/{kernel.name}/{kernel.microkernel}/{flavor.value}"
            )
            v10 = render_assembly(
                microkernel_loop(
                    kernel, flavor, rvv_version="1.0",
                    vector_bits=vector_bits,
                )
            )
            # The dot microkernel owns a remainder path in both
            # flavours; update microkernels reuse the elementwise loop.
            strip_mines = (
                kernel.microkernel == "dot"
                or flavor is VectorFlavor.VLA
            )
            n = _pair_trip_count(
                DType.FP64, flavor, strip_mines, vector_bits
            )
            yield pair_id, v10, rollback(v10), n


def lint_transval(
    demo_miscompile: bool = False,
    vector_bits: int = 128,
) -> tuple[list[Finding], int]:
    """Translation-validate every rollback pair; returns (findings,
    pairs checked).

    With ``demo_miscompile``, the rolled-back program runs on a
    hypothetical *tail-agnostic* v0.7.1 machine — modelling a rollback
    that wrongly assumes agnostic tail semantics.  Reduction
    microkernels (the BLAS dot family and the axpy shape) then provably
    diverge with a classified ``tail-policy`` ERROR, while pure
    elementwise pairs still validate: the sweep pinpoints exactly the
    kernels for which the policy matters.
    """
    tail_model = "agnostic" if demo_miscompile else "undisturbed"
    findings: list[Finding] = []
    count = 0
    for pair_id, v10, v071, n in iter_transval_pairs(vector_bits):
        count += 1
        try:
            verdict = validate_pair(
                v10, v071, pair_id, n=n, vlen_bits=vector_bits,
                target_tail_model=tail_model,
            )
        except (RollbackError, ReproError) as exc:
            findings.append(
                Finding(
                    severity=Severity.ERROR,
                    analyzer="transval",
                    site=f"{pair_id}:validate",
                    message=f"pair could not be validated: {exc}",
                    category="exec-error",
                )
            )
            continue
        findings.extend(verdict.findings)
    return findings, count


def lint_registry(
    registry_paths: tuple[str, ...] = (),
) -> tuple[list[Finding], int]:
    """Sweep every registry document through envelope + semantic checks.

    Collects one ERROR finding per broken document instead of stopping
    at the first (the registry loader raises eagerly; lint wants the
    whole picture), plus an INFO digest line per machine so the CI
    artifact records what the data resolves to. The shipped compiler
    decision table is additionally cross-checked against
    :meth:`repro.suite.config.RunConfig.resolve_compiler` over every
    registry machine — the table cannot drift from the code.
    """
    from repro.registry import (
        KINDS,
        decide_compiler,
        registry_with_paths,
        validate_document,
    )
    from repro.registry.loader import iter_kind_paths, load_file
    from repro.suite.config import RunConfig
    from repro.suite.memo import machine_digest
    from repro.util.errors import ReproError

    registry = registry_with_paths(registry_paths)
    findings: list[Finding] = []
    checked = 0
    machines: dict[str, object] = {}
    tables: list[tuple[str, dict]] = []
    for kind in KINDS:
        for root, path in iter_kind_paths(list(registry.roots), kind):
            checked += 1
            site = f"{kind}/{path.name}"
            try:
                rdoc = load_file(path, kind=kind)
                obj = validate_document(rdoc)
            except ReproError as exc:
                findings.append(Finding(
                    severity=Severity.ERROR,
                    analyzer="registry",
                    site=site,
                    message=str(exc),
                    hint="fix the document or drop it from the "
                         "registry root",
                    category="document",
                ))
                continue
            if kind == "machines":
                machines[rdoc.name] = obj
                findings.append(Finding(
                    severity=Severity.INFO,
                    analyzer="registry",
                    site=site,
                    message=(
                        f"machine {rdoc.name!r} ok, "
                        f"digest {machine_digest(obj)}"
                    ),
                ))
            elif kind == "compilers":
                tables.append((site, dict(rdoc.doc)))
    from repro.compiler.model import compiler_by_name

    for site, table in tables:
        for name, cpu in sorted(machines.items()):
            expected = RunConfig().resolve_compiler(cpu)
            decided = decide_compiler(table, cpu)
            if compiler_by_name(decided) is not expected:
                findings.append(Finding(
                    severity=Severity.ERROR,
                    analyzer="registry",
                    site=site,
                    message=(
                        f"decision table picks {decided!r} for "
                        f"{name!r} but RunConfig.resolve_compiler "
                        f"picks {expected.name!r}"
                    ),
                    hint="update the table's rules to match "
                         "suite/config.py",
                    category="compiler-table",
                ))
    return findings, checked


def run_lint(
    kernels: bool = True,
    asm: bool = True,
    names: list[str] | None = None,
    transval: bool = False,
    demo_miscompile: bool = False,
    registry: bool = False,
    registry_paths: tuple[str, ...] = (),
) -> LintReport:
    """Run the requested analyzers and aggregate their findings."""
    report = LintReport()
    if kernels:
        findings, checked = lint_kernels(names)
        report.extend(findings)
        report.kernels_checked = checked
    if asm:
        findings, checked = lint_assembly()
        report.extend(findings)
        report.programs_checked = checked
    if transval or demo_miscompile:
        findings, checked = lint_transval(demo_miscompile)
        report.extend(findings)
        report.pairs_checked = checked
        # The BLAS family rides the transval sweep: cross-check its
        # traits/IR the same way the 64 suite kernels are checked.
        from repro.kernels.blas import all_blas_kernels

        for kernel in all_blas_kernels():
            report.extend(lint_kernel(kernel))
    if registry:
        findings, checked = lint_registry(registry_paths)
        report.extend(findings)
        report.documents_checked = checked
    return report
