"""RVV assembly verifier: an abstract interpreter over instruction
sequences.

Where :mod:`repro.isa.interpreter` *executes* generated loops on real
buffers, this module *proves* static properties of them, in either
dialect, pre- or post-rollback:

* **vsetvli state machine** — SEW/vl must be configured before any
  vector instruction; ``vsetvli`` operand lists must be legal for the
  target dialect (policy flags and fractional LMUL are v1.0-only).
* **dialect legality** — width-encoded memory mnemonics (``vle32.v``)
  are illegal in v0.7.1 (the rollback must have rewritten them to the
  SEW-implicit forms); renamed v1.0 mnemonics are rejected under
  v0.7.1 and vice versa. In v1.0, a width-encoded EEW that differs from
  the active SEW is flagged as a warning — it is architecturally legal
  but the rollback tool will refuse it.
* **def-before-use** — scalar registers (beyond the ABI live-in set)
  and vector registers must be written before they are read;
  accumulating ops (``vfmacc``...) read their destination.
* **loop termination** — every ``bnez`` back-edge must strictly
  decrease its condition register by a provably positive step: a
  ``vsetvli``-produced vl (exact termination at zero) or a positive
  constant (termination under the VLS lane-multiple assumption, noted
  as INFO).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.analyze.report import Finding, Severity
from repro.isa.encoding import Instruction, parse_assembly
from repro.isa.rvv import RvvDialect, sew_bits
from repro.util.errors import IsaError

#: ABI registers considered live on entry (arguments, stack, thread
#: pointer): the generated loops receive trip count and pointers here.
DEFAULT_LIVE_IN = frozenset(
    {"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
     "sp", "ra", "gp", "tp", "zero", "x0"}
)

_WIDTH_MEM_RE = re.compile(
    r"^(?P<op>vl|vs)(?P<kind>e|se|uxei|oxei)(?P<eew>8|16|32|64)\.v$"
)
_PLAIN_MEM = frozenset(
    {"vle.v", "vse.v", "vlse.v", "vsse.v", "vlxe.v", "vsxe.v",
     "vsuxe.v", "vlw.v", "vsw.v", "vlh.v", "vsh.v", "vlb.v", "vsb.v"}
)

#: Vector ops whose destination is also a source (accumulators).
_DEST_IS_SOURCE = ("vfmacc", "vfnmsac", "vfmadd", "vmacc", "vnmsac")

#: Vector ops with an immediate/scalar second operand: only the first
#: operand is a vector register.
_SCALAR_TAIL_OPS = frozenset({"vmv.v.i", "vmv.v.x", "vfmv.v.f"})

_MEM_OPERAND_RE = re.compile(r"^\((?P<reg>[a-z][a-z0-9]*)\)$")


@dataclass
class _AbstractState:
    """Defined-ness tracking, not values (values are the interpreter's
    job)."""

    scalars: set[str] = field(default_factory=set)
    vectors: set[str] = field(default_factory=set)
    sew: int | None = None
    vl_defined: bool = False
    #: scalar reg -> how it was last defined ("li:<imm>", "vsetvli:<avl>",
    #: or "computed") — the termination proof consumes this.
    provenance: dict = field(default_factory=dict)


class AsmChecker:
    """Single-pass abstract interpretation of one program."""

    def __init__(self, dialect: RvvDialect, program_id: str = "asm",
                 live_in: frozenset[str] = DEFAULT_LIVE_IN) -> None:
        self.dialect = dialect
        self.program_id = program_id
        self.state = _AbstractState(scalars=set(live_in))
        self.findings: list[Finding] = []

    # -- finding helpers ----------------------------------------------------

    def _report(self, severity: Severity, index: int, message: str,
                hint: str = "") -> None:
        self.findings.append(
            Finding(
                severity=severity,
                analyzer="asm",
                site=f"{self.program_id}:insn[{index}]",
                message=message,
                hint=hint,
            )
        )

    # -- register tracking --------------------------------------------------

    def _use_scalar(self, reg: str, index: int, what: str) -> None:
        if reg not in self.state.scalars:
            self._report(
                Severity.ERROR, index,
                f"{what} reads scalar register {reg!r} before any "
                "definition",
                hint="define the register (li/mv/vsetvli) before the "
                "loop body uses it",
            )

    def _def_scalar(self, reg: str, provenance: str) -> None:
        if reg in ("x0", "zero"):
            return
        self.state.scalars.add(reg)
        self.state.provenance[reg] = provenance

    def _use_vector(self, reg: str, index: int, what: str) -> None:
        if reg not in self.state.vectors:
            self._report(
                Severity.ERROR, index,
                f"{what} reads vector register {reg!r} before any "
                "definition",
                hint="load or splat (vmv.v.i) the register first — "
                "accumulating ops read their destination",
            )

    def _require_vconfig(self, index: int, mnemonic: str) -> None:
        if self.state.sew is None or not self.state.vl_defined:
            self._report(
                Severity.ERROR, index,
                f"{mnemonic} executes before any vsetvli: SEW/vl are "
                "undefined",
                hint="issue vsetvli before the first vector instruction",
            )

    # -- instruction handlers -----------------------------------------------

    def _check_vsetvli(self, inst: Instruction, index: int) -> None:
        ops = tuple(op.strip() for op in inst.operands)
        try:
            self.dialect.validate_vsetvli(ops)
        except IsaError as exc:
            self._report(
                Severity.ERROR, index, f"illegal vsetvli: {exc}",
                hint=f"operand list must be legal RVV "
                f"{self.dialect.version} syntax",
            )
        if len(ops) < 3:
            return
        rd, avl = ops[0], ops[1]
        self._use_scalar(avl, index, "vsetvli AVL")
        try:
            self.state.sew = sew_bits(ops[2])
        except IsaError:
            self.state.sew = None
        self.state.vl_defined = True
        self._def_scalar(rd, f"vsetvli:{avl}")

    def _check_mem(self, inst: Instruction, index: int,
                   is_load: bool) -> None:
        self._require_vconfig(index, inst.mnemonic)
        m = _WIDTH_MEM_RE.match(inst.mnemonic)
        if m is not None:
            eew = int(m.group("eew"))
            if not self.dialect.has_tail_policy:
                # v0.7.1: memory width comes from SEW, the v1.0
                # width-encoded mnemonics do not exist. This is the
                # exact class of instruction the rollback must rewrite.
                self._report(
                    Severity.ERROR, index,
                    f"width-encoded {inst.mnemonic} is illegal in RVV "
                    f"{self.dialect.version}",
                    hint="run the rollback tool: v0.7.1 memory ops are "
                    "SEW-implicit (vle.v/vse.v)",
                )
            elif self.state.sew is not None and eew != self.state.sew:
                self._report(
                    Severity.WARNING, index,
                    f"{inst.mnemonic} EEW {eew} differs from active SEW "
                    f"{self.state.sew}",
                    hint="legal in v1.0 but the rollback tool refuses "
                    "it; emit matching widths",
                )
        if len(inst.operands) < 2:
            self._report(
                Severity.ERROR, index,
                f"{inst.mnemonic} needs a register and an address",
            )
            return
        vreg = inst.operands[0].strip()
        addr = _MEM_OPERAND_RE.match(inst.operands[1].strip())
        if addr is None:
            self._report(
                Severity.ERROR, index,
                f"{inst.mnemonic} address operand "
                f"{inst.operands[1]!r} is not (reg)",
            )
        else:
            self._use_scalar(addr.group("reg"), index,
                             f"{inst.mnemonic} base address")
        if is_load:
            self.state.vectors.add(vreg)
        else:
            self._use_vector(vreg, index, inst.mnemonic)

    def _check_vector_arith(self, inst: Instruction, index: int) -> None:
        self._require_vconfig(index, inst.mnemonic)
        ops = tuple(op.strip() for op in inst.operands)
        if not ops:
            return
        vd = ops[0]
        if inst.mnemonic in _SCALAR_TAIL_OPS:
            if inst.mnemonic == "vmv.v.x" and len(ops) > 1:
                self._use_scalar(ops[1], index, inst.mnemonic)
            self.state.vectors.add(vd)
            return
        sources = [op for op in ops[1:] if op.startswith("v")]
        if inst.mnemonic.startswith(_DEST_IS_SOURCE):
            sources.append(vd)
        for src in sources:
            self._use_vector(src, index, inst.mnemonic)
        self.state.vectors.add(vd)

    def _check_scalar(self, inst: Instruction, index: int) -> None:
        m = inst.mnemonic
        ops = tuple(op.strip() for op in inst.operands)
        if m == "li" and len(ops) == 2:
            self._def_scalar(ops[0], f"li:{ops[1]}")
        elif m in ("add", "sub", "mul") and len(ops) == 3:
            self._use_scalar(ops[1], index, m)
            self._use_scalar(ops[2], index, m)
            self._def_scalar(ops[0], "computed")
        elif m in ("slli", "srli", "addi") and len(ops) == 3:
            self._use_scalar(ops[1], index, m)
            self._def_scalar(ops[0], "computed")
        elif m == "mv" and len(ops) == 2:
            self._use_scalar(ops[1], index, m)
            self._def_scalar(ops[0], self.state.provenance.get(
                ops[1], "computed"))
        elif m == "ret":
            pass
        else:
            # Unmodelled scalar instruction: define its first operand
            # conservatively so later uses don't cascade.
            if ops:
                self._def_scalar(ops[0], "computed")

    # -- termination --------------------------------------------------------

    def _check_backedge(self, program, branch_idx: int, target_idx: int,
                        reg: str, mnemonic: str = "bnez",
                        increasing: bool = False,
                        exact: bool = True) -> None:
        """Prove the loop body strictly advances ``reg`` toward the
        exit condition by a provably positive step.

        ``bnez`` loops run until the register is exactly zero
        (``exact``), so a constant step additionally assumes the trip
        count is a step-multiple; threshold comparisons (``bgeu``/
        ``blt``-style back-edges from the strip-mine remainder idiom)
        terminate for *any* positive step.  ``increasing`` selects the
        advance direction: ``sub``-style count-down loops vs
        ``add``-style count-up loops.
        """
        body = program[target_idx:branch_idx]
        advance = "add" if increasing else "sub"
        steps: list[str] = []
        clobbered = False
        for inst in body:
            if not inst.is_code:
                continue
            ops = tuple(op.strip() for op in inst.operands)
            if inst.mnemonic == advance and len(ops) == 3 and \
                    ops[0] == reg:
                if ops[1] == reg:
                    steps.append(ops[2])
                elif increasing and ops[2] == reg:
                    steps.append(ops[1])  # add is commutative
                else:
                    clobbered = True
            elif ops and ops[0] == reg and inst.mnemonic not in (
                "bnez", "beqz", "bne", "beq", "bge", "bgeu", "blt",
                "bltu",
            ):
                clobbered = True
        if clobbered:
            self._report(
                Severity.ERROR, branch_idx,
                f"cannot prove termination: loop register {reg!r} is "
                f"redefined by something other than a self-{advance}",
            )
            return
        if not steps:
            direction = "increments" if increasing else "decrements"
            self._report(
                Severity.ERROR, branch_idx,
                f"{mnemonic} back-edge on {reg!r} but the loop body "
                f"never {direction} {reg!r}: the loop cannot terminate",
                hint=f"{direction.rstrip('s')} the trip register by "
                "the strip length each iteration",
            )
            return
        for step in steps:
            prov = self.state.provenance.get(step, "computed")
            if prov.startswith("vsetvli:"):
                avl = prov.split(":", 1)[1]
                if avl == reg:
                    continue  # vl = min(vlmax, reg) > 0 while reg > 0
                self._report(
                    Severity.WARNING, branch_idx,
                    f"step {step!r} comes from vsetvli over {avl!r}, "
                    f"not over the loop register {reg!r}: termination "
                    "depends on their relationship",
                )
            elif prov.startswith("li:"):
                try:
                    value = int(prov.split(":", 1)[1], 0)
                except ValueError:
                    value = 0
                if value <= 0:
                    self._report(
                        Severity.ERROR, branch_idx,
                        f"loop step {step!r} is the non-positive "
                        f"constant {value}: the loop cannot terminate",
                    )
                elif exact:
                    self._report(
                        Severity.INFO, branch_idx,
                        f"termination assumes the trip count is a "
                        f"multiple of the constant step {value} "
                        "(VLS lane-multiple convention)",
                    )
                # Threshold back-edges (bgeu/blt) terminate for any
                # positive constant step: nothing to assume.
            else:
                self._report(
                    Severity.ERROR, branch_idx,
                    f"cannot prove loop step {step!r} is positive "
                    f"(defined by {prov})",
                )

    # -- driver -------------------------------------------------------------

    def check(self, instructions: list[Instruction]) -> list[Finding]:
        program = [
            inst for inst in instructions if inst.is_code or inst.label
        ]
        labels: dict[str, int] = {}
        for idx, inst in enumerate(program):
            if inst.label:
                labels[inst.label] = idx

        saw_ret = False
        for idx, inst in enumerate(program):
            if not inst.is_code:
                continue
            m = inst.mnemonic
            if m == "ret":
                saw_ret = True
                continue
            if m in ("vsetvli", "vsetvl", "vsetivli"):
                try:
                    self.dialect.validate_mnemonic(m)
                except IsaError as exc:
                    self._report(Severity.ERROR, idx, str(exc))
                if m == "vsetvli":
                    self._check_vsetvli(inst, idx)
                else:
                    self.state.vl_defined = True
                    if len(inst.operands) >= 3:
                        try:
                            self.state.sew = sew_bits(
                                inst.operands[2].strip())
                        except IsaError:
                            self.state.sew = None
                continue
            if m.startswith("v"):
                width_mem_in_071 = (
                    _WIDTH_MEM_RE.match(m) is not None
                    and not self.dialect.has_tail_policy
                )
                if not width_mem_in_071:
                    # _check_mem owns the width-encoded-in-v0.7.1
                    # message; everything else gets the dialect table's.
                    try:
                        self.dialect.validate_mnemonic(m)
                    except IsaError as exc:
                        self._report(
                            Severity.ERROR, idx, str(exc),
                            hint=f"not part of RVV {self.dialect.version};"
                            " the rollback tool rewrites the common cases",
                        )
                mem = _WIDTH_MEM_RE.match(m)
                if mem is not None or m in _PLAIN_MEM:
                    is_load = m.startswith("vl")
                    self._check_mem(inst, idx, is_load)
                else:
                    self._check_vector_arith(inst, idx)
                continue
            if m in ("bnez", "beqz") and len(inst.operands) == 2:
                reg = inst.operands[0].strip()
                target = inst.operands[1].strip()
                self._use_scalar(reg, idx, m)
                if target not in labels:
                    self._report(
                        Severity.ERROR, idx,
                        f"branch to unknown label {target!r}",
                    )
                elif labels[target] <= idx and m == "bnez":
                    self._check_backedge(program, idx, labels[target],
                                         reg, mnemonic=m)
                continue
            if m in ("bge", "bgeu", "blt", "bltu") and \
                    len(inst.operands) == 3:
                # The strip-mine remainder idiom: a bgeu-terminated
                # count-down main loop (loop while reg >= bound) or a
                # blt-terminated count-up loop (loop while reg < bound).
                # Threshold exits terminate for any positive step.
                reg = inst.operands[0].strip()
                bound = inst.operands[1].strip()
                target = inst.operands[2].strip()
                self._use_scalar(reg, idx, m)
                self._use_scalar(bound, idx, m)
                if target not in labels:
                    self._report(
                        Severity.ERROR, idx,
                        f"branch to unknown label {target!r}",
                    )
                elif labels[target] <= idx:
                    self._check_backedge(
                        program, idx, labels[target], reg, mnemonic=m,
                        increasing=m in ("blt", "bltu"), exact=False,
                    )
                continue
            self._check_scalar(inst, idx)

        if not saw_ret:
            self._report(
                Severity.ERROR, len(program),
                "program falls off the end without ret",
            )
        return self.findings


def check_assembly(
    source: str | list[Instruction],
    dialect: RvvDialect,
    program_id: str = "asm",
) -> list[Finding]:
    """Verify one assembly program against a dialect; returns findings
    (empty when the program proves clean)."""
    instructions = (
        parse_assembly(source) if isinstance(source, str) else source
    )
    return AsmChecker(dialect, program_id).check(instructions)
