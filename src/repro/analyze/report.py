"""Structured lint findings shared by both analyzers.

A finding is one located, human-readable disagreement or hazard with an
optional fix hint. The driver aggregates findings into a
:class:`LintReport`; the CLI renders it and maps ERROR findings to exit
code 3, which is what the CI ``lint-models`` job gates on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """Finding severity, ordered: only ERROR gates CI."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        for member in cls:
            if member.value == label.lower():
                return member
        raise ValueError(f"unknown severity {label!r}")


@dataclass(frozen=True)
class Finding:
    """One lint finding.

    Attributes:
        severity: ERROR findings fail ``repro lint`` (exit 3).
        analyzer: Which analyzer produced it (``"races"``,
            ``"features"``, ``"asm"``).
        site: Where — a kernel name plus statement path for IR findings
            (``"GEMM:loop[0].loop[0].loop[0].stmt[0]"``), a program id
            plus instruction index for assembly findings
            (``"vla/fp64/1.0:insn[3]"``).
        message: What is wrong.
        hint: How to fix it, when the analyzer can tell.
        category: Machine-readable classification (the translation
            validator emits ``"tail-policy"``, ``"width-load"``,
            ``"vl-drift"``, ``"vtype-drift"``, ``"value"``,
            ``"exec-error"``); empty for analyzers that don't classify.
    """

    severity: Severity
    analyzer: str
    site: str
    message: str
    hint: str = ""
    category: str = ""

    def render(self) -> str:
        tag = f" <{self.category}>" if self.category else ""
        text = (
            f"{self.severity.value.upper():7s} [{self.analyzer}]{tag} "
            f"{self.site}: {self.message}"
        )
        if self.hint:
            text += f"\n        hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        """The stable machine-readable form (``repro lint --format
        json``)."""
        return {
            "severity": self.severity.value,
            "analyzer": self.analyzer,
            "category": self.category,
            "site": self.site,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class LintReport:
    """Aggregated findings plus coverage counters."""

    findings: list[Finding] = field(default_factory=list)
    kernels_checked: int = 0
    programs_checked: int = 0
    #: Translation-validation (v1.0, rolled-back) pairs checked — 0
    #: unless the ``--transval`` sweep ran.
    pairs_checked: int = 0
    #: Registry documents checked — 0 unless ``--registry`` ran.
    documents_checked: int = 0

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def by_severity(self, severity: Severity) -> list[Finding]:
        return [f for f in self.findings if f.severity is severity]

    @property
    def has_errors(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)

    @property
    def exit_code(self) -> int:
        """0 when clean of errors, 3 otherwise (the ``repro lint``
        contract; 3 is distinct from the CLI's generic failure code 2)."""
        return 3 if self.has_errors else 0

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        """Human-readable report, most severe findings first."""
        shown = sorted(
            (f for f in self.findings
             if f.severity.rank >= min_severity.rank),
            key=lambda f: (-f.severity.rank, f.analyzer, f.site),
        )
        lines = [f.render() for f in shown]
        counts = ", ".join(
            f"{len(self.by_severity(sev))} {sev.value}"
            for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        )
        checked = (
            f"lint: {self.kernels_checked} kernels, "
            f"{self.programs_checked} assembly programs"
        )
        if self.pairs_checked:
            checked += f", {self.pairs_checked} rollback pairs"
        if self.documents_checked:
            checked += f", {self.documents_checked} registry documents"
        lines.append(f"{checked} checked: {counts}")
        lines.append("lint: " + ("FAIL" if self.has_errors else "clean"))
        return "\n".join(lines)

    def to_json(self, min_severity: Severity = Severity.INFO) -> dict:
        """Stable machine-readable report for ``--format json`` and the
        CI artifact.  ``schema_version`` gates consumers; bump it on any
        incompatible change."""
        shown = sorted(
            (f for f in self.findings
             if f.severity.rank >= min_severity.rank),
            key=lambda f: (-f.severity.rank, f.analyzer, f.site),
        )
        return {
            "schema_version": 1,
            "summary": {
                "kernels_checked": self.kernels_checked,
                "programs_checked": self.programs_checked,
                "pairs_checked": self.pairs_checked,
                "documents_checked": self.documents_checked,
                "errors": len(self.by_severity(Severity.ERROR)),
                "warnings": len(self.by_severity(Severity.WARNING)),
                "infos": len(self.by_severity(Severity.INFO)),
                "status": "fail" if self.has_errors else "clean",
                "exit_code": self.exit_code,
            },
            "findings": [f.to_json() for f in shown],
        }
