"""Dependence analysis over kernel loop-nest IR.

Classifies the array-access conflicts that decide whether a loop nest is
safe under the fork-join static schedule
(:func:`repro.perfmodel.threading.static_chunks`): the parallel level of
each top-level loop is block-partitioned over threads, so two accesses
race iff they can touch the same element from *different iterations* of
that level (different iterations can land in different blocks).

Accesses are affine in the innermost counter (``stride * i + offset``,
with :class:`~repro.compiler.ir.SymbolicStride` standing for a symbolic
row length) or indirect (``stride=None``). Two partition regimes:

* the parallel level **is** the statement's innermost loop: the affine
  maps are compared directly (a linear Diophantine solvability check);
* the parallel level is an **outer** loop with serial loops below it:
  each outer iteration owns a contiguous slab of the index space
  (row-major convention), so only accesses whose offsets differ by a
  *symbolic* (row-scale) amount reach a neighbouring slab.

Non-atomic indirect writes are assumed injective (pack/unpack index
sets) — the IR convention is that colliding scatters carry
``atomic=True`` — and surface as an INFO note rather than a conflict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compiler.ir import (
    Access,
    AccessKind,
    Call,
    Compute,
    Loop,
    LoopNest,
    Recurrence,
    Scan,
    Statement,
    is_symbolic,
)


@dataclass(frozen=True)
class PlacedStatement:
    """A statement with its location inside one top-level region.

    Attributes:
        stmt: The IR statement.
        loops: Enclosing loops, outermost first (region loop included).
        path: Human-readable statement path
            (``"loop[0].loop[0].stmt[1]"``) used in finding sites.
    """

    stmt: Statement
    loops: tuple[Loop, ...]
    path: str

    @property
    def innermost(self) -> Loop:
        return self.loops[-1]


@dataclass(frozen=True)
class Conflict:
    """A cross-iteration conflict between two accesses of one array."""

    array: str
    kind: str  # "write-write" or "read-write"
    first_path: str
    second_path: str
    reason: str


def place_statements(
    region: Loop, region_index: int
) -> list[PlacedStatement]:
    """Flatten one top-level loop into located statements."""
    placed: list[PlacedStatement] = []

    def _walk(loop: Loop, loops: tuple[Loop, ...], prefix: str) -> None:
        loops = loops + (loop,)
        stmt_idx = 0
        loop_idx = 0
        for item in loop.body:
            if isinstance(item, Loop):
                _walk(item, loops, f"{prefix}.loop[{loop_idx}]")
                loop_idx += 1
            else:
                placed.append(
                    PlacedStatement(
                        stmt=item,
                        loops=loops,
                        path=f"{prefix}.stmt[{stmt_idx}]",
                    )
                )
                stmt_idx += 1

    _walk(region, (), f"loop[{region_index}]")
    return placed


def parallel_level(region: Loop) -> Loop | None:
    """The outermost loop of the region marked parallel — the level the
    fork-join schedule partitions — or ``None`` for a region that is
    serial by construction."""
    if region.parallel:
        return region
    for item in region.body:
        if isinstance(item, Loop):
            found = parallel_level(item)
            if found is not None:
                return found
    return None


def partition_is_innermost(placed: PlacedStatement, level: Loop) -> bool:
    """Whether the partitioned level is the statement's innermost
    enclosing loop (no serial loops privatize the iteration below it)."""
    return placed.innermost is level


def _affine_conflict(write: Access, other: Access) -> str | None:
    """Conflict reason for two affine accesses compared at the partition
    level (partition == innermost loop), or ``None`` if they can only
    meet in the same iteration."""
    s1, o1 = int(write.stride), int(write.offset)
    s2, o2 = int(other.stride), int(other.offset)
    delta = o2 - o1
    if s1 == s2:
        if delta == 0:
            return None  # same element, same iteration only
        if delta % s1 == 0:
            iters = delta // s1
            return (
                f"iteration i and iteration i+{abs(iters)} touch the "
                f"same element (stride {s1}, offsets {o1} vs {o2})"
            )
        return None
    if delta % math.gcd(abs(s1), abs(s2)) == 0:
        return (
            f"strides {s1} and {s2} intersect (offset delta {delta} is "
            "a multiple of their gcd)"
        )
    return None


def _slab_conflict(write: Access, other: Access) -> str | None:
    """Conflict reason under an outer-level partition: each outer
    iteration owns a contiguous row-major slab, so only row-scale
    (symbolic) offset deltas or mixed symbolic/concrete walks escape."""
    delta = int(other.offset) - int(write.offset)
    if is_symbolic(delta) or is_symbolic(other.offset) != is_symbolic(
        write.offset
    ):
        if delta != 0:
            return (
                "offsets differ by a row-scale amount: the access "
                "reaches into a neighbouring thread's slab"
            )
    if is_symbolic(write.stride) != is_symbolic(other.stride):
        return (
            "one access walks rows while the other walks elements: "
            "their footprints cross slab boundaries"
        )
    return None


def conflict_between(
    first: PlacedStatement,
    second: PlacedStatement,
    level: Loop,
) -> list[Conflict]:
    """All cross-iteration conflicts between two placed statements (which
    may be the same statement) under partition at ``level``."""
    acc1 = getattr(first.stmt, "accesses", ())
    acc2 = getattr(second.stmt, "accesses", ())
    same = first is second
    out: list[Conflict] = []
    seen: set[tuple] = set()
    for i, a in enumerate(acc1):
        if a.kind is not AccessKind.WRITE:
            continue
        for j, b in enumerate(acc2):
            if same and i == j:
                continue  # an access never conflicts with itself
            if a.array != b.array:
                continue
            if a.stride is None or b.stride is None:
                # Indirect pairs are handled by the injectivity
                # convention in races.py (note, not conflict).
                continue
            if partition_is_innermost(first, level) and (
                partition_is_innermost(second, level)
            ):
                reason = _affine_conflict(a, b)
            else:
                reason = _slab_conflict(a, b)
            if reason is None:
                continue
            kind = (
                "write-write"
                if b.kind is AccessKind.WRITE
                else "read-write"
            )
            key = (kind, a.array, first.path, second.path, reason)
            if key in seen:
                continue
            seen.add(key)
            out.append(
                Conflict(
                    array=a.array,
                    kind=kind,
                    first_path=first.path,
                    second_path=second.path,
                    reason=reason,
                )
            )
    return out


def region_conflicts(
    placed: list[PlacedStatement], level: Loop
) -> list[Conflict]:
    """All conflicts among the statements of one parallel region
    (write-write pairs deduplicated across orientations)."""
    out: list[Conflict] = []
    seen: set[tuple] = set()
    for i, first in enumerate(placed):
        if not isinstance(first.stmt, (Compute, Scan, Recurrence)):
            continue
        for second in placed[i:]:
            if not isinstance(second.stmt, (Compute, Scan, Recurrence)):
                continue
            found = conflict_between(first, second, level)
            if second is not first:
                # A write in `second` can also conflict with reads in
                # `first`; check the reverse orientation too.
                found += conflict_between(second, first, level)
            for c in found:
                key = (
                    c.kind,
                    c.array,
                    frozenset((c.first_path, c.second_path)),
                )
                if key not in seen:
                    seen.add(key)
                    out.append(c)
    return out


def indirect_writes(placed: list[PlacedStatement]) -> list[PlacedStatement]:
    """Statements with a non-atomic indirect (scatter) write: safe only
    under the injectivity convention, worth an INFO note."""
    out = []
    for p in placed:
        accesses = getattr(p.stmt, "accesses", ())
        atomic = getattr(p.stmt, "atomic", False)
        if atomic:
            continue
        if any(
            a.kind is AccessKind.WRITE and a.stride is None
            for a in accesses
        ):
            out.append(p)
    return out


def iter_regions(nest: LoopNest):
    """Yield ``(index, region_loop, placed_statements)`` per top-level
    loop — each is one fork-join parallel region (barrier between)."""
    for index, region in enumerate(nest.loops):
        yield index, region, place_statements(region, index)


# Re-export for callers reasoning about Call statements without
# importing ir directly.
LIBRARY_STATEMENT = Call
