"""Static analysis over the model's own artifacts.

Two analyzers turn declared characterizations into *checked*
consequences:

* :mod:`repro.analyze.races` — a dependence-based race detector over the
  kernel loop-nest IR that classifies each kernel as parallel-safe,
  needs-reduction, needs-atomic or serial under the fork-join static
  schedule, and cross-checks the verdict against the declared
  :class:`~repro.kernels.base.KernelTraits`.
* :mod:`repro.analyze.asmcheck` — an abstract interpreter over generated
  RVV assembly that tracks the ``vsetvli`` state machine, enforces
  dialect legality (v0.7.1 vs v1.0), checks register def-before-use and
  proves loop termination.

:mod:`repro.analyze.driver` aggregates both into a
:class:`~repro.analyze.report.LintReport`, surfaced as the ``repro
lint`` subcommand (exit 0 clean, exit 3 on error findings) and gated in
CI. See ``docs/ANALYZE.md``.
"""

from repro.analyze.report import Finding, LintReport, Severity
from repro.analyze.races import Verdict, classify_nest
from repro.analyze.driver import run_lint

__all__ = [
    "Finding",
    "LintReport",
    "Severity",
    "Verdict",
    "classify_nest",
    "run_lint",
]
