"""Static race detector: loop-nest verdicts and the traits cross-check.

Every top-level loop of a kernel's IR is one fork-join parallel region.
Under the static schedule the region's parallel level is
block-partitioned over threads
(:func:`repro.perfmodel.threading.static_chunks`), and the region is
classified:

* ``parallel-safe`` — no statement can touch another iteration's data;
* ``needs-reduction`` — a scalar reduction crosses the partitioned
  iterations (OpenMP handles it with a ``reduction`` clause);
* ``needs-atomic`` — an update is declared atomic because iterations
  can collide (scatter accumulation, atomic reductions);
* ``serial`` — a scan/recurrence/library call (or an actual data race)
  makes the partition unsound; the region runs serially, so the
  kernel's declared ``parallel_fraction`` must be < 1.

The kernel verdict is the worst region verdict. ``crosscheck_traits``
compares it — and the conflicts behind it — against the declared
:class:`~repro.kernels.base.KernelTraits`, reporting every disagreement
with the offending statement path. The shipped tree is pinned clean for
all 64 kernels in ``tests/analyze/test_races.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analyze.deps import (
    Conflict,
    indirect_writes,
    iter_regions,
    parallel_level,
    partition_is_innermost,
    region_conflicts,
)
from repro.analyze.report import Finding, Severity
from repro.compiler.ir import Call, Compute, LoopNest, Recurrence, Reduce, Scan
from repro.kernels.base import KernelTraits, LoopFeature


class Verdict(enum.Enum):
    """Parallel-safety classification, ordered by increasing severity."""

    PARALLEL_SAFE = "parallel-safe"
    NEEDS_REDUCTION = "needs-reduction"
    NEEDS_ATOMIC = "needs-atomic"
    SERIAL = "serial"

    @property
    def rank(self) -> int:
        order = (
            "parallel-safe",
            "needs-reduction",
            "needs-atomic",
            "serial",
        )
        return order.index(self.value)


def _worst(verdicts) -> Verdict:
    return max(verdicts, key=lambda v: v.rank, default=Verdict.PARALLEL_SAFE)


@dataclass(frozen=True)
class RegionReport:
    """Verdict for one top-level loop (one parallel region)."""

    index: int
    verdict: Verdict
    reasons: tuple[str, ...]  # "scan@path", "recurrence@path", ...
    conflicts: tuple[Conflict, ...]
    notes: tuple[str, ...]  # injectivity assumptions etc.


@dataclass(frozen=True)
class RaceReport:
    """All region reports for one loop nest."""

    regions: tuple[RegionReport, ...]
    verdict: Verdict = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "verdict", _worst(r.verdict for r in self.regions)
        )

    def reasons(self) -> list[str]:
        return [r for region in self.regions for r in region.reasons]

    def conflicts(self) -> list[Conflict]:
        return [c for region in self.regions for c in region.conflicts]

    def notes(self) -> list[str]:
        return [n for region in self.regions for n in region.notes]


def _classify_region(index, region, placed) -> RegionReport:
    level = parallel_level(region)
    reasons: list[str] = []
    notes: list[str] = []
    verdicts = [Verdict.PARALLEL_SAFE]
    conflicts: tuple[Conflict, ...] = ()

    for p in placed:
        stmt = p.stmt
        if isinstance(stmt, Call):
            # Library internals are opaque; the region cannot be
            # partitioned by the fork-join scheduler.
            reasons.append(f"library-call({stmt.callee})@{p.path}")
            verdicts.append(Verdict.SERIAL)
        elif isinstance(stmt, Scan):
            if level is None or partition_is_innermost(p, level):
                reasons.append(f"scan@{p.path}")
                verdicts.append(Verdict.SERIAL)
            else:
                notes.append(
                    f"{p.path}: scan is private to one partitioned "
                    "iteration"
                )
        elif isinstance(stmt, Recurrence):
            if level is None or partition_is_innermost(p, level):
                reasons.append(
                    f"recurrence(distance={stmt.distance})@{p.path}"
                )
                verdicts.append(Verdict.SERIAL)
            else:
                notes.append(
                    f"{p.path}: recurrence is private to one "
                    "partitioned iteration"
                )
        elif isinstance(stmt, Reduce):
            if stmt.atomic:
                reasons.append(f"atomic-reduction@{p.path}")
                verdicts.append(Verdict.NEEDS_ATOMIC)
            elif level is not None and partition_is_innermost(p, level):
                # Accumulator is shared across the partitioned
                # iterations.
                reasons.append(f"reduction({stmt.op.value})@{p.path}")
                verdicts.append(Verdict.NEEDS_REDUCTION)
            else:
                notes.append(
                    f"{p.path}: reduction accumulator is private per "
                    "partitioned iteration"
                )
        elif isinstance(stmt, Compute) and stmt.atomic:
            reasons.append(f"atomic-update@{p.path}")
            verdicts.append(Verdict.NEEDS_ATOMIC)

    if level is None:
        if _worst(verdicts) is not Verdict.SERIAL:
            # Serial by construction without a dependence statement
            # (unusual but expressible).
            reasons.append(f"no-parallel-level@loop[{index}]")
            verdicts.append(Verdict.SERIAL)
    else:
        conflicts = tuple(region_conflicts(placed, level))
        if conflicts:
            verdicts.append(Verdict.SERIAL)
            reasons.extend(
                f"race({c.kind}:{c.array})@{c.first_path}" for c in conflicts
            )
        for p in indirect_writes(placed):
            notes.append(
                f"{p.path}: non-atomic scatter write assumed injective "
                "(pack/unpack index sets; colliding scatters must carry "
                "atomic=True)"
            )

    return RegionReport(
        index=index,
        verdict=_worst(verdicts),
        reasons=tuple(reasons),
        conflicts=conflicts,
        notes=tuple(notes),
    )


def classify_nest(nest: LoopNest) -> RaceReport:
    """Classify every region of a loop nest under the static schedule."""
    return RaceReport(
        regions=tuple(
            _classify_region(index, region, placed)
            for index, region, placed in iter_regions(nest)
        )
    )


#: Serial-reason prefix -> declared feature that must explain it.
_SERIAL_REASON_FEATURES = (
    ("scan", LoopFeature.SCAN_DEP),
    ("recurrence", LoopFeature.LOOP_CARRIED_DEP),
    ("library-call", LoopFeature.LIBRARY_CALL),
)

_REDUCTION_FEATURES = frozenset(
    {LoopFeature.REDUCTION_SUM, LoopFeature.REDUCTION_MINMAX}
)


def crosscheck_traits(
    kernel_name: str, nest: LoopNest, traits: KernelTraits
) -> tuple[RaceReport, list[Finding]]:
    """Race-detector verdicts vs the declared kernel traits.

    Returns the race report and every disagreement as a finding with the
    offending statement path in its site.
    """
    report = classify_nest(nest)
    findings: list[Finding] = []

    def finding(severity, site_suffix, message, hint=""):
        findings.append(
            Finding(
                severity=severity,
                analyzer="races",
                site=f"{kernel_name}:{site_suffix}",
                message=message,
                hint=hint,
            )
        )

    # Actual races are wrong regardless of traits.
    for region in report.regions:
        for c in region.conflicts:
            finding(
                Severity.ERROR,
                c.first_path,
                f"{c.kind} race on {c.array!r} with {c.second_path}: "
                f"{c.reason}",
                hint="privatize the access, make it atomic, or mark the "
                "loop serial (parallel=False) and lower "
                "parallel_fraction",
            )

    declared = traits.features
    serial_reasons = [
        r for r in report.reasons() if not r.startswith("race(")
        and report.verdict is Verdict.SERIAL
    ]
    if report.verdict is Verdict.SERIAL:
        for reason in serial_reasons:
            prefix_feature = next(
                (
                    feat
                    for prefix, feat in _SERIAL_REASON_FEATURES
                    if reason.startswith(prefix)
                ),
                None,
            )
            if prefix_feature is not None and prefix_feature not in declared:
                path = reason.split("@", 1)[-1]
                finding(
                    Severity.ERROR,
                    path,
                    f"IR shows {reason.split('@', 1)[0]} but traits do "
                    f"not declare {prefix_feature.value}",
                    hint=f"add LoopFeature.{prefix_feature.name} to the "
                    "kernel's declared features",
                )
        if traits.parallel_fraction >= 1.0:
            finding(
                Severity.ERROR,
                "traits.parallel_fraction",
                "verdict is serial "
                f"({', '.join(serial_reasons) or 'no parallel level'}) "
                "but parallel_fraction is 1.0",
                hint="a serial region bounds the Amdahl fraction below "
                "1; lower parallel_fraction",
            )

    needs_atomic = any(
        r.verdict is Verdict.NEEDS_ATOMIC for r in report.regions
    )
    atomic_paths = [
        r.split("@", 1)[-1]
        for r in report.reasons()
        if r.startswith(("atomic-update", "atomic-reduction"))
    ]
    if needs_atomic and LoopFeature.ATOMIC not in declared:
        finding(
            Severity.ERROR,
            atomic_paths[0] if atomic_paths else "traits.features",
            "IR contains an atomic update but traits do not declare "
            "ATOMIC",
            hint="add LoopFeature.ATOMIC to the kernel's declared "
            "features",
        )
    if LoopFeature.ATOMIC in declared and not needs_atomic:
        finding(
            Severity.ERROR,
            "traits.features",
            "traits declare ATOMIC but no IR statement is atomic",
            hint="drop LoopFeature.ATOMIC or mark the colliding "
            "statement atomic=True in the IR",
        )

    needs_reduction = any(
        r.verdict is Verdict.NEEDS_REDUCTION for r in report.regions
    )
    if needs_reduction and not (declared & _REDUCTION_FEATURES):
        path = next(
            (
                r.split("@", 1)[-1]
                for r in report.reasons()
                if r.startswith("reduction")
            ),
            "traits.features",
        )
        finding(
            Severity.ERROR,
            path,
            "a reduction crosses the partitioned iterations but traits "
            "declare no REDUCTION_* feature",
            hint="declare REDUCTION_SUM or REDUCTION_MINMAX",
        )

    for note in report.notes():
        finding(Severity.INFO, note.split(":", 1)[0], note.split(": ", 1)[-1])

    return report, findings
