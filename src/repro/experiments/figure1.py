"""Figure 1: single-core comparison of VisionFive V1/V2 and SG2042,
baselined against the V2 running at double precision.

Positive values mean "times faster than the baseline", negative "times
slower"; bars are class averages, whiskers [min, max] — exactly the
paper's plotting convention.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    fast_config,
    figure_headers,
    relative_chart_data,
    relative_figure_rows,
)
from repro.machine import catalog
from repro.suite.config import Precision, RunConfig
from repro.suite.runner import run_suite


def run(fast: bool = False) -> ExperimentResult:
    v2 = catalog.visionfive_v2()
    v1 = catalog.visionfive_v1()
    sg = catalog.sg2042()

    def single(cpu, precision):
        return run_suite(
            cpu,
            fast_config(RunConfig(threads=1, precision=precision), fast),
        )

    baseline = single(v2, Precision.FP64)
    others = [
        ("VisionFive V2 / FP32", single(v2, Precision.FP32)),
        ("VisionFive V1 / FP64", single(v1, Precision.FP64)),
        ("VisionFive V1 / FP32", single(v1, Precision.FP32)),
        ("SG2042 / FP64", single(sg, Precision.FP64)),
        ("SG2042 / FP32", single(sg, Precision.FP32)),
    ]
    return ExperimentResult(
        exp_id="figure1",
        title=(
            "Figure 1: single core comparison baselined against StarFive "
            "VisionFive V2 at FP64 (times faster/slower)"
        ),
        headers=figure_headers(),
        rows=relative_figure_rows(baseline, others),
        chart_data=relative_chart_data(baseline, others),
        notes=(
            "paper: C920 4.3-6.5x faster than U74 (FP64 class averages), "
            "5.6-11.8x (FP32); no kernel slower on the C920; V1 3-6x "
            "slower than V2 at FP64, 1-3x at FP32",
        ),
    )
