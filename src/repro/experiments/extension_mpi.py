"""Extension experiment: the paper's proposed further work — distributed
memory scaling of SG2042 clusters.

Strong-scales a distributed Jacobi-2D solve over growing node counts on
SG2042 clusters with two network options, against an AMD Rome cluster on
an HPC fabric (the ARCHER2 configuration). Reported per node count:
predicted step time and parallel efficiency vs one node.
"""

from __future__ import annotations

from repro.cluster.machine import ClusterModel
from repro.cluster.network import ethernet_25g, ethernet_100g, slingshot
from repro.experiments.common import ExperimentResult
from repro.machine import catalog
from repro.machine.vector import DType

NODE_COUNTS = (1, 2, 4, 8, 16, 32)
GLOBAL_POINTS = 1_000_000  # 1000 x 1000 grid


def run(fast: bool = False) -> ExperimentResult:
    node_counts = list(NODE_COUNTS[:4] if fast else NODE_COUNTS)
    clusters = [
        ClusterModel(node=catalog.sg2042(), num_nodes=1,
                     network=ethernet_25g(), threads_per_node=32),
        ClusterModel(node=catalog.sg2042(), num_nodes=1,
                     network=ethernet_100g(), threads_per_node=32),
        ClusterModel(node=catalog.amd_rome(), num_nodes=1,
                     network=slingshot()),
    ]
    rows = []
    for cluster in clusters:
        times = cluster.strong_scaling(
            "jacobi2d", GLOBAL_POINTS, node_counts, DType.FP64
        )
        t1 = times[node_counts[0]]
        for nodes in node_counts:
            speedup = t1 / times[nodes]
            rows.append(
                (
                    f"{cluster.node.name} / {cluster.network.name}",
                    nodes,
                    f"{times[nodes] * 1e3:.3f}ms",
                    f"{speedup:.2f}",
                    f"{speedup / nodes:.2f}",
                )
            )
    return ExperimentResult(
        exp_id="extension_mpi",
        title="Extension (paper further work): distributed Jacobi-2D "
        "strong scaling, 1000x1000 FP64 grid",
        headers=("cluster", "nodes", "step time", "speedup", "PE"),
        rows=tuple(rows),
        notes=(
            "the paper's Section 4 proposal: MPI scaling of SG2042 "
            "clusters; the network adaptor choice dominates beyond a "
            "few nodes on the commodity fabrics",
        ),
    )
