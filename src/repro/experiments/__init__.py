"""Experiment reproductions: one module per table/figure in the paper.

Every module exposes ``run(fast=False)`` returning an
:class:`~repro.experiments.common.ExperimentResult` whose ``render()``
prints the same rows/series the paper reports. ``fast=True`` shrinks
problem sizes/thread sweeps for quick benchmark iterations.

Registry::

    from repro.experiments import EXPERIMENTS
    result = EXPERIMENTS["table2"]()
    print(result.render())
"""

from typing import Callable

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments import (
    conclusions,
    extension_mpi,
    extension_yardsticks,
    sequels,
)
from repro.experiments.ablations import ABLATIONS
from repro.experiments.common import ExperimentResult

#: The paper's tables and figures.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "figure1": figure1.run,
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "table4": table4.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
}

#: Everything runnable: paper experiments, model ablations, and the
#: further-work extension study.
ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    **EXPERIMENTS,
    **ABLATIONS,
    "extension_mpi": extension_mpi.run,
    "extension_yardsticks": extension_yardsticks.run,
    "conclusions": conclusions.run,
    "sequel_crossover": sequels.run_crossover,
    "sequel_sockets": sequels.run_scaling,
}

__all__ = ["EXPERIMENTS", "ABLATIONS", "ALL_EXPERIMENTS",
           "ExperimentResult"]
