"""Extension experiment: the canonical Top500-style yardsticks.

The paper's framing question — "is RISC-V ready for HPC prime-time?" —
is conventionally answered with HPL Rmax and STREAM triad numbers. This
extension prints both for every machine in the study, from the same
calibrated models that regenerate the paper's figures.
"""

from __future__ import annotations

from repro.apps.hpl import predict_hpl
from repro.apps.stream import predict_stream
from repro.experiments.common import ExperimentResult
from repro.machine import catalog
from repro.openmp.affinity import PlacementPolicy


def run(fast: bool = False) -> ExperimentResult:
    rows = []
    for cpu in catalog.all_cpus().values():
        hpl = predict_hpl(cpu)
        threads = min(32, cpu.num_cores)
        placement = (
            PlacementPolicy.CYCLIC
            if cpu.topology.num_numa_nodes > 1
            else PlacementPolicy.BLOCK
        )
        stream = predict_stream(cpu, threads=threads, placement=placement)
        rows.append(
            (
                cpu.name,
                cpu.num_cores,
                f"{hpl.rpeak_gflops:.0f}",
                f"{hpl.rmax_gflops:.0f}",
                f"{hpl.efficiency * 100:.0f}%",
                f"{stream.bandwidth_gb['triad']:.1f}",
            )
        )
    return ExperimentResult(
        exp_id="extension_yardsticks",
        title="Extension: HPL Rmax and STREAM triad for every machine "
        "in the study (modelled)",
        headers=("machine", "cores", "Rpeak GF/s", "Rmax GF/s",
                 "HPL eff", "triad GB/s"),
        rows=tuple(rows),
        notes=(
            "HPL is FP64 GEMM: the C920's missing FP64 vectors collapse "
            "its efficiency, quantifying the paper's Figure 2 finding "
            "on the metric the Top500 uses",
            "STREAM sizes defeat all caches (unlike RAJAPerf defaults)",
        ),
    )
