"""Figure 2: single-core speedup from enabling vectorization on the
C920, FP32 and FP64, relative to the same precision compiled scalar.

The paper's reading: FP64 vectorization delivers essentially nothing
(the C920 has no FP64 vector arithmetic) except one integer kernel in
the basic class; FP32 benefits vary by kernel with the stream class —
fully vectorized by GCC — gaining most.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    fast_config,
    figure_headers,
    relative_figure_rows,
)
from repro.machine import catalog
from repro.suite.config import Precision, RunConfig
from repro.suite.runner import run_suite


def run(fast: bool = False) -> ExperimentResult:
    sg = catalog.sg2042()

    rows = []
    for precision in (Precision.FP32, Precision.FP64):
        scalar = run_suite(
            sg,
            fast_config(
                RunConfig(threads=1, precision=precision, vectorize=False),
                fast,
            ),
        )
        vectorized = run_suite(
            sg,
            fast_config(
                RunConfig(threads=1, precision=precision, vectorize=True),
                fast,
            ),
        )
        rows.extend(
            relative_figure_rows(
                scalar,
                [(f"vectorized {precision.label}", vectorized)],
            )
        )

    return ExperimentResult(
        exp_id="figure2",
        title=(
            "Figure 2: single-core speedup from enabling vectorization "
            "on the C920 (times faster vs scalar build)"
        ),
        headers=figure_headers(),
        rows=tuple(rows),
        notes=(
            "paper: FP64 benefit is marginal (no FP64 vector support); "
            "the small positive basic-class FP64 average is one integer "
            "kernel (REDUCE3_INT); FP32 benefit is largest for stream, "
            "the only class GCC fully auto-vectorizes",
        ),
    )
