"""Table 3: thread scaling with **cluster-aware cyclic** allocation —
cycling round NUMA regions and, within each region, round the four-core
L2 clusters."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.scaling import scaling_table
from repro.suite.config import Placement


def run(fast: bool = False) -> ExperimentResult:
    return scaling_table(
        exp_id="table3",
        title=(
            "Table 3: speedup and parallel efficiency, FP32, cluster-"
            "aware cyclic allocation"
        ),
        placement=Placement.CLUSTER,
        fast=fast,
        notes=(
            "paper highlights: beats plain cyclic up to and including 32 "
            "threads by spreading threads over the 1MiB shared L2s; at "
            "64 threads all placements coincide (every core is active)",
        ),
    )
