"""The sequel papers' headline questions, answered by the model.

Two experiments over registry-only machines (neither exists as Python —
``sophon_sg2044`` and ``sg2042_2s`` are data files under
``repro/registry/data/machines/``):

* ``sequel_crossover`` — per-kernel SG2042-vs-SG2044 comparison. The
  SG2044 evaluation (arxiv 2508.13840) asks where the C930's native RVV
  1.0 (256-bit, Clang, no rollback penalty) and DDR5 actually land
  relative to the C920; the per-kernel table shows which kernel classes
  cross over and by how much.
* ``sequel_sockets`` — 1-socket vs 2-socket SG2042 scaling. The
  multi-socket study (arxiv 2502.10320) finds thread counts spanning
  sockets collapsing below single-socket performance; the sweep shows
  the same collapse from the socket-interconnect term in
  :mod:`repro.perfmodel.memory`.
"""

from __future__ import annotations

import math

from repro.experiments.common import ExperimentResult, fast_config
from repro.kernels.base import KernelClass
from repro.machine.cpu import CPUModel
from repro.openmp.affinity import assign_cores
from repro.suite.config import Placement, RunConfig
from repro.suite.runner import SuiteResult, run_suite


def _registry_machine(name: str) -> CPUModel:
    from repro.registry import default_registry

    return default_registry().machine(name)


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_crossover(fast: bool = False) -> ExperimentResult:
    """Per-kernel SG2042 (C920, RVV 0.7.1) vs SG2044 (C930, RVV 1.0)."""
    config = fast_config(
        RunConfig(
            threads=32,
            precision="fp32",
            placement="cluster",
            noise_sigma=0.0,
        ),
        fast,
    )
    old = _registry_machine("sg2042")
    new = _registry_machine("sophon_sg2044")
    old_result = run_suite(old, config)
    new_result = run_suite(new, config)

    rows = []
    speedups: dict[str, list[float]] = {}
    for name in sorted(old_result.runs):
        old_run = old_result.runs[name]
        new_run = new_result.runs[name]
        ratio = old_run.seconds / new_run.seconds
        speedups.setdefault(old_run.klass.value, []).append(ratio)
        rows.append((
            name,
            old_run.klass.value,
            f"{old_run.seconds * 1e3:.3f}",
            f"{new_run.seconds * 1e3:.3f}",
            f"{ratio:.2f}x",
            "SG2044" if ratio > 1.0 else "SG2042",
        ))
    all_ratios = [r for rs in speedups.values() for r in rs]
    wins = sum(1 for r in all_ratios if r > 1.0)
    chart = tuple(
        (klass, _geomean(rs), min(rs), max(rs))
        for klass, rs in sorted(speedups.items())
    )
    notes = (
        f"SG2044 wins {wins}/{len(all_ratios)} kernels at "
        f"{config.threads} threads; geomean speedup "
        f"{_geomean(all_ratios):.2f}x",
        "per-class geomean (min..max): " + ", ".join(
            f"{klass} {_geomean(rs):.2f}x "
            f"({min(rs):.2f}..{max(rs):.2f})"
            for klass, rs in sorted(speedups.items())
        ),
        "SG2044 runs native RVV 1.0 under Clang 16 (no rollback "
        "penalty); SG2042 runs RVV 0.7.1 under XuanTie GCC 8.4",
    )
    return ExperimentResult(
        exp_id="sequel_crossover",
        title="SG2042 vs SG2044 per-kernel crossover "
              f"(FP32, {config.threads} threads, cluster placement)",
        headers=("kernel", "class", "SG2042 ms", "SG2044 ms",
                 "speedup", "faster"),
        rows=tuple(rows),
        notes=notes,
        chart_data=chart,
    )


def _suite_seconds(result: SuiteResult) -> float:
    return sum(run.seconds for run in result.runs.values())


def _stream_seconds(result: SuiteResult) -> float:
    return sum(
        run.seconds for run in result.runs.values()
        if run.klass is KernelClass.STREAM
    )


def run_scaling(fast: bool = False) -> ExperimentResult:
    """1-socket vs 2-socket SG2042 thread-scaling collapse."""
    one = _registry_machine("sg2042")
    two = _registry_machine("sg2042_2s")
    base_threads = 16
    sweeps: tuple[tuple[str, CPUModel, tuple[int, ...]], ...] = (
        ("SG2042 1S", one,
         (base_threads, 64) if fast else (base_threads, 32, 64)),
        ("SG2042 2S", two,
         (base_threads, 64, 128) if fast
         else (base_threads, 32, 64, 128)),
    )
    rows = []
    totals: dict[tuple[str, int], float] = {}
    stream_totals: dict[tuple[str, int], float] = {}
    for label, cpu, threads_sweep in sweeps:
        for threads in threads_sweep:
            config = fast_config(
                RunConfig(
                    threads=threads,
                    precision="fp32",
                    placement=Placement.BLOCK,
                    noise_sigma=0.0,
                    # STREAM-style sizing: big enough that per-thread
                    # slices cannot fall back into L2/L3 at high thread
                    # counts — the socket question is a DRAM question.
                    size_scale=16.0,
                ),
                fast,
            )
            result = run_suite(cpu, config)
            total = _suite_seconds(result)
            totals[(label, threads)] = total
            stream_totals[(label, threads)] = _stream_seconds(result)
            base = totals[(label, base_threads)]
            cores = assign_cores(
                cpu.topology, threads, Placement.BLOCK
            )
            spanned = cpu.topology.sockets_spanned(cores)
            speedup = base / total
            efficiency = speedup * base_threads / threads
            rows.append((
                label,
                threads,
                spanned,
                f"{total:.3f}",
                f"{stream_totals[(label, threads)]:.3f}",
                f"{speedup:.2f}x",
                f"{efficiency * 100:.0f}%",
            ))
    stream_collapse = (
        stream_totals[("SG2042 2S", 128)]
        / stream_totals[("SG2042 2S", 64)]
    )
    overall = (
        totals[("SG2042 2S", 128)] / totals[("SG2042 2S", 64)]
    )
    direction = "slower" if overall >= 1.0 else "faster"
    notes = (
        f"going 64 -> 128 threads (one socket -> two) makes the "
        f"stream class {stream_collapse:.2f}x slower: the extra "
        "socket's bandwidth is eaten by the interconnect term, the "
        "sequels' headline collapse",
        f"the whole suite ends up "
        f"{max(overall, 1 / overall):.2f}x {direction} at 128 threads "
        "than at 64 on one socket",
        f"speedups are vs the same machine at {base_threads} threads; "
        "efficiency is speedup over the ideal thread ratio",
    )
    return ExperimentResult(
        exp_id="sequel_sockets",
        title="SG2042 1-socket vs 2-socket scaling "
              "(FP32, block placement, 16x STREAM sizing, suite total)",
        headers=("machine", "threads", "sockets used", "total s",
                 "stream s", "speedup", "efficiency"),
        rows=tuple(rows),
        notes=notes,
        chart_data=tuple(
            (f"{label} @{threads}", totals[(label, threads)],
             totals[(label, threads)], totals[(label, threads)])
            for label, _, sweep in sweeps for threads in sweep
        ),
    )


#: Default entry point: the crossover study.
run = run_crossover
