"""Shared implementation of Tables 1-3: thread-scaling on the SG2042.

Each table sweeps thread counts {2, 4, 8, 16, 32, 64} at FP32 under one
placement policy and reports class-level speedup and parallel efficiency
against the single-thread run.
"""

from __future__ import annotations

from repro.experiments.common import (
    CLASS_ORDER,
    ExperimentResult,
    FAST_THREAD_SWEEP,
    THREAD_SWEEP,
    fast_config,
)
from repro.machine import catalog
from repro.suite.config import Placement, Precision, RunConfig
from repro.suite.report import class_speedups
from repro.suite.runner import run_suite


def scaling_table(
    exp_id: str,
    title: str,
    placement: Placement,
    fast: bool = False,
    notes: tuple[str, ...] = (),
) -> ExperimentResult:
    sg = catalog.sg2042()
    base_cfg = fast_config(
        RunConfig(threads=1, precision=Precision.FP32), fast
    )
    baseline = run_suite(sg, base_cfg)

    sweep = FAST_THREAD_SWEEP if fast else THREAD_SWEEP
    headers = ["Threads"]
    for klass in CLASS_ORDER:
        headers.extend([f"{klass.value} speedup", "PE"])

    rows = []
    for threads in sweep:
        cfg = fast_config(
            RunConfig(
                threads=threads,
                precision=Precision.FP32,
                placement=placement,
            ),
            fast,
        )
        result = run_suite(sg, cfg)
        speedups = class_speedups(baseline, result)
        row: list[object] = [threads]
        for klass in CLASS_ORDER:
            s, pe = speedups[klass]
            row.extend([f"{s:.2f}", f"{pe:.2f}"])
        rows.append(tuple(row))

    return ExperimentResult(
        exp_id=exp_id,
        title=title,
        headers=tuple(headers),
        rows=tuple(rows),
        notes=notes,
    )
