"""Figure 4: FP64 single-core comparison against x86, baselined against
the SG2042."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.x86compare import single_core_figure
from repro.suite.config import Precision


def run(fast: bool = False) -> ExperimentResult:
    return single_core_figure(
        "figure4",
        Precision.FP64,
        fast=fast,
        notes=(
            "paper averages: Rome ~4x, Broadwell ~4x, Icelake ~5x, "
            "Sandybridge ~1.2x faster; Sandybridge slower on average "
            "for the stream and algorithm classes",
        ),
    )
