"""Figure 5: FP32 single-core comparison against x86, baselined against
the SG2042."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.x86compare import single_core_figure
from repro.suite.config import Precision


def run(fast: bool = False) -> ExperimentResult:
    return single_core_figure(
        "figure5",
        Precision.FP32,
        fast=fast,
        notes=(
            "paper averages: Rome ~3x (lacklustre at FP32), Broadwell "
            "~4x, Icelake ~4x, Sandybridge ~2x faster",
        ),
    )
