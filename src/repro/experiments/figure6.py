"""Figure 6: FP64 multithreaded comparison against x86, baselined
against the SG2042 (each machine at its most performant thread
count)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.x86compare import multithreaded_figure
from repro.suite.config import Precision


def run(fast: bool = False) -> ExperimentResult:
    return multithreaded_figure(
        "figure6",
        Precision.FP64,
        fast=fast,
        notes=(
            "paper averages: Rome ~5x, Broadwell ~4x, Icelake ~8x "
            "faster; the SG2042 outperforms the 4-core Sandybridge in "
            "every class",
        ),
    )
