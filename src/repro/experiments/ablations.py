"""Ablations: switch off one modelled mechanism at a time and show which
paper phenomenon disappears.

Each ablation builds a modified SG2042 and re-runs the experiment whose
shape depends on the mechanism under test:

* ``ablation_l3_slicing`` — replace the per-NUMA 16MiB L3 slices with one
  unified 64MiB package L3: the block-vs-cyclic gap of Tables 1/2
  collapses, demonstrating that the placement results are driven by the
  per-region memory system.
* ``ablation_l3_contention`` — remove the L3 crossbar contention
  threshold: the 64-thread stream collapse disappears.
* ``ablation_l2_sharing`` — give each core a private 256KiB L2 instead
  of the 1MiB-per-4-core-cluster: the cluster placement loses its edge
  over plain cyclic (Table 3's mechanism).
* ``ablation_barrier`` — zero the fork-join cost: the apps class's
  overhead-bound kernels (HALOEXCHANGE) recover their scaling.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import ExperimentResult, fast_config
from repro.kernels.base import KernelClass
from repro.machine import catalog
from repro.machine.cache import CacheHierarchy, Sharing
from repro.machine.cpu import CPUModel
from repro.suite.config import Placement, Precision, RunConfig
from repro.suite.report import class_speedups
from repro.suite.runner import run_suite
from repro.util.units import KIB


def _unified_l3(cpu: CPUModel) -> CPUModel:
    levels = list(cpu.caches.levels)
    l3 = levels[-1]
    levels[-1] = replace(
        l3,
        capacity_bytes=l3.capacity_bytes * cpu.topology.num_numa_nodes,
        sharing=Sharing.PACKAGE,
        aggregate_bandwidth_bytes_per_cycle=(
            (l3.aggregate_bandwidth_bytes_per_cycle or 0)
            * cpu.topology.num_numa_nodes
            or None
        ),
        contention_threshold=(
            None
            if l3.contention_threshold is None
            else l3.contention_threshold * cpu.topology.num_numa_nodes
        ),
    )
    return replace(
        cpu,
        name=cpu.name + " (unified L3)",
        caches=CacheHierarchy(levels=tuple(levels)),
    )


def _no_l3_contention(cpu: CPUModel) -> CPUModel:
    levels = list(cpu.caches.levels)
    levels[-1] = replace(levels[-1], contention_threshold=None)
    return replace(
        cpu,
        name=cpu.name + " (no L3 contention)",
        caches=CacheHierarchy(levels=tuple(levels)),
        memory=replace(cpu.memory, thrash_threshold=None),
    )


def _private_l2(cpu: CPUModel) -> CPUModel:
    levels = list(cpu.caches.levels)
    levels[1] = replace(
        levels[1],
        capacity_bytes=256 * KIB,
        sharing=Sharing.CORE,
    )
    return replace(
        cpu,
        name=cpu.name + " (private 256KiB L2)",
        caches=CacheHierarchy(levels=tuple(levels)),
    )


def _free_barriers(cpu: CPUModel) -> CPUModel:
    return replace(cpu, name=cpu.name + " (free barriers)",
                   fork_join_ns=0.0)


def _stream_speedup(
    cpu: CPUModel, threads: int, placement: Placement, fast: bool
) -> float:
    base = run_suite(
        cpu, fast_config(RunConfig(threads=1, precision=Precision.FP32),
                         fast)
    )
    run = run_suite(
        cpu,
        fast_config(
            RunConfig(threads=threads, precision=Precision.FP32,
                      placement=placement),
            fast,
        ),
    )
    return class_speedups(base, run)[KernelClass.STREAM][0]


def _apps_speedup(cpu: CPUModel, threads: int, fast: bool) -> float:
    base = run_suite(
        cpu, fast_config(RunConfig(threads=1, precision=Precision.FP32),
                         fast)
    )
    run = run_suite(
        cpu,
        fast_config(
            RunConfig(threads=threads, precision=Precision.FP32,
                      placement=Placement.CYCLIC),
            fast,
        ),
    )
    return class_speedups(base, run)[KernelClass.APPS][0]


def ablation_l3_slicing(fast: bool = False) -> ExperimentResult:
    """Unified vs per-NUMA-sliced L3: the block/cyclic gap at 32
    threads."""
    sliced = catalog.sg2042()
    unified = _unified_l3(sliced)
    rows = []
    for cpu in (sliced, unified):
        block = _stream_speedup(cpu, 32, Placement.BLOCK, fast)
        cyclic = _stream_speedup(cpu, 32, Placement.CYCLIC, fast)
        rows.append(
            (cpu.name, f"{block:.2f}", f"{cyclic:.2f}",
             f"{cyclic / block:.1f}x")
        )
    return ExperimentResult(
        exp_id="ablation_l3_slicing",
        title="Ablation: per-NUMA L3 slicing drives the block-vs-cyclic "
        "gap (stream speedup at 32 threads)",
        headers=("machine", "block", "cyclic", "cyclic/block"),
        rows=tuple(rows),
        notes=(
            "with a unified package L3 the placement gap collapses — the "
            "paper's Table 1/2 contrast requires the per-region memory "
            "system",
        ),
    )


def ablation_l3_contention(fast: bool = False) -> ExperimentResult:
    """L3 crossbar contention: the 64-thread stream collapse."""
    base = catalog.sg2042()
    no_contention = _no_l3_contention(base)
    rows = []
    for cpu in (base, no_contention):
        s32 = _stream_speedup(cpu, 32, Placement.CYCLIC, fast)
        s64 = _stream_speedup(cpu, 64, Placement.CYCLIC, fast)
        rows.append(
            (cpu.name, f"{s32:.2f}", f"{s64:.2f}",
             "collapses" if s64 < 0.7 * s32 else "keeps scaling")
        )
    return ExperimentResult(
        exp_id="ablation_l3_contention",
        title="Ablation: L3 contention causes the 64-thread stream "
        "collapse (stream speedup, cyclic placement)",
        headers=("machine", "32 threads", "64 threads", "verdict"),
        rows=tuple(rows),
        notes=(
            "without the contention threshold, stream keeps scaling to "
            "64 threads — the opposite of the paper's Tables 1-3",
        ),
    )


def ablation_l2_sharing(fast: bool = False) -> ExperimentResult:
    """Cluster-shared L2: the Table 3 cluster-placement advantage."""
    base = catalog.sg2042()
    private = _private_l2(base)
    rows = []
    for cpu in (base, private):
        cyclic = _stream_speedup(cpu, 16, Placement.CYCLIC, fast)
        cluster = _stream_speedup(cpu, 16, Placement.CLUSTER, fast)
        rows.append(
            (cpu.name, f"{cyclic:.2f}", f"{cluster:.2f}",
             f"{cluster / cyclic:.2f}x")
        )
    return ExperimentResult(
        exp_id="ablation_l2_sharing",
        title="Ablation: the shared 1MiB cluster L2 is why cluster-aware "
        "placement wins (stream speedup at 16 threads)",
        headers=("machine", "cyclic", "cluster", "cluster/cyclic"),
        rows=tuple(rows),
        notes=(
            "with private per-core L2s the cluster policy loses its "
            "advantage over plain cyclic",
        ),
    )


def ablation_barrier(fast: bool = False) -> ExperimentResult:
    """Fork-join cost: the apps class's poor scaling."""
    base = catalog.sg2042()
    free = _free_barriers(base)
    rows = []
    for cpu in (base, free):
        s2 = _apps_speedup(cpu, 2, fast)
        s64 = _apps_speedup(cpu, 64, fast)
        rows.append((cpu.name, f"{s2:.2f}", f"{s64:.2f}"))
    return ExperimentResult(
        exp_id="ablation_barrier",
        title="Ablation: fork-join cost limits the apps class "
        "(apps speedup, cyclic placement)",
        headers=("machine", "2 threads", "64 threads"),
        rows=tuple(rows),
        notes=(
            "HALOEXCHANGE launches 36 parallel regions per repetition; "
            "zeroing the barrier cost recovers most of the class's "
            "scaling",
        ),
    )


ABLATIONS = {
    "ablation_l3_slicing": ablation_l3_slicing,
    "ablation_l3_contention": ablation_l3_contention,
    "ablation_l2_sharing": ablation_l2_sharing,
    "ablation_barrier": ablation_barrier,
}
