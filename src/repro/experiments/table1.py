"""Table 1: thread scaling with **block** allocation — threads map
contiguously to CPU cores (thread t on core t)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.scaling import scaling_table
from repro.suite.config import Placement


def run(fast: bool = False) -> ExperimentResult:
    return scaling_table(
        exp_id="table1",
        title=(
            "Table 1: speedup and parallel efficiency, FP32, block "
            "allocation of threads to cores"
        ),
        placement=Placement.BLOCK,
        fast=fast,
        notes=(
            "paper highlights: poor scaling beyond 16 threads; 32-thread "
            "runs can be slower than 1 thread (stream 0.82x) because "
            "block placement saturates two NUMA regions' controllers",
        ),
    )
