"""Table 2: thread scaling with **cyclic** allocation — threads cycle
round the NUMA regions and are then contiguous within a region."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.scaling import scaling_table
from repro.suite.config import Placement


def run(fast: bool = False) -> ExperimentResult:
    return scaling_table(
        exp_id="table2",
        title=(
            "Table 2: speedup and parallel efficiency, FP32, cyclic "
            "allocation across NUMA regions"
        ),
        placement=Placement.CYCLIC,
        fast=fast,
        notes=(
            "paper highlights: significantly better scaling than block "
            "placement because the four memory controllers are used "
            "evenly (e.g. stream 13.91x at 32 threads vs 0.82x block)",
        ),
    )
