"""Shared machinery for the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.kernels.base import KernelClass
from repro.machine.cpu import CPUModel
from repro.suite.config import Placement, RunConfig
from repro.suite.report import class_summaries
from repro.suite.runner import SuiteResult, run_suite
from repro.util.errors import ConfigError
from repro.util.stats import Summary
from repro.util.tables import render_csv, render_table

#: Class display order used by every table/figure (the paper's order).
CLASS_ORDER = (
    KernelClass.ALGORITHM,
    KernelClass.APPS,
    KernelClass.BASIC,
    KernelClass.LCALS,
    KernelClass.POLYBENCH,
    KernelClass.STREAM,
)

#: Thread counts swept in Tables 1-3.
THREAD_SWEEP = (2, 4, 8, 16, 32, 64)
FAST_THREAD_SWEEP = (2, 8, 32)

#: Problem-size scale for ``fast`` runs — the model is analytic, so
#: scaling only changes cache-fit boundaries; keep it at 1 and reduce
#: sweeps/run counts instead.
FAST_RUNS = 1


@dataclass(frozen=True)
class ExperimentResult:
    """Rendered output of one experiment.

    Attributes:
        exp_id: Short id (``"table1"``, ``"figure4"``).
        title: Human-readable title matching the paper's caption.
        headers: Column headers of the data rows.
        rows: The data rows (pre-formatted strings or numbers).
        notes: Free-text caveats appended to the rendering.
    """

    exp_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: tuple[str, ...] = ()
    #: Optional numeric bar data for figures: (label, mean, min, max).
    chart_data: tuple[tuple, ...] = ()

    def __post_init__(self) -> None:
        if not self.rows:
            raise ConfigError(f"{self.exp_id}: experiment produced no rows")

    def render(self, chart: bool = False) -> str:
        text = render_table(self.headers, self.rows, title=self.title)
        if chart and self.chart_data:
            from repro.util.tables import render_bar_chart

            labels = [c[0] for c in self.chart_data]
            means = [c[1] for c in self.chart_data]
            mins = [c[2] for c in self.chart_data]
            maxs = [c[3] for c in self.chart_data]
            text += "\n\n" + render_bar_chart(
                labels, means, mins, maxs,
                title="bars: times faster/slower vs baseline",
            )
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text

    def to_csv(self) -> str:
        return render_csv(self.headers, self.rows)


def fast_config(config: RunConfig, fast: bool) -> RunConfig:
    """Reduce averaging for fast mode (the model itself is O(1) per
    kernel, so runs dominate)."""
    if not fast:
        return config
    from dataclasses import replace

    return replace(config, runs=FAST_RUNS, noise_sigma=0.0)


def summary_row(
    label: str, summaries: dict[KernelClass, Summary]
) -> tuple:
    """One figure row: label + mean[min,max] per class."""
    cells: list[str] = [label]
    for klass in CLASS_ORDER:
        s = summaries.get(klass)
        if s is None:
            cells.append("-")
        else:
            # ".." separator keeps cells comma-free for CSV export.
            cells.append(
                f"{s.mean:+.2f} [{s.minimum:+.2f} .. {s.maximum:+.2f}]"
            )
    return tuple(cells)


def figure_headers() -> tuple[str, ...]:
    return ("configuration",) + tuple(k.value for k in CLASS_ORDER)


def relative_figure_rows(
    baseline: SuiteResult,
    others: Sequence[tuple[str, SuiteResult]],
) -> tuple[tuple, ...]:
    """Rows of a relative-performance figure: one per configuration."""
    rows = []
    for label, result in others:
        rows.append(summary_row(label, class_summaries(baseline, result)))
    return tuple(rows)


def relative_chart_data(
    baseline: SuiteResult,
    others: Sequence[tuple[str, SuiteResult]],
) -> tuple[tuple, ...]:
    """Numeric (label, mean, min, max) bars per configuration x class,
    for the ASCII chart rendering of a figure."""
    bars = []
    for label, result in others:
        for klass, summary in class_summaries(baseline, result).items():
            bars.append(
                (
                    f"{label} / {klass.value}",
                    summary.mean,
                    summary.minimum,
                    summary.maximum,
                )
            )
    return tuple(bars)


def best_threaded_run(
    cpu: CPUModel,
    precision,
    fast: bool = False,
    candidates: Sequence[tuple[int, Placement]] | None = None,
) -> SuiteResult:
    """The most performant threaded configuration for ``cpu``.

    Section 3.3: on every x86 system the best thread count equals the
    physical core count; on the SG2042, 32 threads (cluster placement)
    beat 64 for some classes, so both are tried and the faster total
    wins.
    """
    if candidates is None:
        if cpu.part == "SG2042":
            candidates = [(32, Placement.CLUSTER), (64, Placement.CLUSTER)]
        else:
            candidates = [(cpu.num_cores, Placement.BLOCK)]
    best: SuiteResult | None = None
    for threads, placement in candidates:
        config = fast_config(
            RunConfig(
                threads=threads, precision=precision, placement=placement
            ),
            fast,
        )
        result = run_suite(cpu, config)
        if best is None or result.total_seconds() < best.total_seconds():
            best = result
    assert best is not None
    return best
