"""Shared implementation of Figures 4-7: x86 CPUs vs the SG2042.

Figures 4/5 compare single cores (FP64/FP32); Figures 6/7 compare the
most performant multithreaded configuration of each machine. In every
case the SG2042 is the baseline and bars report times faster (positive)
or slower (negative), class-averaged with min/max whiskers.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    best_threaded_run,
    fast_config,
    figure_headers,
    relative_chart_data,
    relative_figure_rows,
)
from repro.machine import catalog
from repro.suite.config import Precision, RunConfig
from repro.suite.runner import run_suite


def single_core_figure(
    exp_id: str,
    precision: Precision,
    fast: bool = False,
    notes: tuple[str, ...] = (),
) -> ExperimentResult:
    sg = catalog.sg2042()
    cfg = fast_config(RunConfig(threads=1, precision=precision), fast)
    baseline = run_suite(sg, cfg)
    others = [
        (cpu.name, run_suite(cpu, cfg))
        for cpu in catalog.x86_cpus().values()
    ]
    return ExperimentResult(
        exp_id=exp_id,
        title=(
            f"{exp_id.capitalize().replace('figure', 'Figure ')}: "
            f"{precision.label.upper()} single core comparison against "
            "x86, baselined against the SG2042"
        ),
        headers=figure_headers(),
        rows=relative_figure_rows(baseline, others),
        notes=notes,
        chart_data=relative_chart_data(baseline, others),
    )


def multithreaded_figure(
    exp_id: str,
    precision: Precision,
    fast: bool = False,
    notes: tuple[str, ...] = (),
) -> ExperimentResult:
    sg = catalog.sg2042()
    baseline = best_threaded_run(sg, precision, fast)
    others = [
        (cpu.name, best_threaded_run(cpu, precision, fast))
        for cpu in catalog.x86_cpus().values()
    ]
    return ExperimentResult(
        exp_id=exp_id,
        title=(
            f"{exp_id.capitalize().replace('figure', 'Figure ')}: "
            f"{precision.label.upper()} multithreaded comparison against "
            "x86 (most performant thread count each), baselined against "
            "the SG2042"
        ),
        headers=figure_headers(),
        rows=relative_figure_rows(baseline, others),
        chart_data=relative_chart_data(baseline, others),
        notes=notes
        + (
            "x86 best thread count = all physical cores (SMT off); "
            "SG2042 best of 32 (cluster placement) and 64 threads",
        ),
    )
