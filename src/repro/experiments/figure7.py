"""Figure 7: FP32 multithreaded comparison against x86, baselined
against the SG2042 (each machine at its most performant thread
count)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.x86compare import multithreaded_figure
from repro.suite.config import Precision


def run(fast: bool = False) -> ExperimentResult:
    return multithreaded_figure(
        "figure7",
        Precision.FP32,
        fast=fast,
        notes=(
            "paper averages: Rome ~8x, Broadwell ~6x, Icelake ~6x "
            "faster; Sandybridge slower than the SG2042 in every class",
        ),
    )
