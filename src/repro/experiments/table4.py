"""Table 4: summary of the x86 CPUs compared against the SG2042."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.machine import catalog


def run(fast: bool = False) -> ExperimentResult:
    rows = []
    for cpu in catalog.x86_cpus().values():
        rows.append(
            (
                cpu.name,
                cpu.part,
                f"{cpu.core.clock_hz / 1e9:.2f}GHz",
                cpu.num_cores,
                cpu.core.isa.name,
            )
        )
    return ExperimentResult(
        exp_id="table4",
        title="Table 4: summary of x86 CPUs used to compare against the "
        "SG2042",
        headers=("CPU", "Part", "Clock", "Cores", "Vector"),
        rows=tuple(rows),
    )
