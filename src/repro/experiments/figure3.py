"""Figure 3: Clang VLA and VLS single-core comparison against GCC for
the Polybench kernels in FP32 on the C920.

This experiment exercises the full paper pipeline: Clang can only emit
RVV v1.0 assembly, so the RVV-rollback tool rewrites it to v0.7.1 before
it can "run" on the C920 — the experiment actually pushes generated
assembly through :func:`repro.isa.rollback.rollback` to prove the path
works, then compares the modelled runtimes against the XuanTie GCC
baseline.
"""

from __future__ import annotations

from repro.compiler.model import VectorFlavor
from repro.experiments.common import ExperimentResult, fast_config
from repro.isa.codegen import LoopSpec, generate_loop
from repro.isa.encoding import render_assembly
from repro.isa.rollback import rollback
from repro.kernels.base import KernelClass
from repro.kernels.registry import kernels_in_class
from repro.machine import catalog
from repro.machine.vector import DType
from repro.suite.config import Precision, RunConfig
from repro.suite.report import kernel_relative
from repro.suite.runner import run_suite


def _prove_rollback_path(flavor: VectorFlavor) -> int:
    """Generate a representative Clang RVV v1.0 loop, roll it back to
    v0.7.1 and return the rewritten instruction count (sanity: > 0).

    Raises if the rollback pipeline is broken — making the experiment
    fail loudly rather than silently reporting modelled numbers for an
    impossible compilation path.
    """
    spec = LoopSpec(
        dtype=DType.FP32, num_inputs=2, ops=("vfmacc.vv",), has_store=True
    )
    v10 = generate_loop(spec, flavor, rvv_version="1.0")
    rewritten = rollback(render_assembly(v10))
    return len(rewritten.splitlines())


def run(fast: bool = False) -> ExperimentResult:
    sg = catalog.sg2042()
    polybench = kernels_in_class(KernelClass.POLYBENCH)

    # Prove the Clang -> rollback -> C920 path actually translates.
    vls_insns = _prove_rollback_path(VectorFlavor.VLS)
    vla_insns = _prove_rollback_path(VectorFlavor.VLA)

    gcc = run_suite(
        sg,
        fast_config(RunConfig(threads=1, precision=Precision.FP32), fast),
        kernels=polybench,
    )
    clang = {}
    for flavor in (VectorFlavor.VLS, VectorFlavor.VLA):
        clang[flavor] = run_suite(
            sg,
            fast_config(
                RunConfig(
                    threads=1,
                    precision=Precision.FP32,
                    compiler="clang-16",
                    flavor=flavor,
                    rollback=True,
                ),
                fast,
            ),
            kernels=polybench,
        )

    rel_vls = kernel_relative(gcc, clang[VectorFlavor.VLS])
    rel_vla = kernel_relative(gcc, clang[VectorFlavor.VLA])

    rows = tuple(
        (
            kernel.name,
            f"{rel_vla[kernel.name]:+.2f}",
            f"{rel_vls[kernel.name]:+.2f}",
        )
        for kernel in polybench
    )
    return ExperimentResult(
        exp_id="figure3",
        title=(
            "Figure 3: Clang VLA and VLS single-core comparison against "
            "GCC, Polybench kernels, FP32 (times faster/slower than GCC)"
        ),
        headers=("kernel", "Clang VLA", "Clang VLS"),
        rows=rows,
        notes=(
            "paper: Clang slower for 2MM/3MM/GEMM (its cost model picks "
            "the scalar path); faster for FLOYD_WARSHALL and HEAT_3D "
            "(GCC cannot vectorize them); JACOBI_2D anomalously slower "
            "with Clang; VLS tends to outperform VLA",
            f"rollback proof: VLS loop -> {vls_insns} v0.7.1 "
            f"instructions, VLA loop -> {vla_insns}",
        ),
    )
