"""The paper's Section 4 conclusions, recomputed.

The conclusions condense the whole evaluation into a handful of "N times
faster" statements. This experiment recomputes every one of them from
the model and prints paper-vs-measured side by side — the quantitative
summary behind EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    best_threaded_run,
    fast_config,
)
from repro.machine import catalog
from repro.suite.config import Precision, RunConfig
from repro.suite.report import suite_average_relative
from repro.suite.runner import run_suite
from repro.util.stats import from_relative

#: The conclusions' stated factors: (label, paper value).
_PAPER = {
    ("single", "fp32", "amd_rome"): 3.0,
    ("single", "fp32", "intel_broadwell"): 4.0,
    ("single", "fp32", "intel_icelake"): 4.0,
    ("single", "fp32", "intel_sandybridge"): 2.0,
    ("single", "fp64", "amd_rome"): 4.0,
    ("single", "fp64", "intel_broadwell"): 4.0,
    ("single", "fp64", "intel_icelake"): 5.0,
    ("single", "fp64", "intel_sandybridge"): 1.2,
    ("multi", "fp32", "amd_rome"): 8.0,
    ("multi", "fp32", "intel_broadwell"): 6.0,
    ("multi", "fp32", "intel_icelake"): 6.0,
    ("multi", "fp64", "amd_rome"): 5.0,
    ("multi", "fp64", "intel_broadwell"): 4.0,
    ("multi", "fp64", "intel_icelake"): 8.0,
}


def run(fast: bool = False) -> ExperimentResult:
    sg = catalog.sg2042()
    x86 = catalog.x86_cpus()
    rows = []

    # C920 vs U74 (V2) averages.
    v2 = catalog.visionfive_v2()
    for precision, paper in ((Precision.FP64, "3-6x"),
                             (Precision.FP32, "5-10x")):
        cfg = fast_config(RunConfig(threads=1, precision=precision), fast)
        base = run_suite(v2, cfg)
        sg_run = run_suite(sg, cfg)
        measured = from_relative(suite_average_relative(base, sg_run))
        rows.append(
            (
                f"C920 vs U74, single core, {precision.label}",
                paper,
                f"{measured:.1f}x",
            )
        )

    # x86 vs SG2042, single core and multithreaded.
    for mode in ("single", "multi"):
        for precision in (Precision.FP64, Precision.FP32):
            if mode == "single":
                cfg = fast_config(
                    RunConfig(threads=1, precision=precision), fast
                )
                base = run_suite(sg, cfg)
            else:
                base = best_threaded_run(sg, precision, fast)
            for name, cpu in x86.items():
                key = (mode, precision.label, name)
                if key not in _PAPER:
                    continue
                if mode == "single":
                    other = run_suite(cpu, cfg)
                else:
                    other = best_threaded_run(cpu, precision, fast)
                measured = from_relative(
                    suite_average_relative(base, other)
                )
                rows.append(
                    (
                        f"{cpu.name} vs SG2042, {mode}, "
                        f"{precision.label}",
                        f"{_PAPER[key]:.1f}x",
                        f"{measured:.1f}x",
                    )
                )

    # The Sandybridge multithreaded loss.
    for precision in (Precision.FP64, Precision.FP32):
        base = best_threaded_run(sg, precision, fast)
        sb = best_threaded_run(
            catalog.intel_sandybridge(), precision, fast
        )
        measured = from_relative(suite_average_relative(base, sb))
        rows.append(
            (
                f"Sandybridge vs SG2042, multi, {precision.label}",
                "SG2042 wins",
                f"{measured:.2f}x"
                + (" (SG2042 wins)" if measured < 1 else ""),
            )
        )

    return ExperimentResult(
        exp_id="conclusions",
        title="Section 4 conclusions: paper-stated factors vs the "
        "model's suite averages",
        headers=("claim", "paper", "measured"),
        rows=tuple(rows),
        notes=(
            "suite averages over all 64 kernels (mean of signed "
            "times-faster values, converted back to a ratio)",
        ),
    )
